"""Tests for the shared retry/backoff policy (repro.runtime.backoff).

Every retry path in the runtime sleeps through this policy, so its
contract is load-bearing: delays must stay inside [base, cap], grow
from the base, be deterministic under a seeded rng, and retry_call
must re-raise the final failure untouched.
"""

import random

import pytest

from repro.exceptions import SearchError
from repro.runtime import Backoff, retry_call


class TestBackoff:
    def test_delays_stay_inside_bounds(self):
        policy = Backoff(base_s=0.01, cap_s=0.5, rng=random.Random(1))
        delays = [policy.next_delay() for _ in range(200)]
        assert all(0.01 <= d <= 0.5 for d in delays)
        # Decorrelated jitter must actually reach the cap on repeated
        # failure (growth), not hover at the base forever.
        assert max(delays) == 0.5

    def test_seeded_rng_is_deterministic(self):
        a = Backoff(base_s=0.02, cap_s=1.0, rng=random.Random(42))
        b = Backoff(base_s=0.02, cap_s=1.0, rng=random.Random(42))
        assert [a.next_delay() for _ in range(50)] == [
            b.next_delay() for _ in range(50)
        ]

    def test_reset_restarts_growth(self):
        policy = Backoff(base_s=0.01, cap_s=10.0, rng=random.Random(3))
        for _ in range(20):
            policy.next_delay()  # grow toward the cap
        grown = policy.next_delay()
        policy.reset()
        fresh = policy.next_delay()
        # The first post-reset draw is bounded by 3 * base again.
        assert fresh <= 3 * 0.01
        assert grown > fresh

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SearchError, match="base_s"):
            Backoff(base_s=0.0)
        with pytest.raises(SearchError, match="cap_s"):
            Backoff(base_s=1.0, cap_s=0.5)


class TestRetryCall:
    def test_retries_then_succeeds(self):
        calls = []
        slept = []
        retried = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        result = retry_call(
            flaky,
            retries=4,
            base_s=0.001,
            cap_s=0.01,
            rng=random.Random(0),
            on_retry=lambda err, attempt, delay: retried.append(
                (type(err), attempt, delay)
            ),
            sleep=slept.append,
        )
        assert result == "ok"
        assert len(calls) == 3
        assert len(slept) == 2  # one sleep per failure before success
        assert [a for _, a, _ in retried] == [1, 2]
        assert all(0.001 <= d <= 0.01 for d in slept)

    def test_exhaustion_reraises_final_error(self):
        calls = []

        def always_fails():
            calls.append(1)
            raise OSError("still broken")

        with pytest.raises(OSError, match="still broken"):
            retry_call(
                always_fails,
                retries=2,
                base_s=0.001,
                cap_s=0.002,
                rng=random.Random(0),
                sleep=lambda _s: None,
            )
        assert len(calls) == 3  # retries + 1 total attempts

    def test_non_matching_error_propagates_immediately(self):
        calls = []

        def wrong_kind():
            calls.append(1)
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            retry_call(
                wrong_kind,
                retries=5,
                retry_on=(OSError,),
                sleep=lambda _s: None,
            )
        assert len(calls) == 1

    def test_seeded_sleep_schedule_is_deterministic(self):
        def schedule():
            slept = []
            n = [0]

            def fails_twice():
                n[0] += 1
                if n[0] < 3:
                    raise OSError("boom")
                return None

            retry_call(
                fails_twice,
                retries=4,
                base_s=0.01,
                cap_s=1.0,
                rng=random.Random(7),
                sleep=slept.append,
            )
            return slept

        assert schedule() == schedule()
