"""Runtime-level tests for run-vectorized grid searches.

Acceptance checks from the issue: ``SearchOutcome`` winner and
accuracies identical with ``vectorized_runs`` on/off, sequential and
pooled; measured-cost packing feeds chunk wall times back into the
packer; oversized results travel through shared memory leak-free.
"""

import pickle

import numpy as np
import pytest

from repro.core.grid_search import TrainingSettings, grid_search
from repro.core.search_space import classical_search_space, hybrid_search_space
from repro.data import make_spiral, stratified_split
from repro.exceptions import SearchError
from repro.nn.training import History
from repro.runtime import ChunkCostModel, PersistentPool, execute_runs
from repro.runtime.pool import (
    ChunkResult,
    JobChunk,
    RESULT_SHM_THRESHOLD,
    ShmResultHandle,
    _receive_result,
    _run_chunk,
    _ship_result,
    make_chunks,
    publish_split,
)
from repro.runtime.jobs import RunResult, TrainingJob, execute_job


@pytest.fixture(scope="module")
def easy_split():
    ds = make_spiral(4, n_points=120, noise=0.0, turns=0.4, seed=7)
    return stratified_split(ds, seed=7)


def hybrid_space():
    return hybrid_search_space(
        4, "sel", qubit_options=(3, 4), depth_options=(1, 2)
    )


def _assert_same_outcome(a, b):
    assert a.succeeded == b.succeeded
    if a.winner is not None:
        assert a.winner.spec == b.winner.spec
        assert a.winner.train_accuracies == b.winner.train_accuracies
        assert a.winner.val_accuracies == b.winner.val_accuracies
    assert [c.spec for c in a.evaluated] == [c.spec for c in b.evaluated]
    assert [c.train_accuracies for c in a.evaluated] == [
        c.train_accuracies for c in b.evaluated
    ]
    assert [c.val_accuracies for c in a.evaluated] == [
        c.val_accuracies for c in b.evaluated
    ]
    assert [c.epochs_run for c in a.evaluated] == [
        c.epochs_run for c in b.evaluated
    ]


class TestExecuteRuns:
    def test_matches_scalar_jobs(self, easy_split):
        spec = hybrid_space()[0]
        settings = TrainingSettings(epochs=3, batch_size=8, runs=3)
        stacked = execute_runs(
            spec, 7, 0, range(3), easy_split, settings, vectorized=True
        )
        scalar = execute_runs(
            spec, 7, 0, range(3), easy_split, settings, vectorized=False
        )
        assert len(stacked) == len(scalar) == 3
        for s, ref in zip(stacked, scalar):
            assert s.candidate_index == ref.candidate_index
            assert s.run == ref.run
            assert s.train_accuracy == ref.train_accuracy
            assert s.val_accuracy == ref.val_accuracy
            assert s.epochs_run == ref.epochs_run

    def test_single_run_uses_scalar_path(self, easy_split):
        spec = classical_search_space(4, neuron_options=(4,), max_layers=1)[0]
        settings = TrainingSettings(epochs=2, batch_size=16, runs=1)
        [got] = execute_runs(
            spec, 3, 0, [0], easy_split, settings, vectorized=True
        )
        ref = execute_job(
            TrainingJob(spec, 3, 0, 0), easy_split, settings
        )
        assert got.train_accuracy == ref.train_accuracy
        assert got.val_accuracy == ref.val_accuracy

    def test_histories_attached_on_request(self, easy_split):
        spec = hybrid_space()[0]
        settings = TrainingSettings(
            epochs=2, batch_size=16, runs=2, return_histories=True
        )
        results = execute_runs(
            spec, 1, 0, range(2), easy_split, settings, vectorized=True
        )
        for rr in results:
            assert isinstance(rr.history, History)
            assert rr.history.epochs_run == rr.epochs_run
            assert rr.history.max_val_accuracy == rr.val_accuracy


class TestSearchDifferential:
    """The issue's acceptance check: identical SearchOutcome with
    vectorized_runs on/off, sequential and pooled."""

    def _settings(self, vectorized):
        return TrainingSettings(
            epochs=8,
            batch_size=8,
            runs=3,
            early_stop_threshold=0.6,
            vectorized_runs=vectorized,
        )

    def test_sequential_on_off_identical(self, easy_split):
        kwargs = dict(
            specs=hybrid_space(), split=easy_split, threshold=0.6, seed=3
        )
        on = grid_search(**kwargs, settings=self._settings(True), workers=1)
        off = grid_search(**kwargs, settings=self._settings(False), workers=1)
        _assert_same_outcome(on, off)

    def test_pooled_matches_sequential_both_modes(self, easy_split):
        kwargs = dict(
            specs=hybrid_space(), split=easy_split, threshold=0.6, seed=3
        )
        seq = grid_search(**kwargs, settings=self._settings(True), workers=1)
        with PersistentPool(2) as pool:
            pool_on = grid_search(
                **kwargs, settings=self._settings(True), pool=pool
            )
            pool_off = grid_search(
                **kwargs, settings=self._settings(False), pool=pool
            )
            # vectorized chunks fed measured costs back into the packer
            assert pool.cost_model.observations > 0
        _assert_same_outcome(pool_on, seq)
        _assert_same_outcome(pool_off, seq)

    def test_classical_family_on_off_identical(self, easy_split):
        specs = classical_search_space(4, neuron_options=(2, 8), max_layers=2)
        kwargs = dict(specs=specs, split=easy_split, threshold=1.01, seed=5)
        settings = dict(epochs=2, batch_size=16, runs=2)
        on = grid_search(
            **kwargs,
            settings=TrainingSettings(**settings, vectorized_runs=True),
            max_candidates=3,
            workers=1,
        )
        off = grid_search(
            **kwargs,
            settings=TrainingSettings(**settings, vectorized_runs=False),
            max_candidates=3,
            workers=1,
        )
        _assert_same_outcome(on, off)

    def test_histories_identical_through_pool(self, easy_split):
        """return_histories payloads survive the worker round-trip and
        match the sequential path's histories run for run."""
        settings = TrainingSettings(
            epochs=3, batch_size=16, runs=2, return_histories=True
        )
        kwargs = dict(
            specs=hybrid_space()[:2],
            split=easy_split,
            threshold=1.01,
            settings=settings,
            max_candidates=2,
        )
        seq = grid_search(**kwargs, workers=1)
        with PersistentPool(2) as pool:
            par = grid_search(**kwargs, pool=pool)
        for a, b in zip(seq.evaluated, par.evaluated):
            assert len(a.histories) == len(b.histories) == 2
            for ha, hb in zip(a.histories, b.histories):
                assert ha.train_loss == hb.train_loss
                assert ha.val_accuracy == hb.val_accuracy


class TestChunkPacking:
    def test_vectorized_chunks_cover_whole_run_set(self, easy_split):
        shm, handle = publish_split(easy_split)
        try:
            spec = hybrid_space()[0]
            settings = TrainingSettings(runs=5, vectorized_runs=True)
            chunks = make_chunks(
                spec, 0, 1, 5, 5, handle, settings, 1, vectorized=True
            )
            assert len(chunks) == 1
            assert chunks[0].vectorized
            assert [j.run for j in chunks[0].jobs] == [0, 1, 2, 3, 4]
        finally:
            shm.close()
            shm.unlink()

    def test_stacked_failure_falls_back_scalar_and_is_flagged(
        self, easy_split, monkeypatch
    ):
        """A stacked sweep that raises re-runs scalar (entries complete,
        results correct) and the chunk is flagged so the pool can count
        the silent double-work."""
        import repro.runtime.pool as pool_mod

        def boom(*args, **kwargs):
            raise RuntimeError("stacked path exploded")

        monkeypatch.setattr(pool_mod, "execute_runs", boom)
        shm, handle = publish_split(easy_split)
        try:
            spec = classical_search_space(
                4, neuron_options=(2,), max_layers=1
            )[0]
            settings = TrainingSettings(epochs=1, batch_size=32, runs=2)
            [chunk] = make_chunks(
                spec, 0, 1, 2, 2, handle, settings, 0, vectorized=True
            )
            result = _run_chunk(chunk)
            assert isinstance(result, ChunkResult)
            assert result.vectorized_fallback
            assert len(result.entries) == 2
            ref = execute_job(
                TrainingJob(spec, 1, 0, 0), easy_split, settings
            )
            assert result.entries[0].train_accuracy == ref.train_accuracy
        finally:
            shm.close()
            shm.unlink()

    def test_chunk_result_carries_wall_time(self, easy_split):
        shm, handle = publish_split(easy_split)
        try:
            spec = classical_search_space(
                4, neuron_options=(2,), max_layers=1
            )[0]
            settings = TrainingSettings(epochs=1, batch_size=32, runs=2)
            [chunk] = make_chunks(
                spec, 0, 1, 2, 2, handle, settings, 0, vectorized=True
            )
            result = _run_chunk(chunk)
            assert isinstance(result, ChunkResult)
            assert not result.cancelled
            assert result.wall_time_s > 0.0
            assert len(result.entries) == 2
        finally:
            shm.close()
            shm.unlink()


class TestChunkCostModel:
    def test_unobserved_falls_back_to_flops(self):
        model = ChunkCostModel()
        assert model.estimate("A", 100, 2) == 200.0
        assert model.estimate("B", 50) == 50.0

    def test_observation_overrides_flops_rank(self):
        model = ChunkCostModel(alpha=0.5)
        # label A is *cheap* by FLOPs but measured slow
        model.observe("A", flops=10, wall_time_s=4.0, n_runs=2)
        assert model.estimate("A", 10) == pytest.approx(2.0)
        # unseen label B estimated via the global seconds-per-FLOP rate
        assert model.estimate("B", 100) == pytest.approx(20.0)
        # EWMA moves with new evidence
        model.observe("A", flops=10, wall_time_s=2.0, n_runs=2)
        assert model.estimate("A", 10) == pytest.approx(1.5)
        assert model.observations == 2

    def test_ignores_degenerate_observations(self):
        model = ChunkCostModel()
        model.observe("A", 10, 0.0, 1)
        model.observe("A", 10, 1.0, 0)
        assert model.observations == 0
        assert model.snapshot() == {}

    def test_bad_alpha_rejected(self):
        with pytest.raises(SearchError):
            ChunkCostModel(alpha=0.0)


class TestShmResultPath:
    def _big_result(self):
        history = History(
            train_loss=[0.1] * 4000,
            train_accuracy=[0.5] * 4000,
            val_accuracy=[0.5] * 4000,
            epochs_run=4000,
        )
        entries = tuple(
            RunResult(0, r, 0.5, 0.5, 4000, 1.0, history=history)
            for r in range(5)
        )
        result = ChunkResult(cancelled=False, entries=entries, wall_time_s=1.0)
        assert len(pickle.dumps(result)) > RESULT_SHM_THRESHOLD
        return result

    def test_small_results_pass_through(self):
        small = ChunkResult(cancelled=False, entries=(), wall_time_s=0.1)
        assert _ship_result(small) is small

    def test_large_results_round_trip_and_unlink(self):
        result = self._big_result()
        shipped = _ship_result(result)
        assert isinstance(shipped, ShmResultHandle)
        # the handle itself is tiny — that is the point
        assert len(pickle.dumps(shipped)) < 512
        received = _receive_result(shipped)
        assert received == result
        # the one-shot segment is gone after the read
        from multiprocessing.shared_memory import SharedMemory

        with pytest.raises(FileNotFoundError):
            SharedMemory(name=shipped.segment)

    def test_run_chunk_ships_large_histories(self, easy_split):
        """An in-process _run_chunk call with return_histories and many
        epochs produces a payload that takes the shm path end to end."""
        shm, handle = publish_split(easy_split)
        try:
            spec = classical_search_space(
                4, neuron_options=(2,), max_layers=1
            )[0]
            settings = TrainingSettings(
                epochs=1, batch_size=32, runs=2, return_histories=True
            )
            [chunk] = make_chunks(
                spec, 0, 1, 2, 2, handle, settings, 0, vectorized=True
            )
            import repro.runtime.pool as pool_mod

            old = pool_mod.RESULT_SHM_THRESHOLD
            pool_mod.RESULT_SHM_THRESHOLD = 1  # force the shm path
            try:
                shipped = _run_chunk(chunk)
            finally:
                pool_mod.RESULT_SHM_THRESHOLD = old
            assert isinstance(shipped, ShmResultHandle)
            result = _receive_result(shipped)
            assert isinstance(result, ChunkResult)
            assert len(result.entries) == 2
            assert all(e.history is not None for e in result.entries)
        finally:
            shm.close()
            shm.unlink()
