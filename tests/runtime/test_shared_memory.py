"""Shared-memory dataset lifecycle tests for the persistent pool.

The ISSUE's acceptance bar: no leaked ``/dev/shm`` segments after
normal completion, after an early-pass pool terminate, and after a
worker crash; dataset pickling per job/per worker eliminated (payloads
are handles, asserted by instrumented sizes); segments refcounted per
search and unlinked deterministically on retire/close.
"""

import os
import pickle
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.grid_search import TrainingSettings, grid_search
from repro.core.search_space import ClassicalSpec, classical_search_space
from repro.data import make_spiral, stratified_split
from repro.exceptions import SearchError, TrainingCancelled
from repro.runtime import PersistentPool, attach_split, publish_split
from repro.runtime.pool import JobChunk
from repro.runtime.jobs import TrainingJob


class CrashingSpec(ClassicalSpec):
    """A spec whose training hard-kills the worker process (picklable by
    reference, like ExplodingSpec in test_parallel_search)."""

    def build(self, rng=None):
        os._exit(13)


def _segment_exists(name: str) -> bool:
    # Linux: segments are files under /dev/shm.  Fall back to an attach
    # probe elsewhere.
    if os.path.isdir("/dev/shm"):
        return os.path.exists(f"/dev/shm/{name}")
    from multiprocessing.shared_memory import SharedMemory

    try:
        shm = SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


@pytest.fixture(scope="module")
def easy_split():
    ds = make_spiral(4, n_points=150, noise=0.0, turns=0.4, seed=7)
    return stratified_split(ds, seed=7)


def small_space(n_features=4):
    return classical_search_space(
        n_features, neuron_options=(2, 8), max_layers=2
    )


class TestPublishAttach:
    def test_roundtrip_preserves_arrays(self, easy_split):
        shm, handle = publish_split(easy_split)
        try:
            clone = attach_split(handle, shm)
            for field in (
                "x_train", "y_train", "x_val", "y_val",
                "train_labels", "val_labels",
            ):
                ours = getattr(easy_split, field)
                theirs = getattr(clone, field)
                assert theirs.dtype == ours.dtype
                np.testing.assert_array_equal(theirs, ours)
                # Shared views are read-only: a worker cannot corrupt
                # the dataset under every other worker's feet.
                assert not theirs.flags.writeable
        finally:
            shm.close()
            shm.unlink()
        assert not _segment_exists(handle.segment)


class TestZeroCopyPayloads:
    def test_handle_size_independent_of_dataset_size(self):
        small = stratified_split(make_spiral(4, n_points=120, seed=1), seed=1)
        big = stratified_split(make_spiral(4, n_points=1200, seed=1), seed=1)
        shm_s, h_s = publish_split(small)
        shm_b, h_b = publish_split(big)
        try:
            small_bytes = len(pickle.dumps(h_s))
            big_bytes = len(pickle.dumps(h_b))
            # The handle is a name plus layout: constant-size, tiny.
            assert big_bytes < 2048
            assert abs(big_bytes - small_bytes) <= 64
            # ... while the pickled dataset itself scales with points.
            assert len(pickle.dumps(big)) > 10 * big_bytes
        finally:
            for shm in (shm_s, shm_b):
                shm.close()
                shm.unlink()

    def test_job_chunk_payload_carries_no_arrays(self, easy_split):
        shm, handle = publish_split(easy_split)
        try:
            chunk = JobChunk(
                jobs=tuple(
                    TrainingJob(small_space()[0], 3, 0, run)
                    for run in range(5)
                ),
                handle=handle,
                settings=TrainingSettings(epochs=1, runs=5),
                generation=1,
            )
            payload = len(pickle.dumps(chunk))
            assert payload < 4096
            assert payload < len(pickle.dumps(easy_split)) / 4
        finally:
            shm.close()
            shm.unlink()

    def test_initializer_payload_is_one_segment_name(self):
        """PR 2 shipped the pickled DataSplit through the initializer
        (per worker, per search); the persistent pool ships one control
        segment name, constant in dataset size."""
        with PersistentPool(1) as pool:
            assert pool.init_payload_bytes < 256
            # Workers start lazily: a pool that never searches (cached
            # CLI runs, fig4) spawns zero processes.
            assert pool.worker_pids() == set()


class TestSegmentLifecycle:
    def test_normal_completion_unlinks_on_close(self, easy_split):
        settings = TrainingSettings(epochs=1, batch_size=64, runs=1)
        with PersistentPool(2) as pool:
            for seed in (0, 1):
                outcome = grid_search(
                    small_space(),
                    easy_split,
                    threshold=1.01,
                    settings=settings,
                    max_candidates=2,
                    seed=seed,
                    pool=pool,
                )
                assert outcome.candidates_trained == 2
            # Both searches share the same split object: published once.
            names = pool.live_segments
            assert len(names) == 1
            assert all(_segment_exists(n) for n in names)
        assert not any(_segment_exists(n) for n in names)

    def test_early_pass_terminate_unlinks(self, easy_split):
        """Winner commits while speculative chunks are still in flight;
        closing the pool right away (terminate) must still unlink."""
        settings = TrainingSettings(epochs=1, batch_size=64, runs=1)
        pool = PersistentPool(4)
        try:
            outcome = grid_search(
                small_space(),
                easy_split,
                threshold=0.0,  # cheapest candidate wins immediately
                settings=settings,
                pool=pool,
            )
            assert outcome.succeeded
            names = pool.live_segments
            assert names
        finally:
            pool.close()
        assert not any(_segment_exists(n) for n in names)
        assert pool.closed

    def test_refcount_retire_unlinks_after_last_release(self, easy_split):
        with PersistentPool(1) as pool:
            handle = pool.acquire_split(easy_split)
            again = pool.acquire_split(easy_split)
            assert again.segment == handle.segment  # dedup per object
            pool.retire_split(easy_split)
            # One search still holds a reference: segment must survive.
            assert _segment_exists(handle.segment)
            pool.release_split(handle)
            assert _segment_exists(handle.segment)
            pool.release_split(handle)
            assert not _segment_exists(handle.segment)
            assert handle.segment not in pool.live_segments

    def test_publish_sweeps_dead_unreferenced_splits(self):
        """A long-lived pool fed a stream of throwaway datasets must not
        accumulate dead tmpfs copies: once a split object is gone and no
        search references its segment, the next publish unlinks it."""
        import gc

        with PersistentPool(1) as pool:
            dead = stratified_split(make_spiral(4, n_points=90, seed=2), seed=2)
            stale = pool.publish(dead)
            assert _segment_exists(stale.segment)
            del dead
            gc.collect()
            live = stratified_split(make_spiral(4, n_points=90, seed=4), seed=4)
            fresh = pool.publish(live)
            assert _segment_exists(fresh.segment)
            assert not _segment_exists(stale.segment)
            assert stale.segment not in pool.live_segments

    def test_protocol_retires_levels_as_it_goes(self):
        """run_protocol unlinks each level's segment when the level
        finishes instead of letting them pile up until pool close."""
        from repro.core.experiment import ProtocolConfig, run_protocol

        cfg = ProtocolConfig(
            feature_sizes=(4, 6),
            n_experiments=1,
            runs_per_candidate=1,
            epochs=1,
            n_points=60,
            max_candidates=1,
            threshold=1.01,
            workers=2,
        )
        result = run_protocol("classical", cfg)
        assert len(result.levels) == 2
        if os.path.isdir("/dev/shm"):
            # Segments are repro_<pid>_-prefixed now; only this
            # process's are ours to assert about (parallel test runs or
            # other users may own live repro_ segments).
            ours = f"repro_{os.getpid()}_"
            assert not [
                p for p in os.listdir("/dev/shm") if p.startswith(ours)
            ]


class TestWorkerCrash:
    def test_crash_fails_search_but_leaks_nothing(
        self, easy_split, monkeypatch
    ):
        import repro.runtime.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "_WATCHDOG_INTERVAL_S", 0.3)
        # Retries off *and* the sequential fallback off: CrashingSpec
        # kills whatever process builds it, so an in-process fallback
        # would take pytest down with it.  (Retry/fallback behaviour is
        # covered by tests/runtime/test_fault_tolerance.py with faults
        # that disarm after firing.)
        settings = TrainingSettings(
            epochs=1,
            batch_size=64,
            runs=1,
            max_retries=0,
            fallback_sequential=False,
        )
        pool = PersistentPool(2)
        try:
            with pytest.raises(SearchError, match="died unexpectedly"):
                grid_search(
                    [CrashingSpec(n_features=4, hidden=(2,))],
                    easy_split,
                    threshold=1.01,
                    settings=settings,
                    pool=pool,
                )
            # Pool auto-respawned the dead worker: still usable.
            outcome = grid_search(
                small_space(),
                easy_split,
                threshold=1.01,
                settings=settings,
                max_candidates=1,
                pool=pool,
            )
            assert outcome.candidates_trained == 1
            names = pool.live_segments
        finally:
            pool.close()
        assert not any(_segment_exists(n) for n in names)


class TestResourceTrackerHygiene:
    def test_no_tracker_warnings_end_to_end(self, tmp_path):
        """A pooled search in a fresh interpreter must not trip the
        multiprocessing resource tracker: no 'leaked shared_memory'
        warnings, no KeyError tracebacks from double-unregisters."""
        script = tmp_path / "pooled_search.py"
        script.write_text(textwrap.dedent("""
            def main():
                from repro.core.grid_search import TrainingSettings, grid_search
                from repro.core.search_space import classical_search_space
                from repro.data import make_spiral, stratified_split
                from repro.runtime import PersistentPool

                split = stratified_split(
                    make_spiral(4, n_points=120, noise=0.0, seed=3), seed=3
                )
                space = classical_search_space(
                    4, neuron_options=(2,), max_layers=1
                )
                settings = TrainingSettings(epochs=1, batch_size=64, runs=2)
                with PersistentPool(2) as pool:
                    outcome = grid_search(
                        space, split, threshold=1.01,
                        settings=settings, pool=pool,
                    )
                assert outcome.candidates_trained == len(space)
                print("ok")

            if __name__ == "__main__":
                main()
        """))
        result = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout
        assert "leaked shared_memory" not in result.stderr
        assert "resource_tracker" not in result.stderr
        assert "Traceback" not in result.stderr


class TestCancelHook:
    def test_train_model_cancel_check(self, easy_split):
        from repro.nn.training import train_model
        from repro.hybrid.builders import build_classical_model

        rng = np.random.default_rng(0)
        model = build_classical_model(4, hidden=(2,), rng=rng)
        calls = []

        def cancel():
            calls.append(True)
            return len(calls) >= 2  # let one epoch run, then cancel

        with pytest.raises(TrainingCancelled):
            train_model(
                model,
                easy_split.x_train,
                easy_split.y_train,
                easy_split.x_val,
                easy_split.y_val,
                epochs=50,
                batch_size=64,
                rng=rng,
                cancel_check=cancel,
            )
        assert len(calls) == 2
