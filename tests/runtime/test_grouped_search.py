"""Runtime tests for cross-candidate stacked execution.

Acceptance checks from the issue: bit-identical ``SearchOutcome`` with
candidate stacking (and frozen-row compaction) on vs off, sequential
and pooled; multi-candidate chunks priced and observed per candidate;
stacked-path failures re-attributed through the per-candidate fallback
with the correct candidate coordinates; the shm result path surviving a
worker crash mid-result without hanging or leaking.
"""

import numpy as np
import pytest

from repro.core.grid_search import (
    GROUP_LOOKAHEAD,
    MAX_GROUP_CANDIDATES,
    TrainingSettings,
    grid_search,
    plan_group,
)
from repro.core.search_space import (
    HybridSpec,
    classical_search_space,
    hybrid_search_space,
)
from repro.data import make_spiral, stratified_split
from repro.exceptions import ConfigurationError
from repro.nn.training import History
from repro.runtime import ChunkCostModel, PersistentPool, execute_candidates
from repro.runtime.jobs import RunResult, TrainingJob, execute_job
from repro.runtime.pool import (
    ChunkResult,
    JobChunk,
    RunError,
    ShmResultHandle,
    _run_chunk,
    _unwrap_result,
    make_chunks,
    publish_split,
)


@pytest.fixture(scope="module")
def easy_split():
    ds = make_spiral(4, n_points=120, noise=0.0, turns=0.4, seed=7)
    return stratified_split(ds, seed=7)


def head_varied_space():
    """Four head variants per (qubits, depth) cell: same tape, distinct
    candidates — exactly what cross-candidate stacking exploits."""
    return hybrid_search_space(
        4,
        "sel",
        qubit_options=(3,),
        depth_options=(1, 2),
        head_options=((), (4,), (6,)),
    )


def _assert_same_outcome(a, b):
    assert a.succeeded == b.succeeded
    if a.winner is not None:
        assert a.winner.spec == b.winner.spec
        assert a.winner.train_accuracies == b.winner.train_accuracies
        assert a.winner.val_accuracies == b.winner.val_accuracies
    assert [c.spec for c in a.evaluated] == [c.spec for c in b.evaluated]
    assert [c.train_accuracies for c in a.evaluated] == [
        c.train_accuracies for c in b.evaluated
    ]
    assert [c.val_accuracies for c in a.evaluated] == [
        c.val_accuracies for c in b.evaluated
    ]
    assert [c.epochs_run for c in a.evaluated] == [
        c.epochs_run for c in b.evaluated
    ]


def _settings(stacked, vectorized=True, compact=True, **kw):
    defaults = dict(epochs=6, batch_size=8, runs=2, early_stop_threshold=0.6)
    defaults.update(kw)
    return TrainingSettings(
        **defaults,
        vectorized_runs=vectorized,
        stacked_candidates=stacked,
        compact_frozen=compact,
    )


class BoomSpec(HybridSpec):
    """A hybrid spec whose model build always fails (shares its group
    key with same-structure HybridSpecs, so it lands inside groups)."""

    def build(self, rng=None):
        raise RuntimeError(f"boom: {self.label}")


class TestSearchDifferential:
    """The issue's acceptance check: array_equal-identical SearchOutcome
    with candidate stacking and compaction on vs off."""

    def test_sequential_on_off_identical(self, easy_split):
        kwargs = dict(
            specs=head_varied_space(), split=easy_split, threshold=0.6, seed=3
        )
        off = grid_search(**kwargs, settings=_settings(False), workers=1)
        on = grid_search(**kwargs, settings=_settings(True), workers=1)
        no_compact = grid_search(
            **kwargs, settings=_settings(True, compact=False), workers=1
        )
        scalar = grid_search(
            **kwargs, settings=_settings(False, vectorized=False), workers=1
        )
        _assert_same_outcome(off, on)
        _assert_same_outcome(off, no_compact)
        _assert_same_outcome(off, scalar)

    def test_pooled_matches_sequential_both_modes(self, easy_split):
        kwargs = dict(
            specs=head_varied_space(), split=easy_split, threshold=0.6, seed=3
        )
        seq = grid_search(**kwargs, settings=_settings(True), workers=1)
        with PersistentPool(2) as pool:
            pool_on = grid_search(
                **kwargs, settings=_settings(True), pool=pool
            )
            pool_off = grid_search(
                **kwargs, settings=_settings(False), pool=pool
            )
            assert pool.cost_model.observations > 0
        _assert_same_outcome(pool_on, seq)
        _assert_same_outcome(pool_off, seq)

    def test_single_run_candidates_group(self, easy_split):
        """runs=1 (smoke-profile shape) has no run axis to stack, but
        same-structure candidates still fuse across the group."""
        kwargs = dict(
            specs=head_varied_space(), split=easy_split, threshold=1.01, seed=5
        )
        on = grid_search(
            **kwargs,
            settings=_settings(True, runs=1, early_stop_threshold=None),
            max_candidates=4,
            workers=1,
        )
        off = grid_search(
            **kwargs,
            settings=_settings(False, runs=1, early_stop_threshold=None),
            max_candidates=4,
            workers=1,
        )
        _assert_same_outcome(on, off)

    def test_classical_space_unaffected(self, easy_split):
        """Classical specs have no group key; stacking on is a no-op."""
        specs = classical_search_space(4, neuron_options=(2, 8), max_layers=2)
        kwargs = dict(specs=specs, split=easy_split, threshold=1.01, seed=5)
        on = grid_search(
            **kwargs,
            settings=_settings(True, runs=2, early_stop_threshold=None),
            max_candidates=3,
            workers=1,
        )
        off = grid_search(
            **kwargs,
            settings=_settings(False, runs=2, early_stop_threshold=None),
            max_candidates=3,
            workers=1,
        )
        _assert_same_outcome(on, off)


class TestPlanGroup:
    def test_groups_same_key_within_lookahead(self):
        ranked = head_varied_space()
        group = plan_group(ranked, 0, _settings(True))
        assert group[0] == 0
        assert 1 < len(group) <= MAX_GROUP_CANDIDATES
        key = ranked[0].group_key()
        assert all(ranked[j].group_key() == key for j in group)

    def test_disabled_or_keyless_returns_anchor(self, easy_split):
        ranked = head_varied_space()
        assert plan_group(ranked, 0, _settings(False)) == [0]
        assert plan_group(
            ranked, 0, _settings(True, vectorized=False)
        ) == [0]
        classical = classical_search_space(4, neuron_options=(2,))
        assert plan_group(classical, 0, _settings(True)) == [0]

    def test_skip_excludes_speculated(self):
        ranked = head_varied_space()
        full = plan_group(ranked, 0, _settings(True))
        pruned = plan_group(ranked, 0, _settings(True), skip={full[1]})
        assert full[1] not in pruned

    def test_lookahead_bounded(self):
        ranked = head_varied_space()
        for anchor in range(len(ranked)):
            group = plan_group(ranked, anchor, _settings(True))
            assert all(j - anchor <= GROUP_LOOKAHEAD for j in group)


class TestExecuteCandidates:
    def test_matches_per_candidate_runs(self, easy_split):
        specs = head_varied_space()[:3]
        settings = _settings(True, early_stop_threshold=None, epochs=3)
        group = [(spec, i, range(2)) for i, spec in enumerate(specs)]
        fused = execute_candidates(group, 7, easy_split, settings)
        assert fused is not None
        assert len(fused) == 6
        for rr in fused:
            ref = execute_job(
                TrainingJob(specs[rr.candidate_index], 7, rr.candidate_index, rr.run),
                easy_split,
                settings,
            )
            assert rr.train_accuracy == ref.train_accuracy
            assert rr.val_accuracy == ref.val_accuracy
            assert rr.epochs_run == ref.epochs_run

    def test_single_slice_returns_none(self, easy_split):
        spec = head_varied_space()[0]
        settings = _settings(True)
        assert (
            execute_candidates([(spec, 0, [0])], 7, easy_split, settings)
            is None
        )

    def test_unstackable_group_returns_none(self, easy_split):
        specs = classical_search_space(4, neuron_options=(2, 8), max_layers=1)
        settings = _settings(True)
        group = [(spec, i, range(2)) for i, spec in enumerate(specs[:2])]
        assert execute_candidates(group, 7, easy_split, settings) is None

    def test_build_error_raises(self, easy_split):
        specs = [
            head_varied_space()[0],
            BoomSpec(n_features=4, n_qubits=3, n_layers=1),
        ]
        group = [(spec, i, range(2)) for i, spec in enumerate(specs)]
        with pytest.raises(RuntimeError, match="boom"):
            execute_candidates(group, 7, easy_split, _settings(True))


class TestErrorAttribution:
    """A stacked-path failure must resurface as the exact per-candidate
    error, at that candidate's commit turn, with cheaper candidates
    unaffected."""

    def _specs_with_failure(self):
        base = hybrid_search_space(
            4, "sel", qubit_options=(3,), depth_options=(1,),
            head_options=((), (4,)),
        )
        # FLOPs-ranked order: plain head first, then C[4], then the
        # failing C[6] variant — all three share one group key.
        boom = BoomSpec(
            n_features=4, n_qubits=3, n_layers=1, hidden=(6,)
        )
        return base + [boom]

    def test_sequential_raises_at_failing_candidates_turn(self, easy_split):
        specs = self._specs_with_failure()
        progressed = []
        with pytest.raises(RuntimeError, match=r"boom: SEL\(3,1\)\+C\[6\]"):
            grid_search(
                specs,
                easy_split,
                threshold=1.01,
                settings=_settings(True, early_stop_threshold=None, epochs=1),
                workers=1,
                seed=3,
                progress=lambda c: progressed.append(c.spec.label),
            )
        # both cheaper group members committed before the error surfaced
        assert progressed == ["SEL(3,1)", "SEL(3,1)+C[4]"]

    def test_winner_before_failure_suppresses_error(self, easy_split):
        """If a cheaper group member passes, the speculatively trained
        failing member's error is discarded — as sequential semantics
        require."""
        specs = self._specs_with_failure()
        outcome = grid_search(
            specs,
            easy_split,
            threshold=0.0,  # first candidate passes immediately
            settings=_settings(True, early_stop_threshold=None, epochs=1),
            workers=1,
            seed=3,
        )
        assert outcome.winner is not None
        assert outcome.winner.spec.label == "SEL(3,1)"

    def test_grouped_chunk_reattributes_error(self, easy_split):
        """Worker path: a grouped chunk containing a failing candidate
        falls back per candidate; entries carry the correct candidate
        coordinates and the healthy candidate's results are intact."""
        shm, handle = publish_split(easy_split)
        try:
            good = head_varied_space()[0]
            boom = BoomSpec(n_features=4, n_qubits=3, n_layers=1, hidden=(4,))
            settings = _settings(True, early_stop_threshold=None, epochs=1)
            [chunk_a] = make_chunks(
                good, 0, 7, 2, 2, handle, settings, 0, vectorized=True
            )
            [chunk_b] = make_chunks(
                boom, 1, 7, 2, 2, handle, settings, 0, vectorized=True
            )
            merged = JobChunk(
                jobs=chunk_a.jobs + chunk_b.jobs,
                handle=handle,
                settings=settings,
                generation=0,
                vectorized=True,
            )
            result = _run_chunk(merged)
            assert isinstance(result, ChunkResult)
            assert result.vectorized_fallback
            assert len(result.entries) == 4
            by_candidate = {}
            for entry in result.entries:
                by_candidate.setdefault(entry.candidate_index, []).append(entry)
            assert all(
                isinstance(e, RunResult) for e in by_candidate[0]
            )
            assert all(isinstance(e, RunError) for e in by_candidate[1])
            assert all(
                "boom: SEL(3,1)+C[4]" in str(e.error)
                for e in by_candidate[1]
            )
            ref = execute_job(TrainingJob(good, 7, 0, 0), easy_split, settings)
            assert by_candidate[0][0].train_accuracy == ref.train_accuracy
        finally:
            shm.close()
            shm.unlink()

    def test_grouped_chunk_trains_fused_when_healthy(self, easy_split):
        shm, handle = publish_split(easy_split)
        try:
            specs = head_varied_space()[:2]
            settings = _settings(True, early_stop_threshold=None, epochs=1)
            chunks = [
                make_chunks(
                    spec, i, 7, 2, 2, handle, settings, 0, vectorized=True
                )[0]
                for i, spec in enumerate(specs)
            ]
            merged = JobChunk(
                jobs=chunks[0].jobs + chunks[1].jobs,
                handle=handle,
                settings=settings,
                generation=0,
                vectorized=True,
            )
            result = _run_chunk(merged)
            assert isinstance(result, ChunkResult)
            assert not result.vectorized_fallback
            assert sorted(
                (e.candidate_index, e.run) for e in result.entries
            ) == [(0, 0), (0, 1), (1, 0), (1, 1)]
            ref = execute_job(
                TrainingJob(specs[1], 7, 1, 1), easy_split, settings
            )
            got = next(
                e for e in result.entries
                if (e.candidate_index, e.run) == (1, 1)
            )
            assert got.train_accuracy == ref.train_accuracy
            assert got.val_accuracy == ref.val_accuracy
        finally:
            shm.close()
            shm.unlink()


class TestShmResultCrash:
    """Worker crash mid-result: the parent sees a handle whose segment
    is gone (the shared resource tracker swept it with the dead worker).
    The unwrap path must route the failure to the search's error
    callback — not kill the pool's result-handler thread — and leak
    nothing."""

    class _PoolCounters:
        shm_results_received = 0
        vectorized_fallbacks = 0

    def test_stale_handle_routes_to_error_callback(self):
        received, errors = [], []
        _unwrap_result(
            self._PoolCounters(),
            ShmResultHandle(segment="psm_gone_ccstack", nbytes=128),
            received.append,
            errors.append,
        )
        assert received == []
        assert len(errors) == 1
        assert isinstance(errors[0], FileNotFoundError)
        # nothing to leak: the segment never existed on this side, and
        # attach failed before any mapping was created
        from multiprocessing.shared_memory import SharedMemory

        with pytest.raises(FileNotFoundError):
            SharedMemory(name="psm_gone_ccstack")

    def test_healthy_results_still_pass_through(self):
        received, errors = [], []
        ok = ChunkResult(cancelled=False, entries=(), wall_time_s=0.1)
        _unwrap_result(self._PoolCounters(), ok, received.append, errors.append)
        assert received == [ok]
        assert errors == []

    def test_fallback_counter_still_counted(self):
        pool = self._PoolCounters()
        flagged = ChunkResult(
            cancelled=False, entries=(), wall_time_s=0.1,
            vectorized_fallback=True,
        )
        _unwrap_result(pool, flagged, lambda _: None, lambda _: None)
        assert pool.vectorized_fallbacks == 1


class TestCostModelPersistence:
    def test_round_trip(self, tmp_path):
        model = ChunkCostModel(alpha=0.5)
        model.observe("A", flops=10, wall_time_s=4.0, n_runs=2)
        model.observe("B", flops=100, wall_time_s=1.0, n_runs=1)
        path = tmp_path / "costs" / "chunk_costs.json"
        model.save_json(path)

        fresh = ChunkCostModel()
        assert fresh.load_json(path)
        assert fresh.snapshot() == model.snapshot()
        assert fresh.observations == model.observations
        assert fresh.alpha == model.alpha
        assert fresh.estimate("A", 10) == model.estimate("A", 10)
        # the global seconds-per-FLOP rate survives too (unseen labels)
        assert fresh.estimate("Z", 1000) == model.estimate("Z", 1000)

    def test_missing_or_corrupt_files_are_noops(self, tmp_path):
        model = ChunkCostModel()
        assert not model.load_json(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert not model.load_json(bad)
        bad.write_text('["a list"]')
        assert not model.load_json(bad)
        assert model.snapshot() == {}

    def test_restore_ignores_garbage_entries(self):
        model = ChunkCostModel()
        model.restore(
            {
                "per_label": {"A": 1.5, "B": "nan?", "C": -1.0},
                "rate": "fast",
                "observations": -3,
            }
        )
        assert model.snapshot() == {"A": 1.5}
        assert model.observations == 0
        assert model.estimate("unseen", 100) == 100.0


class TestHeadVariedSpecs:
    def test_group_key_ignores_head_only(self):
        a = HybridSpec(n_features=4, n_qubits=3, n_layers=2, hidden=())
        b = HybridSpec(n_features=4, n_qubits=3, n_layers=2, hidden=(6, 4))
        c = HybridSpec(n_features=4, n_qubits=3, n_layers=3, hidden=(6, 4))
        assert a.group_key() == b.group_key()
        assert a.group_key() != c.group_key()
        assert a.label != b.label  # cost-model labels stay distinct

    def test_head_changes_flops_and_params(self):
        a = HybridSpec(n_features=4, n_qubits=3, n_layers=2)
        b = HybridSpec(n_features=4, n_qubits=3, n_layers=2, hidden=(6,))
        assert b.flops() > a.flops()
        assert b.param_count > a.param_count

    def test_bad_head_rejected(self):
        with pytest.raises(ConfigurationError):
            HybridSpec(n_features=4, n_qubits=3, n_layers=1, hidden=(0,))

    def test_head_round_trips_through_results(self):
        from repro.core.results import spec_from_dict, spec_to_dict

        spec = HybridSpec(n_features=4, n_qubits=3, n_layers=2, hidden=(6, 4))
        assert spec_from_dict(spec_to_dict(spec)) == spec
        # pre-head snapshots (no "hidden" key) load as the empty head
        legacy = spec_to_dict(spec)
        del legacy["hidden"]
        assert spec_from_dict(legacy).hidden == ()
