"""Tests for the parallel search runtime.

The headline guarantee: ``grid_search(..., workers=N)`` returns the same
:class:`SearchOutcome` as the sequential path — same winner, same
evaluated list (order, per-run accuracy/epoch histories), same progress
sequence — for any worker count, because both paths run the same
``(seed, candidate, run)``-keyed job primitive and the scheduler commits
candidates strictly in FLOPs order.
"""

import pickle

import pytest

from repro.core.grid_search import (
    CandidateResult,
    TrainingSettings,
    grid_search,
    rank_by_flops,
)
from repro.core.search_space import ClassicalSpec, classical_search_space
from repro.data import make_spiral, stratified_split
from repro.exceptions import SearchError
from repro.runtime import (
    PersistentPool,
    RunResult,
    TrainingJob,
    execute_job,
    resolve_workers,
)


class ExplodingSpec(ClassicalSpec):
    """A spec whose training always fails (picklable by reference)."""

    def build(self, rng=None):
        raise RuntimeError("exploding candidate was trained")


@pytest.fixture(scope="module")
def easy_split():
    """A split an MLP can fit within a few epochs (same recipe as the
    sequential grid-search tests)."""
    ds = make_spiral(4, n_points=150, noise=0.0, turns=0.4, seed=7)
    return stratified_split(ds, seed=7)


def small_space(n_features=4):
    return classical_search_space(
        n_features, neuron_options=(2, 8), max_layers=2
    )


class TestResolveWorkers:
    def test_default_passthrough(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4

    def test_none_and_zero_mean_all_cores(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)

    def test_negative_rejected(self):
        with pytest.raises(SearchError):
            resolve_workers(-2)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_zero_runs_rejected_in_both_modes(self, easy_split, workers):
        settings = TrainingSettings(epochs=1, runs=0)
        with pytest.raises(SearchError):
            grid_search(
                small_space(),
                easy_split,
                settings=settings,
                workers=workers,
            )


class TestJobPrimitive:
    def test_job_payloads_picklable(self, easy_split):
        job = TrainingJob(small_space()[0], seed=3, candidate_index=0, run=1)
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job
        settings = TrainingSettings(epochs=1, batch_size=64, runs=1)
        result = execute_job(clone, easy_split, settings)
        assert pickle.loads(pickle.dumps(result)) == result

    def test_deterministic_per_job(self, easy_split):
        settings = TrainingSettings(epochs=3, batch_size=32, runs=2)
        job = TrainingJob(small_space()[2], seed=9, candidate_index=2, run=1)
        a = execute_job(job, easy_split, settings)
        b = execute_job(job, easy_split, settings)
        # bit-identical metrics; only the measured wall time may differ
        assert a.train_accuracy == b.train_accuracy
        assert a.val_accuracy == b.val_accuracy
        assert a.epochs_run == b.epochs_run
        assert isinstance(a, RunResult)
        assert a.candidate_index == 2 and a.run == 1


class TestParallelDifferential:
    def test_same_outcome_as_sequential(self, easy_split):
        """The ISSUE's acceptance check: same winning spec, accuracies and
        per-run histories for workers=4 vs workers=1."""
        settings = TrainingSettings(
            epochs=60, batch_size=16, runs=2, early_stop_threshold=0.85
        )
        kwargs = dict(
            specs=small_space(),
            split=easy_split,
            threshold=0.85,
            settings=settings,
            seed=3,
        )
        seq = grid_search(**kwargs, workers=1)
        par = grid_search(**kwargs, workers=4)

        assert seq.succeeded and par.succeeded
        assert par.winner.spec == seq.winner.spec
        assert par.winner.train_accuracies == seq.winner.train_accuracies
        assert par.winner.val_accuracies == seq.winner.val_accuracies
        assert [c.spec for c in par.evaluated] == [
            c.spec for c in seq.evaluated
        ]
        assert [c.train_accuracies for c in par.evaluated] == [
            c.train_accuracies for c in seq.evaluated
        ]
        assert [c.val_accuracies for c in par.evaluated] == [
            c.val_accuracies for c in seq.evaluated
        ]
        assert [c.epochs_run for c in par.evaluated] == [
            c.epochs_run for c in seq.evaluated
        ]

    def test_exhausted_space_matches(self, easy_split):
        """No winner: every candidate is evaluated under both modes."""
        settings = TrainingSettings(epochs=1, batch_size=64, runs=1)
        kwargs = dict(
            specs=small_space(),
            split=easy_split,
            threshold=1.01,  # unreachable
            settings=settings,
            max_candidates=3,
        )
        seq = grid_search(**kwargs, workers=1)
        par = grid_search(**kwargs, workers=3)
        assert not par.succeeded
        assert par.candidates_trained == seq.candidates_trained == 3
        assert [c.spec for c in par.evaluated] == [
            c.spec for c in seq.evaluated
        ]
        assert [c.train_accuracies for c in par.evaluated] == [
            c.train_accuracies for c in seq.evaluated
        ]

    def test_progress_commit_order(self, easy_split):
        """Progress fires once per committed candidate, in FLOPs order,
        regardless of which worker finished first."""
        settings = TrainingSettings(epochs=1, batch_size=64, runs=1)
        seen = []
        grid_search(
            small_space(),
            easy_split,
            settings=settings,
            threshold=1.01,
            max_candidates=4,
            progress=seen.append,
            workers=4,
        )
        assert len(seen) == 4
        assert all(isinstance(c, CandidateResult) for c in seen)
        flops = [c.flops for c in seen]
        assert flops == sorted(flops)


def _assert_same_outcome(par, seq):
    assert par.succeeded == seq.succeeded
    if seq.winner is not None:
        assert par.winner.spec == seq.winner.spec
        assert par.winner.train_accuracies == seq.winner.train_accuracies
        assert par.winner.val_accuracies == seq.winner.val_accuracies
    assert [c.spec for c in par.evaluated] == [c.spec for c in seq.evaluated]
    assert [c.train_accuracies for c in par.evaluated] == [
        c.train_accuracies for c in seq.evaluated
    ]
    assert [c.val_accuracies for c in par.evaluated] == [
        c.val_accuracies for c in seq.evaluated
    ]
    assert [c.epochs_run for c in par.evaluated] == [
        c.epochs_run for c in seq.evaluated
    ]


class TestPersistentPoolDifferential:
    """The persistent-pool acceptance check: two consecutive searches on
    one reused pool (warm workers, shared-memory dataset, FLOPs-aware
    packing, chunked runs) stay bit-identical to workers=1."""

    def test_pool_reuse_two_searches_bit_identical(self, easy_split):
        settings = TrainingSettings(
            epochs=60, batch_size=16, runs=2, early_stop_threshold=0.85
        )
        kwargs = dict(
            specs=small_space(),
            split=easy_split,
            threshold=0.85,
            settings=settings,
        )
        seq_a = grid_search(**kwargs, seed=3, workers=1)
        seq_b = grid_search(**kwargs, seed=5, workers=1)
        with PersistentPool(4) as pool:
            par_a = grid_search(**kwargs, seed=3, pool=pool)
            pids_after_first = pool.worker_pids()
            par_b = grid_search(**kwargs, seed=5, pool=pool)
            # The whole point: the second search reuses the same warm
            # workers instead of spinning up a fresh pool.
            assert pool.worker_pids() == pids_after_first
            assert pool.searches_started == 2
            # ... and the shared split was published exactly once.
            assert len(pool.live_segments) == 1
        _assert_same_outcome(par_a, seq_a)
        _assert_same_outcome(par_b, seq_b)

    def test_pool_exhausted_space_matches(self, easy_split):
        """Chunked submission (runs batched per candidate) commits the
        same evaluated list as the sequential loop."""
        settings = TrainingSettings(epochs=1, batch_size=64, runs=3)
        kwargs = dict(
            specs=small_space(),
            split=easy_split,
            threshold=1.01,  # unreachable
            settings=settings,
            max_candidates=3,
        )
        seq = grid_search(**kwargs, workers=1)
        with PersistentPool(2) as pool:
            par = grid_search(**kwargs, pool=pool)
        assert par.candidates_trained == seq.candidates_trained == 3
        _assert_same_outcome(par, seq)

    def test_pool_progress_commit_order(self, easy_split):
        settings = TrainingSettings(epochs=1, batch_size=64, runs=1)
        seen = []
        with PersistentPool(4) as pool:
            grid_search(
                small_space(),
                easy_split,
                settings=settings,
                threshold=1.01,
                max_candidates=4,
                progress=seen.append,
                pool=pool,
            )
        assert len(seen) == 4
        flops = [c.flops for c in seen]
        assert flops == sorted(flops)

    def test_closed_pool_rejected(self, easy_split):
        settings = TrainingSettings(epochs=1, batch_size=64, runs=1)
        pool = PersistentPool(2)
        pool.close()
        with pytest.raises(SearchError, match="closed"):
            grid_search(
                small_space(),
                easy_split,
                settings=settings,
                threshold=1.01,
                max_candidates=1,
                pool=pool,
            )


class TestCancellation:
    def test_early_pass_discards_speculative_candidates(self, easy_split):
        """With a threshold the cheapest candidate meets, speculative
        training of higher-FLOPs candidates must not leak into the
        outcome: the evaluated list stops at the winner, exactly as in
        the sequential early-stopped search."""
        settings = TrainingSettings(epochs=1, batch_size=64, runs=1)
        space = small_space()
        outcome = grid_search(
            space,
            easy_split,
            threshold=0.0,  # everything passes; cheapest must win
            settings=settings,
            workers=4,
        )
        assert outcome.succeeded
        assert len(outcome.evaluated) == 1
        assert outcome.evaluated[-1] is outcome.winner
        assert outcome.winner.spec == rank_by_flops(space)[0]

    def test_mid_space_winner_prunes_tail(self, easy_split):
        """The committed winner is the lowest-FLOPs passing candidate and
        nothing beyond it is reported, even though workers speculated
        past it."""
        settings = TrainingSettings(
            epochs=60, batch_size=16, runs=1, early_stop_threshold=0.85
        )
        space = small_space()
        outcome = grid_search(
            space,
            easy_split,
            threshold=0.85,
            settings=settings,
            seed=3,
            workers=4,
        )
        assert outcome.succeeded
        assert outcome.evaluated[-1] is outcome.winner
        flops = [c.flops for c in outcome.evaluated]
        assert flops == sorted(flops)
        # every earlier candidate failed; the winner is the first pass
        assert all(not c.passes(0.85) for c in outcome.evaluated[:-1])


class TestErrorSemantics:
    """Worker errors surface exactly where the sequential loop would hit
    them: at their candidate's commit turn — and never if a cheaper
    candidate passes first."""

    def _space_with_exploding_tail(self):
        # strictly more FLOPs than anything in the 2-layer base space
        return small_space() + [ExplodingSpec(n_features=4, hidden=(8, 8, 8))]

    def test_speculative_error_discarded_when_cheaper_candidate_wins(
        self, easy_split
    ):
        settings = TrainingSettings(
            epochs=60, batch_size=16, runs=1, early_stop_threshold=0.85
        )
        kwargs = dict(
            specs=self._space_with_exploding_tail(),
            split=easy_split,
            threshold=0.85,
            settings=settings,
            seed=3,
        )
        seq = grid_search(**kwargs, workers=1)
        par = grid_search(**kwargs, workers=3)  # speculates into the tail
        assert seq.succeeded and par.succeeded
        assert par.winner.spec == seq.winner.spec
        assert [c.train_accuracies for c in par.evaluated] == [
            c.train_accuracies for c in seq.evaluated
        ]

    @pytest.mark.parametrize("workers", [1, 3])
    def test_error_raised_at_commit_turn_in_both_modes(
        self, easy_split, workers
    ):
        settings = TrainingSettings(epochs=1, batch_size=64, runs=1)
        with pytest.raises(RuntimeError, match="exploding"):
            grid_search(
                self._space_with_exploding_tail(),
                easy_split,
                threshold=1.01,  # nothing passes; the error's turn comes
                settings=settings,
                workers=workers,
            )
