"""Fault-tolerance tests for the parallel search supervisor.

The ISSUE's acceptance bar: a pooled search whose worker is ``kill
-9``-ed mid-chunk completes with an outcome array-equal to the
fault-free baseline (chunk retry); chunks past their hard deadline are
cancelled and retried (deadline watchdog); an interrupted journaled
search resumes bit-identically (checkpoint/resume); retry exhaustion
degrades to an in-process sequential finish instead of a dead sweep;
and orphaned shared-memory segments from crashed runs are swept at
pool startup.

All process-death faults here are *real* SIGKILLs delivered by the
deterministic fault-injection harness (:mod:`repro.runtime.faults`):
the worker kills itself at the start of a matching chunk, exercising
the same ``multiprocessing.Pool`` respawn and lost-callback hole a
production OOM kill hits.  ``times`` bounds each plan so retried
chunks run clean — which is what makes the bit-identity assertions
possible.
"""

import os
import subprocess
import sys

import pytest

from repro.core.grid_search import TrainingSettings, grid_search
from repro.core.search_space import classical_search_space
from repro.data import make_spiral, stratified_split
from repro.exceptions import SearchError
from repro.runtime import FaultPlan, PersistentPool, sweep_stale_segments

# A supervision regression's failure mode is a hang (a lost chunk whose
# completion never arrives); bound every test so CI fails fast instead.
# Enforced when pytest-timeout is installed (CI); inert otherwise.
pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def easy_split():
    ds = make_spiral(4, n_points=150, noise=0.0, turns=0.4, seed=7)
    return stratified_split(ds, seed=7)


def small_space(n_features=4):
    return classical_search_space(
        n_features, neuron_options=(2, 8), max_layers=2
    )


def _assert_same_outcome(par, seq):
    assert par.succeeded == seq.succeeded
    if seq.winner is not None:
        assert par.winner.spec == seq.winner.spec
        assert par.winner.train_accuracies == seq.winner.train_accuracies
        assert par.winner.val_accuracies == seq.winner.val_accuracies
    assert [c.spec for c in par.evaluated] == [c.spec for c in seq.evaluated]
    assert [c.train_accuracies for c in par.evaluated] == [
        c.train_accuracies for c in seq.evaluated
    ]
    assert [c.val_accuracies for c in par.evaluated] == [
        c.val_accuracies for c in seq.evaluated
    ]
    assert [c.epochs_run for c in par.evaluated] == [
        c.epochs_run for c in seq.evaluated
    ]


def _settings(**overrides):
    """Fast settings with a snappy watchdog (death detected in ~0.2s
    instead of the production 10s)."""
    base = dict(epochs=3, batch_size=32, runs=2, watchdog_interval_s=0.2)
    base.update(overrides)
    return TrainingSettings(**base)


def _search_kwargs(easy_split, settings):
    # threshold 1.01 is unreachable: every candidate must complete, so
    # the faulted chunk *must* be retried before the search can finish
    # (a reachable threshold could let an early winner mask a lost
    # chunk and make these tests pass vacuously).
    return dict(
        specs=small_space(),
        split=easy_split,
        threshold=1.01,
        settings=settings,
        max_candidates=4,
        seed=5,
    )


class TestKilledWorkerRetry:
    """Tentpole acceptance: kill -9 a worker mid-chunk; the search
    completes and the outcome is bit-identical to the fault-free one."""

    @pytest.mark.parametrize("victim", [0, 1])
    def test_kill_retry_bit_identical(self, easy_split, victim):
        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        with PersistentPool(2) as pool:
            # Warm run first: it both provides the pooled fault-free
            # baseline and leaves the workers spawned, so the faulted
            # search samples its pid baseline from live processes.
            clean = grid_search(**kwargs, pool=pool)
            _assert_same_outcome(clean, seq)

            events = []
            pool.install_fault(FaultPlan(kind="kill", candidate=victim))
            try:
                faulted = grid_search(
                    **kwargs, pool=pool, on_event=events.append
                )
            finally:
                pool.clear_fault()
            _assert_same_outcome(faulted, seq)
            assert pool.chunk_retries >= 1
            kinds = [e.kind for e in events]
            assert "worker-lost" in kinds
            assert "retry" in kinds
            # Events carry the affected candidates and attempt counts.
            lost = next(e for e in events if e.kind == "worker-lost")
            assert victim in lost.candidates
            retry = next(e for e in events if e.kind == "retry")
            assert retry.attempts >= 2
            assert "worker" in str(lost)  # str(event) is the message

            # The pool survives supervision: a later fault-free search
            # on the same workers is still bit-identical.
            again = grid_search(**kwargs, pool=pool)
            _assert_same_outcome(again, seq)


class TestRetryExhaustion:
    def test_exhaustion_falls_back_to_sequential(self, easy_split):
        """A fault that keeps killing (times > retry budget) exhausts
        retries; the sweep then finishes in-process, identically."""
        settings = _settings(max_retries=1)
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        with PersistentPool(2) as pool:
            grid_search(**kwargs, pool=pool)  # warm the workers
            events = []
            pool.install_fault(
                FaultPlan(kind="kill", candidate=1, times=4)
            )
            try:
                faulted = grid_search(
                    **kwargs, pool=pool, on_event=events.append
                )
            finally:
                pool.clear_fault()
            _assert_same_outcome(faulted, seq)
            assert pool.sequential_fallbacks == 1
            kinds = [e.kind for e in events]
            assert "sequential-fallback" in kinds
            fallback = next(
                e for e in events if e.kind == "sequential-fallback"
            )
            assert fallback.attempts == settings.max_retries + 1

    def test_exhaustion_raises_with_attempts_when_fallback_disabled(
        self, easy_split
    ):
        settings = _settings(max_retries=0, fallback_sequential=False)
        kwargs = _search_kwargs(easy_split, settings)
        with PersistentPool(2) as pool:
            grid_search(**kwargs, pool=pool)  # warm the workers
            pool.install_fault(
                FaultPlan(kind="kill", candidate=0, times=3)
            )
            try:
                with pytest.raises(
                    SearchError, match="died unexpectedly"
                ) as excinfo:
                    grid_search(**kwargs, pool=pool)
            finally:
                pool.clear_fault()
            # The error reports how many executions were lost.
            assert excinfo.value.attempts == 1


class TestDeadlineWatchdog:
    def test_hard_timeout_cancels_and_retries(self, easy_split):
        """A chunk delayed past its hard deadline is cancelled via the
        generation mechanism and retried; results stay identical."""
        settings = _settings(chunk_timeout_s=0.8)
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        with PersistentPool(2) as pool:
            clean = grid_search(**kwargs, pool=pool)
            _assert_same_outcome(clean, seq)
            events = []
            pool.install_fault(
                FaultPlan(kind="delay", candidate=1, delay_s=2.5)
            )
            try:
                faulted = grid_search(
                    **kwargs, pool=pool, on_event=events.append
                )
            finally:
                pool.clear_fault()
            _assert_same_outcome(faulted, seq)
            assert pool.chunk_timeouts >= 1
            kinds = [e.kind for e in events]
            assert "chunk-overdue" in kinds  # soft-deadline warning
            assert "chunk-timeout" in kinds
            timeout = next(e for e in events if e.kind == "chunk-timeout")
            assert 1 in timeout.candidates


class TestCorruptResultRetry:
    def test_corrupt_result_segment_retries_single_chunk(self, easy_split):
        """A worker shipping garbage through the shared-memory return
        path fails result inflation in the parent; that chunk (alone)
        is re-executed — no generation bump, no worker loss."""
        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        with PersistentPool(2) as pool:
            events = []
            pool.install_fault(
                FaultPlan(kind="corrupt-result", candidate=1)
            )
            try:
                faulted = grid_search(
                    **kwargs, pool=pool, on_event=events.append
                )
            finally:
                pool.clear_fault()
            _assert_same_outcome(faulted, seq)
            assert pool.chunk_retries >= 1
            kinds = [e.kind for e in events]
            assert "retry" in kinds
            assert "worker-lost" not in kinds  # no process died
            # The retry slept through the shared backoff policy, and
            # the pause is accounted in the stats snapshot.
            assert pool.stats()["retry_backoff_s"] > 0
            retry = next(e for e in events if e.kind == "retry")
            assert "retrying in" in str(retry)


class TestJournalResume:
    def _interrupt_after(self, n, seen):
        """A progress callback that dies after n candidates — the
        driver-crash scenario.  Journal appends happen *before* the
        progress callback, so committed work is already durable."""

        class Interrupted(Exception):
            pass

        def progress(candidate):
            seen.append(candidate)
            if len(seen) >= n:
                raise Interrupted()

        return progress, Interrupted

    @pytest.mark.parametrize("mode", ["sequential", "pooled"])
    def test_interrupted_search_resumes_bit_identically(
        self, easy_split, tmp_path, mode
    ):
        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        journal = tmp_path / "search.jsonl"
        baseline = grid_search(**kwargs, workers=1)

        pool = PersistentPool(2) if mode == "pooled" else None
        run_kwargs = dict(pool=pool) if pool else dict(workers=1)
        try:
            seen = []
            progress, Interrupted = self._interrupt_after(2, seen)
            with pytest.raises(Interrupted):
                grid_search(
                    **kwargs,
                    **run_kwargs,
                    journal=str(journal),
                    progress=progress,
                )
            committed = len(journal.read_text().splitlines())
            assert committed >= 2  # the interrupt point is durable

            replayed = []
            resumed = grid_search(
                **kwargs,
                **run_kwargs,
                journal=str(journal),
                progress=replayed.append,
            )
            _assert_same_outcome(resumed, baseline)
            # The resumed run replays the restored prefix through
            # progress (same callback sequence as an uninterrupted run)
            # and only appends the candidates it actually trained.
            assert len(replayed) == len(baseline.evaluated)
            lines = journal.read_text().splitlines()
            assert len(lines) == len(baseline.evaluated)
        finally:
            if pool is not None:
                pool.close()

    def test_mismatched_key_is_ignored(self, easy_split, tmp_path):
        """A journal written under another configuration must never
        smuggle stale results into a resume; resuming under a new key
        compacts the file down to that key's records."""
        settings = _settings()
        journal = tmp_path / "search.jsonl"
        kwargs = _search_kwargs(easy_split, settings)
        first = grid_search(**kwargs, workers=1, journal=str(journal))
        other_kwargs = dict(kwargs, seed=6)
        fresh = grid_search(**other_kwargs, workers=1)
        # Same journal file, different seed: full re-run, same results.
        resumed = grid_search(
            **other_kwargs, workers=1, journal=str(journal)
        )
        _assert_same_outcome(resumed, fresh)
        # The resume compacted the foreign-key records away: the file
        # now holds exactly the new configuration's commits.
        lines = journal.read_text().splitlines()
        assert len(lines) == len(fresh.evaluated)
        # The original configuration therefore re-runs from scratch —
        # and still lands on identical results.
        again = grid_search(**kwargs, workers=1, journal=str(journal))
        _assert_same_outcome(again, first)

    def test_torn_trailing_line_is_tolerated(self, easy_split, tmp_path):
        """A crash mid-append leaves a torn last line; resume must use
        the intact prefix instead of erroring out, and the resume's
        compaction pass must scrub the torn line from disk."""
        settings = _settings()
        journal = tmp_path / "search.jsonl"
        kwargs = _search_kwargs(easy_split, settings)
        baseline = grid_search(**kwargs, workers=1, journal=str(journal))
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "key": "truncated mid-wri')  # no newline
        resumed = grid_search(**kwargs, workers=1, journal=str(journal))
        _assert_same_outcome(resumed, baseline)
        lines = journal.read_text().splitlines()
        assert len(lines) == len(baseline.evaluated)
        assert all(line.rstrip().endswith("}") for line in lines)


class TestPoolStats:
    def test_stats_snapshot_reflects_supervision(self, easy_split):
        """`PersistentPool.stats()` collects every counter in one dict;
        a faulted search must show up there, and the snapshot must be a
        copy (mutating it cannot touch the live counters)."""
        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        with PersistentPool(2) as pool:
            before = pool.stats()
            assert before["searches_started"] == 0
            assert before["chunk_retries"] == 0
            assert before["memory_degrades"] == 0
            grid_search(**kwargs, pool=pool)  # warm the workers
            pool.install_fault(FaultPlan(kind="kill", candidate=0))
            try:
                grid_search(**kwargs, pool=pool)
            finally:
                pool.clear_fault()
            stats = pool.stats()
            assert stats["workers"] == 2
            assert stats["searches_started"] == 2
            assert stats["chunk_retries"] >= 1
            assert stats["chunk_retries"] == pool.chunk_retries
            assert stats["cost_observations"] == pool.cost_model.observations
            stats["chunk_retries"] = -1
            assert pool.stats()["chunk_retries"] == pool.chunk_retries


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shm not exposed as files"
)
class TestStartupSweeper:
    def _dead_pid(self):
        """A pid guaranteed to be dead: a just-exited child's."""
        proc = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        return int(proc.stdout)

    def test_sweep_reclaims_only_dead_owned_segments(self):
        dead = f"repro_{self._dead_pid()}_ds{'0' * 8}"
        live = f"repro_{os.getpid()}_ds{'1' * 8}"
        unparsable = "repro_notapid_ds"
        paths = {n: os.path.join("/dev/shm", n) for n in (dead, live, unparsable)}
        for path in paths.values():
            with open(path, "wb") as fh:
                fh.write(b"\0" * 16)
        try:
            reclaimed = sweep_stale_segments()
            assert dead in reclaimed
            assert not os.path.exists(paths[dead])
            # A live owner's segment and anything we cannot attribute
            # stay untouched.
            assert os.path.exists(paths[live])
            assert os.path.exists(paths[unparsable])
            assert live not in reclaimed
        finally:
            for name in (live, unparsable):
                if os.path.exists(paths[name]):
                    os.unlink(paths[name])

    def test_pool_startup_sweeps(self):
        name = f"repro_{self._dead_pid()}_ctrl{'2' * 8}"
        path = os.path.join("/dev/shm", name)
        with open(path, "wb") as fh:
            fh.write(b"\0" * 16)
        try:
            with PersistentPool(1) as pool:
                assert name in pool.swept_segments
            assert not os.path.exists(path)
        finally:
            if os.path.exists(path):
                os.unlink(path)
