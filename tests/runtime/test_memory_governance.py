"""Differential tests for memory-governed execution.

The acceptance bar: a search's :class:`SearchOutcome` is bit-identical
to the unbudgeted baseline under *any* ``memory_budget`` — a 1-byte
budget that forces every group apart, or a huge explicit budget that
grows groups past the fixed cap — and under injected out-of-memory
faults, sequential and pooled alike.  Governance and the OOM recovery
ladder shape only the execution: group width, in-flight bytes, and
which backend/granularity a chunk ends up training on.

Sizing decisions surface as ``group-resize`` events and ladder steps as
``memory-degrade`` events, so the suite also asserts the observability
contract: an over-budget group demonstrably splits, a predicted-cheap
same-structure workload demonstrably merges past
``MAX_GROUP_CANDIDATES``, and an injected OOM lands on a degraded path
instead of an error.

Set ``REPRO_CAP_AS`` (bytes) to run the whole module under a capped
address space (``RLIMIT_AS``) — CI uses this to prove the suite holds
when allocations can genuinely fail.
"""

import errno
import os
import pickle

import numpy as np
import pytest

from repro.core.grid_search import (
    MAX_ADAPTIVE_GROUP,
    MAX_GROUP_CANDIDATES,
    TrainingSettings,
    grid_search,
    plan_group,
)
from repro.core.search_space import ClassicalSpec, HybridSpec, classical_search_space
from repro.data import make_spiral, stratified_split
from repro.exceptions import ConfigurationError
from repro.runtime import FaultPlan, PersistentPool
from repro.runtime.memory import (
    MEMORY_BUDGET_ENV_VAR,
    MemoryBudget,
    estimate_candidate_bytes,
    is_memory_error,
    parse_memory_budget,
    resolve_memory_budget,
)
from repro.runtime.pool import (
    RESULT_SHM_THRESHOLD,
    ChunkCostModel,
    ChunkResult,
    _ship_result,
)
from repro.runtime.jobs import RunResult

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(autouse=True, scope="module")
def _capped_address_space():
    """Optionally run the module under a bounded address space.

    Gated on ``REPRO_CAP_AS`` so local runs stay unconstrained; CI sets
    it to prove governance and the recovery ladder behave when the OS
    can actually refuse an allocation.
    """
    cap = os.environ.get("REPRO_CAP_AS")
    if not cap:
        yield
        return
    import resource

    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    resource.setrlimit(resource.RLIMIT_AS, (int(cap), hard))
    try:
        yield
    finally:
        resource.setrlimit(resource.RLIMIT_AS, (soft, hard))


@pytest.fixture(scope="module")
def easy_split():
    ds = make_spiral(4, n_points=150, noise=0.0, turns=0.4, seed=7)
    return stratified_split(ds, seed=7)


def _settings(**overrides):
    base = dict(epochs=3, batch_size=32, runs=2, watchdog_interval_s=0.2)
    base.update(overrides)
    return TrainingSettings(**base)


def _assert_same_outcome(got, expected):
    assert got.succeeded == expected.succeeded
    if expected.winner is not None:
        assert got.winner.spec == expected.winner.spec
        assert got.winner.val_accuracies == expected.winner.val_accuracies
    assert [c.spec for c in got.evaluated] == [
        c.spec for c in expected.evaluated
    ]
    assert [c.train_accuracies for c in got.evaluated] == [
        c.train_accuracies for c in expected.evaluated
    ]
    assert [c.val_accuracies for c in got.evaluated] == [
        c.val_accuracies for c in expected.evaluated
    ]
    assert [c.epochs_run for c in got.evaluated] == [
        c.epochs_run for c in expected.evaluated
    ]


def _search_kwargs(easy_split):
    # Unreachable threshold: every candidate must complete, so a budget
    # or fault that silently dropped work could not pass unnoticed.
    return dict(
        specs=classical_search_space(4, neuron_options=(2, 8), max_layers=2),
        split=easy_split,
        threshold=1.01,
        max_candidates=4,
        seed=5,
    )


def _head_varied_hybrids(n=6):
    """Same tape structure, different classical heads: one group key."""
    heads = [()] + [(w,) for w in range(2, n + 1)]
    return [
        HybridSpec(n_features=4, n_qubits=2, n_layers=1, ansatz="sel", hidden=h)
        for h in heads[:n]
    ]


class TestBudgetParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("123", 123.0),
            ("2K", 2 * 1024.0),
            ("512M", 512 * 1024**2),
            ("2G", 2 * 1024**3),
            ("1T", 1024**4),
            ("2GB", 2 * 1024**3),
            ("off", 0.0),
            ("none", 0.0),
        ],
    )
    def test_units(self, text, expected):
        assert parse_memory_budget(text) == expected

    @pytest.mark.parametrize("text", ["", "lots", "12Q", "G2"])
    def test_invalid_rejected(self, text):
        with pytest.raises(ConfigurationError):
            parse_memory_budget(text)


class TestBudgetResolution:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(MEMORY_BUDGET_ENV_VAR, "1M")
        budget = resolve_memory_budget(123.0)
        assert budget == MemoryBudget(bytes=123, source="settings")
        assert budget.active and budget.explicit

    def test_env_wins_over_auto(self, monkeypatch):
        monkeypatch.setenv(MEMORY_BUDGET_ENV_VAR, "1M")
        budget = resolve_memory_budget(None)
        assert budget == MemoryBudget(bytes=1024**2, source="env")
        assert budget.active and budget.explicit

    def test_auto_default(self, monkeypatch):
        monkeypatch.delenv(MEMORY_BUDGET_ENV_VAR, raising=False)
        budget = resolve_memory_budget(None)
        # Auto budgets govern (split/admit) but never grow groups.
        if budget.active:  # a probe-less platform resolves to "off"
            assert budget.source == "auto"
            assert budget.bytes > 0
            assert not budget.explicit

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv(MEMORY_BUDGET_ENV_VAR, "1M")
        budget = resolve_memory_budget(0.0)
        assert not budget.active

    def test_invalid_env_disables(self, monkeypatch):
        monkeypatch.setenv(MEMORY_BUDGET_ENV_VAR, "banana")
        assert not resolve_memory_budget(None).active


class TestMemoryErrorClassification:
    def test_memoryerror_and_enomem(self):
        assert is_memory_error(MemoryError())
        assert is_memory_error(OSError(errno.ENOMEM, "no mem"))
        assert is_memory_error(OSError(errno.ENOSPC, "shm full"))

    def test_ordinary_errors_are_not(self):
        assert not is_memory_error(ValueError("shape mismatch"))
        assert not is_memory_error(OSError(errno.ENOENT, "missing"))


class TestAnalyticEstimates:
    def test_candidate_bytes_positive_and_monotone(self):
        spec = ClassicalSpec(n_features=4, hidden=(8,))
        small = estimate_candidate_bytes(spec, 8, 2)
        assert small > 0
        assert estimate_candidate_bytes(spec, 16, 2) > small
        assert estimate_candidate_bytes(spec, 8, 4) > small

    def test_hybrid_counts_state_buffers(self):
        classical = ClassicalSpec(n_features=4, hidden=(8,))
        hybrid = HybridSpec(n_features=4, n_qubits=3, n_layers=2)
        assert estimate_candidate_bytes(
            hybrid, 8, 2
        ) > estimate_candidate_bytes(classical, 8, 2)

    def test_engine_peak_bytes(self):
        from repro.quantum import (
            angle_embedding,
            compiled_tape,
            random_sel_weights,
            strongly_entangling_layers,
        )

        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, (4, 3))
        w = random_sel_weights(2, 3, rng)
        tape = angle_embedding(x, 3) + strongly_entangling_layers(w, 3)
        engine = compiled_tape(tape, 3)
        fwd = engine.peak_bytes(8, runs=2, mode="forward")
        adj = engine.peak_bytes(8, runs=2, mode="adjoint")
        assert 0 < fwd < adj
        assert engine.peak_bytes(16, runs=2, mode="forward") > fwd

    def test_stacked_peak_bytes_covers_adam_moments(self):
        from repro.nn.stacked import stack_models

        models = [
            ClassicalSpec(n_features=4, hidden=(8,)).build(
                np.random.default_rng(i)
            )
            for i in range(2)
        ]
        stacked = stack_models(models)
        assert stacked is not None
        param_bytes = sum(p.nbytes for p in stacked.parameters())
        # Parameters + gradients + both Adam moments, at minimum.
        assert stacked.peak_bytes(8) >= 4 * param_bytes


class TestPlanGroupSizing:
    def test_explicit_budget_grows_past_fixed_cap(self):
        ranked = _head_varied_hybrids(MAX_ADAPTIVE_GROUP + 1)
        settings = _settings()
        huge = MemoryBudget(bytes=2**44, source="settings")
        group = plan_group(ranked, 0, settings, budget=huge)
        assert len(group) == MAX_ADAPTIVE_GROUP > MAX_GROUP_CANDIDATES

    def test_auto_budget_never_grows(self):
        ranked = _head_varied_hybrids(6)
        auto = MemoryBudget(bytes=2**44, source="auto")
        group = plan_group(ranked, 0, _settings(), budget=auto)
        assert len(group) <= MAX_GROUP_CANDIDATES

    def test_tiny_budget_shrinks_to_anchor(self):
        ranked = _head_varied_hybrids(6)
        tiny = MemoryBudget(bytes=1, source="settings")
        assert plan_group(ranked, 0, _settings(), budget=tiny) == [0]

    def test_no_budget_keeps_default_cap(self):
        ranked = _head_varied_hybrids(6)
        group = plan_group(ranked, 0, _settings())
        assert 1 < len(group) <= MAX_GROUP_CANDIDATES


class TestSequentialDifferential:
    def test_any_budget_is_bit_identical(self, easy_split):
        kwargs = _search_kwargs(easy_split)
        baseline = grid_search(**kwargs, settings=_settings(), workers=1)
        for budget in (1.0, 2.0**44):
            governed = grid_search(
                **kwargs,
                settings=_settings(memory_budget=budget),
                workers=1,
            )
            _assert_same_outcome(governed, baseline)

    def test_tiny_budget_emits_group_resize(self, easy_split):
        specs = _head_varied_hybrids(5)
        kwargs = dict(
            specs=specs,
            split=easy_split,
            threshold=1.01,
            seed=5,
        )
        baseline = grid_search(**kwargs, settings=_settings(), workers=1)
        events = []
        shrunk = grid_search(
            **kwargs,
            settings=_settings(memory_budget=1.0),
            workers=1,
            on_event=events.append,
        )
        _assert_same_outcome(shrunk, baseline)
        resizes = [e for e in events if e.kind == "group-resize"]
        assert resizes and "shrank" in str(resizes[0])

    def test_huge_budget_merges_past_fixed_cap(self, easy_split):
        specs = _head_varied_hybrids(6)
        kwargs = dict(
            specs=specs,
            split=easy_split,
            threshold=1.01,
            seed=5,
        )
        baseline = grid_search(**kwargs, settings=_settings(), workers=1)
        events = []
        grown = grid_search(
            **kwargs,
            settings=_settings(memory_budget=2.0**44),
            workers=1,
            on_event=events.append,
        )
        _assert_same_outcome(grown, baseline)
        resizes = [e for e in events if e.kind == "group-resize"]
        assert resizes and "grew" in str(resizes[0])
        # The grown group covers more members than the fixed cap allows.
        assert any(
            len(e.candidates) > MAX_GROUP_CANDIDATES for e in resizes
        )

    def test_sequential_oom_walks_ladder(self, easy_split, monkeypatch):
        """A fused-sweep MemoryError splits the group and retries; the
        outcome matches the fault-free baseline and the degradation is
        visible as memory-degrade events."""
        import importlib

        gs = importlib.import_module("repro.core.grid_search")
        # Classical specs never group, so use the head-varied hybrid
        # space — its candidates train as one fused sweep.
        kwargs = dict(
            specs=_head_varied_hybrids(4),
            split=easy_split,
            threshold=1.01,
            seed=5,
        )
        baseline = grid_search(**kwargs, settings=_settings(), workers=1)

        real = gs.execute_candidates
        fired = []

        def oom_once(group, *args, **kw):
            if not fired and len(group) > 1:
                fired.append(True)
                raise MemoryError("injected fused-sweep OOM")
            return real(group, *args, **kw)

        monkeypatch.setattr(gs, "execute_candidates", oom_once)
        events = []
        degraded = grid_search(
            **kwargs, settings=_settings(), workers=1,
            on_event=events.append,
        )
        assert fired  # the fault actually hit a fused sweep
        _assert_same_outcome(degraded, baseline)
        kinds = [e.kind for e in events]
        assert "memory-degrade" in kinds


class TestPooledDifferential:
    def test_tiny_budget_pooled_bit_identical(self, easy_split):
        kwargs = _search_kwargs(easy_split)
        baseline = grid_search(**kwargs, settings=_settings(), workers=1)
        with PersistentPool(2) as pool:
            governed = grid_search(
                **kwargs,
                settings=_settings(memory_budget=1.0),
                pool=pool,
            )
            _assert_same_outcome(governed, baseline)
            # Admission control throttled concurrency, nothing degraded.
            assert pool.memory_degrades == 0

    def test_injected_oom_pooled_bit_identical(self, easy_split):
        """The ISSUE's ladder acceptance: an ``oom`` fault mid-chunk
        degrades gracefully — same outcome, counted and surfaced."""
        kwargs = _search_kwargs(easy_split)
        baseline = grid_search(**kwargs, settings=_settings(), workers=1)
        with PersistentPool(2) as pool:
            events = []
            pool.install_fault(FaultPlan(kind="oom", candidate=1))
            try:
                faulted = grid_search(
                    **kwargs,
                    settings=_settings(),
                    pool=pool,
                    on_event=events.append,
                )
            finally:
                pool.clear_fault()
            _assert_same_outcome(faulted, baseline)
            assert pool.memory_degrades >= 1
            assert pool.stats()["memory_degrades"] == pool.memory_degrades
            degrade = next(
                e for e in events if e.kind == "memory-degrade"
            )
            assert 1 in degrade.candidates
            # No crash/retry machinery involved: OOM is a resource
            # failure, not an infrastructure one.
            assert pool.chunk_retries == 0
            assert "worker-lost" not in [e.kind for e in events]

    def test_oom_on_scalar_chunk_absorbed(self, easy_split):
        """A chunk with no fused sweep to degrade absorbs the fault at
        the ladder's floor (the scalar path) instead of erroring."""
        kwargs = _search_kwargs(easy_split)
        settings = _settings(vectorized_runs=False)
        baseline = grid_search(**kwargs, settings=settings, workers=1)
        with PersistentPool(2) as pool:
            pool.install_fault(FaultPlan(kind="oom", candidate=0))
            try:
                faulted = grid_search(**kwargs, settings=settings, pool=pool)
            finally:
                pool.clear_fault()
            _assert_same_outcome(faulted, baseline)
            assert pool.memory_degrades >= 1


class TestCostModelBytes:
    def test_bytes_ewma_round_trip(self, tmp_path):
        model = ChunkCostModel()
        assert model.bytes_estimate("a") is None
        model.observe_bytes("a", 1000, 2)
        assert model.bytes_estimate("a") == pytest.approx(500.0)
        assert model.bytes_estimate("a", 4) == pytest.approx(2000.0)
        state = model.state()
        assert state["schema"] == 2
        path = tmp_path / "costs.json"
        model.save_json(path)
        fresh = ChunkCostModel()
        assert fresh.load_json(path)
        assert fresh.bytes_estimate("a") == pytest.approx(500.0)

    def test_zero_readings_are_skipped(self):
        model = ChunkCostModel()
        model.observe_bytes("a", 0, 2)  # ru_maxrss delta of 0 = unseen
        assert model.bytes_estimate("a") is None

    def test_v1_state_still_restores(self):
        model = ChunkCostModel()
        model.restore(
            {"alpha": 0.3, "per_label": {"a": 1.5}, "rate": 1e-9,
             "observations": 3}
        )
        assert model.estimate("a", 10, 1) == pytest.approx(1.5)
        assert model.bytes_estimate("a") is None


class TestShipResultFallback:
    """The ``_ship_result`` ENOSPC leak fix: a failed shared-memory
    shipment unlinks its half-written segment and falls back to the
    pool's pickle pipe instead of losing the trained chunk."""

    def _big_result(self):
        history = {"loss": list(float(i) for i in range(30000))}
        entry = RunResult(0, 0, 0.5, 0.5, 1, 0.1, history=history)
        result = ChunkResult(cancelled=False, entries=(entry,))
        assert len(pickle.dumps(result)) >= RESULT_SHM_THRESHOLD
        return result

    def test_create_failure_falls_back_to_pipe(self, monkeypatch):
        import repro.runtime.pool as pool_mod

        def no_space(prefix, nbytes):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(pool_mod, "_create_named_segment", no_space)
        result = self._big_result()
        assert _ship_result(result) is result

    def test_midwrite_failure_unlinks_segment(self, monkeypatch):
        import repro.runtime.pool as pool_mod

        calls = []

        class TornBuf:
            def __setitem__(self, key, value):
                raise OSError(errno.ENOSPC, "No space left on device")

        class FakeShm:
            name = "repro_fake_res"
            buf = TornBuf()

            def close(self):
                calls.append("close")

            def unlink(self):
                calls.append("unlink")

        monkeypatch.setattr(
            pool_mod, "_create_named_segment", lambda p, n: FakeShm()
        )
        result = self._big_result()
        assert _ship_result(result) is result
        assert "unlink" in calls  # the segment never leaks

    def test_small_results_never_touch_shm(self, monkeypatch):
        import repro.runtime.pool as pool_mod

        def boom(prefix, nbytes):  # pragma: no cover - must not run
            raise AssertionError("small result hit shared memory")

        monkeypatch.setattr(pool_mod, "_create_named_segment", boom)
        small = ChunkResult(cancelled=False, entries=())
        assert _ship_result(small) is small


class TestConfigPlumbing:
    def test_protocol_config_threads_budget(self):
        from repro.core.experiment import ProtocolConfig

        cfg = ProtocolConfig(memory_budget=123.0)
        assert cfg.training_settings().memory_budget == 123.0
        assert ProtocolConfig().training_settings().memory_budget is None

    def test_cli_flag_parses_and_validates(self):
        from repro.cli import build_parser, validate_args

        parser = build_parser()
        args = parser.parse_args(["fig8", "--memory-budget", "2G"])
        validate_args(parser, args)
        assert parse_memory_budget(args.memory_budget) == 2 * 1024**3
        bad = parser.parse_args(["fig8", "--memory-budget", "banana"])
        with pytest.raises(SystemExit):
            validate_args(parser, bad)

    def test_budget_not_in_cache_key(self, micro_profile, tmp_path):
        """A budget selects execution mechanics only, so budgeted and
        unbudgeted runs must share one results cache entry."""
        from repro.experiments.runner import run_family_cached

        run_family_cached(
            "classical", micro_profile, cache_dir=tmp_path, threshold=0.4
        )
        cached = sorted(p.name for p in tmp_path.iterdir())
        run_family_cached(
            "classical",
            micro_profile,
            cache_dir=tmp_path,
            threshold=0.4,
            memory_budget=1.0,
        )
        assert sorted(p.name for p in tmp_path.iterdir()) == cached
