"""Tests for the TCP cluster transport (repro.runtime.cluster_tcp).

The acceptance bar from the ISSUE: a TCP-sharded search returns a
``SearchOutcome`` bit-identical to the sequential baseline for any
agent count — including under injected connection drops, agent SIGKILL,
partitions with duplicate re-delivery, and mid-frame stalls — duplicate
results resolve first-commit-wins, and losing every agent degrades to
an in-process sequential finish.

In-process tests run agents on daemon threads (an agent is pure
function + heartbeat thread, so thread agents exercise the whole
hello/claim/result protocol over real loopback sockets).  Agent-death
tests use real subprocess agents killed by the ``host-kill`` fault — a
genuine SIGKILL, connection and all.
"""

import os
import random
import socket
import subprocess
import sys
import threading

import pytest

from repro.core.grid_search import TrainingSettings, grid_search
from repro.core.search_space import classical_search_space
from repro.data import make_spiral, stratified_split
from repro.runtime import faults
from repro.runtime.cluster import SpoolResult
from repro.runtime.cluster_tcp import (
    TcpConfig,
    TcpCoordinator,
    run_tcp_agent,
)
from repro.runtime.faults import FaultPlan

# A transport regression's failure mode is a hang (a chunk nobody
# serves, a lease nobody expires); bound every test so CI fails fast.
pytestmark = pytest.mark.timeout(180)


@pytest.fixture(scope="module")
def easy_split():
    ds = make_spiral(4, n_points=150, noise=0.0, turns=0.4, seed=7)
    return stratified_split(ds, seed=7)


def small_space(n_features=4):
    return classical_search_space(
        n_features, neuron_options=(2, 8), max_layers=2
    )


def _settings(**overrides):
    base = dict(epochs=3, batch_size=32, runs=2)
    base.update(overrides)
    return TrainingSettings(**base)


def _search_kwargs(easy_split, settings):
    # threshold 1.01 is unreachable: every candidate must complete, so
    # a lost chunk *must* be recovered before the search can finish.
    return dict(
        specs=small_space(),
        split=easy_split,
        threshold=1.01,
        settings=settings,
        max_candidates=4,
        seed=5,
    )


def _assert_same_outcome(par, seq):
    assert par.succeeded == seq.succeeded
    if seq.winner is not None:
        assert par.winner.spec == seq.winner.spec
        assert par.winner.train_accuracies == seq.winner.train_accuracies
        assert par.winner.val_accuracies == seq.winner.val_accuracies
    assert [c.spec for c in par.evaluated] == [c.spec for c in seq.evaluated]
    assert [c.train_accuracies for c in par.evaluated] == [
        c.train_accuracies for c in seq.evaluated
    ]
    assert [c.val_accuracies for c in par.evaluated] == [
        c.val_accuracies for c in seq.evaluated
    ]
    assert [c.epochs_run for c in par.evaluated] == [
        c.epochs_run for c in seq.evaluated
    ]


def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _fast_tcp(port=None, **overrides):
    """A TcpConfig with test-speed polling and timeouts."""
    base = dict(
        address=f"127.0.0.1:{port if port is not None else _free_port()}",
        lease_timeout_s=2.0,
        poll_interval_s=0.05,
        agent_grace_s=30.0,
        frame_timeout_s=5.0,
    )
    base.update(overrides)
    return TcpConfig(**base)


def _thread_agent(cfg, stop, stats_out=None, **kwargs):
    """Start an in-process agent on a daemon thread.

    Agents dial with backoff, so it is safe to start them before the
    coordinator binds.  ``stats_out`` (a list) receives the final
    :class:`~repro.runtime.cluster.AgentStats`.
    """
    kwargs.setdefault("poll_interval_s", 0.05)
    kwargs.setdefault("heartbeat_s", 0.2)
    kwargs.setdefault("rng", random.Random(0))
    kwargs["stop"] = stop

    def serve():
        stats = run_tcp_agent(cfg.address, **kwargs)
        if stats_out is not None:
            stats_out.append(stats)

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return thread


def _join_agents(stop, threads, timeout=30):
    stop.set()
    for thread in threads:
        thread.join(timeout=timeout)
        assert not thread.is_alive()


_AGENT_SCRIPT = (
    "import sys; from repro.runtime.cluster_tcp import run_tcp_agent; "
    "run_tcp_agent(sys.argv[1], poll_interval_s=0.05, heartbeat_s=0.2, "
    "reconnect_timeout_s=10.0, "
    "fault_dir=(sys.argv[2] if len(sys.argv) > 2 else None))"
)


def _subprocess_agent(cfg, fault_dir=None):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    argv = [sys.executable, "-c", _AGENT_SCRIPT, cfg.address]
    if fault_dir is not None:
        argv.append(str(fault_dir))
    return subprocess.Popen(argv, env=env)


class TestBitIdentity:
    """The core invariant: TCP execution never changes results."""

    @pytest.mark.parametrize("n_agents", [1, 2])
    def test_tcp_search_matches_sequential(
        self, easy_split, n_agents
    ):
        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        cfg = _fast_tcp()
        stop = threading.Event()
        agents = [_thread_agent(cfg, stop) for _ in range(n_agents)]
        try:
            par = grid_search(**kwargs, connect=cfg)
        finally:
            _join_agents(stop, agents)
        _assert_same_outcome(par, seq)

    def test_no_agents_falls_back_to_sequential(self, easy_split):
        """A port nobody dials must still complete, identically."""
        from repro.core.grid_search import rank_by_flops
        from repro.flops.conventions import get_convention

        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        conv = get_convention("paper")
        ranked = rank_by_flops(small_space(), conv)[:4]
        events = []
        coordinator = TcpCoordinator(
            ranked,
            easy_split,
            1.01,
            settings,
            conv,
            5,
            _fast_tcp(port=0, agent_grace_s=0.5),
            on_event=events.append,
        )
        outcome = coordinator.run()
        _assert_same_outcome(outcome, seq)
        kinds = [e.kind for e in events]
        assert "no-agents" in kinds
        assert "sequential-fallback" in kinds
        assert coordinator.stats()["sequential_fallbacks"] == 1


class TestAgentDeath:
    def test_sigkill_agent_recovers_bit_identically(
        self, easy_split, tmp_path
    ):
        """An agent process SIGKILLed mid-lease (real host death: the
        kernel closes its socket with it) is detected by the broken
        connection, its leases requeued, and the chunk re-executed —
        outcome identical to the baseline."""
        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        cfg = _fast_tcp()
        fault_root = tmp_path / "faults"
        fault_root.mkdir()
        faults.arm_spool_fault(
            fault_root, FaultPlan(kind="host-kill", candidate=1)
        )
        procs = [_subprocess_agent(cfg, fault_root) for _ in range(2)]
        events = []
        try:
            par = grid_search(**kwargs, connect=cfg, on_event=events.append)
        finally:
            for proc in procs:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
            faults.clear_spool_fault(fault_root)
        _assert_same_outcome(par, seq)
        # Exactly one agent died: SIGKILL shows as a negative return code.
        assert sorted(p.returncode for p in procs) == [-9, 0]
        kinds = [e.kind for e in events]
        assert "conn-lost" in kinds
        assert "retry" in kinds


class TestConnDrop:
    def test_mid_frame_drop_requeues_and_reconnects(
        self, easy_split, tmp_path
    ):
        """An agent whose connection dies halfway through a result
        frame: the coordinator sees a torn read, requeues the chunk,
        and the agent redials with backoff and re-executes it."""
        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        cfg = _fast_tcp()
        fault_root = tmp_path / "faults"
        fault_root.mkdir()
        faults.arm_spool_fault(
            fault_root, FaultPlan(kind="conn-drop", candidate=1)
        )
        stop = threading.Event()
        stats_out = []
        agents = [
            _thread_agent(cfg, stop, stats_out, fault_dir=fault_root)
        ]
        events = []
        try:
            par = grid_search(**kwargs, connect=cfg, on_event=events.append)
        finally:
            _join_agents(stop, agents)
            faults.clear_spool_fault(fault_root)
        _assert_same_outcome(par, seq)
        kinds = [e.kind for e in events]
        assert "conn-lost" in kinds
        assert "retry" in kinds
        assert stats_out[0].reconnects >= 1
        assert stats_out[0].faults_fired == ["conn-drop"]


class TestPartition:
    def test_partition_expires_lease_and_redelivery_is_harmless(
        self, easy_split, tmp_path
    ):
        """A partitioned agent (heartbeats suspended past the lease
        timeout, socket still open) loses its lease; the chunk re-runs
        elsewhere; the stale agent rejoins and still delivers its
        result.  The search must not double-commit — and must not
        change results."""
        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        cfg = _fast_tcp(lease_timeout_s=1.0)
        fault_root = tmp_path / "faults"
        fault_root.mkdir()
        faults.arm_spool_fault(
            fault_root,
            FaultPlan(kind="partition", candidate=1, delay_s=3.0),
        )
        stop = threading.Event()
        agents = [
            _thread_agent(cfg, stop, fault_dir=fault_root)
            for _ in range(2)
        ]
        events = []
        try:
            par = grid_search(**kwargs, connect=cfg, on_event=events.append)
        finally:
            _join_agents(stop, agents)
            faults.clear_spool_fault(fault_root)
        _assert_same_outcome(par, seq)
        kinds = [e.kind for e in events]
        assert "lease-expired" in kinds
        assert "retry" in kinds


class TestSlowFrame:
    def test_mid_frame_stall_is_cut_and_retried(self, easy_split, tmp_path):
        """A result frame that starts arriving and then stalls past the
        frame timeout (heartbeat wedged with it): the coordinator kills
        the connection — distinguishing a stuck frame from an agent
        that is merely training — requeues the chunk, and the agent
        redials and re-executes."""
        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        cfg = _fast_tcp(frame_timeout_s=1.0, lease_timeout_s=2.0)
        fault_root = tmp_path / "faults"
        fault_root.mkdir()
        faults.arm_spool_fault(
            fault_root,
            FaultPlan(kind="slow-frame", candidate=1, delay_s=4.0),
        )
        stop = threading.Event()
        stats_out = []
        agents = [
            _thread_agent(
                cfg, stop, stats_out, fault_dir=fault_root,
                frame_timeout_s=1.0,
            )
        ]
        events = []
        try:
            par = grid_search(**kwargs, connect=cfg, on_event=events.append)
        finally:
            _join_agents(stop, agents)
            faults.clear_spool_fault(fault_root)
        _assert_same_outcome(par, seq)
        kinds = [e.kind for e in events]
        assert "conn-lost" in kinds or "lease-expired" in kinds
        assert "retry" in kinds
        assert stats_out[0].reconnects >= 1


class TestDuplicateResults:
    def test_first_commit_wins(self, easy_split):
        """Two copies of one result (a stale agent's late delivery):
        the first ingested copy commits, the second is counted and
        dropped — deterministically, by construction."""
        from repro.core.grid_search import rank_by_flops
        from repro.flops.conventions import get_convention

        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        conv = get_convention("paper")
        ranked = rank_by_flops(small_space(), conv)[:4]
        coordinator = TcpCoordinator(
            ranked, easy_split, 1.01, settings, conv, 5, _fast_tcp(port=0)
        )
        coordinator.prepare()  # accepting; the drain loop is not running
        try:
            coordinator._top_up(2)  # window 4: every candidate enqueued
            # Serve every chunk inline over a real connection, then
            # forge a duplicate of one queued result under a different
            # agent id before the coordinator ever drains.
            stats = run_tcp_agent(
                coordinator.address,
                poll_interval_s=0.05,
                max_chunks=len(ranked),
            )
            assert stats.chunks_done == len(ranked)
            victim = coordinator._results.get(timeout=5)
            coordinator._results.put(victim)
            coordinator._results.put(
                SpoolResult(
                    chunk_id=victim.chunk_id,
                    attempt=victim.attempt,
                    agent="repro_forged_1_zzzzzz",
                    entries=victim.entries,
                    wall_time_s=victim.wall_time_s,
                )
            )
            outcome = coordinator._loop()
        finally:
            coordinator._cleanup()
        _assert_same_outcome(outcome, seq)
        assert coordinator.stats()["duplicate_results"] == 1


class TestReconnectBackoff:
    def test_agent_outlives_coordinator_and_serves_the_next(
        self, easy_split
    ):
        """An agent that loses its coordinator redials with backoff and
        serves the next search bound on the same port — both searches
        bit-identical to the baseline."""
        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        cfg = _fast_tcp()
        stop = threading.Event()
        stats_out = []
        agents = [_thread_agent(cfg, stop, stats_out)]
        try:
            first = grid_search(**kwargs, connect=cfg)
            # The first coordinator is gone; the agent is now redialing
            # a dead port with decorrelated-jitter backoff.
            second = grid_search(**kwargs, connect=cfg)
        finally:
            _join_agents(stop, agents)
        _assert_same_outcome(first, seq)
        _assert_same_outcome(second, seq)
        assert stats_out[0].reconnects >= 1
        assert stats_out[0].chunks_done >= 2 * len(seq.evaluated)


class TestCostModel:
    def test_tcp_coordinator_learns_and_persists_chunk_costs(
        self, easy_split, tmp_path
    ):
        """Every delivered ``SpoolResult.wall_time_s`` feeds the
        coordinator's cost model, and ``cost_cache`` persists it."""
        from repro.core.grid_search import rank_by_flops
        from repro.flops.conventions import get_convention
        from repro.runtime.pool import ChunkCostModel

        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        cache = tmp_path / "chunk_costs.json"
        conv = get_convention("paper")
        ranked = rank_by_flops(small_space(), conv)[:4]
        coordinator = TcpCoordinator(
            ranked,
            easy_split,
            1.01,
            settings,
            conv,
            5,
            _fast_tcp(port=0, cost_cache=str(cache)),
        )
        coordinator.prepare()
        stop = threading.Event()
        agents = [
            _thread_agent(
                TcpConfig(address=coordinator.address), stop
            )
        ]
        try:
            outcome = coordinator._loop()
        finally:
            coordinator._cleanup()
            coordinator._save_cost_model()
            _join_agents(stop, agents)
        _assert_same_outcome(outcome, seq)
        assert (
            coordinator.stats()["cost_observations"] == len(seq.evaluated)
        )
        # The cache round-trips: a fresh model warm-starts from it.
        warm = ChunkCostModel()
        assert warm.load_json(cache)
        assert warm.observations == len(seq.evaluated)


class TestCliTcpSmoke:
    """The CI smoke: a real coordinator and two real agent processes
    talking only through a loopback socket, vs the sequential baseline."""

    def test_cli_agents_serve_coordinator(self, easy_split):
        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        # Default lease timeout: CLI agents beat at the production 5s
        # interval, so a test-speed timeout would expire live leases.
        cfg = TcpConfig(
            address=f"127.0.0.1:{_free_port()}", poll_interval_s=0.1
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "cluster-agent",
                    "--connect",
                    cfg.address,
                    "--idle-timeout",
                    "5",
                    "--quiet",
                ],
                env=env,
            )
            for _ in range(2)
        ]
        try:
            par = grid_search(**kwargs, connect=cfg)
        finally:
            for proc in procs:
                try:
                    assert proc.wait(timeout=30) == 0
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
                    raise
        _assert_same_outcome(par, seq)
