"""Tests for the cross-host spool transport (repro.runtime.cluster).

The acceptance bar from the ISSUE: a spool-sharded search returns a
``SearchOutcome`` bit-identical to the sequential baseline for any
agent count — including under injected host death, stolen leases, and
torn files — duplicate results resolve first-commit-wins, losing every
agent degrades to an in-process sequential finish, and dead-owner
spool garbage is swept at coordinator startup.

In-process tests run agents on daemon threads (an agent is pure
function + heartbeat thread, so thread agents exercise the whole
claim/train/result protocol).  Host-death tests use real subprocess
agents killed by the ``host-kill`` spool fault — a genuine SIGKILL,
heartbeat and all.
"""

import os
import pickle
import subprocess
import sys
import threading
import time

import pytest

from repro.core.grid_search import TrainingSettings, grid_search
from repro.core.search_space import classical_search_space
from repro.data import make_spiral, stratified_split
from repro.runtime import cluster, faults
from repro.runtime.cluster import (
    SpoolConfig,
    SpoolCoordinator,
    run_agent,
    stop_agents,
    sweep_stale_leases,
)
from repro.runtime.faults import FaultPlan

# A transport regression's failure mode is a hang (a chunk nobody
# serves, a lease nobody expires); bound every test so CI fails fast.
pytestmark = pytest.mark.timeout(180)


@pytest.fixture(scope="module")
def easy_split():
    ds = make_spiral(4, n_points=150, noise=0.0, turns=0.4, seed=7)
    return stratified_split(ds, seed=7)


def small_space(n_features=4):
    return classical_search_space(
        n_features, neuron_options=(2, 8), max_layers=2
    )


def _settings(**overrides):
    base = dict(epochs=3, batch_size=32, runs=2)
    base.update(overrides)
    return TrainingSettings(**base)


def _search_kwargs(easy_split, settings):
    # threshold 1.01 is unreachable: every candidate must complete, so
    # a lost chunk *must* be recovered before the search can finish.
    return dict(
        specs=small_space(),
        split=easy_split,
        threshold=1.01,
        settings=settings,
        max_candidates=4,
        seed=5,
    )


def _assert_same_outcome(par, seq):
    assert par.succeeded == seq.succeeded
    if seq.winner is not None:
        assert par.winner.spec == seq.winner.spec
        assert par.winner.train_accuracies == seq.winner.train_accuracies
        assert par.winner.val_accuracies == seq.winner.val_accuracies
    assert [c.spec for c in par.evaluated] == [c.spec for c in seq.evaluated]
    assert [c.train_accuracies for c in par.evaluated] == [
        c.train_accuracies for c in seq.evaluated
    ]
    assert [c.val_accuracies for c in par.evaluated] == [
        c.val_accuracies for c in seq.evaluated
    ]
    assert [c.epochs_run for c in par.evaluated] == [
        c.epochs_run for c in seq.evaluated
    ]


def _fast_spool(tmp_path, **overrides):
    """A SpoolConfig with test-speed polling and timeouts."""
    base = dict(
        path=str(tmp_path / "spool"),
        lease_timeout_s=2.0,
        poll_interval_s=0.05,
        agent_grace_s=30.0,
    )
    base.update(overrides)
    return SpoolConfig(**base)


def _thread_agent(spool, **kwargs):
    """Start an in-process agent on a daemon thread."""
    kwargs.setdefault("poll_interval_s", 0.05)
    kwargs.setdefault("heartbeat_s", 0.2)
    thread = threading.Thread(
        target=run_agent, args=(str(spool.path),), kwargs=kwargs, daemon=True
    )
    thread.start()
    return thread


def _join_agents(spool, threads, timeout=30):
    stop_agents(spool.path)
    for thread in threads:
        thread.join(timeout=timeout)
        assert not thread.is_alive()


_AGENT_SCRIPT = (
    "import sys; from repro.runtime.cluster import run_agent; "
    "run_agent(sys.argv[1], poll_interval_s=0.05, heartbeat_s=0.2)"
)


def _subprocess_agent(spool):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.Popen(
        [sys.executable, "-c", _AGENT_SCRIPT, str(spool.path)], env=env
    )


class TestBitIdentity:
    """The core invariant: spool execution never changes results."""

    @pytest.mark.parametrize("n_agents", [1, 2])
    def test_spool_search_matches_sequential(
        self, easy_split, tmp_path, n_agents
    ):
        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        spool = _fast_spool(tmp_path)
        agents = [_thread_agent(spool) for _ in range(n_agents)]
        try:
            par = grid_search(**kwargs, spool=spool)
        finally:
            _join_agents(spool, agents)
        _assert_same_outcome(par, seq)

    def test_no_agents_falls_back_to_sequential(self, easy_split, tmp_path):
        """A spool nobody serves must still complete, identically."""
        from repro.core.grid_search import rank_by_flops
        from repro.flops.conventions import get_convention

        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        conv = get_convention("paper")
        ranked = rank_by_flops(small_space(), conv)[:4]
        events = []
        coordinator = SpoolCoordinator(
            ranked,
            easy_split,
            1.01,
            settings,
            conv,
            5,
            _fast_spool(tmp_path, agent_grace_s=0.5),
            on_event=events.append,
        )
        outcome = coordinator.run()
        _assert_same_outcome(outcome, seq)
        kinds = [e.kind for e in events]
        assert "no-agents" in kinds
        assert "sequential-fallback" in kinds
        assert coordinator.stats()["sequential_fallbacks"] == 1


class TestHostDeath:
    def test_host_kill_recovers_bit_identically(self, easy_split, tmp_path):
        """An agent process SIGKILLed mid-lease (real host death: the
        heartbeat dies with it) is detected, its lease reclaimed, and
        the chunk re-executed — outcome identical to the baseline."""
        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        spool = _fast_spool(tmp_path)
        os.makedirs(spool.path, exist_ok=True)
        faults.arm_spool_fault(
            spool.path, FaultPlan(kind="host-kill", candidate=1)
        )
        procs = [_subprocess_agent(spool) for _ in range(2)]
        events = []
        try:
            par = grid_search(**kwargs, spool=spool, on_event=events.append)
        finally:
            stop_agents(spool.path)
            for proc in procs:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
            faults.clear_spool_fault(spool.path)
        _assert_same_outcome(par, seq)
        # Exactly one agent died: SIGKILL shows as a negative return code.
        assert sorted(p.returncode for p in procs) == [-9, 0]
        kinds = [e.kind for e in events]
        assert "lease-expired" in kinds
        assert "retry" in kinds

    def test_lease_steal_rejoin_delivers_harmless_duplicate(
        self, easy_split, tmp_path
    ):
        """A partitioned agent (heartbeats suspended past the lease
        timeout) loses its lease; the chunk re-runs elsewhere; the
        stale agent rejoins and still writes its result.  The search
        must not double-commit — and must not change results."""
        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        spool = _fast_spool(tmp_path, lease_timeout_s=1.0)
        os.makedirs(spool.path, exist_ok=True)
        faults.arm_spool_fault(
            spool.path,
            FaultPlan(kind="lease-steal", candidate=1, delay_s=3.0),
        )
        agents = [_thread_agent(spool) for _ in range(2)]
        events = []
        try:
            par = grid_search(**kwargs, spool=spool, on_event=events.append)
        finally:
            _join_agents(spool, agents)
            faults.clear_spool_fault(spool.path)
        _assert_same_outcome(par, seq)
        kinds = [e.kind for e in events]
        assert "lease-expired" in kinds
        assert "retry" in kinds


class TestDuplicateResults:
    def test_first_commit_wins(self, easy_split, tmp_path):
        """Two result files for one chunk (a stale agent's late
        delivery): the first ingested copy commits, the second is
        counted and dropped — deterministically, by construction."""
        from repro.core.grid_search import rank_by_flops
        from repro.flops.conventions import get_convention

        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        conv = get_convention("paper")
        ranked = rank_by_flops(small_space(), conv)[:4]
        spool = _fast_spool(tmp_path, agent_grace_s=30.0)
        coordinator = SpoolCoordinator(
            ranked, easy_split, 1.01, settings, conv, 5, spool
        )
        coordinator.prepare()
        coordinator._top_up(2)  # window 4: every candidate enqueued
        # Serve every task inline, then forge a duplicate of one result
        # under a different (live-owner) agent id before the coordinator
        # ever polls.
        stats = run_agent(
            spool.path, poll_interval_s=0.05, max_chunks=len(ranked)
        )
        assert stats.chunks_done == len(ranked)
        results_dir = os.path.join(str(spool.path), "results")
        victim = sorted(os.listdir(results_dir))[0]
        token, cid, att, _agent = victim.rsplit(".result", 1)[0].split(".")
        forged = f"{token}.{cid}.{att}.{cluster._new_owner_id()}.result"
        with open(os.path.join(results_dir, victim), "rb") as fh:
            blob = fh.read()
        with open(os.path.join(results_dir, forged), "wb") as fh:
            fh.write(blob)
        outcome = coordinator._loop()
        _assert_same_outcome(outcome, seq)
        assert coordinator.stats()["duplicate_results"] == 1


class TestTornFiles:
    def test_torn_result_is_quarantined_and_retried(
        self, easy_split, tmp_path
    ):
        """An agent shipping a truncated result frame: the checksum
        check catches it, the file is quarantined, the chunk re-runs
        clean, results unchanged."""
        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        spool = _fast_spool(tmp_path)
        os.makedirs(spool.path, exist_ok=True)
        faults.arm_spool_fault(
            spool.path, FaultPlan(kind="torn-file", candidate=1)
        )
        agents = [_thread_agent(spool)]
        events = []
        try:
            par = grid_search(**kwargs, spool=spool, on_event=events.append)
        finally:
            _join_agents(spool, agents)
            faults.clear_spool_fault(spool.path)
        _assert_same_outcome(par, seq)
        assert "torn-file" in [e.kind for e in events]
        quarantined = os.listdir(os.path.join(str(spool.path), "quarantine"))
        assert len(quarantined) == 1
        assert quarantined[0].endswith(".result")

    def test_torn_lease_payload_is_quarantined_by_agent(self, tmp_path):
        """A task file torn *before* the claim: the claiming agent
        detects it at unframe time and quarantines instead of parsing
        garbage into a training job."""
        spool = _fast_spool(tmp_path)
        root = str(spool.path)
        for sub in ("tasks", "leases", "quarantine", "agents", "data",
                    "results"):
            os.makedirs(os.path.join(root, sub), exist_ok=True)
        token = cluster._new_owner_id()
        torn = cluster._frame(pickle.dumps("not a chunk"))[:-4]
        task = os.path.join(root, "tasks", f"{token}.c00000.a01.task")
        with open(task, "wb") as fh:
            fh.write(torn)
        stats = run_agent(
            root, poll_interval_s=0.05, idle_timeout_s=0.5
        )
        assert stats.quarantined == 1
        assert stats.chunks_done == 0
        names = os.listdir(os.path.join(root, "quarantine"))
        assert len(names) == 1 and names[0].endswith(".lease")
        assert os.listdir(os.path.join(root, "results")) == []


class TestCostModel:
    def test_spool_coordinator_learns_and_persists_chunk_costs(
        self, easy_split, tmp_path
    ):
        """Every delivered ``SpoolResult.wall_time_s`` feeds the
        coordinator's cost model, and ``cost_cache`` persists it for
        the next invocation's packing order."""
        from repro.core.grid_search import rank_by_flops
        from repro.flops.conventions import get_convention
        from repro.runtime.pool import ChunkCostModel

        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        cache = tmp_path / "chunk_costs.json"
        conv = get_convention("paper")
        ranked = rank_by_flops(small_space(), conv)[:4]
        spool = _fast_spool(tmp_path, cost_cache=str(cache))
        coordinator = SpoolCoordinator(
            ranked, easy_split, 1.01, settings, conv, 5, spool
        )
        agents = [_thread_agent(spool)]
        try:
            outcome = coordinator.run()
        finally:
            _join_agents(spool, agents)
        _assert_same_outcome(outcome, seq)
        assert (
            coordinator.stats()["cost_observations"] == len(seq.evaluated)
        )
        # The cache round-trips: a fresh model warm-starts from it.
        warm = ChunkCostModel()
        assert warm.load_json(cache)
        assert warm.observations == len(seq.evaluated)


class TestStopIdempotency:
    def test_stop_agents_tolerates_cleaned_up_spool(self, tmp_path):
        """Winding down a cluster whose spool directory is already gone
        (or unwritable) must be a no-op, not a crash: the CLI calls
        ``stop_agents`` unconditionally on exit."""
        stop_agents(tmp_path / "never-created")
        # Harsher: the parent path is a *file*, so mkdir itself fails.
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        stop_agents(blocker / "spool")
        # And calling it twice on a live spool stays idempotent.
        live = tmp_path / "live"
        stop_agents(live)
        stop_agents(live)
        assert (live / "stop").exists()


class TestCoordinatorRestart:
    def test_restart_resumes_from_journal(self, easy_split, tmp_path):
        """A coordinator that dies mid-run (after committing a durable
        prefix) restarts against the same journal and spool and
        completes bit-identically."""

        class Interrupted(Exception):
            pass

        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        journal = tmp_path / "cluster.jsonl"
        spool = _fast_spool(tmp_path)
        agents = [_thread_agent(spool)]
        try:
            seen = []

            def die_after_two(candidate):
                seen.append(candidate)
                if len(seen) >= 2:
                    raise Interrupted()

            with pytest.raises(Interrupted):
                grid_search(
                    **kwargs,
                    spool=spool,
                    journal=str(journal),
                    progress=die_after_two,
                )
            assert len(journal.read_text().splitlines()) >= 2
            replayed = []
            resumed = grid_search(
                **kwargs,
                spool=spool,
                journal=str(journal),
                progress=replayed.append,
            )
        finally:
            _join_agents(spool, agents)
        _assert_same_outcome(resumed, seq)
        assert len(replayed) == len(seq.evaluated)


class TestStartupHygiene:
    def _dead_owner(self):
        proc = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        return f"repro_{cluster._host_tag()}_{int(proc.stdout)}_{'a' * 6}"

    def test_sweep_removes_only_dead_owned_files(self, tmp_path):
        root = tmp_path / "spool"
        (root / "leases").mkdir(parents=True)
        (root / "agents").mkdir()
        dead = self._dead_owner()
        live = f"repro_{cluster._host_tag()}_{os.getpid()}_{'b' * 6}"
        remote = f"repro_otherhost_{1}_{'c' * 6}"
        names = {
            "dead-lease": f"{dead}.tok.c00001.a01.lease",
            "live-lease": f"{live}.tok.c00002.a01.lease",
            "remote-lease": f"{remote}.tok.c00003.a01.lease",
            "dead-agent": f"{dead}.agent",
        }
        for sub, name in (
            ("leases", names["dead-lease"]),
            ("leases", names["live-lease"]),
            ("leases", names["remote-lease"]),
            ("agents", names["dead-agent"]),
        ):
            (root / sub / name).write_bytes(b"x")
        removed = sweep_stale_leases(root)
        assert sorted(removed) == sorted(
            [names["dead-lease"], names["dead-agent"]]
        )
        # A live local owner and an unprobeable remote owner survive.
        assert (root / "leases" / names["live-lease"]).exists()
        assert (root / "leases" / names["remote-lease"]).exists()

    def test_coordinator_prepare_sweeps_and_counts(
        self, easy_split, tmp_path
    ):
        from repro.core.grid_search import rank_by_flops
        from repro.flops.conventions import get_convention

        conv = get_convention("paper")
        ranked = rank_by_flops(small_space(), conv)[:2]
        spool = _fast_spool(tmp_path)
        root = tmp_path / "spool"
        (root / "leases").mkdir(parents=True)
        (root / "tasks").mkdir()
        dead = self._dead_owner()
        (root / "leases" / f"{dead}.tok.c00001.a01.lease").write_bytes(b"x")
        (root / "tasks" / f"{dead}.c00001.a01.task").write_bytes(b"x")
        # A stop file from a previous wound-down run must not survive
        # prepare, or fresh agents would exit immediately.
        (root / "stop").touch()
        coordinator = SpoolCoordinator(
            ranked, easy_split, 1.01, _settings(), conv, 5, spool
        )
        coordinator.prepare()
        stats = coordinator.stats()
        assert stats["swept_leases"] == 1
        assert stats["swept_files"] == 1
        assert not (root / "stop").exists()
        assert not (root / "leases" / f"{dead}.tok.c00001.a01.lease").exists()


class TestProtocolIntegration:
    def test_run_protocol_over_spool_with_journals(self, tmp_path):
        """The protocol layer: ``ProtocolConfig.spool`` routes every
        search through the coordinator, and the configured journal path
        forks into one derived file per (level, experiment) — sharing a
        file would lose checkpoints to compaction."""
        from repro.core.experiment import ProtocolConfig, run_protocol

        cfg = ProtocolConfig(
            feature_sizes=(4,),
            n_experiments=2,
            runs_per_candidate=1,
            epochs=2,
            batch_size=32,
            n_points=90,
            max_candidates=2,
            threshold=1.01,
        )
        seq = run_protocol("classical", cfg)
        spool = _fast_spool(tmp_path)
        agents = [_thread_agent(spool)]
        try:
            par = run_protocol(
                "classical",
                cfg.with_(
                    spool=str(spool.path),
                    journal=str(tmp_path / "ckpt.jsonl"),
                ),
            )
        finally:
            _join_agents(spool, agents)
        assert not (tmp_path / "ckpt.jsonl").exists()
        for experiment in range(2):
            assert (tmp_path / f"ckpt-f4-e{experiment}.jsonl").exists()
        for lvl_seq, lvl_par in zip(seq.levels, par.levels):
            for a, b in zip(lvl_seq.outcomes, lvl_par.outcomes):
                _assert_same_outcome(b, a)


class TestCliClusterSmoke:
    """The CI smoke: a real coordinator and two real agent processes
    talking only through a tmpdir spool, vs the sequential baseline."""

    def test_cli_agents_serve_coordinator(self, easy_split, tmp_path):
        settings = _settings()
        kwargs = _search_kwargs(easy_split, settings)
        seq = grid_search(**kwargs, workers=1)
        # Default lease timeout: CLI agents beat at the production 5s
        # interval, so a test-speed timeout would expire live leases.
        spool = SpoolConfig(
            path=str(tmp_path / "spool"), poll_interval_s=0.1
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "cluster-agent",
                    "--spool",
                    str(spool.path),
                    "--quiet",
                ],
                env=env,
            )
            for _ in range(2)
        ]
        try:
            par = grid_search(**kwargs, spool=spool)
        finally:
            stop_agents(spool.path)
            for proc in procs:
                try:
                    assert proc.wait(timeout=30) == 0
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
                    raise
        _assert_same_outcome(par, seq)
