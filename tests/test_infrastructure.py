"""Tests for the library's infrastructure: exception hierarchy and the
paper-constants module."""

import pytest

from repro import config
from repro.exceptions import (
    ConfigurationError,
    ExperimentError,
    GateError,
    ProfileError,
    ReproError,
    SearchError,
    SearchExhaustedError,
    ShapeError,
    WireError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            WireError,
            ShapeError,
            GateError,
            SearchError,
            SearchExhaustedError,
            ProfileError,
            ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_specializations(self):
        assert issubclass(WireError, ConfigurationError)
        assert issubclass(ShapeError, ConfigurationError)
        assert issubclass(GateError, ConfigurationError)
        assert issubclass(SearchExhaustedError, SearchError)

    def test_single_catch_point(self):
        """Library errors can all be caught with one except clause."""
        with pytest.raises(ReproError):
            raise WireError("wire 9")


class TestPaperConstants:
    def test_feature_sizes(self):
        assert config.FEATURE_SIZES == tuple(range(10, 120, 10))
        assert len(config.FEATURE_SIZES) == 11

    def test_noise_schedule_endpoints(self):
        assert config.noise_for_features(10) == pytest.approx(0.13)
        assert config.noise_for_features(110) == pytest.approx(0.43)

    def test_search_space_constants(self):
        assert config.CLASSICAL_NEURON_OPTIONS == (2, 4, 6, 8, 10)
        assert config.CLASSICAL_MAX_LAYERS == 3
        assert config.HYBRID_QUBIT_OPTIONS == (3, 4, 5)
        assert config.HYBRID_DEPTH_OPTIONS == tuple(range(1, 11))

    def test_training_constants(self):
        assert config.ACCURACY_THRESHOLD == 0.90
        assert config.LEARNING_RATE == 0.001
        assert config.BATCH_SIZE == 8
        assert config.EPOCHS == 100
        assert config.RUNS_PER_CANDIDATE == 5
        assert config.N_EXPERIMENTS == 5

    def test_reported_sizes(self):
        assert config.REPORTED_FEATURE_SIZES == (10, 40, 80, 110)
