"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_spiral, stratified_split
from repro.experiments.runner import RunProfile


def pytest_configure(config):
    # The fault-tolerance tests mark themselves with per-test timeouts
    # so a supervision regression that reintroduces a hang fails fast
    # in CI (where pytest-timeout is installed).  Register the marker
    # so runs without the plugin stay warning-free; without the plugin
    # the marks are inert.
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test timeout, enforced when pytest-timeout "
        "is installed",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_split():
    """A small spiral split reused by training-heavy tests."""
    dataset = make_spiral(6, n_points=120, seed=3)
    return stratified_split(dataset, seed=3)


@pytest.fixture(scope="session")
def micro_profile() -> RunProfile:
    """A profile even smaller than 'smoke', for driver tests."""
    return RunProfile(
        name="micro",
        feature_sizes=(4, 6),
        n_experiments=1,
        runs_per_candidate=1,
        epochs=15,
        batch_size=8,
        n_points=90,
        early_stop=True,
        max_candidates=3,
        threshold=0.4,
    )
