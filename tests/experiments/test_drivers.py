"""Integration tests: every figure/table driver runs end to end on a
micro profile and renders the paper-style output."""

import pytest

from repro.core.search_space import HybridSpec
from repro.exceptions import ExperimentError
from repro.experiments import (
    fig4_dataset_complexity,
    fig6_classical_flops,
    fig7_bel_flops,
    fig8_sel_flops,
    fig9_parameters,
    fig10_comparative,
    table1_ablation,
)
from repro.experiments.runner import run_family_cached


@pytest.fixture(scope="module")
def cache(tmp_path_factory, micro_profile_module):
    """Pre-populate the protocol cache once for all driver tests."""
    cache_dir = tmp_path_factory.mktemp("protocols")
    for family in ("classical", "bel", "sel"):
        run_family_cached(
            family, micro_profile_module, cache_dir=cache_dir, threshold=0.4
        )
    return cache_dir


@pytest.fixture(scope="module")
def micro_profile_module():
    from repro.experiments.runner import RunProfile

    return RunProfile(
        name="micro",
        feature_sizes=(4, 6),
        n_experiments=1,
        runs_per_candidate=1,
        epochs=15,
        batch_size=8,
        n_points=90,
        early_stop=True,
        max_candidates=3,
        threshold=0.4,
    )


def _run_cached(module, micro_profile_module, cache):
    return module.run(micro_profile_module, cache_dir=cache)


class TestFig4:
    def test_run_and_render(self, micro_profile_module):
        results = fig4_dataset_complexity.run(micro_profile_module)
        text = fig4_dataset_complexity.render(results)
        assert "Fig 4(b)" in text
        assert "noise" in text
        assert len(results) == 2


class TestProtocolFigures:
    def test_fig6(self, micro_profile_module, cache):
        result = _run_cached(fig6_classical_flops, micro_profile_module, cache)
        assert result.family == "classical"
        text = fig6_classical_flops.render(result)
        assert "Fig 6" in text and "features=4" in text

    def test_fig7(self, micro_profile_module, cache):
        result = _run_cached(fig7_bel_flops, micro_profile_module, cache)
        assert result.family == "bel"
        assert "Fig 7" in fig7_bel_flops.render(result)

    def test_fig8(self, micro_profile_module, cache):
        result = _run_cached(fig8_sel_flops, micro_profile_module, cache)
        assert result.family == "sel"
        assert "Fig 8" in fig8_sel_flops.render(result)

    def test_fig9(self, micro_profile_module, cache):
        results = fig9_parameters.run(micro_profile_module, cache_dir=cache)
        assert [r.family for r in results] == ["classical", "bel", "sel"]
        text = fig9_parameters.render(results)
        assert "panel: classical" in text and "panel: sel" in text

    def test_fig9_empty_rejected(self):
        with pytest.raises(ExperimentError):
            fig9_parameters.render([])

    def test_fig10(self, micro_profile_module, cache):
        results = fig10_comparative.run(micro_profile_module, cache_dir=cache)
        analysis = fig10_comparative.analyze(results)
        text = fig10_comparative.render(analysis)
        assert "Fig 10" in text
        assert "panel a: FLOPs" in text and "panel b: params" in text
        assert "classical" in text and "sel" in text


class TestTable1:
    def test_run_and_render(self, micro_profile_module, cache):
        rows = table1_ablation.run(micro_profile_module, cache_dir=cache)
        assert set(rows) == {"bel", "sel"}
        text = table1_ablation.render(rows)
        assert "Table I" in text
        assert "paper (TensorFlow profiler counts)" in text
        assert "hybrid(SEL)" in text

    def test_row_for_spec(self):
        spec = HybridSpec(n_features=10, n_qubits=3, n_layers=2, ansatz="sel")
        row = table1_ablation.row_for_spec(spec)
        assert row.total == row.enc_plus_cl + row.ql
        assert row.enc_plus_cl == row.cl + row.enc
        assert row.best_combination == "(3,2)"

    def test_paper_reference_rows(self):
        sel_rows = table1_ablation.paper_reference_rows("sel")
        assert len(sel_rows) == 4
        assert all(r.ql == 840 for r in sel_rows)  # constant SEL QL
        all_rows = table1_ablation.paper_reference_rows()
        assert len(all_rows) == 8
        # paper internal consistency: TF == Enc+CL+QL on every row
        assert all(r.total == r.enc_plus_cl + r.ql for r in all_rows)

    def test_rows_from_protocol_rejects_classical(
        self, micro_profile_module, cache
    ):
        classical = fig6_classical_flops.run(micro_profile_module, cache_dir=cache)
        with pytest.raises(ExperimentError):
            table1_ablation.rows_from_protocol(classical)
