"""Unit tests for profiles, cached runs and report formatting."""

import pytest

from repro.core.experiment import ProtocolResult
from repro.exceptions import ExperimentError
from repro.experiments.report import (
    format_level_winners,
    format_protocol_overview,
    format_series,
    format_table,
)
from repro.experiments.runner import (
    FULL,
    PROFILES,
    REDUCED,
    SMOKE,
    get_profile,
    run_family,
    run_family_cached,
)


class TestProfiles:
    def test_registry(self):
        assert set(PROFILES) == {"smoke", "reduced", "full"}
        assert get_profile("smoke") is SMOKE
        assert get_profile(SMOKE) is SMOKE

    def test_unknown(self):
        with pytest.raises(ExperimentError):
            get_profile("huge")

    def test_full_profile_matches_paper(self):
        cfg = FULL.protocol_config()
        assert cfg.feature_sizes == tuple(range(10, 120, 10))
        assert cfg.n_experiments == 5
        assert cfg.runs_per_candidate == 5
        assert cfg.epochs == 100
        assert cfg.batch_size == 8
        assert cfg.n_points == 1500
        assert not cfg.early_stop
        assert cfg.max_candidates is None

    def test_reduced_covers_reported_sizes(self):
        assert REDUCED.feature_sizes == (10, 40, 80, 110)

    def test_overrides(self):
        cfg = SMOKE.protocol_config(threshold=0.5)
        assert cfg.threshold == 0.5
        assert cfg.feature_sizes == SMOKE.feature_sizes


class TestRunFamily:
    def test_micro_run(self, micro_profile):
        result = run_family("classical", micro_profile, threshold=0.4)
        assert isinstance(result, ProtocolResult)
        assert result.feature_sizes == [4, 6]

    def test_cache_round_trip(self, micro_profile, tmp_path):
        first = run_family_cached(
            "classical", micro_profile, cache_dir=tmp_path, threshold=0.4
        )
        path = tmp_path / "classical_micro.json"
        assert path.exists()
        second = run_family_cached(
            "classical", micro_profile, cache_dir=tmp_path, threshold=0.4
        )
        import numpy.testing

        numpy.testing.assert_equal(  # nan-safe comparison
            second.smallest_flops_series(), first.smallest_flops_series()
        )

    def test_cache_disabled(self, micro_profile, tmp_path):
        run_family_cached("classical", micro_profile, cache_dir=None, threshold=0.4)
        assert not list(tmp_path.iterdir())


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.5" in text and "3.2" in text

    def test_format_table_requires_columns(self):
        with pytest.raises(ExperimentError):
            format_table([], [])

    def test_format_series(self):
        text = format_series(
            [10, 20], {"classical": [1.0, 2.0], "sel": [3.0, 4.0]}, "Fig"
        )
        assert "classical" in text and "sel" in text and "20" in text

    def test_level_winners_and_overview(self, micro_profile):
        result = run_family("classical", micro_profile, threshold=0.4)
        text = format_level_winners(result)
        assert "features=4" in text
        overview = format_protocol_overview([result])
        assert "classical" in overview
