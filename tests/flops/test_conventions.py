"""Unit tests for the counting conventions."""

import pytest

from repro.exceptions import ConfigurationError
from repro.flops import (
    CONVENTIONS,
    FIRST_PRINCIPLES,
    PAPER,
    PARAMETER_SHIFT,
    get_convention,
)


class TestRegistry:
    def test_names(self):
        assert set(CONVENTIONS) == {
            "paper",
            "first_principles",
            "parameter_shift",
        }

    def test_get_by_name_and_passthrough(self):
        assert get_convention("paper") is PAPER
        assert get_convention(PAPER) is PAPER

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_convention("tf_profiler")


class TestClassicalCosts:
    def test_dense_paper(self):
        # forward 2io + o, backward 4io + 2o
        assert PAPER.dense_fwd(10, 4) == 84
        assert PAPER.dense_bwd(10, 4) == 168
        # total 6io + 3o
        assert PAPER.dense_fwd(10, 4) + PAPER.dense_bwd(10, 4) == 6 * 40 + 12

    def test_relu(self):
        assert PAPER.relu_fwd(5) == 5
        assert PAPER.relu_bwd(5) == 20
        assert FIRST_PRINCIPLES.relu_bwd(5) == 5

    def test_softmax_paper_total_is_16_for_3_classes(self):
        assert PAPER.softmax_fwd(3) + PAPER.softmax_bwd(3) == 16

    def test_softmax_first_principles(self):
        assert FIRST_PRINCIPLES.softmax_fwd(3) == 12
        assert FIRST_PRINCIPLES.softmax_bwd(3) == 12


class TestQuantumCosts:
    def test_single_qubit_gate_scaling(self):
        # 14 * 2^n with default complex costs
        assert PAPER.single_qubit_gate(3) == 14 * 8
        assert PAPER.single_qubit_gate(4) == 2 * PAPER.single_qubit_gate(3)

    def test_diagonal_gate(self):
        assert PAPER.diagonal_gate(3) == 6 * 8

    def test_cnot_conventions_differ(self):
        assert PAPER.cnot(3) == 4
        assert FIRST_PRINCIPLES.cnot(3) == 0

    def test_expval(self):
        # shared |amp|^2 pass (3 * 2^n) + per-wire reduction (2^n each)
        assert PAPER.expval_z(3, 3) == 3 * 8 + 3 * 8

    def test_cz_single_qubit_register(self):
        assert PAPER.cz(1) == 0


class TestDerivation:
    def test_with_override(self):
        custom = PAPER.with_(relu_bwd_per_unit=1, name="custom")
        assert custom.relu_bwd(4) == 4
        assert PAPER.relu_bwd(4) == 16  # original untouched
        assert custom.name == "custom"

    def test_invalid_gradient_mode(self):
        with pytest.raises(ConfigurationError):
            PAPER.with_(quantum_gradient_mode="symbolic")

    def test_invalid_constants(self):
        with pytest.raises(ConfigurationError):
            PAPER.with_(dense_fwd_per_mac=0)
        with pytest.raises(ConfigurationError):
            PAPER.with_(backprop_multiplier=-1)

    def test_parameter_shift_convention_mode(self):
        assert PARAMETER_SHIFT.quantum_gradient_mode == "parameter_shift"
