"""Unit tests for the model profiler and the closed-form spec formulas.

The critical guarantee: ``profile_model`` (walking a built model) and the
``formulas`` module (pure arithmetic on a spec) agree exactly — the grid
search ranks with formulas but the library reports with the profiler.
"""

import numpy as np
import pytest

from repro.core.search_space import classical_search_space, hybrid_search_space
from repro.exceptions import ProfileError
from repro.flops import (
    FIRST_PRINCIPLES,
    PAPER,
    classical_model_flops,
    classical_param_count,
    hybrid_flops_breakdown,
    hybrid_model_flops,
    hybrid_param_count,
    profile_model,
)
from repro.hybrid import build_classical_model, build_hybrid_model
from repro.nn import Dense, ReLU, Sequential, Softmax
from repro.nn.layers import Layer


class TestCalibration:
    """The PAPER convention reproduces the paper's Table I classical
    column (the hybrid head with a ReLU input layer)."""

    @pytest.mark.parametrize(
        "features,qubits,expected_cl",
        [(10, 3, 283), (40, 3, 823), (80, 3, 1543), (110, 4, 2769)],
    )
    def test_table1_classical_column(self, features, qubits, expected_cl):
        bd = hybrid_flops_breakdown(
            features, qubits, 2, "bel", input_activation="relu"
        )
        assert bd.classical == expected_cl

    def test_closed_form_cl(self):
        """CL(F, q) == 6qF + 26q + 25 for the ReLU variant."""
        for f, q in [(10, 3), (30, 5), (100, 4)]:
            bd = hybrid_flops_breakdown(f, q, 1, "sel", input_activation="relu")
            assert bd.classical == 6 * q * f + 26 * q + 25

    def test_linear_variant_cl_drops_by_relu_cost(self):
        relu = hybrid_flops_breakdown(10, 3, 2, "sel", input_activation="relu")
        lin = hybrid_flops_breakdown(10, 3, 2, "sel")
        assert relu.classical - lin.classical == PAPER.relu_fwd(3) + PAPER.relu_bwd(3)
        assert relu.encoding == lin.encoding
        assert relu.quantum == lin.quantum


class TestProfilerAgreesWithFormulas:
    def test_whole_classical_search_space(self, rng):
        for spec in classical_search_space(7):
            model = build_classical_model(7, spec.hidden, rng=rng)
            prof = profile_model(model)
            assert prof.total_flops == classical_model_flops(7, spec.hidden)
            assert prof.param_count == classical_param_count(7, spec.hidden)

    @pytest.mark.parametrize("ansatz", ["bel", "sel"])
    def test_hybrid_search_space_sample(self, ansatz, rng):
        specs = hybrid_search_space(9, ansatz)[::5]  # every 5th of 30
        for spec in specs:
            model = build_hybrid_model(
                9, spec.n_qubits, spec.n_layers, ansatz=ansatz, rng=rng
            )
            prof = profile_model(model)
            assert prof.total_flops == hybrid_model_flops(
                9, spec.n_qubits, spec.n_layers, ansatz
            )
            assert prof.param_count == hybrid_param_count(
                9, spec.n_qubits, spec.n_layers, ansatz
            )

    @pytest.mark.parametrize("head", [(4,), (8, 4)])
    def test_head_varied_hybrids(self, head, rng):
        """Classical heads (the cross-candidate-stacking workload) keep
        the closed-form formulas in lockstep with the profiler."""
        model = build_hybrid_model(9, 3, 2, ansatz="sel", hidden=head, rng=rng)
        prof = profile_model(model)
        assert prof.total_flops == hybrid_model_flops(
            9, 3, 2, "sel", hidden=head
        )
        assert prof.param_count == hybrid_param_count(
            9, 3, 2, "sel", hidden=head
        )

    @pytest.mark.parametrize("conv", [PAPER, FIRST_PRINCIPLES])
    def test_breakdown_agreement(self, conv, rng):
        model = build_hybrid_model(12, 4, 3, ansatz="sel", rng=rng)
        prof = profile_model(model, convention=conv)
        formula = hybrid_flops_breakdown(12, 4, 3, "sel", convention=conv)
        assert prof.breakdown == formula


class TestProfiler:
    def test_classical_breakdown_has_no_quantum(self, rng):
        prof = profile_model(build_classical_model(6, (4,), rng=rng))
        assert prof.breakdown.quantum == 0
        assert prof.breakdown.encoding == 0
        assert prof.breakdown.total == prof.breakdown.classical

    def test_table_row_keys(self, rng):
        prof = profile_model(build_hybrid_model(6, 3, 1, rng=rng))
        row = prof.breakdown.as_table_row()
        assert set(row) == {"TF", "Enc+CL", "CL", "Enc", "QL"}
        assert row["TF"] == row["Enc+CL"] + row["QL"]

    def test_summary_text(self, rng):
        prof = profile_model(build_hybrid_model(6, 3, 1, rng=rng))
        text = prof.summary()
        assert "dense_in" in text and "quantum" in text and "total=" in text

    def test_forward_backward_totals(self, rng):
        prof = profile_model(build_classical_model(5, (4,), rng=rng))
        assert prof.total_flops == prof.forward_flops + prof.backward_flops

    def test_unknown_layer_rejected(self, rng):
        class Mystery(Layer):
            def forward(self, x, training=False):
                return x

            def backward(self, grad):
                return grad

        model = Sequential([Dense(3, 2, rng=rng), Mystery()])
        with pytest.raises(ProfileError):
            profile_model(model)

    def test_input_dim_inference_failure(self):
        model = Sequential([ReLU(), Softmax()])
        with pytest.raises(ProfileError):
            profile_model(model)

    def test_explicit_input_dim(self):
        model = Sequential([ReLU(), Softmax()])
        prof = profile_model(model, input_dim=4)
        assert prof.total_flops > 0


class TestMonotonicity:
    """Sanity properties the search relies on."""

    def test_classical_flops_monotone_in_features(self):
        values = [classical_model_flops(f, (4, 6)) for f in (5, 20, 80)]
        assert values == sorted(values)

    def test_hybrid_flops_monotone_in_depth(self):
        values = [hybrid_model_flops(10, 3, l, "sel") for l in (1, 3, 7)]
        assert values == sorted(values)

    def test_hybrid_flops_monotone_in_qubits(self):
        values = [hybrid_model_flops(10, q, 2, "bel") for q in (3, 4, 5)]
        assert values == sorted(values)

    def test_param_counts_positive(self):
        assert classical_param_count(5, (2,)) == 5 * 2 + 2 + 2 * 3 + 3
        assert hybrid_param_count(5, 3, 2, "bel") == 15 + 3 + 6 + 12
