"""Unit tests for quantum-tape FLOPs accounting."""

import numpy as np
import pytest

from repro.exceptions import ProfileError
from repro.flops import (
    FIRST_PRINCIPLES,
    PAPER,
    PARAMETER_SHIFT,
    count_tape_params,
    operation_fwd_flops,
    quantum_layer_flops,
    split_tape,
    tape_fwd_flops,
)
from repro.quantum import angle_embedding, basic_entangler_layers, strongly_entangling_layers
from repro.quantum.circuit import Operation, input_ref, weight_ref


def sel_tape(n_qubits=3, n_layers=2):
    x = np.zeros((1, n_qubits))
    w = np.zeros((n_layers, n_qubits, 3))
    return angle_embedding(x, n_qubits) + strongly_entangling_layers(w, n_qubits)


def bel_tape(n_qubits=3, n_layers=2):
    x = np.zeros((1, n_qubits))
    w = np.zeros((n_layers, n_qubits))
    return angle_embedding(x, n_qubits) + basic_entangler_layers(w, n_qubits)


class TestOperationCosts:
    def test_dense_vs_diagonal(self):
        ry = Operation("RY", (0,), (0.1,))
        rz = Operation("RZ", (0,), (0.1,))
        assert operation_fwd_flops(PAPER, ry, 3) == 8 + 14 * 8
        assert operation_fwd_flops(PAPER, rz, 3) == 8 + 6 * 8

    def test_fixed_gates_have_no_build_cost(self):
        h = Operation("H", (0,))
        assert operation_fwd_flops(PAPER, h, 2) == 14 * 4

    def test_rot_build_cost(self):
        rot = Operation("Rot", (0,), (0.1, 0.2, 0.3))
        assert operation_fwd_flops(PAPER, rot, 3) == 24 + 14 * 8

    def test_permutation_gates(self):
        cnot = Operation("CNOT", (0, 1))
        assert operation_fwd_flops(FIRST_PRINCIPLES, cnot, 3) == 0
        assert operation_fwd_flops(PAPER, cnot, 3) == 4
        swap = Operation("SWAP", (0, 1))
        assert operation_fwd_flops(PAPER, swap, 3) == 12

    def test_tape_total(self):
        tape = [Operation("H", (0,)), Operation("CNOT", (0, 1))]
        assert tape_fwd_flops(PAPER, tape, 2) == 14 * 4 + 2


class TestSplitTape:
    def test_split_sel(self):
        enc, ansatz = split_tape(sel_tape())
        assert len(enc) == 3  # three encoding RYs
        assert all(op.name == "RY" for op in enc)
        assert len(ansatz) == 6 + 6  # 6 Rots + 6 CNOTs

    def test_mixed_refs_rejected(self):
        bad = Operation(
            "Rot",
            (0,),
            (0.1, 0.2, 0.3),
            (input_ref(0), weight_ref(0), None),
        )
        with pytest.raises(ProfileError):
            split_tape([bad])

    def test_count_params(self):
        n_in, n_w = count_tape_params(sel_tape(3, 2))
        assert (n_in, n_w) == (3, 18)
        n_in, n_w = count_tape_params(bel_tape(4, 3))
        assert (n_in, n_w) == (4, 12)


class TestBreakdownInvariants:
    """The paper's Table I qualitative claims, convention-independent."""

    @pytest.mark.parametrize("conv", [PAPER, FIRST_PRINCIPLES, PARAMETER_SHIFT])
    def test_encoding_cost_independent_of_depth(self, conv):
        a = quantum_layer_flops(conv, sel_tape(3, 1), 3)
        b = quantum_layer_flops(conv, sel_tape(3, 8), 3)
        assert a.encoding_fwd == b.encoding_fwd

    @pytest.mark.parametrize("conv", [PAPER, FIRST_PRINCIPLES])
    def test_sel_costs_more_than_bel_same_size(self, conv):
        sel = quantum_layer_flops(conv, sel_tape(3, 2), 3)
        bel = quantum_layer_flops(conv, bel_tape(3, 2), 3)
        assert sel.quantum_total > bel.quantum_total

    @pytest.mark.parametrize("conv", [PAPER, FIRST_PRINCIPLES])
    def test_deeper_ansatz_costs_more(self, conv):
        shallow = quantum_layer_flops(conv, bel_tape(3, 2), 3)
        deep = quantum_layer_flops(conv, bel_tape(3, 6), 3)
        assert deep.quantum_total > shallow.quantum_total
        assert deep.encoding_total == shallow.encoding_total

    @pytest.mark.parametrize("conv", [PAPER, FIRST_PRINCIPLES])
    def test_more_qubits_cost_more(self, conv):
        q3 = quantum_layer_flops(conv, bel_tape(3, 2), 3)
        q5 = quantum_layer_flops(conv, bel_tape(5, 2), 5)
        assert q5.quantum_total > q3.quantum_total
        assert q5.encoding_total > q3.encoding_total

    def test_totals_are_consistent(self):
        qf = quantum_layer_flops(PAPER, sel_tape(), 3)
        assert qf.total == qf.forward_total + qf.backward_total
        assert (
            qf.total
            == qf.encoding_total + qf.quantum_total
        )

    def test_backprop_multiplier(self):
        qf = quantum_layer_flops(PAPER, sel_tape(), 3)
        assert qf.encoding_bwd == 2 * qf.encoding_fwd
        assert qf.ansatz_bwd == 2 * qf.ansatz_fwd

    def test_parameter_shift_mode_scales_with_params(self):
        shallow = quantum_layer_flops(PARAMETER_SHIFT, sel_tape(3, 1), 3)
        deep = quantum_layer_flops(PARAMETER_SHIFT, sel_tape(3, 2), 3)
        # twice the weights -> much more than twice the shift cost of the
        # shallow tape because the circuit also got longer.
        assert deep.ansatz_bwd > 2 * shallow.ansatz_bwd
        assert shallow.encoding_bwd == 0

    def test_adjoint_mode(self):
        conv = PAPER.with_(quantum_gradient_mode="adjoint", name="adj")
        qf = quantum_layer_flops(conv, sel_tape(3, 2), 3)
        # adjoint backward >= 2 sweeps of the forward cost
        assert qf.ansatz_bwd >= 2 * qf.ansatz_fwd
        assert qf.total > 0
