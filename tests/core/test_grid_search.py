"""Unit tests for the FLOPs-sorted grid search."""

import numpy as np
import pytest

from repro.core.grid_search import (
    CandidateResult,
    TrainingSettings,
    grid_search,
    rank_by_flops,
)
from repro.core.search_space import ClassicalSpec, classical_search_space
from repro.data import make_spiral, stratified_split
from repro.exceptions import SearchError


@pytest.fixture(scope="module")
def easy_split():
    """A split an MLP can fit within a few epochs: a gentle, noise-free
    half-turn spiral."""
    ds = make_spiral(4, n_points=150, noise=0.0, turns=0.4, seed=7)
    return stratified_split(ds, seed=7)


def small_space(n_features=4):
    return classical_search_space(
        n_features, neuron_options=(2, 8), max_layers=2
    )


class TestRanking:
    def test_ascending_flops(self):
        ranked = rank_by_flops(small_space())
        flops = [s.flops() for s in ranked]
        assert flops == sorted(flops)

    def test_deterministic_tie_break(self):
        specs = small_space()
        assert rank_by_flops(specs) == rank_by_flops(list(reversed(specs)))

    def test_smallest_first(self):
        ranked = rank_by_flops(small_space())
        assert ranked[0].hidden == (2,)


class TestCandidateResult:
    def test_pass_logic(self):
        cand = CandidateResult(
            spec=ClassicalSpec(n_features=4, hidden=(2,)),
            flops=100,
            params=10,
            train_accuracies=[0.95, 0.91],
            val_accuracies=[0.92, 0.90],
        )
        assert cand.passes(0.90)
        assert not cand.passes(0.92)
        assert cand.mean_train_accuracy == pytest.approx(0.93)

    def test_fails_if_either_metric_low(self):
        cand = CandidateResult(
            spec=ClassicalSpec(n_features=4, hidden=(2,)),
            flops=1,
            params=1,
            train_accuracies=[0.99],
            val_accuracies=[0.50],
        )
        assert not cand.passes(0.9)


class TestGridSearch:
    def test_finds_cheapest_winner(self, easy_split):
        settings = TrainingSettings(
            epochs=60, batch_size=16, runs=1, early_stop_threshold=0.85
        )
        outcome = grid_search(
            small_space(), easy_split, threshold=0.85, settings=settings, seed=3
        )
        assert outcome.succeeded
        # sequential early stop: only candidates up to the winner trained
        assert outcome.evaluated[-1] is outcome.winner
        flops = [c.flops for c in outcome.evaluated]
        assert flops == sorted(flops)
        # every earlier candidate failed
        assert all(
            not c.passes(0.85) for c in outcome.evaluated[:-1]
        )

    def test_impossible_threshold_exhausts(self, easy_split):
        settings = TrainingSettings(epochs=1, batch_size=64, runs=1)
        outcome = grid_search(
            small_space(),
            easy_split,
            threshold=1.01,  # unreachable
            settings=settings,
            max_candidates=2,
        )
        assert not outcome.succeeded
        assert outcome.candidates_trained == 2

    def test_deterministic_given_seed(self, easy_split):
        settings = TrainingSettings(
            epochs=8, batch_size=16, runs=2, early_stop_threshold=0.9
        )
        a = grid_search(
            small_space(), easy_split, settings=settings, seed=11
        )
        b = grid_search(
            small_space(), easy_split, settings=settings, seed=11
        )
        assert [c.train_accuracies for c in a.evaluated] == [
            c.train_accuracies for c in b.evaluated
        ]

    def test_progress_callback(self, easy_split):
        seen = []
        settings = TrainingSettings(epochs=1, batch_size=64, runs=1)
        grid_search(
            small_space(),
            easy_split,
            settings=settings,
            max_candidates=2,
            threshold=1.01,
            progress=seen.append,
        )
        assert len(seen) == 2
        assert all(isinstance(c, CandidateResult) for c in seen)

    def test_runs_are_aggregated(self, easy_split):
        settings = TrainingSettings(epochs=2, batch_size=32, runs=3)
        outcome = grid_search(
            small_space(),
            easy_split,
            settings=settings,
            threshold=1.01,
            max_candidates=1,
        )
        cand = outcome.evaluated[0]
        assert len(cand.train_accuracies) == 3
        assert len(cand.epochs_run) == 3
        assert cand.wall_time_s > 0

    def test_empty_space_rejected(self, easy_split):
        with pytest.raises(SearchError):
            grid_search([], easy_split)
