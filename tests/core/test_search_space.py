"""Unit tests for search spaces and model specs."""

import pytest

from repro.core.search_space import (
    ClassicalSpec,
    HybridSpec,
    classical_search_space,
    combination_count,
    hybrid_search_space,
    search_space_for_family,
)
from repro.exceptions import ConfigurationError
from repro.flops import classical_model_flops, hybrid_model_flops


class TestCombinationCount:
    def test_paper_values(self):
        # the paper: 155 classical combinations for m=5 options, n=3 layers
        assert combination_count(5, 3) == 155
        # the paper's worked example: m=2, n=2 -> 6 combinations
        assert combination_count(2, 2) == 6

    def test_degenerate_cases(self):
        assert combination_count(1, 4) == 4
        with pytest.raises(ConfigurationError):
            combination_count(0, 3)


class TestClassicalSpace:
    def test_size_matches_formula(self):
        specs = classical_search_space(10)
        assert len(specs) == 155
        assert len(set(specs)) == 155  # all distinct

    def test_orderings_shallow_first(self):
        specs = classical_search_space(10, neuron_options=(2, 3), max_layers=2)
        hiddens = [s.hidden for s in specs]
        assert hiddens == [(2,), (3,), (2, 2), (2, 3), (3, 2), (3, 3)]

    def test_spec_properties(self):
        spec = ClassicalSpec(n_features=10, hidden=(4, 6))
        assert spec.label == "C[4,6]"
        assert spec.param_count == 10 * 4 + 4 + 4 * 6 + 6 + 6 * 3 + 3
        assert spec.flops() == classical_model_flops(10, (4, 6))

    def test_spec_build(self, rng):
        model = ClassicalSpec(n_features=5, hidden=(4,)).build(rng=rng)
        assert model.param_count == 5 * 4 + 4 + 4 * 3 + 3

    def test_empty_hidden_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassicalSpec(n_features=5, hidden=())

    def test_empty_options_rejected(self):
        with pytest.raises(ConfigurationError):
            classical_search_space(5, neuron_options=())


class TestHybridSpace:
    def test_size_is_30_per_ansatz(self):
        assert len(hybrid_search_space(10, "sel")) == 30
        assert len(hybrid_search_space(10, "bel")) == 30

    def test_contents(self):
        specs = hybrid_search_space(10, "bel", qubit_options=(3,), depth_options=(1, 2))
        assert [(s.n_qubits, s.n_layers) for s in specs] == [(3, 1), (3, 2)]
        assert all(s.ansatz == "bel" for s in specs)

    def test_spec_properties(self):
        spec = HybridSpec(n_features=20, n_qubits=3, n_layers=2, ansatz="sel")
        assert spec.label == "SEL(3,2)"
        assert spec.param_count == 20 * 3 + 3 + 18 + 3 * 3 + 3
        assert spec.flops() == hybrid_model_flops(20, 3, 2, "sel")

    def test_spec_build(self, rng):
        model = HybridSpec(
            n_features=6, n_qubits=3, n_layers=1, ansatz="bel"
        ).build(rng=rng)
        assert model.param_count == 6 * 3 + 3 + 3 + 3 * 3 + 3

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            HybridSpec(n_features=5, n_qubits=3, n_layers=1, ansatz="foo")
        with pytest.raises(ConfigurationError):
            HybridSpec(n_features=5, n_qubits=0, n_layers=1)


class TestFamilyDispatch:
    def test_families(self):
        assert len(search_space_for_family("classical", 10)) == 155
        assert len(search_space_for_family("bel", 10)) == 30
        assert len(search_space_for_family("sel", 10)) == 30

    def test_unknown_family(self):
        with pytest.raises(ConfigurationError):
            search_space_for_family("quantum", 10)
