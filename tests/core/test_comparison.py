"""Unit tests for the rate-of-increase comparison (Fig. 10 math)."""

import pytest

from repro.core.comparison import (
    SeriesSummary,
    absolute_increase,
    rate_of_increase,
)
from repro.exceptions import ExperimentError


class TestRateMetric:
    def test_paper_sel_flops_numbers(self):
        """Back-check the paper's arithmetic: SEL totals 1589 -> 3389
        gives the published 53.1% rate and 1800 absolute increase."""
        assert absolute_increase(1589, 3389) == 1800
        assert rate_of_increase(1589, 3389) == pytest.approx(0.531, abs=1e-3)

    def test_paper_bel_table_numbers(self):
        """BEL Table I totals 977 -> 4797 give a 79.6% rate (the paper
        text says 80.13% using the five-run averages)."""
        assert rate_of_increase(977, 4797) == pytest.approx(0.7963, abs=1e-3)

    def test_zero_low_value(self):
        assert rate_of_increase(0, 10) == 1.0

    def test_high_must_be_positive(self):
        with pytest.raises(ExperimentError):
            rate_of_increase(1, 0)


class TestSeriesSummary:
    def test_properties(self):
        s = SeriesSummary(
            feature_sizes=(10, 40, 110), values=(100.0, 200.0, 400.0)
        )
        assert s.low == 100 and s.high == 400
        assert s.absolute_increase == 300
        assert s.rate == pytest.approx(0.75)
        assert s.rate_percent == pytest.approx(75.0)

    def test_pairwise_rates(self):
        s = SeriesSummary(feature_sizes=(10, 20, 40), values=(100.0, 200.0, 400.0))
        assert s.pairwise_rates() == pytest.approx([0.5, 0.75])

    def test_validation(self):
        with pytest.raises(ExperimentError):
            SeriesSummary(feature_sizes=(10,), values=(1.0,))
        with pytest.raises(ExperimentError):
            SeriesSummary(feature_sizes=(10, 20), values=(1.0,))
