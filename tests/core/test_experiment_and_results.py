"""Integration tests for the protocol runner, comparison, and JSON I/O."""

import numpy as np
import pytest

from repro.core import (
    ProtocolConfig,
    comparative_analysis,
    load_protocol,
    protocol_from_dict,
    protocol_to_dict,
    run_protocol,
    save_protocol,
)
from repro.core.results import spec_from_dict, spec_to_dict
from repro.core.search_space import ClassicalSpec, HybridSpec
from repro.exceptions import ExperimentError


@pytest.fixture(scope="module")
def tiny_config():
    """Fast protocol configuration used across these tests."""
    return ProtocolConfig(
        feature_sizes=(4, 8),
        n_experiments=2,
        runs_per_candidate=1,
        epochs=20,
        batch_size=8,
        n_points=120,
        early_stop=True,
        max_candidates=3,
        threshold=0.4,  # low threshold so the tiny budget can succeed
    )


@pytest.fixture(scope="module")
def classical_result(tiny_config):
    return run_protocol("classical", tiny_config)


class TestRunProtocol:
    def test_levels_and_experiments(self, classical_result, tiny_config):
        assert classical_result.family == "classical"
        assert classical_result.feature_sizes == [4, 8]
        for lvl in classical_result.levels:
            assert len(lvl.outcomes) == tiny_config.n_experiments

    def test_winners_recorded(self, classical_result):
        for lvl in classical_result.levels:
            assert lvl.n_successes >= 1
            winner = lvl.smallest_winner
            assert winner is not None
            assert winner.flops <= min(
                w.flops for w in lvl.winners
            )

    def test_series_shapes(self, classical_result):
        assert len(classical_result.mean_flops_series()) == 2
        assert len(classical_result.smallest_params_series()) == 2

    def test_level_lookup(self, classical_result):
        assert classical_result.level(4).feature_size == 4
        with pytest.raises(ExperimentError):
            classical_result.level(99)

    def test_progress_callback(self, tiny_config):
        lines = []
        run_protocol(
            "classical",
            tiny_config.with_(feature_sizes=(4,), n_experiments=1),
            progress=lines.append,
        )
        assert len(lines) == 1 and "classical" in lines[0]

    def test_invalid_config(self, tiny_config):
        with pytest.raises(ExperimentError):
            run_protocol("classical", tiny_config.with_(n_experiments=0))


class TestComparativeAnalysis:
    def test_multi_family(self, tiny_config):
        hybrid_cfg = tiny_config.with_(max_candidates=2)
        sel = run_protocol("sel", hybrid_cfg)
        classical = run_protocol("classical", tiny_config)
        analysis = comparative_analysis([classical, sel])
        assert set(analysis.flops) == {"classical", "sel"}
        table = analysis.summary_table()
        assert "classical" in table and "sel" in table

    def test_mean_mode(self, classical_result):
        analysis = comparative_analysis([classical_result], use="mean")
        assert analysis.flops["classical"].values[0] > 0

    def test_invalid_use(self, classical_result):
        with pytest.raises(ExperimentError):
            comparative_analysis([classical_result], use="median")

    def test_mismatched_levels_rejected(self, classical_result, tiny_config):
        other = run_protocol(
            "classical", tiny_config.with_(feature_sizes=(4,))
        )
        with pytest.raises(ExperimentError):
            comparative_analysis([classical_result, other])

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            comparative_analysis([])


class TestSerialization:
    def test_spec_round_trip(self):
        for spec in (
            ClassicalSpec(n_features=7, hidden=(4, 2)),
            HybridSpec(n_features=9, n_qubits=4, n_layers=3, ansatz="bel"),
        ):
            assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_unknown_spec_type(self):
        with pytest.raises(ExperimentError):
            spec_from_dict({"type": "transformer"})

    def test_protocol_round_trip(self, classical_result):
        data = protocol_to_dict(classical_result)
        restored = protocol_from_dict(data)
        assert restored.family == classical_result.family
        assert restored.feature_sizes == classical_result.feature_sizes
        assert (
            restored.smallest_flops_series()
            == classical_result.smallest_flops_series()
        )
        assert (
            restored.levels[0].winners[0].train_accuracies
            == classical_result.levels[0].winners[0].train_accuracies
        )

    def test_file_round_trip(self, classical_result, tmp_path):
        path = tmp_path / "out" / "classical.json"
        save_protocol(classical_result, path)
        restored = load_protocol(path)
        assert restored.config == classical_result.config

    def test_schema_version_guard(self, classical_result):
        data = protocol_to_dict(classical_result)
        data["schema_version"] = "99.0"
        with pytest.raises(ExperimentError):
            protocol_from_dict(data)
