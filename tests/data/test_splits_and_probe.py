"""Unit tests for splitting, one-hot encoding and the complexity probe."""

import numpy as np
import pytest

from repro.data import make_spiral, one_hot, probe_complexity, stratified_split
from repro.exceptions import ConfigurationError


class TestOneHot:
    def test_round_trip(self):
        labels = np.array([0, 2, 1, 2])
        enc = one_hot(labels, 3)
        assert enc.shape == (4, 3)
        assert np.array_equal(np.argmax(enc, axis=1), labels)

    def test_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            one_hot(np.array([[0, 1]]), 3)
        with pytest.raises(ConfigurationError):
            one_hot(np.array([0, 3]), 3)
        with pytest.raises(ConfigurationError):
            one_hot(np.array([-1]), 3)


class TestStratifiedSplit:
    def test_sizes_and_stratification(self):
        ds = make_spiral(6, n_points=300)
        split = stratified_split(ds, val_fraction=0.2, seed=1)
        assert split.n_train + split.n_val == 300
        assert split.n_val == 60
        # each class contributes exactly 20% of its members
        for c in range(3):
            assert (split.val_labels == c).sum() == 20
            assert (split.train_labels == c).sum() == 80

    def test_one_hot_targets(self):
        ds = make_spiral(4, n_points=90)
        split = stratified_split(ds)
        assert split.y_train.shape == (split.n_train, 3)
        assert np.allclose(split.y_train.sum(axis=1), 1.0)
        assert np.array_equal(
            np.argmax(split.y_val, axis=1), split.val_labels
        )

    def test_deterministic(self):
        ds = make_spiral(4, n_points=120)
        a = stratified_split(ds, seed=5)
        b = stratified_split(ds, seed=5)
        assert np.array_equal(a.x_train, b.x_train)
        assert np.array_equal(a.val_labels, b.val_labels)

    def test_no_leakage(self):
        """Every point lands in exactly one of train/val."""
        ds = make_spiral(4, n_points=90)
        split = stratified_split(ds, seed=0)
        all_rows = np.vstack([split.x_train, split.x_val])
        # sort rows lexicographically and compare to the dataset rows
        def canon(arr):
            return np.sort(arr.view([("", arr.dtype)] * arr.shape[1]), axis=0)

        assert np.array_equal(canon(all_rows), canon(ds.features))

    def test_bad_fraction(self):
        ds = make_spiral(4, n_points=90)
        with pytest.raises(ConfigurationError):
            stratified_split(ds, val_fraction=0.0)
        with pytest.raises(ConfigurationError):
            stratified_split(ds, val_fraction=1.0)

    def test_tiny_class_rejected(self):
        ds = make_spiral(4, n_points=6, n_classes=3)
        with pytest.raises(ConfigurationError):
            stratified_split(ds, val_fraction=0.9)


class TestComplexityProbe:
    def test_returns_ordered_results(self):
        results = probe_complexity(
            (6, 12), n_points=90, epochs=3, batch_size=32
        )
        assert [r.feature_size for r in results] == [6, 12]
        for r in results:
            assert 0.0 <= r.val_accuracy <= 1.0
            assert r.train_time_s > 0
            assert r.noise == pytest.approx(0.1 + 0.003 * r.feature_size)

    def test_empty_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            probe_complexity(())
