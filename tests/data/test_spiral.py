"""Unit tests for the spiral dataset generator."""

import numpy as np
import pytest

from repro.config import noise_for_features
from repro.data import DERIVED_FEATURE_KINDS, make_spiral
from repro.exceptions import ConfigurationError


class TestBasicProperties:
    def test_shapes_and_counts(self):
        ds = make_spiral(10, n_points=300)
        assert ds.features.shape == (300, 10)
        assert ds.labels.shape == (300,)
        assert ds.n_points == 300
        assert ds.n_features == 10

    def test_class_balance(self):
        ds = make_spiral(5, n_points=300, n_classes=3)
        assert ds.class_counts().tolist() == [100, 100, 100]

    def test_uneven_points_distributed(self):
        ds = make_spiral(4, n_points=301, n_classes=3)
        counts = ds.class_counts()
        assert counts.sum() == 301
        assert counts.max() - counts.min() <= 1

    def test_standardization(self):
        ds = make_spiral(20, n_points=600)
        assert np.allclose(ds.features.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(ds.features.std(axis=0), 1.0, atol=1e-9)

    def test_one_hot(self):
        ds = make_spiral(4, n_points=90)
        onehot = ds.one_hot()
        assert onehot.shape == (90, 3)
        assert np.allclose(onehot.sum(axis=1), 1.0)
        assert np.array_equal(np.argmax(onehot, axis=1), ds.labels)

    def test_feature_recipe_recorded(self):
        ds = make_spiral(8, n_points=60)
        assert len(ds.feature_recipe) == 8
        assert ds.feature_recipe[:2] == ("spiral_x", "spiral_y")
        assert all(
            k in DERIVED_FEATURE_KINDS for k in ds.feature_recipe[2:]
        )


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = make_spiral(15, n_points=200, seed=9)
        b = make_spiral(15, n_points=200, seed=9)
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seed_different_data(self):
        a = make_spiral(15, n_points=200, seed=1)
        b = make_spiral(15, n_points=200, seed=2)
        assert not np.array_equal(a.features, b.features)


class TestNoiseSchedule:
    def test_paper_formula_default(self):
        assert make_spiral(10, n_points=60).noise == pytest.approx(0.13)
        assert make_spiral(110, n_points=60).noise == pytest.approx(0.43)
        assert noise_for_features(50) == pytest.approx(0.25)

    def test_noise_override(self):
        assert make_spiral(10, n_points=60, noise=0.05).noise == 0.05

    def test_spiral_arms_separate_at_low_noise(self):
        """With zero noise the two base features determine the class via
        a clean spiral: a 1-nearest-neighbour rule on many points should
        be nearly perfect."""
        ds = make_spiral(2, n_points=300, noise=0.0)
        x = ds.features
        correct = 0
        for i in range(0, 300, 10):
            d = np.sum((x - x[i]) ** 2, axis=1)
            d[i] = np.inf
            correct += ds.labels[np.argmin(d)] == ds.labels[i]
        assert correct / 30 > 0.9


class TestValidation:
    def test_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            make_spiral(1)
        with pytest.raises(ConfigurationError):
            make_spiral(5, n_points=2, n_classes=3)
        with pytest.raises(ConfigurationError):
            make_spiral(5, n_classes=1)
        with pytest.raises(ConfigurationError):
            make_spiral(5, noise=-0.1)
        with pytest.raises(ConfigurationError):
            make_spiral(5, angle_noise_fraction=1.5)

    def test_dataset_is_frozen(self):
        ds = make_spiral(4, n_points=60)
        with pytest.raises(AttributeError):
            ds.noise = 1.0
