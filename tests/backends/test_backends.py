"""The array-backend protocol: registry, NumPy semantics, scoping."""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro.backends import (
    BACKEND_ENV_VAR,
    COMPLEX_DTYPE,
    REAL_DTYPE,
    NumpyBackend,
    _clear_backend_cache,
    active_backend,
    available_backends,
    get_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.exceptions import BackendUnavailable, ConfigurationError

torch_missing = importlib.util.find_spec("torch") is None


@pytest.fixture(autouse=True)
def _isolate_backend_state(monkeypatch):
    """Every test starts from the no-configuration default."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    set_default_backend(None)
    yield
    set_default_backend(None)


class TestRegistry:
    def test_available_backends(self):
        assert available_backends() == ("numpy", "torch", "cupy")

    def test_numpy_backend_is_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_unknown_name_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown array backend"):
            get_backend("jax")

    @pytest.mark.skipif(not torch_missing, reason="torch is installed here")
    def test_missing_library_raises_backend_unavailable(self):
        _clear_backend_cache()
        with pytest.raises(BackendUnavailable, match="torch"):
            get_backend("torch")
        # BackendUnavailable is a ConfigurationError subtype, so callers
        # with a single except clause keep working.
        assert issubclass(BackendUnavailable, ConfigurationError)


class TestNumpyBackendSemantics:
    """The default backend must be the historical NumPy calls verbatim."""

    xp = NumpyBackend()

    def test_identity_and_dtypes(self):
        assert self.xp.name == "numpy"
        assert self.xp.is_numpy
        assert self.xp.complex_dtype == COMPLEX_DTYPE == np.complex128
        assert self.xp.real_dtype == REAL_DTYPE == np.float64

    def test_allocation_defaults_to_real_dtype(self):
        assert self.xp.empty((2, 3)).dtype == np.float64
        assert self.xp.zeros((2, 3)).dtype == np.float64
        buf = self.xp.empty((2, 2), dtype=self.xp.complex_dtype)
        assert buf.dtype == np.complex128

    def test_to_numpy_is_identity_for_ndarrays(self):
        a = np.arange(4.0)
        assert self.xp.to_numpy(a) is a

    def test_as_real_casts(self):
        out = self.xp.as_real([1, 2, 3])
        assert out.dtype == np.float64

    def test_take_is_axis1_gather(self):
        a = np.arange(12.0).reshape(3, 4)
        idx = np.array([3, 0, 2])
        out = np.empty((3, 3))
        self.xp.take(a, idx, out)
        np.testing.assert_array_equal(out, a[:, idx])

    def test_einsum_and_matmul_out(self):
        a = np.random.default_rng(0).standard_normal((4, 4))
        out = np.empty((4, 4))
        self.xp.matmul(a, a, out=out)
        np.testing.assert_array_equal(out, a @ a)
        out2 = np.empty((4, 4))
        self.xp.einsum("ij,jk->ik", a, a, out=out2)
        np.testing.assert_allclose(out2, a @ a)

    def test_multiply_fill_and_index_const(self):
        a = np.full((2, 2), 3.0)
        out = np.empty((2, 2))
        self.xp.multiply(a, a, out)
        np.testing.assert_array_equal(out, a * a)
        self.xp.fill(out, 0.0)
        assert not out.any()
        idx = np.array([1, 0])
        assert self.xp.index_const(idx) is idx

    def test_conj_transpose_and_abs2(self):
        m = np.array([[1 + 2j, 3j], [4.0, 5 - 1j]])
        np.testing.assert_array_equal(
            self.xp.conj_transpose(m), np.conj(m.T)
        )
        z = np.array([3 + 4j, 1 - 1j])
        # the contract is the exact expression, not |z|**2's rounding
        np.testing.assert_array_equal(
            self.xp.abs2(z), z.real**2 + z.imag**2
        )

    def test_synchronize_is_a_noop(self):
        self.xp.synchronize()


class TestScoping:
    def test_active_defaults_to_numpy(self):
        assert active_backend().is_numpy

    def test_use_backend_scopes_and_nests(self):
        outer = NumpyBackend()
        inner = NumpyBackend()
        with use_backend(outer):
            assert active_backend() is outer
            with use_backend(inner):
                assert active_backend() is inner
            assert active_backend() is outer
        assert active_backend() is get_backend("numpy")

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend(NumpyBackend()):
                raise RuntimeError("boom")
        assert active_backend() is get_backend("numpy")

    def test_set_default_backend(self):
        marker = NumpyBackend()
        set_default_backend(marker)
        assert active_backend() is marker
        set_default_backend(None)
        assert active_backend() is get_backend("numpy")


class TestResolveBackend:
    def test_no_request_resolves_to_numpy(self):
        backend, fallback = resolve_backend(None)
        assert backend.is_numpy
        assert fallback is None

    def test_explicit_name_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "torch")
        backend, fallback = resolve_backend("numpy")
        assert backend.is_numpy
        assert fallback is None

    def test_env_var_is_consulted(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        backend, fallback = resolve_backend(None)
        assert backend.is_numpy
        assert fallback is None

    def test_default_backend_is_consulted(self):
        marker = NumpyBackend()
        set_default_backend(marker)
        backend, fallback = resolve_backend(None)
        assert backend is marker
        assert fallback is None

    @pytest.mark.skipif(not torch_missing, reason="torch is installed here")
    def test_unimportable_backend_falls_back_with_reason(self):
        _clear_backend_cache()
        backend, fallback = resolve_backend("torch")
        assert backend.is_numpy
        assert "torch" in fallback and "falling back to numpy" in fallback

    @pytest.mark.skipif(not torch_missing, reason="torch is installed here")
    def test_unimportable_env_backend_falls_back(self, monkeypatch):
        _clear_backend_cache()
        monkeypatch.setenv(BACKEND_ENV_VAR, "torch")
        backend, fallback = resolve_backend(None)
        assert backend.is_numpy
        assert fallback is not None

    def test_unknown_name_still_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("jax")
