"""The TorchBackend adapter exercised over the NumPy-backed torch stub.

Real torch is optional (covered by ``test_torch_differential.py`` in
the CI torch job); these tests keep the adapter's tensor round-trips,
``out=`` emulation and the engine/stacked-path device plumbing covered
on every machine.  Because the stub computes with NumPy underneath, the
"device" results here are *bit*-equal to the reference — any deviation
is an adapter bug, not kernel rounding.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import get_backend, use_backend
from repro.core.search_space import HybridSpec
from repro.data import make_spiral, stratified_split
from repro.quantum import (
    CompiledTape,
    angle_embedding,
    random_sel_weights,
    strongly_entangling_layers,
)
from repro.runtime.jobs import execute_runs

N_QUBITS = 3
BATCH = 8


def _sel_case():
    rng = np.random.default_rng(21)
    x = rng.uniform(-1, 1, (BATCH, N_QUBITS))
    w = random_sel_weights(2, N_QUBITS, rng)
    tape = angle_embedding(x, N_QUBITS) + strongly_entangling_layers(
        w, N_QUBITS
    )
    grad = rng.standard_normal((BATCH, N_QUBITS))
    return tape, x, w, grad


class TestAdapterOverStub:
    def test_backend_constructs_on_cpu(self, torch_stub):
        xp = get_backend("torch")
        assert xp.name == "torch"
        assert not xp.is_numpy
        assert xp.device.type == "cpu"
        xp.synchronize()

    def test_round_trip_and_allocation(self, torch_stub):
        xp = get_backend("torch")
        host = np.arange(6.0).reshape(2, 3)
        dev = xp.asarray(host)
        assert isinstance(dev, torch_stub.Tensor)
        np.testing.assert_array_equal(xp.to_numpy(dev), host)
        assert xp.empty((2, 2), dtype=xp.complex_dtype).dtype == np.complex128
        # negative-stride views must upload cleanly (torch rejects them
        # without the adapter's ascontiguousarray normalization)
        np.testing.assert_array_equal(
            xp.to_numpy(xp.asarray(host[:, ::-1])), host[:, ::-1]
        )

    def test_out_parameter_emulation(self, torch_stub):
        xp = get_backend("torch")
        a = xp.asarray(np.random.default_rng(3).standard_normal((4, 4)))
        out = xp.empty((4, 4))
        xp.matmul(a, a, out=out)
        np.testing.assert_allclose(
            xp.to_numpy(out), xp.to_numpy(a) @ xp.to_numpy(a)
        )
        out2 = xp.empty((4, 4))
        xp.einsum("ij,jk->ik", a, a, out=out2)
        np.testing.assert_allclose(xp.to_numpy(out2), xp.to_numpy(out))
        gathered = xp.empty((4, 2))
        xp.take(a, xp.index_const(np.array([3, 1])), gathered)
        np.testing.assert_array_equal(
            xp.to_numpy(gathered), xp.to_numpy(a)[:, [3, 1]]
        )


class TestEngineOverStub:
    def test_forward_matches_numpy(self, torch_stub):
        tape, x, w, _ = _sel_case()
        dev = CompiledTape(tape, N_QUBITS, backend=get_backend("torch"))
        ref = CompiledTape(tape, N_QUBITS)
        got = dev.backend.to_numpy(dev.execute(x, w.ravel()))
        np.testing.assert_array_equal(got, ref.execute(x, w.ravel()))

    def test_expvals_match_numpy(self, torch_stub):
        tape, x, w, _ = _sel_case()
        dev = CompiledTape(tape, N_QUBITS, backend=get_backend("torch"))
        ref = CompiledTape(tape, N_QUBITS)
        got = dev.backend.to_numpy(dev.expvals(dev.execute(x, w.ravel())))
        np.testing.assert_array_equal(
            got, ref.expvals(ref.execute(x, w.ravel()))
        )

    def test_adjoint_gradients_match_numpy(self, torch_stub):
        tape, x, w, grad = _sel_case()
        dev = CompiledTape(tape, N_QUBITS, backend=get_backend("torch"))
        ref = CompiledTape(tape, N_QUBITS)
        dev.execute(x, w.ravel(), record=True)
        ref.execute(x, w.ravel(), record=True)
        got_in, got_w = dev.adjoint_gradients(grad, N_QUBITS, w.size)
        want_in, want_w = ref.adjoint_gradients(grad, N_QUBITS, w.size)
        np.testing.assert_array_equal(
            dev.backend.to_numpy(got_in), want_in
        )
        np.testing.assert_array_equal(dev.backend.to_numpy(got_w), want_w)


class TestStackedSweepOverStub:
    def test_run_stacked_training_matches_numpy(self, torch_stub):
        """The full fused path (execute_runs -> train_stack kernels) on
        the stub backend reproduces the NumPy metrics exactly."""
        split = stratified_split(make_spiral(4, n_points=60, seed=9), seed=9)
        spec = HybridSpec(n_features=4, n_qubits=3, n_layers=2, ansatz="sel")
        from repro.core.grid_search import TrainingSettings

        def sweep(backend):
            return execute_runs(
                spec,
                seed=9,
                candidate_index=0,
                runs=[0, 1],
                split=split,
                settings=TrainingSettings(
                    epochs=2, batch_size=8, runs=2, backend=backend
                ),
            )

        got = sweep("torch")
        want = sweep(None)
        assert [r.train_accuracy for r in got] == [
            r.train_accuracy for r in want
        ]
        assert [r.val_accuracy for r in got] == [
            r.val_accuracy for r in want
        ]
        assert [r.epochs_run for r in got] == [r.epochs_run for r in want]

    def test_use_backend_scopes_stacked_layers(self, torch_stub):
        from repro.nn.stacked import StackedDense
        from repro.nn.layers import Dense

        rng = np.random.default_rng(2)
        layers = [Dense(4, 3, rng=rng) for _ in range(2)]
        with use_backend(get_backend("torch")):
            stacked = StackedDense(2, layers)
        assert isinstance(stacked.weight, torch_stub.Tensor)
        x = rng.standard_normal((2 * 5, 4))
        out = stacked._xp.to_numpy(stacked.forward(x))
        ref = np.concatenate(
            [layer.forward(x[i * 5 : (i + 1) * 5]) for i, layer in enumerate(layers)]
        )
        np.testing.assert_array_equal(out, ref)
