"""A minimal NumPy-backed substitute for the ``torch`` module.

PyTorch is an optional dependency this environment may not ship, yet
the :class:`repro.backends.torch_backend.TorchBackend` adapter code —
tensor round-trips, ``out=``-less einsum, ``index_select`` gathers,
``copy_``/``fill_`` in-place ops — must stay covered everywhere.  This
stub implements exactly the slice of torch's API the adapter touches,
with ``Tensor`` as an ``np.ndarray`` subclass so every arithmetic
operator and view the engine applies to device buffers just works.

Installed into ``sys.modules["torch"]`` by the ``torch_stub`` fixture
(see ``conftest.py``); real-torch coverage lives in
``test_torch_differential.py`` behind ``pytest.importorskip`` and runs
in the optional CI job.
"""

from __future__ import annotations

import numpy as np

complex128 = np.complex128
float64 = np.float64
int64 = np.int64

#: Lets tests distinguish this stub from a real torch install.
__repro_torch_stub__ = True


class Tensor(np.ndarray):
    """An ndarray with the tensor methods the backend adapter calls."""

    def detach(self) -> "Tensor":
        return self

    def cpu(self) -> "Tensor":
        return self

    def numpy(self) -> np.ndarray:
        return self.view(np.ndarray)

    def contiguous(self) -> "Tensor":
        return np.ascontiguousarray(self).view(Tensor)

    def copy_(self, other) -> "Tensor":
        self[...] = other
        return self

    def fill_(self, value) -> "Tensor":
        np.ndarray.fill(self, value)
        return self

    def to(self, dtype=None, device=None) -> "Tensor":
        if dtype is None or self.dtype == dtype:
            return self
        return np.asarray(self, dtype=dtype).view(Tensor)


class device:  # noqa: N801 - torch spells it lowercase
    def __init__(self, name: str) -> None:
        self.type = str(name).split(":")[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"device(type={self.type!r})"


class cuda:  # noqa: N801 - torch spells it lowercase
    @staticmethod
    def is_available() -> bool:
        return False

    @staticmethod
    def synchronize() -> None:  # pragma: no cover - cpu-only stub
        pass


def as_tensor(data, dtype=None, device=None) -> Tensor:
    return np.asarray(data, dtype=dtype).view(Tensor)


def empty(shape, dtype=None, device=None) -> Tensor:
    return np.empty(shape, dtype=dtype).view(Tensor)


def zeros(shape, dtype=None, device=None) -> Tensor:
    return np.zeros(shape, dtype=dtype).view(Tensor)


def zeros_like(a) -> Tensor:
    return np.zeros_like(a).view(Tensor)


def einsum(spec, *operands) -> Tensor:
    return np.einsum(spec, *operands).view(Tensor)


def matmul(a, b) -> Tensor:
    return np.matmul(a, b).view(Tensor)


def index_select(a, dim, indices, out=None):
    result = np.take(a, np.asarray(indices), axis=dim)
    if out is None:
        return result.view(Tensor)
    out[...] = result
    return out


def sqrt(a) -> Tensor:
    return np.sqrt(a).view(Tensor)


def square(a) -> Tensor:
    return np.square(a).view(Tensor)
