"""Fixtures for the backend suite: the installable torch stub."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

from repro.backends import _clear_backend_cache


@pytest.fixture
def torch_stub(monkeypatch):
    """Install the NumPy-backed torch substitute for one test.

    Clears the backend instance cache on both sides so a
    ``TorchBackend`` built over the stub never leaks into (or out of)
    the test, and ``sys.modules["torch"]`` is restored afterwards.
    """
    path = pathlib.Path(__file__).with_name("_torchstub.py")
    spec = importlib.util.spec_from_file_location("_repro_torch_stub", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    _clear_backend_cache()
    monkeypatch.setitem(sys.modules, "torch", module)
    yield module
    _clear_backend_cache()
