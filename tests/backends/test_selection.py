"""Backend selection plumbing: CLI flag, config threading, fallback
event, pooled-worker inheritance and result-cache keying."""

from __future__ import annotations

import importlib.util

import pytest

from repro.backends import BACKEND_ENV_VAR, set_default_backend
from repro.cli import build_parser
from repro.core.experiment import ProtocolConfig
from repro.core.grid_search import TrainingSettings, grid_search
from repro.core.search_space import ClassicalSpec
from repro.data import make_spiral, stratified_split
from repro.experiments.runner import run_family_cached
from repro.runtime.pool import PersistentPool

torch_missing = importlib.util.find_spec("torch") is None


@pytest.fixture(autouse=True)
def _no_backend_env(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    set_default_backend(None)
    yield
    set_default_backend(None)


class TestCliFlag:
    def test_backend_flag_parses(self):
        args = build_parser().parse_args(["fig6", "--backend", "torch"])
        assert args.backend == "torch"

    def test_backend_defaults_to_none(self):
        args = build_parser().parse_args(["fig6"])
        assert args.backend is None

    def test_unknown_backend_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["fig6", "--backend", "jax"])
        assert exc.value.code == 2
        assert "--backend" in capsys.readouterr().err


class TestConfigThreading:
    def test_protocol_config_threads_backend_into_settings(self):
        cfg = ProtocolConfig(backend="torch")
        assert cfg.training_settings().backend == "torch"

    def test_default_is_none(self):
        assert ProtocolConfig().training_settings().backend is None

    def test_pool_ships_backend_to_worker_init(self):
        pool = PersistentPool(2, backend="numpy")
        try:
            assert pool.backend == "numpy"
            # The worker initializer receives (ctrl_name, backend_name):
            # every job a worker runs inherits the pool's backend.
            assert pool._initargs[-1] == "numpy"
        finally:
            pool.close()

    def test_pool_defaults_to_no_backend(self):
        pool = PersistentPool(2)
        try:
            assert pool._initargs[-1] is None
        finally:
            pool.close()


@pytest.mark.skipif(not torch_missing, reason="torch is installed here")
class TestFallbackEvent:
    def test_grid_search_emits_one_backend_fallback_event(self):
        split = stratified_split(make_spiral(4, n_points=60, seed=5), seed=5)
        events = []
        outcome = grid_search(
            [ClassicalSpec(n_features=4, hidden=(2,))],
            split,
            threshold=0.2,
            settings=TrainingSettings(epochs=2, runs=2, backend="torch"),
            seed=5,
            on_event=lambda e: events.append(e),
        )
        assert outcome.candidates_trained >= 1
        fallbacks = [e for e in events if e.kind == "backend-fallback"]
        assert len(fallbacks) == 1
        assert "torch" in fallbacks[0].message
        assert "numpy" in fallbacks[0].message

    def test_no_event_when_backend_unset(self):
        split = stratified_split(make_spiral(4, n_points=60, seed=5), seed=5)
        events = []
        grid_search(
            [ClassicalSpec(n_features=4, hidden=(2,))],
            split,
            threshold=0.2,
            settings=TrainingSettings(epochs=2, runs=1),
            seed=5,
            on_event=lambda e: events.append(e),
        )
        assert not [e for e in events if e.kind == "backend-fallback"]


class TestCacheKeying:
    def test_backend_override_keys_the_cache_filename(
        self, tmp_path, micro_profile
    ):
        run_family_cached(
            "classical",
            micro_profile,
            cache_dir=tmp_path,
            backend="numpy",
        )
        names = [p.name for p in tmp_path.glob("*.json")]
        assert names == ["classical_micro_backend-numpy.json"]

    def test_default_backend_uses_the_plain_key(self, tmp_path, micro_profile):
        run_family_cached("classical", micro_profile, cache_dir=tmp_path)
        names = [p.name for p in tmp_path.glob("*.json")]
        assert names == ["classical_micro.json"]
