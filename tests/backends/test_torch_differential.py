"""Tolerance differentials for the real-torch backend.

These run only where PyTorch is actually installed (the optional
``torch-cpu`` CI job; any dev box with torch).  Everywhere else they
skip at import.  Unlike the stub tests, the device kernels here are
torch's own einsum/gemm, so the contract is *tolerance* (1e-10
relative), never bit-identity — that guarantee is scoped to the NumPy
backend.
"""

from __future__ import annotations

import numpy as np
import pytest

torch = pytest.importorskip("torch")

from repro.backends import get_backend  # noqa: E402
from repro.core.grid_search import TrainingSettings  # noqa: E402
from repro.core.search_space import HybridSpec  # noqa: E402
from repro.data import make_spiral, stratified_split  # noqa: E402
from repro.quantum import (  # noqa: E402
    CompiledTape,
    angle_embedding,
    random_sel_weights,
    strongly_entangling_layers,
)
from repro.runtime.jobs import execute_runs  # noqa: E402

RTOL = 1e-10
ATOL = 1e-12


def _sel_case(n_qubits: int, batch: int = 16):
    rng = np.random.default_rng((31, n_qubits))
    x = rng.uniform(-1, 1, (batch, n_qubits))
    w = random_sel_weights(2, n_qubits, rng)
    tape = angle_embedding(x, n_qubits) + strongly_entangling_layers(
        w, n_qubits
    )
    grad = rng.standard_normal((batch, n_qubits))
    return tape, x, w, grad


@pytest.mark.parametrize("n_qubits", [3, 4, 6])
class TestEngineDifferential:
    def test_forward_state(self, n_qubits):
        tape, x, w, _ = _sel_case(n_qubits)
        dev = CompiledTape(tape, n_qubits, backend=get_backend("torch"))
        ref = CompiledTape(tape, n_qubits)
        got = dev.backend.to_numpy(dev.execute(x, w.ravel()))
        np.testing.assert_allclose(
            got, ref.execute(x, w.ravel()), rtol=RTOL, atol=ATOL
        )

    def test_expvals(self, n_qubits):
        tape, x, w, _ = _sel_case(n_qubits)
        dev = CompiledTape(tape, n_qubits, backend=get_backend("torch"))
        ref = CompiledTape(tape, n_qubits)
        got = dev.backend.to_numpy(dev.expvals(dev.execute(x, w.ravel())))
        np.testing.assert_allclose(
            got,
            ref.expvals(ref.execute(x, w.ravel())),
            rtol=RTOL,
            atol=ATOL,
        )

    def test_adjoint_gradients(self, n_qubits):
        tape, x, w, grad = _sel_case(n_qubits)
        dev = CompiledTape(tape, n_qubits, backend=get_backend("torch"))
        ref = CompiledTape(tape, n_qubits)
        dev.execute(x, w.ravel(), record=True)
        ref.execute(x, w.ravel(), record=True)
        got_in, got_w = dev.adjoint_gradients(grad, n_qubits, w.size)
        want_in, want_w = ref.adjoint_gradients(grad, n_qubits, w.size)
        xp = dev.backend
        np.testing.assert_allclose(
            xp.to_numpy(got_in), want_in, rtol=RTOL, atol=ATOL
        )
        np.testing.assert_allclose(
            xp.to_numpy(got_w), want_w, rtol=RTOL, atol=ATOL
        )


class TestTrainingDifferential:
    def test_run_stacked_metrics_agree(self):
        """End to end: the fused sweep on torch reaches the same per-run
        accuracies as NumPy.  Accuracies are argmax counts over a
        minibatch, so tolerance-grade kernels still agree exactly unless
        a prediction sits within kernel rounding of the boundary."""
        split = stratified_split(make_spiral(4, n_points=60, seed=13), seed=13)
        spec = HybridSpec(n_features=4, n_qubits=3, n_layers=2, ansatz="sel")

        def sweep(backend):
            return execute_runs(
                spec,
                seed=13,
                candidate_index=0,
                runs=[0, 1],
                split=split,
                settings=TrainingSettings(
                    epochs=3, batch_size=8, runs=2, backend=backend
                ),
            )

        got = sweep("torch")
        want = sweep(None)
        for g, w in zip(got, want):
            assert g.epochs_run == w.epochs_run
            assert g.train_accuracy == pytest.approx(
                w.train_accuracy, abs=0.05
            )
            assert g.val_accuracy == pytest.approx(w.val_accuracy, abs=0.05)
