"""Unit tests for the model builders (the paper's Fig. 3 architectures)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.flops import classical_param_count, hybrid_param_count
from repro.hybrid import QuantumLayer, build_classical_model, build_hybrid_model
from repro.nn.layers import Dense, ReLU, Softmax


class TestClassicalBuilder:
    def test_layer_sequence(self, rng):
        model = build_classical_model(10, (4, 6), rng=rng)
        kinds = [type(l).__name__ for l in model.layers]
        assert kinds == ["Dense", "ReLU", "Dense", "ReLU", "Dense", "Softmax"]

    def test_dims_chain(self, rng):
        model = build_classical_model(7, (4,), n_classes=5, rng=rng)
        dense_layers = [l for l in model.layers if isinstance(l, Dense)]
        assert (dense_layers[0].in_features, dense_layers[0].out_features) == (7, 4)
        assert (dense_layers[1].in_features, dense_layers[1].out_features) == (4, 5)

    def test_param_count_matches_formula(self, rng):
        for hidden in [(2,), (10, 10), (2, 4, 6)]:
            model = build_classical_model(9, hidden, rng=rng)
            assert model.param_count == classical_param_count(9, hidden)

    def test_forward_shape(self, rng):
        model = build_classical_model(5, (4,), rng=rng)
        out = model.predict(rng.standard_normal((8, 5)))
        assert out.shape == (8, 3)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_invalid_arguments(self, rng):
        with pytest.raises(ConfigurationError):
            build_classical_model(0, (4,), rng=rng)
        with pytest.raises(ConfigurationError):
            build_classical_model(5, (), rng=rng)
        with pytest.raises(ConfigurationError):
            build_classical_model(5, (0,), rng=rng)
        with pytest.raises(ConfigurationError):
            build_classical_model(5, (4,), n_classes=1, rng=rng)


class TestHybridBuilder:
    def test_layer_sequence_default_linear_input(self, rng):
        model = build_hybrid_model(10, 3, 2, rng=rng)
        kinds = [type(l).__name__ for l in model.layers]
        assert kinds == ["Dense", "QuantumLayer", "Dense", "Softmax"]

    def test_layer_sequence_relu_variant(self, rng):
        model = build_hybrid_model(10, 3, 2, input_activation="relu", rng=rng)
        kinds = [type(l).__name__ for l in model.layers]
        assert kinds == ["Dense", "ReLU", "QuantumLayer", "Dense", "Softmax"]

    def test_quantum_block_configured(self, rng):
        model = build_hybrid_model(10, 4, 5, ansatz="bel", rng=rng)
        qlayer = next(l for l in model.layers if isinstance(l, QuantumLayer))
        assert qlayer.n_qubits == 4
        assert qlayer.n_layers == 5
        assert qlayer.ansatz == "bel"

    def test_param_count_matches_formula(self, rng):
        for ansatz in ("bel", "sel"):
            for q, l in [(3, 2), (5, 10)]:
                model = build_hybrid_model(20, q, l, ansatz=ansatz, rng=rng)
                assert model.param_count == hybrid_param_count(
                    20, q, l, ansatz
                )

    def test_paper_example_param_count(self, rng):
        """SEL(3,2) on 10 features: 10*3+3 input + 18 quantum + 3*3+3
        output = 63 trainable parameters."""
        model = build_hybrid_model(10, 3, 2, ansatz="sel", rng=rng)
        assert model.param_count == 63

    def test_forward_shape(self, rng):
        model = build_hybrid_model(6, 3, 1, rng=rng)
        out = model.predict(rng.standard_normal((4, 6)))
        assert out.shape == (4, 3)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_invalid_arguments(self, rng):
        with pytest.raises(ConfigurationError):
            build_hybrid_model(0, 3, 1, rng=rng)
        with pytest.raises(ConfigurationError):
            build_hybrid_model(5, 3, 1, n_classes=1, rng=rng)
        with pytest.raises(ConfigurationError):
            build_hybrid_model(5, 3, 1, input_activation="tanh", rng=rng)
