"""Unit tests for the QuantumLayer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.hybrid import QuantumLayer
from repro.quantum import (
    angle_embedding,
    basic_entangler_layers,
    expval_z,
    run,
    strongly_entangling_layers,
    tape_summary,
)


class TestConstruction:
    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            QuantumLayer(0, 1)
        with pytest.raises(ConfigurationError):
            QuantumLayer(2, 0)
        with pytest.raises(ConfigurationError):
            QuantumLayer(2, 1, ansatz="xyz")
        with pytest.raises(ConfigurationError):
            QuantumLayer(2, 1, gradient_method="magic")

    def test_param_counts(self, rng):
        assert QuantumLayer(3, 2, ansatz="bel", rng=rng).param_count == 6
        assert QuantumLayer(3, 2, ansatz="sel", rng=rng).param_count == 18
        assert QuantumLayer(4, 5, ansatz="sel", rng=rng).n_weights == 60

    def test_weight_shapes(self, rng):
        assert QuantumLayer(3, 2, ansatz="bel", rng=rng).weights.shape == (2, 3)
        assert QuantumLayer(3, 2, ansatz="sel", rng=rng).weights.shape == (2, 3, 3)

    def test_repr(self, rng):
        text = repr(QuantumLayer(3, 2, rng=rng))
        assert "qubits=3" in text and "sel" in text


class TestForward:
    def test_matches_direct_simulation(self, rng):
        layer = QuantumLayer(3, 2, ansatz="sel", rng=rng)
        x = rng.uniform(-1, 1, (4, 3))
        out = layer.forward(x)
        tape = angle_embedding(x, 3) + strongly_entangling_layers(
            layer.weights, 3
        )
        expected = expval_z(run(tape, 3, batch=4))
        assert np.allclose(out, expected)

    def test_bel_tape_structure(self, rng):
        layer = QuantumLayer(3, 2, ansatz="bel", rng=rng)
        counts = tape_summary(layer.representative_tape())
        # 3 encoding RY + 6 ansatz RY, 6 CNOTs
        assert counts == {"RY": 9, "CNOT": 6}

    def test_output_bounds_and_shape(self, rng):
        layer = QuantumLayer(4, 3, ansatz="bel", rng=rng)
        out = layer.forward(rng.uniform(-5, 5, (7, 4)))
        assert out.shape == (7, 4)
        assert (np.abs(out) <= 1.0 + 1e-12).all()

    def test_shape_validation(self, rng):
        layer = QuantumLayer(3, 1, rng=rng)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((2, 4)))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros(3))

    def test_output_dim(self, rng):
        layer = QuantumLayer(3, 1, rng=rng)
        assert layer.output_dim(3) == 3
        with pytest.raises(ShapeError):
            layer.output_dim(2)


class TestEngineFallback:
    def test_unrebindable_per_sample_params_use_reference_path(self, rng):
        """A custom tape with per-sample params but no input refs cannot
        be rebound by the engine — even when the first forward has batch
        1 — and must fall back to the reference executor."""
        from repro.quantum import Operation, expval_z, run

        class BakedLayer(QuantumLayer):
            def build_tape(self, x):
                # Data baked in WITHOUT input refs: unrebindable.
                return [
                    Operation("RY", (w,), (x[:, w],))
                    for w in range(self.n_qubits)
                ]

        layer = BakedLayer(2, 1, rng=rng)
        x1 = rng.uniform(-1, 1, (1, 2))
        out1 = layer.forward(x1)
        assert layer._engine is None and layer._engine_disabled
        expected1 = expval_z(run(layer.build_tape(x1), 2, 1))
        assert np.allclose(out1, expected1, atol=1e-12)
        # Later calls with different data/batch still track the data.
        x2 = rng.uniform(-1, 1, (4, 2))
        out2 = layer.forward(x2)
        expected2 = expval_z(run(layer.build_tape(x2), 2, 4))
        assert np.allclose(out2, expected2, atol=1e-12)
        assert not np.allclose(out2, np.broadcast_to(out1, out2.shape))


class TestBackward:
    def test_requires_training_forward(self, rng):
        layer = QuantumLayer(2, 1, rng=rng)
        layer.forward(np.zeros((1, 2)))  # inference forward: no cache
        with pytest.raises(ShapeError):
            layer.backward(np.ones((1, 2)))

    @pytest.mark.parametrize("ansatz", ["bel", "sel"])
    def test_adjoint_and_shift_backends_agree(self, ansatz, rng):
        x = rng.uniform(-1, 1, (3, 3))
        grad = rng.standard_normal((3, 3))
        adj = QuantumLayer(
            3, 2, ansatz=ansatz, gradient_method="adjoint",
            rng=np.random.default_rng(5),
        )
        shf = QuantumLayer(
            3, 2, ansatz=ansatz, gradient_method="parameter_shift",
            rng=np.random.default_rng(5),
        )
        assert np.allclose(adj.weights, shf.weights)
        adj.forward(x, training=True)
        shf.forward(x, training=True)
        dx_a = adj.backward(grad)
        dx_s = shf.backward(grad)
        assert np.allclose(dx_a, dx_s, atol=1e-10)
        assert np.allclose(adj.grads[0], shf.grads[0], atol=1e-10)

    def test_eval_forward_between_training_forward_and_backward(self, rng):
        """A metric/eval forward must not corrupt the pending backward."""
        x = rng.uniform(-1, 1, (3, 2))
        g = rng.standard_normal((3, 2))
        layer = QuantumLayer(2, 2, rng=np.random.default_rng(9))
        ref = QuantumLayer(2, 2, rng=np.random.default_rng(9))
        ref.forward(x, training=True)
        dx_ref = ref.backward(g)
        layer.forward(x, training=True)
        layer.forward(rng.uniform(-1, 1, (7, 2)))  # inference pass
        dx = layer.backward(g)
        assert np.allclose(dx, dx_ref, atol=1e-12)
        assert np.allclose(layer.grads[0], ref.grads[0], atol=1e-12)

    def test_grads_accumulate(self, rng):
        layer = QuantumLayer(2, 1, rng=rng)
        x = rng.uniform(-1, 1, (2, 2))
        g = np.ones((2, 2))
        layer.forward(x, training=True)
        layer.backward(g)
        first = layer.grads[0].copy()
        layer.forward(x, training=True)
        layer.backward(g)
        assert np.allclose(layer.grads[0], 2 * first)

    def test_weight_gradient_reshaped_to_weight_shape(self, rng):
        layer = QuantumLayer(3, 2, ansatz="sel", rng=rng)
        layer.forward(rng.uniform(-1, 1, (2, 3)), training=True)
        layer.backward(np.ones((2, 3)))
        assert layer.grads[0].shape == layer.weights.shape
