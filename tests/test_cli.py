"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.experiment == "fig4"
        assert args.profile == "smoke"
        assert args.cache is None

    def test_all_flags(self):
        args = build_parser().parse_args(
            ["fig10", "--profile", "reduced", "--cache", "out", "--quiet"]
        )
        assert args.experiment == "fig10"
        assert args.profile == "reduced"
        assert args.cache == "out"
        assert args.quiet

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--profile", "gigantic"])


class TestMain:
    def test_fig4_smoke(self, capsys):
        assert main(["fig4", "--profile", "smoke", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4(b)" in out

    def test_table1_smoke_cached(self, capsys, tmp_path):
        code = main(
            [
                "table1",
                "--profile",
                "smoke",
                "--cache",
                str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        # cache was populated for both hybrid families
        assert (tmp_path / "bel_smoke.json").exists()
        assert (tmp_path / "sel_smoke.json").exists()
