"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.experiment == "fig4"
        assert args.profile == "smoke"
        assert args.cache is None

    def test_all_flags(self):
        args = build_parser().parse_args(
            ["fig10", "--profile", "reduced", "--cache", "out", "--quiet"]
        )
        assert args.experiment == "fig10"
        assert args.profile == "reduced"
        assert args.cache == "out"
        assert args.quiet

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--profile", "gigantic"])

    def test_runs_and_vectorized_flags(self):
        args = build_parser().parse_args(
            ["fig8", "--runs", "3", "--no-vectorized-runs"]
        )
        assert args.runs == 3
        assert args.no_vectorized_runs
        default = build_parser().parse_args(["fig8"])
        assert default.runs is None
        assert not default.no_vectorized_runs

    @pytest.mark.parametrize(
        "argv",
        [
            ["fig8", "--runs", "0"],
            ["fig8", "--runs", "-2"],
            ["fig8", "--workers", "-1"],
        ],
    )
    def test_invalid_numeric_flags_rejected(self, argv):
        with pytest.raises(SystemExit):
            main(argv)


class TestMain:
    def test_fig4_smoke(self, capsys):
        assert main(["fig4", "--profile", "smoke", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4(b)" in out

    def test_table1_smoke_cached(self, capsys, tmp_path):
        code = main(
            [
                "table1",
                "--profile",
                "smoke",
                "--cache",
                str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        # cache was populated for both hybrid families
        assert (tmp_path / "bel_smoke.json").exists()
        assert (tmp_path / "sel_smoke.json").exists()

    def test_runs_override_keys_cache_separately(self, capsys, tmp_path):
        """--runs changes results, so it must not share the default
        cache entry; --no-vectorized-runs does not change results and
        reuses it."""
        code = main(
            [
                "fig8",
                "--profile",
                "smoke",
                "--runs",
                "2",
                "--no-vectorized-runs",
                "--cache",
                str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 0
        assert "Fig 8" in capsys.readouterr().out
        assert (tmp_path / "sel_smoke_runs_per_candidate-2.json").exists()
        assert not (tmp_path / "sel_smoke.json").exists()
