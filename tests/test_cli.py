"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.experiment == "fig4"
        assert args.profile == "smoke"
        assert args.cache is None

    def test_all_flags(self):
        args = build_parser().parse_args(
            ["fig10", "--profile", "reduced", "--cache", "out", "--quiet"]
        )
        assert args.experiment == "fig10"
        assert args.profile == "reduced"
        assert args.cache == "out"
        assert args.quiet

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--profile", "gigantic"])

    def test_runs_and_vectorized_flags(self):
        args = build_parser().parse_args(
            ["fig8", "--runs", "3", "--no-vectorized-runs"]
        )
        assert args.runs == 3
        assert args.no_vectorized_runs
        default = build_parser().parse_args(["fig8"])
        assert default.runs is None
        assert not default.no_vectorized_runs

    def test_stacking_and_cost_cache_flags(self):
        args = build_parser().parse_args(
            ["fig8", "--no-stacked-candidates", "--cost-cache", "c.json"]
        )
        assert args.no_stacked_candidates
        assert args.cost_cache == "c.json"
        default = build_parser().parse_args(["fig8"])
        assert not default.no_stacked_candidates
        assert default.cost_cache is None

    @pytest.mark.parametrize(
        "argv",
        [
            ["fig8", "--runs", "0"],
            ["fig8", "--runs", "-2"],
            ["fig8", "--workers", "-1"],
            ["fig8", "--idle-timeout", "0"],
        ],
    )
    def test_invalid_numeric_flags_rejected(self, argv):
        with pytest.raises(SystemExit):
            main(argv)

    def test_spool_flags(self):
        args = build_parser().parse_args(
            ["fig8", "--spool", "/mnt/shared/spool"]
        )
        assert args.spool == "/mnt/shared/spool"
        assert args.idle_timeout is None
        default = build_parser().parse_args(["fig8"])
        assert default.spool is None

    def test_cluster_agent_requires_spool(self):
        with pytest.raises(SystemExit):
            main(["cluster-agent"])


class TestMain:
    def test_cluster_agent_idle_timeout_exits_clean(self, tmp_path):
        """A cluster agent on an empty spool exits 0 once its idle
        timeout passes (no coordinator ever appears)."""
        assert (
            main(
                [
                    "cluster-agent",
                    "--spool",
                    str(tmp_path / "spool"),
                    "--idle-timeout",
                    "0.3",
                    "--quiet",
                ]
            )
            == 0
        )
        # The agent laid out the spool and removed its heartbeat file.
        assert (tmp_path / "spool" / "tasks").is_dir()
        assert list((tmp_path / "spool" / "agents").iterdir()) == []

    def test_fig4_smoke(self, capsys):
        assert main(["fig4", "--profile", "smoke", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4(b)" in out

    def test_table1_smoke_cached(self, capsys, tmp_path):
        code = main(
            [
                "table1",
                "--profile",
                "smoke",
                "--cache",
                str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        # cache was populated for both hybrid families
        assert (tmp_path / "bel_smoke.json").exists()
        assert (tmp_path / "sel_smoke.json").exists()

    def test_runs_override_keys_cache_separately(self, capsys, tmp_path):
        """--runs changes results, so it must not share the default
        cache entry; --no-vectorized-runs does not change results and
        reuses it."""
        code = main(
            [
                "fig8",
                "--profile",
                "smoke",
                "--runs",
                "2",
                "--no-vectorized-runs",
                "--cache",
                str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 0
        assert "Fig 8" in capsys.readouterr().out
        assert (tmp_path / "sel_smoke_runs_per_candidate-2.json").exists()
        assert not (tmp_path / "sel_smoke.json").exists()

    def test_no_stacked_candidates_shares_cache_entry(self, capsys, tmp_path):
        """--no-stacked-candidates does not change results, so it reuses
        the default cache key rather than forking it."""
        code = main(
            [
                "fig8",
                "--profile",
                "smoke",
                "--no-stacked-candidates",
                "--cache",
                str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 0
        assert "Fig 8" in capsys.readouterr().out
        assert (tmp_path / "sel_smoke.json").exists()

    def test_cost_cache_written_and_reloaded(self, capsys, tmp_path, monkeypatch):
        """With --cache and --workers > 1 the measured-cost model is
        persisted next to the result cache and warms the next run."""
        import repro.cli as cli_mod
        from repro.runtime.pool import ChunkCostModel

        class _FakePool:
            def __init__(self, workers, backend=None):
                self.workers = workers
                self.backend = backend
                self.cost_model = ChunkCostModel()
                self.closed = False

            def close(self):
                self.closed = True

        created = []

        def fake_dispatch(*args, **kwargs):
            pool = kwargs.get("pool") or args[5]
            pool.cost_model.observe("A", 10, 2.0, 1)
            return "ok"

        monkeypatch.setattr(
            "repro.runtime.pool.PersistentPool",
            lambda workers, backend=None: created.append(
                _FakePool(workers, backend)
            )
            or created[-1],
        )
        monkeypatch.setattr(cli_mod, "_dispatch", fake_dispatch)
        code = main(
            ["fig4", "--workers", "2", "--cache", str(tmp_path), "--quiet"]
        )
        assert code == 0
        cost_path = tmp_path / "chunk_costs.json"
        assert cost_path.exists()
        assert created and created[0].closed

        warm = ChunkCostModel()
        assert warm.load_json(cost_path)
        assert "A" in warm.snapshot()
