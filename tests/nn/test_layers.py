"""Unit tests for the classical layers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.layers import Dense, Flatten, ReLU, Softmax


class TestDense:
    def test_forward_matches_manual(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.standard_normal((5, 3))
        assert np.allclose(layer.forward(x), x @ layer.weight + layer.bias)

    def test_backward_gradients(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.standard_normal((4, 3))
        g = rng.standard_normal((4, 2))
        layer.forward(x, training=True)
        dx = layer.backward(g)
        assert np.allclose(dx, g @ layer.weight.T)
        assert np.allclose(layer.grads[0], x.T @ g)
        assert np.allclose(layer.grads[1], g.sum(axis=0))

    def test_grads_accumulate_until_zeroed(self, rng):
        layer = Dense(2, 2, rng=rng)
        x = rng.standard_normal((3, 2))
        g = rng.standard_normal((3, 2))
        layer.forward(x, training=True)
        layer.backward(g)
        first = layer.grads[0].copy()
        layer.forward(x, training=True)
        layer.backward(g)
        assert np.allclose(layer.grads[0], 2 * first)
        layer.zero_grads()
        assert not layer.grads[0].any()

    def test_param_count(self, rng):
        assert Dense(10, 4, rng=rng).param_count == 44

    def test_shape_validation(self, rng):
        layer = Dense(3, 2, rng=rng)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((4, 5)))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros(3))

    def test_backward_without_forward(self, rng):
        with pytest.raises(ShapeError):
            Dense(2, 2, rng=rng).backward(np.zeros((1, 2)))

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            Dense(0, 2)

    def test_output_dim(self, rng):
        layer = Dense(3, 7, rng=rng)
        assert layer.output_dim(3) == 7
        with pytest.raises(ShapeError):
            layer.output_dim(4)

    def test_deterministic_init_with_seed(self):
        a = Dense(4, 3, rng=np.random.default_rng(1)).weight
        b = Dense(4, 3, rng=np.random.default_rng(1)).weight
        assert np.array_equal(a, b)


class TestReLU:
    def test_forward(self):
        layer = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        assert np.allclose(layer.forward(x), [[0.0, 0.0, 2.0]])

    def test_backward_masks(self):
        layer = ReLU()
        x = np.array([[-1.0, 3.0]])
        layer.forward(x, training=True)
        assert np.allclose(layer.backward(np.array([[5.0, 5.0]])), [[0.0, 5.0]])

    def test_backward_without_forward(self):
        with pytest.raises(ShapeError):
            ReLU().backward(np.zeros((1, 2)))

    def test_no_params(self):
        assert ReLU().param_count == 0


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = Softmax().forward(rng.standard_normal((6, 4)))
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs > 0).all()

    def test_invariant_to_shift(self):
        layer = Softmax()
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(layer.forward(x), layer.forward(x + 100.0))

    def test_extreme_logits_stable(self):
        probs = Softmax().forward(np.array([[1000.0, -1000.0]]))
        assert np.isfinite(probs).all()
        assert np.allclose(probs, [[1.0, 0.0]])

    def test_backward_jvp(self, rng):
        """Softmax backward against finite differences."""
        layer = Softmax()
        x = rng.standard_normal((1, 4))
        g = rng.standard_normal((1, 4))
        layer.forward(x, training=True)
        dx = layer.backward(g)
        eps = 1e-6
        numeric = np.zeros_like(x)
        for j in range(4):
            xp, xm = x.copy(), x.copy()
            xp[0, j] += eps
            xm[0, j] -= eps
            numeric[0, j] = (
                np.sum(g * layer.forward(xp)) - np.sum(g * layer.forward(xm))
            ) / (2 * eps)
        assert np.allclose(dx, numeric, atol=1e-6)

    def test_backward_without_forward(self):
        with pytest.raises(ShapeError):
            Softmax().backward(np.zeros((1, 2)))


class TestFlatten:
    def test_round_trip(self, rng):
        layer = Flatten()
        x = rng.standard_normal((2, 3, 4))
        flat = layer.forward(x, training=True)
        assert flat.shape == (2, 12)
        assert layer.backward(flat).shape == (2, 3, 4)

    def test_backward_without_forward(self):
        with pytest.raises(ShapeError):
            Flatten().backward(np.zeros((1, 2)))
