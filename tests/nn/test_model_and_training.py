"""Unit tests for Sequential, metrics and the training loop."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn import (
    Adam,
    CrossEntropy,
    Dense,
    ReLU,
    Sequential,
    Softmax,
    accuracy,
    confusion_matrix,
    iterate_minibatches,
    train_model,
)


def small_model(rng):
    return Sequential(
        [Dense(2, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng), Softmax()]
    )


def xor_like_data(rng, n=200):
    x = rng.uniform(-1, 1, (n, 2))
    labels = ((x[:, 0] * x[:, 1]) > 0).astype(int)
    y = np.eye(2)[labels]
    return x, y


class TestSequential:
    def test_requires_layers(self):
        with pytest.raises(ConfigurationError):
            Sequential([])

    def test_param_collection(self, rng):
        model = small_model(rng)
        assert len(model.parameters()) == 4  # two Dense layers x (W, b)
        assert model.param_count == 2 * 8 + 8 + 8 * 2 + 2

    def test_forward_backward_shapes(self, rng):
        model = small_model(rng)
        x = rng.standard_normal((5, 2))
        out = model.forward(x, training=True)
        assert out.shape == (5, 2)
        grad_in = model.backward(np.ones_like(out) / 5)
        assert grad_in.shape == (5, 2)

    def test_zero_grads(self, rng):
        model = small_model(rng)
        x = rng.standard_normal((3, 2))
        model.forward(x, training=True)
        model.backward(np.ones((3, 2)))
        model.zero_grads()
        assert all(not g.any() for g in model.gradients())

    def test_summary_contains_layers_and_total(self, rng):
        text = small_model(rng).summary()
        assert "Dense" in text and "total" in text

    def test_len_and_iter(self, rng):
        model = small_model(rng)
        assert len(model) == 4
        assert len(list(model)) == 4

    def test_evaluate_accuracy(self, rng):
        model = small_model(rng)
        x, y = xor_like_data(rng, 50)
        acc = model.evaluate_accuracy(x, y)
        assert 0.0 <= acc <= 1.0


class TestMetrics:
    def test_accuracy_with_labels_and_onehot(self):
        y_true = np.array([0, 1, 2, 1])
        probs = np.eye(3)[[0, 1, 1, 1]]
        assert accuracy(y_true, probs) == pytest.approx(0.75)
        assert accuracy(np.eye(3)[y_true], probs) == pytest.approx(0.75)

    def test_accuracy_shape_errors(self):
        with pytest.raises(ShapeError):
            accuracy(np.zeros(3), np.zeros(4))
        with pytest.raises(ShapeError):
            accuracy(np.zeros((2, 2, 2)), np.zeros((2, 2)))
        with pytest.raises(ShapeError):
            accuracy(np.zeros(0), np.zeros(0))

    def test_confusion_matrix(self):
        cm = confusion_matrix(np.array([0, 0, 1]), np.array([0, 1, 1]), 2)
        assert cm.tolist() == [[1, 1], [0, 1]]


class TestMinibatches:
    def test_covers_all_indices(self, rng):
        batches = list(iterate_minibatches(10, 3, rng))
        flat = np.concatenate(batches)
        assert sorted(flat.tolist()) == list(range(10))
        assert [len(b) for b in batches] == [3, 3, 3, 1]

    def test_no_shuffle_is_ordered(self, rng):
        batches = list(iterate_minibatches(6, 2, rng, shuffle=False))
        assert np.concatenate(batches).tolist() == list(range(6))

    def test_invalid_batch_size(self, rng):
        with pytest.raises(ConfigurationError):
            list(iterate_minibatches(4, 0, rng))


class TestTrainModel:
    def test_learns_separable_problem(self, rng):
        x, y = xor_like_data(rng, 240)
        model = small_model(rng)
        history = train_model(
            model,
            x[:200],
            y[:200],
            x[200:],
            y[200:],
            epochs=60,
            batch_size=16,
            optimizer=Adam(learning_rate=0.01),
            rng=rng,
        )
        assert history.max_train_accuracy > 0.9
        assert history.epochs_run == 60
        assert len(history.train_loss) == 60
        # loss should broadly decrease
        assert history.train_loss[-1] < history.train_loss[0]

    def test_early_stop(self, rng):
        x, y = xor_like_data(rng, 120)
        model = small_model(rng)
        history = train_model(
            model,
            x[:100],
            y[:100],
            x[100:],
            y[100:],
            epochs=200,
            batch_size=16,
            optimizer=Adam(learning_rate=0.02),
            rng=rng,
            early_stop_threshold=0.8,
        )
        assert history.stopped_early
        assert history.epochs_run < 200
        assert history.meets_threshold(0.8)

    def test_max_accuracy_is_max_over_epochs(self, rng):
        x, y = xor_like_data(rng, 80)
        model = small_model(rng)
        history = train_model(
            model, x[:60], y[:60], x[60:], y[60:], epochs=5, batch_size=8,
            rng=rng,
        )
        assert history.max_train_accuracy == max(history.train_accuracy)
        assert history.max_val_accuracy == max(history.val_accuracy)

    def test_validation_inputs_checked(self, rng):
        x, y = xor_like_data(rng, 20)
        model = small_model(rng)
        with pytest.raises(ShapeError):
            train_model(model, x, y[:10], x, y, epochs=1)
        with pytest.raises(ShapeError):
            train_model(model, x, np.argmax(y, axis=1), x, y, epochs=1)
        with pytest.raises(ConfigurationError):
            train_model(model, x, y, x, y, epochs=0)

    def test_wall_time_recorded(self, rng):
        x, y = xor_like_data(rng, 40)
        model = small_model(rng)
        history = train_model(
            model, x, y, x, y, epochs=2, batch_size=8, rng=rng
        )
        assert history.wall_time_s > 0
