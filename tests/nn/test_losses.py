"""Unit tests for loss functions."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.layers import Softmax
from repro.nn.losses import CrossEntropy, MeanSquaredError, SoftmaxCrossEntropy


class TestCrossEntropy:
    def test_perfect_prediction_is_zero(self):
        y = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert CrossEntropy().value(y, y) == pytest.approx(0.0, abs=1e-9)

    def test_known_value(self):
        p = np.array([[0.5, 0.5]])
        y = np.array([[1.0, 0.0]])
        assert CrossEntropy().value(p, y) == pytest.approx(np.log(2))

    def test_gradient_matches_finite_difference(self, rng):
        loss = CrossEntropy()
        p = rng.uniform(0.1, 0.9, (3, 4))
        p /= p.sum(axis=1, keepdims=True)
        y = np.eye(4)[rng.integers(4, size=3)]
        g = loss.gradient(p, y)
        eps = 1e-7
        for i in range(3):
            for j in range(4):
                pp, pm = p.copy(), p.copy()
                pp[i, j] += eps
                pm[i, j] -= eps
                numeric = (loss.value(pp, y) - loss.value(pm, y)) / (2 * eps)
                assert np.isclose(g[i, j], numeric, atol=1e-5)

    def test_clip_guards_zero_probability(self):
        p = np.array([[0.0, 1.0]])
        y = np.array([[1.0, 0.0]])
        assert np.isfinite(CrossEntropy().value(p, y))
        assert np.isfinite(CrossEntropy().gradient(p, y)).all()

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            CrossEntropy().value(np.zeros((2, 3)), np.zeros((2, 2)))


class TestFusedEquivalence:
    def test_softmax_plus_ce_equals_fused(self, rng):
        """Softmax layer + CrossEntropy == SoftmaxCrossEntropy on logits,
        both in value and in the gradient reaching the logits."""
        logits = rng.standard_normal((5, 3))
        y = np.eye(3)[rng.integers(3, size=5)]
        softmax = Softmax()
        probs = softmax.forward(logits, training=True)
        composed_value = CrossEntropy().value(probs, y)
        fused = SoftmaxCrossEntropy()
        assert composed_value == pytest.approx(fused.value(logits, y))

        composed_grad = softmax.backward(CrossEntropy().gradient(probs, y))
        assert np.allclose(composed_grad, fused.gradient(logits, y), atol=1e-9)

    def test_fused_gradient_is_probs_minus_targets(self, rng):
        logits = rng.standard_normal((4, 3))
        y = np.eye(3)[rng.integers(3, size=4)]
        probs = Softmax().forward(logits)
        g = SoftmaxCrossEntropy().gradient(logits, y)
        assert np.allclose(g, (probs - y) / 4)


class TestMSE:
    def test_value_and_gradient(self, rng):
        loss = MeanSquaredError()
        p = rng.standard_normal((2, 3))
        y = rng.standard_normal((2, 3))
        assert loss.value(p, y) == pytest.approx(np.mean((p - y) ** 2))
        g = loss.gradient(p, y)
        eps = 1e-7
        pp = p.copy()
        pp[0, 0] += eps
        numeric = (loss.value(pp, y) - loss.value(p, y)) / eps
        assert np.isclose(g[0, 0], numeric, atol=1e-5)
