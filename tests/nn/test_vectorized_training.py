"""Tests for run-stacked model training (VectorizedTrainer + stacking).

The contract mirrors the engine's: training R stacked models in
lockstep must be bit-identical — histories *and* final parameters — to
R scalar :func:`train_model` calls on the same RNG streams, including
when some runs freeze early.
"""

import numpy as np
import pytest

from repro.data import make_spiral, stratified_split
from repro.exceptions import ConfigurationError, TrainingCancelled
from repro.hybrid.builders import build_classical_model, build_hybrid_model
from repro.hybrid.quantum_layer import QuantumLayer, StackedQuantumLayer
from repro.nn.layers import Dense, Dropout, ReLU, Softmax
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam, StackedAdam
from repro.nn.stacked import StackedDense, stack_models
from repro.nn.training import VectorizedTrainer, train_model


@pytest.fixture(scope="module")
def split():
    ds = make_spiral(4, n_points=90, noise=0.0, turns=0.4, seed=7)
    return stratified_split(ds, seed=7)


def train_scalar(builder, split, runs, **kw):
    histories, params = [], []
    for r in range(runs):
        rng = np.random.default_rng((0, 1, r))
        model = builder(rng)
        histories.append(
            train_model(
                model,
                split.x_train,
                split.y_train,
                split.x_val,
                split.y_val,
                optimizer=Adam(learning_rate=0.001),
                rng=rng,
                **kw,
            )
        )
        params.append([p.copy() for p in model.parameters()])
    return histories, params


def train_stacked(builder, split, runs, compact=True, **kw):
    rngs = [np.random.default_rng((0, 1, r)) for r in range(runs)]
    models = [builder(rng) for rng in rngs]
    trainer = VectorizedTrainer(models, learning_rate=0.001)
    assert trainer.available
    histories = trainer.train(
        split.x_train,
        split.y_train,
        split.x_val,
        split.y_val,
        rngs=rngs,
        compact=compact,
        **kw,
    )
    return histories, [[p.copy() for p in m.parameters()] for m in models]


def assert_bit_identical(ref, got):
    ref_h, ref_p = ref
    got_h, got_p = got
    for rh, gh in zip(ref_h, got_h):
        assert rh.train_loss == gh.train_loss
        assert rh.train_accuracy == gh.train_accuracy
        assert rh.val_accuracy == gh.val_accuracy
        assert rh.epochs_run == gh.epochs_run
        assert rh.stopped_early == gh.stopped_early
    for rp, gp in zip(ref_p, got_p):
        for a, b in zip(rp, gp):
            assert np.array_equal(a, b)


class TestVectorizedTrainerDifferential:
    @pytest.mark.parametrize("ansatz", ["sel", "bel"])
    def test_hybrid_bit_identical(self, split, ansatz):
        def builder(rng):
            return build_hybrid_model(4, 3, 2, ansatz=ansatz, rng=rng)

        kw = dict(epochs=4, batch_size=8)
        assert_bit_identical(
            train_scalar(builder, split, 3, **kw),
            train_stacked(builder, split, 3, **kw),
        )

    def test_classical_bit_identical(self, split):
        def builder(rng):
            return build_classical_model(4, (8, 4), rng=rng)

        kw = dict(epochs=5, batch_size=8)
        assert_bit_identical(
            train_scalar(builder, split, 4, **kw),
            train_stacked(builder, split, 4, **kw),
        )

    @pytest.mark.parametrize("compact", [True, False])
    def test_early_stop_freezes_runs_in_stack(self, split, compact):
        """Runs that hit the threshold freeze (params, optimizer state,
        history) while the rest keep training — exactly like their
        scalar loops breaking out at different epochs.  With ``compact``
        the frozen rows additionally leave the fused sweep; either mode
        must match the scalar loops bit for bit."""

        def builder(rng):
            return build_hybrid_model(4, 3, 1, ansatz="sel", rng=rng)

        kw = dict(epochs=25, batch_size=8, early_stop_threshold=0.5)
        ref = train_scalar(builder, split, 3, **kw)
        got = train_stacked(builder, split, 3, compact=compact, **kw)
        assert_bit_identical(ref, got)
        # the scenario is only meaningful if early stopping actually
        # fired for a strict subset of the runs (compaction mid-sweep)
        assert any(h.stopped_early for h in ref[0])
        assert len({h.epochs_run for h in ref[0]}) > 1

    def test_remainder_minibatch(self, split):
        """batch_size not dividing n exercises the short (even size-1)
        trailing minibatch in the fused stack."""

        def builder(rng):
            return build_hybrid_model(4, 3, 1, ansatz="sel", rng=rng)

        kw = dict(epochs=3, batch_size=7)
        assert_bit_identical(
            train_scalar(builder, split, 2, **kw),
            train_stacked(builder, split, 2, **kw),
        )

    def test_cancel_check_raises(self, split):
        def builder(rng):
            return build_classical_model(4, (4,), rng=rng)

        rngs = [np.random.default_rng((0, 1, r)) for r in range(2)]
        trainer = VectorizedTrainer([builder(r) for r in rngs])
        calls = []

        def cancel():
            calls.append(1)
            return len(calls) > 2

        with pytest.raises(TrainingCancelled):
            trainer.train(
                split.x_train,
                split.y_train,
                split.x_val,
                split.y_val,
                epochs=50,
                batch_size=16,
                rngs=rngs,
                cancel_check=cancel,
            )


class TestStackModels:
    def test_quantum_layer_stacks(self):
        rngs = [np.random.default_rng(i) for i in range(3)]
        models = [
            build_hybrid_model(4, 3, 2, ansatz="sel", rng=rng) for rng in rngs
        ]
        stack = stack_models(models)
        assert stack is not None
        kinds = [type(lay) for lay in stack.layers]
        assert StackedDense in kinds and StackedQuantumLayer in kinds

    def test_single_model_not_stacked(self):
        m = build_classical_model(4, (4,), rng=np.random.default_rng(0))
        assert stack_models([m]) is None

    def test_parameter_shift_falls_back(self):
        models = [
            build_hybrid_model(
                4, 3, 1, gradient_method="parameter_shift",
                rng=np.random.default_rng(i),
            )
            for i in range(2)
        ]
        assert stack_models(models) is None
        assert not VectorizedTrainer(models).available

    def test_unknown_layer_falls_back(self):
        def build(i):
            rng = np.random.default_rng(i)
            return Sequential(
                [
                    Dense(4, 4, rng=rng),
                    Dropout(0.5, rng=rng),
                    Dense(4, 3, rng=rng),
                    Softmax(),
                ]
            )

        assert stack_models([build(0), build(1)]) is None

    def test_mismatched_structures_fall_back(self):
        a = build_classical_model(4, (4,), rng=np.random.default_rng(0))
        b = build_classical_model(4, (8,), rng=np.random.default_rng(1))
        c = build_classical_model(4, (4, 4), rng=np.random.default_rng(2))
        assert stack_models([a, b]) is None  # same layout, widths differ
        assert stack_models([a, c]) is None  # different depth

    def test_subclassed_quantum_layer_falls_back(self):
        class CustomLayer(QuantumLayer):
            pass

        def build(i):
            rng = np.random.default_rng(i)
            return Sequential(
                [
                    Dense(3, 3, rng=rng),
                    CustomLayer(3, 1, rng=rng),
                    Dense(3, 3, rng=rng),
                    Softmax(),
                ]
            )

        assert stack_models([build(0), build(1)]) is None

    def test_train_unstackable_raises(self, split):
        models = [
            build_hybrid_model(
                4, 3, 1, gradient_method="parameter_shift",
                rng=np.random.default_rng(i),
            )
            for i in range(2)
        ]
        trainer = VectorizedTrainer(models)
        with pytest.raises(ConfigurationError, match="stacked"):
            trainer.train(
                split.x_train,
                split.y_train,
                split.x_val,
                split.y_val,
                epochs=1,
            )


class TestStackedAdam:
    def test_unmasked_matches_lockstep_scalar_adams(self):
        rng = np.random.default_rng(0)
        runs = 3
        params = [rng.normal(size=(runs, 4, 2)), rng.normal(size=(runs, 2))]
        scalars = [
            [p[r].copy() for p in params] for r in range(runs)
        ]
        stacked_opt = StackedAdam(learning_rate=0.01)
        scalar_opts = [Adam(learning_rate=0.01) for _ in range(runs)]
        for step in range(5):
            grads = [
                rng.normal(size=params[0].shape),
                rng.normal(size=params[1].shape),
            ]
            stacked_opt.step(params, grads)
            for r in range(runs):
                scalar_opts[r].step(
                    scalars[r], [g[r].copy() for g in grads]
                )
        for r in range(runs):
            for p, s in zip(params, scalars[r]):
                assert np.array_equal(p[r], s)

    def test_masked_runs_frozen_exactly(self):
        rng = np.random.default_rng(1)
        runs = 4
        params = [rng.normal(size=(runs, 3))]
        scalars = [[params[0][r].copy()] for r in range(runs)]
        stacked_opt = StackedAdam(learning_rate=0.05)
        scalar_opts = [Adam(learning_rate=0.05) for _ in range(runs)]
        active = np.array([True, True, True, True])
        for step in range(6):
            if step == 2:
                active[1] = False  # run 1 "early-stops" here
            if step == 4:
                active[3] = False
            grads = [rng.normal(size=(runs, 3))]
            stacked_opt.step(params, grads, active)
            for r in range(runs):
                if active[r]:
                    scalar_opts[r].step(scalars[r], [grads[0][r].copy()])
        for r in range(runs):
            assert np.array_equal(params[0][r], scalars[r][0])
