"""Unit tests for optimizers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.optimizers import SGD, Adam


def quadratic_descent(optimizer, steps=300):
    """Minimize ||x - target||^2 and return the final parameter."""
    target = np.array([1.0, -2.0, 3.0])
    x = np.zeros(3)
    for _ in range(steps):
        grad = 2 * (x - target)
        optimizer.step([x], [grad])
    return x, target


class TestSGD:
    def test_converges_on_quadratic(self):
        x, target = quadratic_descent(SGD(learning_rate=0.1))
        assert np.allclose(x, target, atol=1e-4)

    def test_momentum_converges(self):
        x, target = quadratic_descent(SGD(learning_rate=0.05, momentum=0.9))
        assert np.allclose(x, target, atol=1e-3)

    def test_invalid_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD(momentum=1.0)

    def test_single_step_value(self):
        x = np.array([1.0])
        SGD(learning_rate=0.5).step([x], [np.array([2.0])])
        assert np.allclose(x, [0.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        x, target = quadratic_descent(Adam(learning_rate=0.1), steps=600)
        assert np.allclose(x, target, atol=1e-3)

    def test_first_step_size_is_learning_rate(self):
        """Adam's bias correction makes the first update ~lr * sign(g)."""
        x = np.array([0.0])
        Adam(learning_rate=0.01).step([x], [np.array([123.0])])
        assert x[0] == pytest.approx(-0.01, rel=1e-3)

    def test_updates_in_place(self):
        x = np.array([1.0, 2.0])
        ref = x
        Adam().step([x], [np.array([0.1, 0.1])])
        assert ref is x  # same buffer mutated

    def test_mismatched_lists(self):
        with pytest.raises(ConfigurationError):
            Adam().step([np.zeros(2)], [])

    def test_invalid_hyperparams(self):
        with pytest.raises(ConfigurationError):
            Adam(learning_rate=-1)
        with pytest.raises(ConfigurationError):
            Adam(beta_1=1.0)
