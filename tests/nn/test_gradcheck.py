"""End-to-end finite-difference gradient checks on full models.

The ultimate correctness test of the NN substrate: for random data,
every parameter's analytic gradient (from the layer backward passes)
must match the central finite difference of the loss.
"""

import numpy as np
import pytest

from repro.hybrid import build_classical_model, build_hybrid_model
from repro.nn import CrossEntropy


def analytic_gradients(model, loss, x, y):
    model.zero_grads()
    out = model.forward(x, training=True)
    model.backward(loss.gradient(out, y))
    return [g.copy() for g in model.gradients()]


def jitter_biases(model, rng):
    """Move biases off zero so no ReLU pre-activation sits exactly on the
    kink (finite differences are ill-defined there; Keras-style zero bias
    init plus dead units puts entire activations at 0.0 exactly)."""
    for param in model.parameters():
        if param.ndim == 1:
            param += 0.05 + 0.1 * rng.random(param.shape)


def check_model_gradients(model, x, y, samples_per_param=4, atol=2e-5):
    loss = CrossEntropy()
    grads = analytic_gradients(model, loss, x, y)
    params = model.parameters()
    eps = 1e-6
    rng = np.random.default_rng(0)
    for p_idx, param in enumerate(params):
        flat = param.ravel()
        count = min(samples_per_param, flat.size)
        for i in rng.choice(flat.size, size=count, replace=False):
            orig = flat[i]
            flat[i] = orig + eps
            lp = loss.value(model.forward(x), y)
            flat[i] = orig - eps
            lm = loss.value(model.forward(x), y)
            flat[i] = orig
            numeric = (lp - lm) / (2 * eps)
            analytic = grads[p_idx].ravel()[i]
            assert np.isclose(analytic, numeric, atol=atol), (
                f"param {p_idx} index {i}: analytic={analytic} "
                f"numeric={numeric}"
            )


@pytest.mark.parametrize("hidden", [(4,), (6, 4), (2, 4, 6)])
def test_classical_model_gradients(hidden, rng):
    x = rng.standard_normal((6, 5))
    y = np.eye(3)[rng.integers(3, size=6)]
    model = build_classical_model(5, hidden, rng=rng)
    jitter_biases(model, rng)
    check_model_gradients(model, x, y)


@pytest.mark.parametrize("ansatz", ["bel", "sel"])
@pytest.mark.parametrize("input_activation", [None, "relu"])
def test_hybrid_model_gradients(ansatz, input_activation, rng):
    x = rng.standard_normal((5, 7))
    y = np.eye(3)[rng.integers(3, size=5)]
    model = build_hybrid_model(
        7, 3, 2, ansatz=ansatz, input_activation=input_activation, rng=rng
    )
    jitter_biases(model, rng)
    check_model_gradients(model, x, y)


def test_hybrid_parameter_shift_backend_gradients(rng):
    x = rng.standard_normal((4, 5))
    y = np.eye(3)[rng.integers(3, size=4)]
    model = build_hybrid_model(
        5, 3, 1, ansatz="sel", gradient_method="parameter_shift", rng=rng
    )
    check_model_gradients(model, x, y)
