"""Tests for cross-candidate stacks (stack_candidates + GroupedStack).

The contract mirrors the run-stacked one, one level up: training C
candidates' run sets as a single fused sweep must be bit-identical —
histories *and* final parameters — to training each candidate's run set
in its own stack (and transitively to scalar per-run training),
including when frozen slices are compacted out mid-training.
"""

import numpy as np
import pytest

from repro.data import make_spiral, stratified_split
from repro.hybrid.builders import build_classical_model, build_hybrid_model
from repro.hybrid.quantum_layer import QuantumLayer, StackedQuantumLayer
from repro.nn.layers import Dense
from repro.nn.model import Sequential
from repro.nn.stacked import (
    GroupedStack,
    StackedDense,
    stack_candidates,
    stack_models,
)
from repro.nn.training import train_stack


@pytest.fixture(scope="module")
def split():
    ds = make_spiral(4, n_points=90, noise=0.0, turns=0.4, seed=7)
    return stratified_split(ds, seed=7)


HEADS = ((), (4,), (6, 4))


def build_group(runs, heads=HEADS, n_layers=2):
    """One run set per head variant, every variant sharing one tape."""
    groups, rngs = [], []
    for c, head in enumerate(heads):
        group_rngs = [np.random.default_rng((0, c, r)) for r in range(runs)]
        groups.append(
            [
                build_hybrid_model(4, 3, n_layers, hidden=head, rng=rng)
                for rng in group_rngs
            ]
        )
        rngs.append(group_rngs)
    return groups, rngs


def train_grouped(split, runs, **kw):
    groups, rngs = build_group(runs)
    stack = stack_candidates(groups)
    assert stack is not None
    histories = train_stack(
        stack,
        split.x_train,
        split.y_train,
        split.x_val,
        split.y_val,
        rngs=[rng for group in rngs for rng in group],
        **kw,
    )
    params = [
        [[p.copy() for p in m.parameters()] for m in group]
        for group in groups
    ]
    return histories, params


def train_per_candidate(split, runs, **kw):
    groups, rngs = build_group(runs)
    histories, params = [], []
    for group, group_rngs in zip(groups, rngs):
        stack = stack_models(group)
        assert stack is not None
        histories.extend(
            train_stack(
                stack,
                split.x_train,
                split.y_train,
                split.x_val,
                split.y_val,
                rngs=group_rngs,
                **kw,
            )
        )
        params.append([[p.copy() for p in m.parameters()] for m in group])
    return histories, params


def assert_bit_identical(ref, got):
    ref_h, ref_p = ref
    got_h, got_p = got
    assert len(ref_h) == len(got_h)
    for rh, gh in zip(ref_h, got_h):
        assert rh.train_loss == gh.train_loss
        assert rh.train_accuracy == gh.train_accuracy
        assert rh.val_accuracy == gh.val_accuracy
        assert rh.epochs_run == gh.epochs_run
        assert rh.stopped_early == gh.stopped_early
    for rc, gc in zip(ref_p, got_p):
        for rm, gm in zip(rc, gc):
            for a, b in zip(rm, gm):
                assert np.array_equal(a, b)


class TestGroupedDifferential:
    def test_heterogeneous_heads_bit_identical(self, split):
        kw = dict(epochs=3, batch_size=8)
        assert_bit_identical(
            train_per_candidate(split, 2, **kw),
            train_grouped(split, 2, **kw),
        )

    def test_single_run_per_candidate(self, split):
        """runs=1 candidates cannot run-stack alone but do group."""
        groups, rngs = build_group(1)
        stack = stack_candidates(groups)
        assert stack is not None
        assert stack.runs == len(HEADS)

    def test_early_stop_with_compaction_bit_identical(self, split):
        kw = dict(epochs=20, batch_size=8, early_stop_threshold=0.5)
        ref = train_per_candidate(split, 2, **kw, compact=False)
        got = train_grouped(split, 2, **kw, compact=True)
        assert_bit_identical(ref, got)
        # the scenario is only meaningful if some slice actually froze
        # before the rest (compaction fired mid-training)
        epochs = sorted(h.epochs_run for h in ref[0])
        assert epochs[0] < epochs[-1]
        assert any(h.stopped_early for h in ref[0])

    def test_masking_equals_compaction(self, split):
        kw = dict(epochs=20, batch_size=8, early_stop_threshold=0.5)
        assert_bit_identical(
            train_grouped(split, 2, **kw, compact=False),
            train_grouped(split, 2, **kw, compact=True),
        )


class TestGroupedStackStructure:
    def test_segmented_build(self):
        groups, _ = build_group(2)
        stack = stack_candidates(groups)
        assert isinstance(stack, GroupedStack)
        assert stack.runs == 2 * len(HEADS)
        # the quantum pivot and classical tail are fused across all
        # slices; heads stay per candidate
        assert isinstance(stack.shared[0], StackedQuantumLayer)
        assert stack.shared[0].runs == stack.runs
        prefixes = [m.prefix for m in stack.members]
        assert prefixes[0] is not None  # the head-less variant still
        # holds its dense_in input layer before the pivot
        assert prefixes[0].runs == 2

    def test_fully_aligned_build_has_no_segments(self):
        models = [
            build_hybrid_model(4, 3, 1, rng=np.random.default_rng(i))
            for i in range(4)
        ]
        stack = stack_candidates([models[:2], models[2:]])
        assert isinstance(stack, GroupedStack)
        assert all(m.prefix is None for m in stack.members)
        assert len(stack.shared) == len(models[0].layers)

    def test_row_maps_cover_group_layout(self):
        groups, _ = build_group(2)
        stack = stack_candidates(groups)
        maps = stack.row_maps()
        assert len(maps) == len(stack.parameters())
        # prefix params map to their candidate's slice block; shared
        # params are identity (None)
        offsets = {0: [0, 1], 1: [2, 3], 2: [4, 5]}
        seen_none = 0
        for rows, param in zip(maps, stack.parameters()):
            if rows is None:
                seen_none += 1
                assert param.shape[0] == stack.runs
            else:
                assert list(rows) in offsets.values()
                assert param.shape[0] == len(rows)
        assert seen_none == sum(
            len(lay.params) for lay in stack.shared
        )

    def test_compact_drops_candidate_entirely(self, split):
        groups, _ = build_group(2)
        stack = stack_candidates(groups)
        # drop both slices of the middle candidate and one of the last
        stack.compact(np.array([0, 1, 4]))
        assert stack.runs == 3
        assert len(stack.members) == 2
        assert [m.size for m in stack.members] == [2, 1]
        assert stack.shared[0].weights.shape[0] == 3
        out = stack.forward(np.zeros((3 * 4, 4)))
        assert out.shape == (12, 3)

    def test_mismatched_tapes_do_not_group(self):
        a = [
            build_hybrid_model(4, 3, 1, rng=np.random.default_rng(i))
            for i in range(2)
        ]
        b = [
            build_hybrid_model(4, 3, 2, rng=np.random.default_rng(i + 2))
            for i in range(2)
        ]
        assert stack_candidates([a, b]) is None

    def test_classical_models_do_not_group_across_shapes(self):
        a = [
            build_classical_model(4, (4,), rng=np.random.default_rng(i))
            for i in range(2)
        ]
        b = [
            build_classical_model(4, (8,), rng=np.random.default_rng(i + 2))
            for i in range(2)
        ]
        assert stack_candidates([a, b]) is None

    def test_two_pivots_do_not_group(self):
        def build(i, n_layers):
            rng = np.random.default_rng(i)
            return Sequential(
                [
                    Dense(3, 3, rng=rng),
                    QuantumLayer(3, 1, rng=rng),
                    QuantumLayer(3, n_layers, rng=rng),
                    Dense(3, 3, rng=rng),
                ]
            )

        assert stack_candidates([[build(0, 1)], [build(1, 2)]]) is None

    def test_empty_or_single_slice_groups_rejected(self):
        m = build_hybrid_model(4, 3, 1, rng=np.random.default_rng(0))
        assert stack_candidates([[m]]) is None
        assert stack_candidates([[m], []]) is None
