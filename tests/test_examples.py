"""Sanity checks on the example scripts.

Full example runs take minutes (they train models at realistic sizes),
so the test suite verifies that each script compiles and has an
executable ``main``; the fast ones are exercised end to end.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_declares_main(path):
    source = path.read_text()
    assert "def main()" in source
    assert '__name__ == "__main__"' in source


def test_flops_ablation_runs_end_to_end():
    """The only training-free example: runs in well under a second."""
    result = subprocess.run(
        [sys.executable, "examples/flops_ablation.py"],
        capture_output=True,
        text=True,
        cwd=Path(__file__).parent.parent,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "SEL quantum layer constant across feature sizes: True" in result.stdout
