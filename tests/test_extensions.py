"""Tests for the extension surface beyond the paper's core needs:
extra activations, dropout, controlled rotations, result export, and the
published-numbers module."""

import numpy as np
import pytest

from repro import paperdata
from repro.core.comparison import rate_of_increase
from repro.core.export import (
    comparison_markdown,
    winners_csv,
    winners_markdown,
    write_winners_csv,
)
from repro.exceptions import ConfigurationError, ExperimentError
from repro.flops import PAPER, operation_fwd_flops, profile_model
from repro.nn import Dense, Dropout, Sequential, Sigmoid, Softmax, Tanh
from repro.quantum import gates, run, state
from repro.quantum.circuit import Operation


class TestTanhSigmoid:
    @pytest.mark.parametrize("layer_cls", [Tanh, Sigmoid])
    def test_gradcheck(self, layer_cls, rng):
        layer = layer_cls()
        x = rng.standard_normal((3, 4))
        g = rng.standard_normal((3, 4))
        layer.forward(x, training=True)
        dx = layer.backward(g)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                xp, xm = x.copy(), x.copy()
                xp[i, j] += eps
                xm[i, j] -= eps
                numeric = (
                    np.sum(g * layer.forward(xp))
                    - np.sum(g * layer.forward(xm))
                ) / (2 * eps)
                assert np.isclose(dx[i, j], numeric, atol=1e-6)

    def test_sigmoid_stable_at_extremes(self):
        out = Sigmoid().forward(np.array([[-1000.0, 0.0, 1000.0]]))
        assert np.allclose(out, [[0.0, 0.5, 1.0]])
        assert np.isfinite(out).all()

    def test_tanh_range(self, rng):
        out = Tanh().forward(rng.standard_normal((5, 5)) * 10)
        assert (np.abs(out) <= 1.0).all()


class TestDropout:
    def test_inference_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = rng.standard_normal((4, 6))
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_training_scales_survivors(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = np.ones((200, 50))
        out = layer.forward(x, training=True)
        kept = out != 0.0
        # survivors are scaled by 1/keep
        assert np.allclose(out[kept], 2.0)
        # roughly half survive
        assert 0.4 < kept.mean() < 0.6

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.3, rng=rng)
        x = rng.standard_normal((5, 5))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        assert np.array_equal(grad == 0.0, out == 0.0)

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)

    def test_zero_rate_passthrough(self, rng):
        layer = Dropout(0.0, rng=rng)
        x = rng.standard_normal((2, 3))
        assert np.array_equal(layer.forward(x, training=True), x)


class TestExtensionProfiling:
    def test_profiler_costs_extension_layers(self, rng):
        model = Sequential(
            [
                Dense(6, 4, rng=rng),
                Tanh(),
                Dropout(0.2, rng=rng),
                Dense(4, 3, rng=rng),
                Sigmoid(),
                Softmax(),
            ]
        )
        prof = profile_model(model)
        assert prof.total_flops > 0
        kinds = [l.name for l in prof.layers]
        assert len(kinds) == 6


class TestControlledRotations:
    def test_matrices(self):
        assert gates.is_unitary(gates.crx(0.7))
        assert np.allclose(gates.crz(0.0), np.eye(4))
        # control |0> leaves target alone
        mat = gates.cry(1.3)
        assert np.allclose(mat[:2, :2], np.eye(2))
        assert np.allclose(mat[2:, 2:], gates.ry(1.3))

    def test_batched(self):
        batch = gates.crx(np.array([0.1, 0.2]))
        assert batch.shape == (2, 4, 4)
        assert np.allclose(batch[1], gates.crx(0.2))

    def test_execution_on_state(self):
        # |10> -> control is 1 -> RY(pi) flips target to |11>
        ops = [Operation("X", (0,)), Operation("CRY", (0, 1), (np.pi,))]
        psi = run(ops, 2)
        flat = state.as_matrix(psi)[0]
        assert np.isclose(np.abs(flat[3]), 1.0)

    def test_control_zero_is_identity(self):
        ops = [Operation("CRX", (0, 1), (2.1,))]
        psi = run(ops, 2)
        assert np.allclose(state.as_matrix(psi)[0], [1, 0, 0, 0])

    def test_flops_rule(self):
        op = Operation("CRX", (0, 1), (0.4,))
        expected = PAPER.gate_build_single + PAPER.single_qubit_gate(3) // 2
        assert operation_fwd_flops(PAPER, op, 3) == expected


class TestPaperData:
    def test_rate_tables_complete(self):
        assert set(paperdata.FLOPS_RATES) == {"classical", "bel", "sel"}
        assert set(paperdata.PARAM_RATES) == {"classical", "bel", "sel"}

    def test_sel_table1_identity(self):
        """The published SEL absolute increase and rate are consistent
        with its Table I totals."""
        rate = rate_of_increase(1589, 3389)
        assert rate * 100 == pytest.approx(
            paperdata.FLOPS_RATES["sel"].rate_percent, abs=0.05
        )

    def test_headline_ordering_predicate(self):
        measured = {"classical": 0.9, "bel": 0.8, "sel": 0.5}
        assert paperdata.headline_claim_ordering(measured)
        assert not paperdata.headline_claim_ordering(
            {"classical": 0.5, "bel": 0.8, "sel": 0.9}
        )

    def test_table1_winners(self):
        assert paperdata.TABLE1_WINNERS[("sel", 110)] == (3, 2)
        assert paperdata.TABLE1_WINNERS[("bel", 110)] == (4, 4)


class TestExport:
    @pytest.fixture(scope="class")
    def results(self, tmp_path_factory):
        from repro.core import ProtocolConfig, run_protocol

        cfg = ProtocolConfig(
            feature_sizes=(4, 6),
            n_experiments=1,
            runs_per_candidate=1,
            epochs=15,
            batch_size=8,
            n_points=90,
            early_stop=True,
            max_candidates=3,
            threshold=0.4,
        )
        return [run_protocol("classical", cfg)]

    def test_csv(self, results):
        text = winners_csv(results)
        lines = text.strip().splitlines()
        assert lines[0].startswith("family,feature_size")
        assert len(lines) == 1 + 2  # header + 2 levels x 1 experiment

    def test_csv_file(self, results, tmp_path):
        path = tmp_path / "sub" / "winners.csv"
        write_winners_csv(results, path)
        assert path.exists()

    def test_markdown(self, results):
        text = winners_markdown(results)
        assert text.startswith("| family ")
        assert "classical" in text

    def test_comparison_markdown(self, results):
        from repro.core import comparative_analysis

        md = comparison_markdown(comparative_analysis(results))
        assert "FLOPs rate" in md and "classical" in md

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            winners_csv([])
        with pytest.raises(ExperimentError):
            winners_markdown([])
