"""Cross-module property-based tests (hypothesis).

Invariants spanning the spec/FLOPs/build pipeline:

* a spec's formula-based FLOPs and parameter counts always agree with
  the profiler applied to the built model;
* FLOPs are monotone in every architectural dimension the search varies;
* the spiral generator is a pure function of its arguments.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.search_space import ClassicalSpec, HybridSpec
from repro.data import make_spiral
from repro.flops import profile_model

hidden_layers = st.lists(
    st.sampled_from([2, 4, 6, 8, 10]), min_size=1, max_size=3
).map(tuple)


@given(
    features=st.integers(min_value=2, max_value=64),
    hidden=hidden_layers,
)
@settings(max_examples=20, deadline=None)
def test_classical_spec_formula_matches_profiler(features, hidden):
    spec = ClassicalSpec(n_features=features, hidden=hidden)
    model = spec.build(rng=np.random.default_rng(0))
    prof = profile_model(model)
    assert prof.total_flops == spec.flops()
    assert prof.param_count == spec.param_count == model.param_count


@given(
    features=st.integers(min_value=2, max_value=64),
    qubits=st.integers(min_value=2, max_value=5),
    layers=st.integers(min_value=1, max_value=6),
    ansatz=st.sampled_from(["bel", "sel"]),
)
@settings(max_examples=15, deadline=None)
def test_hybrid_spec_formula_matches_profiler(features, qubits, layers, ansatz):
    spec = HybridSpec(
        n_features=features, n_qubits=qubits, n_layers=layers, ansatz=ansatz
    )
    model = spec.build(rng=np.random.default_rng(0))
    prof = profile_model(model)
    assert prof.total_flops == spec.flops()
    assert prof.param_count == spec.param_count == model.param_count


@given(
    features=st.integers(min_value=2, max_value=50),
    hidden=hidden_layers,
    extra=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=25, deadline=None)
def test_classical_flops_monotone_in_features(features, hidden, extra):
    a = ClassicalSpec(n_features=features, hidden=hidden)
    b = ClassicalSpec(n_features=features + extra, hidden=hidden)
    assert b.flops() > a.flops()
    assert b.param_count > a.param_count


@given(
    qubits=st.integers(min_value=2, max_value=5),
    layers=st.integers(min_value=1, max_value=9),
    ansatz=st.sampled_from(["bel", "sel"]),
)
@settings(max_examples=25, deadline=None)
def test_hybrid_flops_monotone_in_depth(qubits, layers, ansatz):
    a = HybridSpec(n_features=10, n_qubits=qubits, n_layers=layers, ansatz=ansatz)
    b = HybridSpec(
        n_features=10, n_qubits=qubits, n_layers=layers + 1, ansatz=ansatz
    )
    assert b.flops() > a.flops()
    assert b.param_count > a.param_count


@given(
    features=st.integers(min_value=2, max_value=20),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_spiral_is_pure_function_of_arguments(features, seed):
    a = make_spiral(features, n_points=60, seed=seed)
    b = make_spiral(features, n_points=60, seed=seed)
    assert np.array_equal(a.features, b.features)
    assert np.array_equal(a.labels, b.labels)
    assert a.feature_recipe == b.feature_recipe


@given(features=st.integers(min_value=2, max_value=30))
@settings(max_examples=15, deadline=None)
def test_spiral_standardized_for_any_feature_count(features):
    ds = make_spiral(features, n_points=120, seed=1)
    assert np.allclose(ds.features.mean(axis=0), 0.0, atol=1e-8)
    assert np.allclose(ds.features.std(axis=0), 1.0, atol=1e-8)
