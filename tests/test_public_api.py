"""Smoke tests for the package's public surface."""

import numpy as np
import pytest

import repro


class TestPublicImports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        ["quantum", "nn", "hybrid", "flops", "data", "core", "experiments"],
    )
    def test_subpackage_all_resolve(self, module):
        pkg = getattr(repro, module)
        for name in pkg.__all__:
            assert hasattr(pkg, name), f"{module}.{name}"


class TestQuickstartFlow:
    """The README quickstart, end to end."""

    def test_quickstart(self):
        data = repro.make_spiral(n_features=6, n_points=120, seed=1)
        split = repro.stratified_split(data, seed=1)
        model = repro.build_hybrid_model(
            6, n_qubits=3, n_layers=1, ansatz="sel",
            rng=np.random.default_rng(1),
        )
        history = repro.train_model(
            model,
            split.x_train,
            split.y_train,
            split.x_val,
            split.y_val,
            epochs=3,
            batch_size=16,
            rng=np.random.default_rng(1),
        )
        assert 0.0 <= history.max_val_accuracy <= 1.0
        profile = repro.profile_model(model)
        assert profile.total_flops > 0
        assert profile.param_count == model.param_count
