"""Differential tests: the compiled engine vs the reference executor.

The reference implementations (:func:`repro.quantum.circuit.run`,
:func:`repro.quantum.adjoint.adjoint_gradients`,
:func:`repro.quantum.parameter_shift.parameter_shift_gradients`) are the
semantics oracle; :class:`repro.quantum.engine.CompiledTape` must match
them to 1e-12 on randomized tapes covering every gate in ``GATE_SET``,
shared and per-sample ``(B,)`` parameters, and both of the paper's
ansatze.
"""

import numpy as np
import pytest

from repro.exceptions import GateError, ShapeError
from repro.quantum import (
    GATE_SET,
    CompiledTape,
    Operation,
    adjoint_gradients,
    angle_embedding,
    angle_embedding_structure,
    basic_entangler_layers,
    compiled_parameter_shift_gradients,
    expval_z,
    input_ref,
    parameter_shift_gradients,
    random_bel_weights,
    random_sel_weights,
    run,
    strongly_entangling_layers,
    weight_ref,
)

ATOL = 1e-12

#: Gates the adjoint backend can differentiate.
_ADJOINT_GATES = ("RX", "RY", "RZ", "Rot")


def random_tape(rng, n_qubits, batch, n_ops=12, with_refs=False):
    """A random tape drawing every gate type, mixing shared and (B,) params.

    With ``with_refs`` the differentiable single-qubit rotations get
    input/weight refs; returns ``(ops, n_inputs, n_weights)``.
    """
    names = list(GATE_SET)
    ops = []
    n_inputs = n_qubits
    next_weight = 0
    for _ in range(n_ops):
        name = names[rng.integers(len(names))]
        info = GATE_SET[name]
        wires = tuple(
            rng.choice(n_qubits, size=info.n_wires, replace=False).tolist()
        )
        params = []
        refs = []
        for _ in range(info.n_params):
            if rng.random() < 0.5:
                params.append(rng.uniform(-np.pi, np.pi, size=batch))
            else:
                params.append(rng.uniform(-np.pi, np.pi))
            refs.append(None)
        if with_refs and name in _ADJOINT_GATES:
            for p in range(info.n_params):
                roll = rng.random()
                if roll < 0.4:
                    refs[p] = input_ref(int(rng.integers(n_inputs)))
                elif roll < 0.8:
                    refs[p] = weight_ref(next_weight)
                    next_weight += 1
        ops.append(Operation(name, wires, tuple(params), tuple(refs)))
    return ops, n_inputs, max(next_weight, 1)


def covering_tape(batch):
    """A fixed 3-qubit tape that applies every gate in GATE_SET once."""
    ops = []
    for name, info in GATE_SET.items():
        wires = (0,) if info.n_wires == 1 else (0, 1)
        params = tuple(
            np.linspace(0.3, 0.9, info.n_params) + 0.1 * len(ops)
        ) if info.n_params else ()
        ops.append(Operation(name, wires, params))
        # Exercise the other wire orderings / batched params too.
        if info.n_wires == 2:
            ops.append(
                Operation(
                    name,
                    (2, 0),
                    tuple(
                        np.full(batch, 0.4 + 0.05 * k)
                        for k in range(info.n_params)
                    ),
                )
            )
    return ops


class TestForwardDifferential:
    def test_every_gate_once(self):
        batch = 5
        ops = covering_tape(batch)
        assert set(op.name for op in ops) == set(GATE_SET)
        ref = run(ops, 3, batch)
        got = CompiledTape(ops, 3).run(batch=batch)
        np.testing.assert_allclose(got, ref, atol=ATOL, rtol=0)

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_tapes(self, seed):
        rng = np.random.default_rng(seed)
        n_qubits = int(rng.integers(2, 5))
        batch = int(rng.integers(1, 7))
        ops, _, _ = random_tape(rng, n_qubits, batch)
        ref = run(ops, n_qubits, batch)
        got = CompiledTape(ops, n_qubits).run(batch=batch)
        np.testing.assert_allclose(got, ref, atol=ATOL, rtol=0)

    @pytest.mark.parametrize("ansatz", ["bel", "sel"])
    def test_paper_ansatze(self, ansatz, rng):
        n_qubits, batch, layers = 4, 6, 3
        x = rng.uniform(-np.pi, np.pi, (batch, n_qubits))
        if ansatz == "bel":
            w = random_bel_weights(layers, n_qubits, rng)
            tape = angle_embedding(x, n_qubits) + basic_entangler_layers(
                w, n_qubits
            )
        else:
            w = random_sel_weights(layers, n_qubits, rng)
            tape = angle_embedding(x, n_qubits) + strongly_entangling_layers(
                w, n_qubits
            )
        ref = run(tape, n_qubits, batch)
        engine = CompiledTape(tape, n_qubits)
        # Default-bound execution and explicit rebinding must both match.
        np.testing.assert_allclose(engine.run(), ref, atol=ATOL, rtol=0)
        np.testing.assert_allclose(
            engine.run(inputs=x, weights=w.ravel()), ref, atol=ATOL, rtol=0
        )

    def test_structural_compile_then_bind(self, rng):
        """Compile from placeholder angles, bind real data afterwards."""
        n_qubits, batch = 3, 4
        w = random_sel_weights(2, n_qubits, rng)
        structure = angle_embedding_structure(
            n_qubits, n_qubits
        ) + strongly_entangling_layers(w, n_qubits)
        engine = CompiledTape(structure, n_qubits)
        for _ in range(3):
            x = rng.uniform(-np.pi, np.pi, (batch, n_qubits))
            w2 = random_sel_weights(2, n_qubits, rng)
            tape = angle_embedding(x, n_qubits) + strongly_entangling_layers(
                w2, n_qubits
            )
            ref = run(tape, n_qubits, batch)
            got = engine.run(inputs=x, weights=w2.ravel())
            np.testing.assert_allclose(got, ref, atol=ATOL, rtol=0)

    def test_fusion_shrinks_program(self, rng):
        w = random_sel_weights(2, 4, rng)
        x = rng.uniform(-1, 1, (8, 4))
        tape = angle_embedding(x, 4) + strongly_entangling_layers(w, 4)
        engine = CompiledTape(tape, 4)
        # Encoding RY fuses with the first layer's Rot on each wire.
        assert engine.n_instructions < engine.n_ops

    def test_expvals_match_measurements(self, rng):
        batch = 5
        ops = covering_tape(batch)
        engine = CompiledTape(ops, 3)
        state = engine.execute(batch=batch)
        ref_state = run(ops, 3, batch)
        np.testing.assert_allclose(
            engine.expvals(state), expval_z(ref_state), atol=ATOL, rtol=0
        )
        np.testing.assert_allclose(
            engine.expvals(state, wires=[2, 0]),
            expval_z(ref_state, wires=[2, 0]),
            atol=ATOL,
            rtol=0,
        )


class TestAdjointDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_tapes(self, seed):
        rng = np.random.default_rng(100 + seed)
        n_qubits = int(rng.integers(2, 5))
        batch = int(rng.integers(1, 7))
        ops, n_inputs, n_weights = random_tape(
            rng, n_qubits, batch, with_refs=True
        )
        grad = rng.standard_normal((batch, n_qubits))
        final = run(ops, n_qubits, batch)
        ig_ref, wg_ref = adjoint_gradients(
            ops, final, grad, n_inputs, n_weights
        )
        engine = CompiledTape(ops, n_qubits)
        engine.execute(batch=batch, record=True)
        ig, wg = engine.adjoint_gradients(grad, n_inputs, n_weights)
        np.testing.assert_allclose(ig, ig_ref, atol=ATOL, rtol=0)
        np.testing.assert_allclose(wg, wg_ref, atol=ATOL, rtol=0)

    @pytest.mark.parametrize("ansatz", ["bel", "sel"])
    def test_paper_ansatze(self, ansatz, rng):
        n_qubits, batch, layers = 3, 5, 2
        x = rng.uniform(-np.pi, np.pi, (batch, n_qubits))
        if ansatz == "bel":
            w = random_bel_weights(layers, n_qubits, rng)
            tape = angle_embedding(x, n_qubits) + basic_entangler_layers(
                w, n_qubits
            )
        else:
            w = random_sel_weights(layers, n_qubits, rng)
            tape = angle_embedding(x, n_qubits) + strongly_entangling_layers(
                w, n_qubits
            )
        grad = rng.standard_normal((batch, n_qubits))
        final = run(tape, n_qubits, batch)
        ig_ref, wg_ref = adjoint_gradients(
            tape, final, grad, n_qubits, w.size
        )
        engine = CompiledTape(tape, n_qubits)
        engine.execute(inputs=x, weights=w.ravel(), record=True)
        ig, wg = engine.adjoint_gradients(grad, n_qubits, w.size)
        np.testing.assert_allclose(ig, ig_ref, atol=ATOL, rtol=0)
        np.testing.assert_allclose(wg, wg_ref, atol=ATOL, rtol=0)

    def test_record_released_after_backward(self, rng):
        x = rng.uniform(-1, 1, (3, 2))
        w = random_bel_weights(1, 2, rng)
        tape = angle_embedding(x, 2) + basic_entangler_layers(w, 2)
        engine = CompiledTape(tape, 2)
        engine.execute(record=True)
        assert engine.has_record
        engine.adjoint_gradients(np.ones((3, 2)), 2, w.size)
        assert not engine.has_record
        with pytest.raises(ShapeError):
            engine.adjoint_gradients(np.ones((3, 2)), 2, w.size)

    def test_record_survives_intervening_execute(self, rng):
        """An inference execute between a recorded forward and backward
        (e.g. a metric callback) must not corrupt the recorded state."""
        x = rng.uniform(-1, 1, (3, 2))
        w = random_bel_weights(1, 2, rng)
        tape = angle_embedding(x, 2) + basic_entangler_layers(w, 2)
        grad = rng.standard_normal((3, 2))
        final = run(tape, 2, 3)
        ig_ref, wg_ref = adjoint_gradients(tape, final, grad, 2, w.size)

        engine = CompiledTape(tape, 2)
        engine.execute(record=True)
        other = rng.uniform(-1, 1, (3, 2))
        engine.execute(inputs=other)  # same batch: would reuse buffers
        engine.execute(inputs=rng.uniform(-1, 1, (5, 2)))  # different batch
        ig, wg = engine.adjoint_gradients(grad, 2, w.size)
        np.testing.assert_allclose(ig, ig_ref, atol=ATOL, rtol=0)
        np.testing.assert_allclose(wg, wg_ref, atol=ATOL, rtol=0)

    def test_multi_qubit_trainable_rejected(self):
        ops = [Operation("CRX", (0, 1), (0.3,), (weight_ref(0),))]
        engine = CompiledTape(ops, 2)
        engine.execute(batch=1, record=True)
        with pytest.raises(GateError):
            engine.adjoint_gradients(np.ones((1, 2)), 1, 1)


class TestCompiledParameterShift:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_reference(self, seed):
        rng = np.random.default_rng(200 + seed)
        n_qubits, batch = 3, 4
        ops, n_inputs, n_weights = random_tape(
            rng, n_qubits, batch, n_ops=8, with_refs=True
        )
        grad = rng.standard_normal((batch, n_qubits))
        ig_ref, wg_ref = parameter_shift_gradients(
            ops, n_qubits, batch, grad, n_inputs, n_weights
        )
        engine = CompiledTape(ops, n_qubits)
        ig, wg = compiled_parameter_shift_gradients(
            engine, grad, n_inputs, n_weights, batch=batch
        )
        np.testing.assert_allclose(ig, ig_ref, atol=ATOL, rtol=0)
        np.testing.assert_allclose(wg, wg_ref, atol=ATOL, rtol=0)

    def test_with_bindings(self, rng):
        n_qubits, batch = 3, 5
        x = rng.uniform(-np.pi, np.pi, (batch, n_qubits))
        w = random_sel_weights(2, n_qubits, rng)
        tape = angle_embedding(x, n_qubits) + strongly_entangling_layers(
            w, n_qubits
        )
        grad = rng.standard_normal((batch, n_qubits))
        ig_ref, wg_ref = parameter_shift_gradients(
            tape, n_qubits, batch, grad, n_qubits, w.size
        )
        structure = angle_embedding_structure(
            n_qubits, n_qubits
        ) + strongly_entangling_layers(w, n_qubits)
        engine = CompiledTape(structure, n_qubits)
        ig, wg = compiled_parameter_shift_gradients(
            engine,
            grad,
            n_qubits,
            w.size,
            inputs=x,
            weights=w.ravel(),
        )
        np.testing.assert_allclose(ig, ig_ref, atol=ATOL, rtol=0)
        np.testing.assert_allclose(wg, wg_ref, atol=ATOL, rtol=0)


class TestValidation:
    def test_bad_wire(self):
        with pytest.raises(ShapeError):
            CompiledTape([Operation("H", (2,))], 2)

    def test_bad_batch(self):
        engine = CompiledTape([Operation("H", (0,))], 1)
        with pytest.raises(ShapeError):
            engine.execute(batch=0)

    def test_too_few_input_features(self):
        ops = [Operation("RY", (0,), (0.0,), (input_ref(3),))]
        engine = CompiledTape(ops, 1)
        with pytest.raises(ShapeError):
            engine.execute(inputs=np.zeros((2, 2)))

    def test_too_few_weights(self):
        ops = [Operation("RY", (0,), (0.0,), (weight_ref(5),))]
        engine = CompiledTape(ops, 1)
        with pytest.raises(ShapeError):
            engine.execute(weights=np.zeros(3), batch=1)

    def test_baked_batch_conflict(self, rng):
        # A (B,)-shaped parameter without a ref is baked in at compile
        # time and pins the execution batch.
        ops = [Operation("RY", (0,), (rng.uniform(size=4),))]
        engine = CompiledTape(ops, 1)
        assert engine.run().shape[0] == 4
        with pytest.raises(ShapeError):
            engine.execute(batch=3)

    def test_buffer_pools_bounded(self, rng):
        x = rng.uniform(-1, 1, (3, 2))
        tape = angle_embedding(x, 2)
        engine = CompiledTape(tape, 2)
        for batch in range(1, 12):
            engine.execute(inputs=rng.uniform(-1, 1, (batch, 2)))
        assert len(engine._pools) <= 4

    def test_grad_shape_checked(self, rng):
        x = rng.uniform(-1, 1, (3, 2))
        tape = angle_embedding(x, 2)
        engine = CompiledTape(tape, 2)
        engine.execute(record=True)
        with pytest.raises(ShapeError):
            engine.adjoint_gradients(np.ones((3, 5)), 2, 1)


class TestKernelPaths:
    """The trailing-wire matmul specialization and the einsum kernels
    must be two implementations of the same math, and the CNOT-ring
    fusion must not change semantics — all checked against the reference
    executor across batch sizes."""

    @pytest.mark.parametrize("batch", [1, 8, 16, 17, 32])
    def test_kernel_paths_agree(self, batch):
        rng = np.random.default_rng(batch)
        n_qubits = 3
        x = rng.uniform(-np.pi, np.pi, (batch, n_qubits))
        w = random_sel_weights(2, n_qubits, rng)
        tape = angle_embedding(x, n_qubits) + strongly_entangling_layers(
            w, n_qubits
        )
        ref = run(tape, n_qubits, batch)
        got = CompiledTape(tape, n_qubits).run(inputs=x, weights=w.ravel())
        np.testing.assert_allclose(got, ref, atol=ATOL, rtol=0)

    @pytest.mark.parametrize("batch", [4, 32])
    def test_adjoint_across_kernel_paths(self, batch):
        rng = np.random.default_rng(batch)
        n_qubits, layers = 3, 3  # 3 layers -> 3 fused CNOT rings
        x = rng.uniform(-np.pi, np.pi, (batch, n_qubits))
        w = random_sel_weights(layers, n_qubits, rng)
        tape = angle_embedding(x, n_qubits) + strongly_entangling_layers(
            w, n_qubits
        )
        grad = rng.standard_normal((batch, n_qubits))
        final = run(tape, n_qubits, batch)
        ig_ref, wg_ref = adjoint_gradients(tape, final, grad, n_qubits, w.size)
        engine = CompiledTape(tape, n_qubits)
        engine.execute(inputs=x, weights=w.ravel(), record=True)
        ig, wg = engine.adjoint_gradients(grad, n_qubits, w.size)
        np.testing.assert_allclose(ig, ig_ref, atol=ATOL, rtol=0)
        np.testing.assert_allclose(wg, wg_ref, atol=ATOL, rtol=0)

    def test_cnot_ring_fuses_to_one_permutation(self, rng):
        from repro.quantum.engine import _FPERM

        n_qubits, layers = 4, 2
        x = rng.uniform(-1, 1, (4, n_qubits))
        w = random_sel_weights(layers, n_qubits, rng)
        tape = angle_embedding(x, n_qubits) + strongly_entangling_layers(
            w, n_qubits
        )
        engine = CompiledTape(tape, n_qubits)
        perms = [i for i in engine._program if i[0] == _FPERM]
        # one fused permutation per layer's ring, not one per CNOT
        assert len(perms) == layers
        # and the adjoint program carries matching skip markers
        skips = [s for s in engine._adj_program if s[0] == "skip"]
        assert len(skips) == layers * (n_qubits - 1)


class TestCompileCache:
    def teardown_method(self):
        from repro.quantum import disable_compile_cache

        disable_compile_cache()

    def _sel_tape(self, rng):
        x = rng.uniform(-1, 1, (4, 3))
        w = random_sel_weights(2, 3, rng)
        return angle_embedding(x, 3) + strongly_entangling_layers(w, 3)

    def test_disabled_by_default(self, rng):
        from repro.quantum import compile_cache_info, compiled_tape

        tape = self._sel_tape(rng)
        assert not compile_cache_info()["enabled"]
        a, b = compiled_tape(tape, 3), compiled_tape(tape, 3)
        assert a is not b and a._program is not b._program

    def test_bad_maxsize_rejected(self):
        from repro.exceptions import ConfigurationError
        from repro.quantum import enable_compile_cache

        with pytest.raises(ConfigurationError):
            enable_compile_cache(maxsize=0)

    def test_structural_hit(self, rng):
        from repro.quantum import (
            compile_cache_info,
            compiled_tape,
            enable_compile_cache,
        )

        enable_compile_cache()
        # Same structure, different parameter values -> one shared
        # compilation, handed out as independent clones.
        a = compiled_tape(self._sel_tape(rng), 3)
        b = compiled_tape(self._sel_tape(rng), 3)
        assert a is not b
        assert a._program is b._program  # compiled program shared
        assert a._pools is not b._pools  # execution state per instance
        info = compile_cache_info()
        assert info["enabled"] and info["hits"] == 1 and info["misses"] == 1

    def test_clones_do_not_share_records(self, rng):
        """Two live layers with identical structure must not clobber each
        other's recorded forwards."""
        from repro.quantum import compiled_tape, enable_compile_cache

        enable_compile_cache()
        x = rng.uniform(-np.pi, np.pi, (4, 3))
        w = random_sel_weights(1, 3, rng)
        tape = angle_embedding(x, 3) + strongly_entangling_layers(w, 3)
        a = compiled_tape(tape, 3)
        b = compiled_tape(tape, 3)
        a.execute(inputs=x, weights=w.ravel(), record=True)
        b.execute(inputs=x, weights=w.ravel(), record=True)
        assert a.has_record and b.has_record
        grad = rng.standard_normal((4, 3))
        ig_a, wg_a = a.adjoint_gradients(grad, 3, w.size)
        ig_b, wg_b = b.adjoint_gradients(grad, 3, w.size)
        np.testing.assert_allclose(ig_a, ig_b, atol=ATOL, rtol=0)
        np.testing.assert_allclose(wg_a, wg_b, atol=ATOL, rtol=0)

    def test_structure_and_constants_distinguish(self, rng):
        from repro.quantum import compiled_tape, enable_compile_cache

        enable_compile_cache()
        sel = compiled_tape(self._sel_tape(rng), 3)
        x = rng.uniform(-1, 1, (4, 3))
        bel_tape = angle_embedding(x, 3) + basic_entangler_layers(
            random_bel_weights(2, 3, rng), 3
        )
        assert compiled_tape(bel_tape, 3) is not sel
        # Unreferenced (constant) parameters are part of the key.
        c1 = compiled_tape([Operation("RY", (0,), (0.1,))], 1)
        c2 = compiled_tape([Operation("RY", (0,), (0.2,))], 1)
        assert c1 is not c2

    def test_cached_engine_rebinds_correctly(self, rng):
        from repro.quantum import compiled_tape, enable_compile_cache

        enable_compile_cache()
        compiled_tape(self._sel_tape(rng), 3)  # seed the cache
        x = rng.uniform(-np.pi, np.pi, (5, 3))
        w = random_sel_weights(2, 3, rng)
        tape = angle_embedding(x, 3) + strongly_entangling_layers(w, 3)
        engine = compiled_tape(tape, 3)
        ref = run(tape, 3, 5)
        got = engine.run(inputs=x, weights=w.ravel())
        np.testing.assert_allclose(got, ref, atol=ATOL, rtol=0)

    def test_bounded(self, rng):
        from repro.quantum import enable_compile_cache
        from repro.quantum.engine import _COMPILE_CACHE_MAX, compiled_tape
        import repro.quantum.engine as engine_mod

        enable_compile_cache(maxsize=2)
        for angle_index in range(5):
            compiled_tape(
                [Operation("RY", (0,), (float(angle_index),))], 1
            )
        assert len(engine_mod._COMPILE_CACHE) <= 2
