"""Cross-validation of the two gradient backends against each other and
against central finite differences."""

import numpy as np
import pytest

from repro.exceptions import GateError
from repro.quantum import (
    adjoint_gradients,
    angle_embedding,
    basic_entangler_layers,
    count_shifted_executions,
    expval_z,
    parameter_shift_gradients,
    random_bel_weights,
    random_sel_weights,
    run,
    strongly_entangling_layers,
)
from repro.quantum.circuit import Operation, input_ref, weight_ref


def build_sel_tape(x, weights, n_qubits):
    return angle_embedding(x, n_qubits) + strongly_entangling_layers(
        weights, n_qubits
    )


def loss_fn(ops, n_qubits, batch, grad_out):
    return float(np.sum(grad_out * expval_z(run(ops, n_qubits, batch))))


class TestAdjointVsShift:
    @pytest.mark.parametrize("ansatz", ["bel", "sel"])
    @pytest.mark.parametrize("n_qubits,n_layers", [(2, 1), (3, 2), (4, 2)])
    def test_backends_agree(self, ansatz, n_qubits, n_layers, rng):
        batch = 3
        x = rng.uniform(-np.pi, np.pi, (batch, n_qubits))
        if ansatz == "bel":
            w = random_bel_weights(n_layers, n_qubits, rng)
            tape = angle_embedding(x, n_qubits) + basic_entangler_layers(
                w, n_qubits
            )
        else:
            w = random_sel_weights(n_layers, n_qubits, rng)
            tape = build_sel_tape(x, w, n_qubits)
        n_weights = w.size
        grad_out = rng.standard_normal((batch, n_qubits))
        final = run(tape, n_qubits, batch)
        gi_a, gw_a = adjoint_gradients(
            tape, final, grad_out, n_qubits, n_weights
        )
        gi_s, gw_s = parameter_shift_gradients(
            tape, n_qubits, batch, grad_out, n_qubits, n_weights
        )
        np.testing.assert_allclose(gi_a, gi_s, atol=1e-10)
        np.testing.assert_allclose(gw_a, gw_s, atol=1e-10)


class TestAgainstFiniteDifferences:
    def test_weight_gradients(self, rng):
        n_qubits, n_layers, batch = 3, 2, 2
        x = rng.uniform(-1, 1, (batch, n_qubits))
        w = random_sel_weights(n_layers, n_qubits, rng)
        grad_out = rng.standard_normal((batch, n_qubits))
        tape = build_sel_tape(x, w, n_qubits)
        final = run(tape, n_qubits, batch)
        _, gw = adjoint_gradients(tape, final, grad_out, n_qubits, w.size)

        eps = 1e-6
        flat = w.ravel()
        for i in range(0, flat.size, 5):  # sample every 5th parameter
            wp, wm = flat.copy(), flat.copy()
            wp[i] += eps
            wm[i] -= eps
            lp = loss_fn(
                build_sel_tape(x, wp.reshape(w.shape), n_qubits),
                n_qubits,
                batch,
                grad_out,
            )
            lm = loss_fn(
                build_sel_tape(x, wm.reshape(w.shape), n_qubits),
                n_qubits,
                batch,
                grad_out,
            )
            assert np.isclose(gw[i], (lp - lm) / (2 * eps), atol=1e-5)

    def test_input_gradients(self, rng):
        n_qubits, batch = 2, 3
        x = rng.uniform(-1, 1, (batch, n_qubits))
        w = random_bel_weights(2, n_qubits, rng)
        grad_out = rng.standard_normal((batch, n_qubits))

        def tape_of(xx):
            return angle_embedding(xx, n_qubits) + basic_entangler_layers(
                w, n_qubits
            )

        final = run(tape_of(x), n_qubits, batch)
        gi, _ = adjoint_gradients(
            tape_of(x), final, grad_out, n_qubits, w.size
        )
        eps = 1e-6
        for b in range(batch):
            for j in range(n_qubits):
                xp, xm = x.copy(), x.copy()
                xp[b, j] += eps
                xm[b, j] -= eps
                lp = loss_fn(tape_of(xp), n_qubits, batch, grad_out)
                lm = loss_fn(tape_of(xm), n_qubits, batch, grad_out)
                assert np.isclose(gi[b, j], (lp - lm) / (2 * eps), atol=1e-5)


class TestEdgeCases:
    def test_zero_grad_out_gives_zero_gradients(self, rng):
        n_qubits = 2
        x = rng.uniform(-1, 1, (2, n_qubits))
        w = random_bel_weights(1, n_qubits, rng)
        tape = angle_embedding(x, n_qubits) + basic_entangler_layers(
            w, n_qubits
        )
        final = run(tape, n_qubits, 2)
        gi, gw = adjoint_gradients(
            tape, final, np.zeros((2, n_qubits)), n_qubits, w.size
        )
        assert not gi.any() and not gw.any()

    def test_untrainable_tape(self):
        tape = [Operation("H", (0,)), Operation("CNOT", (0, 1))]
        final = run(tape, 2, 1)
        gi, gw = adjoint_gradients(tape, final, np.ones((1, 2)), 0, 0)
        assert gi.shape == (1, 0) and gw.shape == (0,)

    def test_adjoint_rejects_trainable_two_qubit(self):
        # Construct an artificial trainable two-qubit op: SWAP has no
        # params, so fake it by giving CNOT a weight ref is impossible
        # via the public API; instead check the guard directly with a
        # hand-built op bypassing __post_init__ checks.
        op = Operation("SWAP", (0, 1))
        op.refs = (weight_ref(0),)  # simulate a corrupted tape
        final = run([op], 2, 1)
        with pytest.raises(GateError):
            adjoint_gradients([op], final, np.ones((1, 2)), 0, 1)

    def test_count_shifted_executions(self):
        x = np.zeros((1, 3))
        w = np.zeros((2, 3, 3))
        tape = angle_embedding(x, 3) + strongly_entangling_layers(w, 3)
        # 3 input params + 18 weight params -> 42 executions.
        assert count_shifted_executions(tape) == 2 * (3 + 18)

    def test_measure_wire_subset(self, rng):
        """Gradients restricted to a wire subset match finite differences."""
        n_qubits, batch = 3, 2
        x = rng.uniform(-1, 1, (batch, n_qubits))
        w = random_bel_weights(1, n_qubits, rng)
        grad_out = rng.standard_normal((batch, 2))
        wires = [0, 2]

        def tape_of(xx):
            return angle_embedding(xx, n_qubits) + basic_entangler_layers(
                w, n_qubits
            )

        final = run(tape_of(x), n_qubits, batch)
        gi_a, gw_a = adjoint_gradients(
            tape_of(x), final, grad_out, n_qubits, w.size, measure_wires=wires
        )
        gi_s, gw_s = parameter_shift_gradients(
            tape_of(x),
            n_qubits,
            batch,
            grad_out,
            n_qubits,
            w.size,
            measure_wires=wires,
        )
        np.testing.assert_allclose(gi_a, gi_s, atol=1e-10)
        np.testing.assert_allclose(gw_a, gw_s, atol=1e-10)


class TestStackedParameterShift:
    """The vectorized compiled shift path — all 2P shifted circuits as
    one run-stacked sweep — must match the per-shift loop bit for bit
    (and the reference executor to tolerance)."""

    def _engine_case(self, ansatz, n_qubits, n_layers, batch, rng):
        from repro.quantum.engine import CompiledTape

        x0 = np.zeros((1, n_qubits))
        if ansatz == "bel":
            w0 = random_bel_weights(n_layers, n_qubits, rng)
            ops = angle_embedding(x0, n_qubits) + basic_entangler_layers(
                w0, n_qubits
            )
        else:
            w0 = random_sel_weights(n_layers, n_qubits, rng)
            ops = angle_embedding(x0, n_qubits) + strongly_entangling_layers(
                w0, n_qubits
            )
        inputs = rng.uniform(-np.pi, np.pi, (batch, n_qubits))
        weights = rng.standard_normal(w0.size)
        grad_out = rng.standard_normal((batch, n_qubits))
        return ops, inputs, weights, grad_out, CompiledTape

    @pytest.mark.parametrize("ansatz", ["bel", "sel"])
    @pytest.mark.parametrize("n_qubits,n_layers,batch", [(3, 1, 4), (4, 2, 1)])
    def test_stacked_matches_loop_bitwise(
        self, ansatz, n_qubits, n_layers, batch, rng
    ):
        from repro.quantum.parameter_shift import (
            compiled_parameter_shift_gradients,
        )

        ops, inputs, weights, grad_out, CompiledTape = self._engine_case(
            ansatz, n_qubits, n_layers, batch, rng
        )
        stacked = CompiledTape(ops, n_qubits)
        loop = CompiledTape(ops, n_qubits)
        assert stacked.shift_stackable
        gi_v, gw_v = compiled_parameter_shift_gradients(
            stacked, grad_out, n_qubits, weights.size,
            inputs=inputs, weights=weights,
        )
        gi_l, gw_l = compiled_parameter_shift_gradients(
            loop, grad_out, n_qubits, weights.size,
            inputs=inputs, weights=weights, vectorized=False,
        )
        assert np.array_equal(gi_v, gi_l)
        assert np.array_equal(gw_v, gw_l)

    def test_stacked_matches_reference_executor(self, rng):
        from repro.quantum.engine import CompiledTape
        from repro.quantum.parameter_shift import (
            compiled_parameter_shift_gradients,
        )

        n_qubits, batch = 3, 3
        x = rng.uniform(-np.pi, np.pi, (batch, n_qubits))
        w = random_sel_weights(2, n_qubits, rng)
        tape = build_sel_tape(x, w, n_qubits)
        grad_out = rng.standard_normal((batch, n_qubits))
        gi_r, gw_r = parameter_shift_gradients(
            tape, n_qubits, batch, grad_out, n_qubits, w.size
        )
        engine = CompiledTape(tape, n_qubits)
        gi_v, gw_v = compiled_parameter_shift_gradients(
            engine, grad_out, n_qubits, w.size,
            inputs=x, weights=w.reshape(-1),
        )
        np.testing.assert_allclose(gi_v, gi_r, atol=1e-10)
        np.testing.assert_allclose(gw_v, gw_r, atol=1e-10)

    def test_missing_bindings_fall_back_to_loop(self, rng):
        """A tape with input refs but no inputs binding cannot stack its
        shifts; the loop fallback must still produce gradients."""
        from repro.quantum.engine import CompiledTape
        from repro.quantum.parameter_shift import (
            compiled_parameter_shift_gradients,
        )

        n_qubits, batch = 2, 2
        w = random_sel_weights(1, n_qubits, rng)
        x = rng.uniform(-np.pi, np.pi, (batch, n_qubits))
        tape = build_sel_tape(x, w, n_qubits)
        stacked = CompiledTape(tape, n_qubits)
        loop = CompiledTape(tape, n_qubits)
        grad_out = rng.standard_normal((batch, n_qubits))
        # weights bound, inputs left at their baked-in defaults
        gi_v, gw_v = compiled_parameter_shift_gradients(
            stacked, grad_out, n_qubits, w.size,
            weights=w.reshape(-1), batch=batch,
        )
        gi_l, gw_l = compiled_parameter_shift_gradients(
            loop, grad_out, n_qubits, w.size,
            weights=w.reshape(-1), batch=batch, vectorized=False,
        )
        assert np.array_equal(gi_v, gi_l)
        assert np.array_equal(gw_v, gw_l)

    def test_multi_qubit_referenced_gate_not_stackable(self):
        from repro.quantum.engine import CompiledTape

        ops = [
            Operation("RY", (0,), (np.asarray(0.1),), (weight_ref(0),)),
            Operation(
                "CRX",
                (0, 1),
                (np.asarray(0.2),),
                (weight_ref(1),),
            ),
        ]
        engine = CompiledTape(ops, 2)
        assert not engine.shift_stackable
