"""Property-based tests (hypothesis) for the quantum substrate.

Invariants checked over randomly generated circuits:

* unitarity: every tape preserves statevector norms;
* physicality: Z expectations always lie in [-1, 1];
* gradient consistency: adjoint == parameter-shift on arbitrary tapes;
* rotation group structure: angles compose additively.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum import (
    adjoint_gradients,
    angle_embedding,
    basic_entangler_layers,
    expval_z,
    gates,
    norms,
    parameter_shift_gradients,
    run,
    strongly_entangling_layers,
)

angles = st.floats(
    min_value=-2 * np.pi,
    max_value=2 * np.pi,
    allow_nan=False,
    allow_infinity=False,
)


def _tape(n_qubits, n_layers, ansatz, x_flat, w_flat):
    x = np.asarray(x_flat, dtype=float).reshape(1, n_qubits)
    if ansatz == "bel":
        w = np.asarray(w_flat, dtype=float).reshape(n_layers, n_qubits)
        return (
            angle_embedding(x, n_qubits)
            + basic_entangler_layers(w, n_qubits),
            w.size,
        )
    w = np.asarray(w_flat, dtype=float).reshape(n_layers, n_qubits, 3)
    return (
        angle_embedding(x, n_qubits)
        + strongly_entangling_layers(w, n_qubits),
        w.size,
    )


@st.composite
def circuit_cases(draw):
    n_qubits = draw(st.integers(min_value=2, max_value=4))
    n_layers = draw(st.integers(min_value=1, max_value=2))
    ansatz = draw(st.sampled_from(["bel", "sel"]))
    per_layer = n_qubits if ansatz == "bel" else 3 * n_qubits
    x = draw(
        st.lists(angles, min_size=n_qubits, max_size=n_qubits)
    )
    w = draw(
        st.lists(
            angles,
            min_size=n_layers * per_layer,
            max_size=n_layers * per_layer,
        )
    )
    return n_qubits, n_layers, ansatz, x, w


@given(circuit_cases())
@settings(max_examples=25, deadline=None)
def test_tapes_preserve_norm(case):
    n_qubits, n_layers, ansatz, x, w = case
    tape, _ = _tape(n_qubits, n_layers, ansatz, x, w)
    psi = run(tape, n_qubits, batch=1)
    assert np.allclose(norms(psi), 1.0, atol=1e-10)


@given(circuit_cases())
@settings(max_examples=25, deadline=None)
def test_expectations_are_physical(case):
    n_qubits, n_layers, ansatz, x, w = case
    tape, _ = _tape(n_qubits, n_layers, ansatz, x, w)
    e = expval_z(run(tape, n_qubits, batch=1))
    assert (np.abs(e) <= 1.0 + 1e-10).all()


@given(circuit_cases())
@settings(max_examples=15, deadline=None)
def test_adjoint_equals_parameter_shift(case):
    n_qubits, n_layers, ansatz, x, w = case
    tape, n_weights = _tape(n_qubits, n_layers, ansatz, x, w)
    grad_out = np.ones((1, n_qubits))
    final = run(tape, n_qubits, batch=1)
    gi_a, gw_a = adjoint_gradients(tape, final, grad_out, n_qubits, n_weights)
    gi_s, gw_s = parameter_shift_gradients(
        tape, n_qubits, 1, grad_out, n_qubits, n_weights
    )
    np.testing.assert_allclose(gi_a, gi_s, atol=1e-8)
    np.testing.assert_allclose(gw_a, gw_s, atol=1e-8)


@given(a=angles, b=angles)
@settings(max_examples=50, deadline=None)
def test_rotation_additivity(a, b):
    for builder in (gates.rx, gates.ry, gates.rz):
        np.testing.assert_allclose(
            builder(a) @ builder(b), builder(a + b), atol=1e-10
        )


@given(a=angles, b=angles, c=angles)
@settings(max_examples=50, deadline=None)
def test_rot_is_always_unitary(a, b, c):
    assert gates.is_unitary(gates.rot(a, b, c))
