"""Unit tests for measurement post-processing."""

import numpy as np
import pytest

from repro.exceptions import ShapeError, WireError
from repro.quantum import gates, state
from repro.quantum.circuit import Operation, run
from repro.quantum.measurements import (
    apply_z_linear_combination,
    expval_z,
    marginal_probabilities,
)


class TestExpvalZ:
    def test_zero_state(self):
        psi = state.zero_state(3, batch=2)
        assert np.allclose(expval_z(psi), 1.0)

    def test_one_state(self):
        psi = state.basis_state((1, 0, 1), batch=1)
        assert np.allclose(expval_z(psi)[0], [-1.0, 1.0, -1.0])

    def test_plus_state_wire(self):
        psi = state.apply_single_qubit(state.zero_state(2), gates.HADAMARD, 0)
        e = expval_z(psi)
        assert np.allclose(e[0], [0.0, 1.0], atol=1e-12)

    def test_analytic_ry_angle(self):
        theta = 0.77
        psi = run([Operation("RY", (0,), (theta,))], 1)
        assert np.isclose(expval_z(psi)[0, 0], np.cos(theta))

    def test_wire_subset_and_order(self):
        psi = state.basis_state((1, 0), batch=1)
        e = expval_z(psi, wires=[1, 0])
        assert np.allclose(e[0], [1.0, -1.0])

    def test_bad_wire(self):
        with pytest.raises(WireError):
            expval_z(state.zero_state(2), wires=[2])


class TestZLinearCombination:
    def test_matches_definition(self, rng):
        """O |psi> computed element-wise against explicit matrices."""
        n, batch = 3, 4
        psi = rng.standard_normal((batch, 2**n)) + 1j * rng.standard_normal(
            (batch, 2**n)
        )
        shaped = psi.reshape((batch,) + (2,) * n)
        coeffs = rng.standard_normal((batch, n))
        got = state.as_matrix(apply_z_linear_combination(shaped, coeffs))
        for b in range(batch):
            op = np.zeros((2**n, 2**n), dtype=complex)
            for k in range(n):
                mat = np.eye(1, dtype=complex)
                for w in range(n):
                    mat = np.kron(mat, gates.PAULI_Z if w == k else np.eye(2))
                op += coeffs[b, k] * mat
            assert np.allclose(got[b], op @ psi[b])

    def test_gradient_identity(self, rng):
        """<psi| O |psi> equals sum_k c_k <Z_k>."""
        n = 2
        psi = run(
            [
                Operation("RY", (0,), (0.4,)),
                Operation("RY", (1,), (1.3,)),
                Operation("CNOT", (0, 1)),
            ],
            n,
        )
        coeffs = rng.standard_normal((1, n))
        bra = apply_z_linear_combination(psi, coeffs)
        inner = np.sum(np.conj(state.as_matrix(psi)) * state.as_matrix(bra))
        expected = np.sum(coeffs * expval_z(psi))
        assert np.isclose(np.real(inner), expected)
        assert np.isclose(np.imag(inner), 0.0, atol=1e-12)

    def test_shape_check(self):
        psi = state.zero_state(2, batch=2)
        with pytest.raises(ShapeError):
            apply_z_linear_combination(psi, np.zeros((3, 2)))

    def test_wire_subset(self):
        psi = state.zero_state(2, batch=1)
        out = apply_z_linear_combination(psi, np.array([[2.0]]), wires=[1])
        assert np.allclose(state.as_matrix(out)[0], [2.0, 0, 0, 0])


class TestMarginals:
    def test_uniform_superposition(self):
        psi = state.zero_state(2)
        psi = state.apply_single_qubit(psi, gates.HADAMARD, 0)
        marg = marginal_probabilities(psi, 0)
        assert np.allclose(marg, [[0.5, 0.5]])
        assert np.allclose(marginal_probabilities(psi, 1), [[1.0, 0.0]])

    def test_bad_wire(self):
        with pytest.raises(WireError):
            marginal_probabilities(state.zero_state(2), 5)
