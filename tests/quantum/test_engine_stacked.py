"""Differential tests for the engine's run-stacked execution mode.

The contract: ``execute(inputs, weights_2d, runs=R)`` over a run-major
fused batch is **bit-identical** — not merely 1e-12-close — to R
independent executions with each run's weight row.  Bit-identity is what
lets ``vectorized_runs`` grid searches reproduce per-run training
trajectories exactly (training is chaotic; a ulp would amplify).
"""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.quantum.engine import CompiledTape
from repro.quantum.templates import (
    angle_embedding,
    basic_entangler_layers,
    random_bel_weights,
    random_sel_weights,
    strongly_entangling_layers,
)


def make_tape(ansatz: str, n_qubits: int, n_layers: int, rng):
    x0 = np.zeros((1, n_qubits))
    if ansatz == "sel":
        w0 = random_sel_weights(n_layers, n_qubits, rng)
        ops = angle_embedding(x0, n_qubits) + strongly_entangling_layers(
            w0, n_qubits
        )
    else:
        w0 = random_bel_weights(n_layers, n_qubits, rng)
        ops = angle_embedding(x0, n_qubits) + basic_entangler_layers(
            w0, n_qubits
        )
    return ops, w0.size


CASES = [
    ("sel", 3, 1, 2, 1),
    ("sel", 4, 3, 5, 8),
    ("sel", 5, 2, 4, 6),
    ("sel", 4, 2, 5, 1),
    ("bel", 3, 1, 2, 1),
    ("bel", 4, 3, 5, 8),
    ("bel", 5, 2, 4, 6),
    ("bel", 4, 10, 3, 8),
]


class TestStackedForward:
    @pytest.mark.parametrize("ansatz,n_q,n_l,runs,batch", CASES)
    def test_bitwise_equal_to_per_run(self, ansatz, n_q, n_l, runs, batch):
        rng = np.random.default_rng((hash(ansatz) & 0xFFFF, n_q, n_l))
        ops, n_w = make_tape(ansatz, n_q, n_l, rng)
        stacked = CompiledTape(ops, n_q)
        scalar = CompiledTape(ops, n_q)
        weights = rng.normal(size=(runs, n_w))
        inputs = rng.normal(size=(runs * batch, n_q))

        state = stacked.execute(inputs=inputs, weights=weights, runs=runs)
        state = state.copy()
        ev = stacked.expvals(state, runs=runs)
        for r in range(runs):
            sl = slice(r * batch, (r + 1) * batch)
            ref = scalar.execute(inputs=inputs[sl], weights=weights[r])
            assert np.array_equal(ref, state[sl])
            assert np.array_equal(scalar.expvals(ref), ev[sl])

    def test_shared_1d_weights_broadcast_across_runs(self):
        """1-D weights with runs= mean 'same parameters every run'."""
        rng = np.random.default_rng(5)
        ops, n_w = make_tape("sel", 3, 2, rng)
        engine = CompiledTape(ops, 3)
        w = rng.normal(size=n_w)
        x = rng.normal(size=(6, 3))
        fused = engine.execute(inputs=x, weights=w, runs=2).copy()
        ref = engine.execute(inputs=x, weights=w)
        assert np.array_equal(fused, ref)


class TestStackedAdjoint:
    @pytest.mark.parametrize("ansatz,n_q,n_l,runs,batch", CASES)
    def test_gradients_bitwise_equal(self, ansatz, n_q, n_l, runs, batch):
        rng = np.random.default_rng((n_q, n_l, runs, batch))
        ops, n_w = make_tape(ansatz, n_q, n_l, rng)
        stacked = CompiledTape(ops, n_q)
        scalar = CompiledTape(ops, n_q)
        weights = rng.normal(size=(runs, n_w))
        inputs = rng.normal(size=(runs * batch, n_q))
        grad = rng.normal(size=(runs * batch, n_q))

        stacked.execute(inputs=inputs, weights=weights, runs=runs, record=True)
        ig, wg = stacked.adjoint_gradients(grad, n_inputs=n_q, n_weights=n_w)
        assert ig.shape == (runs * batch, n_q)
        assert wg.shape == (runs, n_w)
        for r in range(runs):
            sl = slice(r * batch, (r + 1) * batch)
            scalar.execute(
                inputs=inputs[sl], weights=weights[r], record=True
            )
            rig, rwg = scalar.adjoint_gradients(
                grad[sl], n_inputs=n_q, n_weights=n_w
            )
            assert np.array_equal(rig, ig[sl])
            assert np.array_equal(rwg, wg[r])

    def test_record_released_after_backward(self):
        rng = np.random.default_rng(9)
        ops, n_w = make_tape("bel", 3, 2, rng)
        engine = CompiledTape(ops, 3)
        engine.execute(
            inputs=rng.normal(size=(6, 3)),
            weights=rng.normal(size=(2, n_w)),
            runs=2,
            record=True,
        )
        assert engine.has_record
        engine.adjoint_gradients(
            np.ones((6, 3)), n_inputs=3, n_weights=n_w
        )
        assert not engine.has_record


class TestStackedValidation:
    def setup_method(self):
        rng = np.random.default_rng(3)
        self.ops, self.n_w = make_tape("sel", 3, 1, rng)
        self.engine = CompiledTape(self.ops, 3)
        self.rng = rng

    def test_batch_must_be_multiple_of_runs(self):
        with pytest.raises(ShapeError, match="multiple of runs"):
            self.engine.execute(
                inputs=self.rng.normal(size=(7, 3)),
                weights=self.rng.normal(size=(3, self.n_w)),
                runs=3,
            )

    def test_weight_rows_must_match_runs(self):
        with pytest.raises(ShapeError, match="rows"):
            self.engine.execute(
                inputs=self.rng.normal(size=(6, 3)),
                weights=self.rng.normal(size=(2, self.n_w)),
                runs=3,
            )

    def test_too_few_weights_per_run(self):
        with pytest.raises(ShapeError, match="weights per run"):
            self.engine.execute(
                inputs=self.rng.normal(size=(4, 3)),
                weights=self.rng.normal(size=(2, 1)),
                runs=2,
            )

    def test_nonpositive_runs_rejected(self):
        with pytest.raises(ShapeError, match="runs"):
            self.engine.execute(
                inputs=self.rng.normal(size=(4, 3)),
                weights=self.rng.normal(size=self.n_w),
                runs=0,
            )

    def test_expvals_batch_not_multiple_of_runs(self):
        state = self.engine.execute(
            inputs=self.rng.normal(size=(4, 3)),
            weights=self.rng.normal(size=(2, self.n_w)),
            runs=2,
        )
        with pytest.raises(ShapeError, match="multiple of runs"):
            self.engine.expvals(state[:3], runs=2)


class TestSliceCompaction:
    """Dropping run rows (frozen-run compaction) keeps the surviving
    slices bit-identical: the engine's per-run kernels never mix
    slices, so executing a row-subset equals slicing the full sweep."""

    @pytest.mark.parametrize("ansatz,batch", [("sel", 4), ("bel", 1)])
    def test_subset_execution_bitwise_equal(self, ansatz, batch):
        rng = np.random.default_rng((batch, 17))
        ops, n_w = make_tape(ansatz, 4, 2, rng)
        full = CompiledTape(ops, 4)
        compacted = CompiledTape(ops, 4)
        runs = 5
        keep = np.array([0, 2, 4])
        weights = rng.normal(size=(runs, n_w))
        inputs = rng.normal(size=(runs * batch, 4))
        rows = (
            keep[:, None] * batch + np.arange(batch)[None, :]
        ).reshape(-1)

        state = full.execute(inputs=inputs, weights=weights, runs=runs)
        state = state.copy()
        ev = full.expvals(state, runs=runs)
        sub = compacted.execute(
            inputs=inputs[rows], weights=weights[keep], runs=keep.size
        )
        assert np.array_equal(sub, state[rows])
        assert np.array_equal(
            compacted.expvals(sub, runs=keep.size), ev[rows]
        )

    def test_subset_adjoint_bitwise_equal(self):
        rng = np.random.default_rng(23)
        ops, n_w = make_tape("sel", 3, 2, rng)
        full = CompiledTape(ops, 3)
        compacted = CompiledTape(ops, 3)
        runs, batch = 4, 8
        keep = np.array([1, 3])
        weights = rng.normal(size=(runs, n_w))
        inputs = rng.normal(size=(runs * batch, 3))
        grad = rng.normal(size=(runs * batch, 3))
        rows = (
            keep[:, None] * batch + np.arange(batch)[None, :]
        ).reshape(-1)

        full.execute(inputs=inputs, weights=weights, runs=runs, record=True)
        ig, wg = full.adjoint_gradients(grad, n_inputs=3, n_weights=n_w)
        compacted.execute(
            inputs=inputs[rows],
            weights=weights[keep],
            runs=keep.size,
            record=True,
        )
        sig, swg = compacted.adjoint_gradients(
            grad[rows], n_inputs=3, n_weights=n_w
        )
        assert np.array_equal(sig, ig[rows])
        assert np.array_equal(swg, wg[keep])


class TestPerRunShifts:
    """Run-stacked shift vectors: each run's slot sees its own delta."""

    def test_per_run_shift_vector_matches_scalar_shifts(self):
        rng = np.random.default_rng(31)
        ops, n_w = make_tape("sel", 3, 1, rng)
        stacked = CompiledTape(ops, 3)
        scalar = CompiledTape(ops, 3)
        batch, runs = 2, 3
        w = rng.normal(size=n_w)
        x = rng.normal(size=(batch, 3))
        deltas = np.array([0.0, +np.pi / 2, -np.pi / 2])
        refs = stacked.referenced_params()
        slot = next((g, p) for g, p, r in refs if r.kind == "weight")

        fused = stacked.execute(
            inputs=np.tile(x, (runs, 1)),
            weights=np.tile(w, (runs, 1)),
            runs=runs,
            shifts={slot: deltas},
        ).copy()
        for r in range(runs):
            ref = scalar.execute(
                inputs=x, weights=w, shifts={slot: float(deltas[r])}
            )
            assert np.array_equal(ref, fused[r * batch : (r + 1) * batch])
