"""Unit tests for the paper's circuit templates (PennyLane semantics)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.quantum import expval_z, run, state, tape_summary
from repro.quantum.templates import (
    angle_embedding,
    basic_entangler_layers,
    bel_param_count,
    bel_weight_shape,
    random_bel_weights,
    random_sel_weights,
    sel_param_count,
    sel_ranges,
    sel_weight_shape,
    strongly_entangling_layers,
)


class TestAngleEmbedding:
    def test_structure(self):
        x = np.zeros((4, 3))
        ops = angle_embedding(x, 3)
        assert [op.name for op in ops] == ["RY", "RY", "RY"]
        assert [op.wires for op in ops] == [(0,), (1,), (2,)]
        for i, op in enumerate(ops):
            assert op.refs[0].kind == "input" and op.refs[0].index == i

    def test_per_sample_angles(self):
        x = np.array([[0.0], [np.pi]])
        ops = angle_embedding(x, 1)
        psi = run(ops, 1, batch=2)
        e = expval_z(psi)
        # RY(0)|0> stays |0> (<Z>=1); RY(pi)|0> = |1> (<Z>=-1).
        assert np.allclose(e[:, 0], [1.0, -1.0], atol=1e-12)

    def test_fewer_features_than_qubits(self):
        ops = angle_embedding(np.zeros((1, 2)), 4)
        assert len(ops) == 2

    def test_too_many_features(self):
        with pytest.raises(ShapeError):
            angle_embedding(np.zeros((1, 5)), 4)

    def test_requires_2d(self):
        with pytest.raises(ShapeError):
            angle_embedding(np.zeros(3), 3)

    def test_rotation_axis(self):
        ops = angle_embedding(np.zeros((1, 2)), 2, rotation="X")
        assert all(op.name == "RX" for op in ops)
        with pytest.raises(ConfigurationError):
            angle_embedding(np.zeros((1, 2)), 2, rotation="Q")


class TestBEL:
    def test_structure_3q_2l(self):
        w = np.zeros((2, 3))
        ops = basic_entangler_layers(w, 3)
        # per layer: 3 RY + 3 CNOT ring
        assert tape_summary(ops) == {"RY": 6, "CNOT": 6}
        ring = [op.wires for op in ops if op.name == "CNOT"][:3]
        assert ring == [(0, 1), (1, 2), (2, 0)]

    def test_two_qubit_ring_has_single_cnot(self):
        ops = basic_entangler_layers(np.zeros((1, 2)), 2)
        assert tape_summary(ops) == {"RY": 2, "CNOT": 1}

    def test_single_qubit_no_entangler(self):
        ops = basic_entangler_layers(np.zeros((1, 1)), 1)
        assert tape_summary(ops) == {"RY": 1}

    def test_weight_refs_are_flat_row_major(self):
        w = np.zeros((2, 3))
        ops = [o for o in basic_entangler_layers(w, 3) if o.name == "RY"]
        assert [o.refs[0].index for o in ops] == list(range(6))
        assert all(o.refs[0].kind == "weight" for o in ops)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            basic_entangler_layers(np.zeros((2, 4)), 3)
        with pytest.raises(ShapeError):
            basic_entangler_layers(np.zeros(3), 3)

    def test_param_count_and_shape(self):
        assert bel_weight_shape(4, 3) == (4, 3)
        assert bel_param_count(4, 3) == 12

    def test_custom_rotation(self):
        ops = basic_entangler_layers(np.zeros((1, 2)), 2, rotation="X")
        assert ops[0].name == "RX"


class TestSEL:
    def test_structure_3q_2l(self):
        w = np.zeros((2, 3, 3))
        ops = strongly_entangling_layers(w, 3)
        assert tape_summary(ops) == {"Rot": 6, "CNOT": 6}
        # Default ranges for 3 qubits: layer 0 -> r=1, layer 1 -> r=2.
        cnots = [op.wires for op in ops if op.name == "CNOT"]
        assert cnots[:3] == [(0, 1), (1, 2), (2, 0)]
        assert cnots[3:] == [(0, 2), (1, 0), (2, 1)]

    def test_default_ranges_cycle(self):
        assert sel_ranges(4, 3) == (1, 2, 1, 2)
        assert sel_ranges(2, 5) == (1, 2)
        assert sel_ranges(3, 1) == (0, 0, 0)

    def test_weight_refs_are_flat_row_major(self):
        w = np.zeros((1, 2, 3))
        rots = [o for o in strongly_entangling_layers(w, 2) if o.name == "Rot"]
        flat = [r.index for o in rots for r in o.refs]
        assert flat == list(range(6))

    def test_explicit_ranges(self):
        w = np.zeros((2, 4, 3))
        ops = strongly_entangling_layers(w, 4, ranges=(3, 1))
        cnots = [op.wires for op in ops if op.name == "CNOT"]
        assert cnots[:4] == [(0, 3), (1, 0), (2, 1), (3, 2)]

    def test_ranges_length_check(self):
        with pytest.raises(ConfigurationError):
            strongly_entangling_layers(np.zeros((2, 3, 3)), 3, ranges=(1,))

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            strongly_entangling_layers(np.zeros((2, 3, 2)), 3)

    def test_param_count_and_shape(self):
        assert sel_weight_shape(2, 3) == (2, 3, 3)
        assert sel_param_count(2, 3) == 18


class TestRandomWeights:
    def test_ranges_and_shapes(self, rng):
        wb = random_bel_weights(3, 4, rng)
        ws = random_sel_weights(3, 4, rng)
        assert wb.shape == (3, 4) and ws.shape == (3, 4, 3)
        assert (wb >= 0).all() and (wb < 2 * np.pi).all()
        assert (ws >= 0).all() and (ws < 2 * np.pi).all()

    def test_deterministic_given_seed(self):
        a = random_sel_weights(2, 3, np.random.default_rng(42))
        b = random_sel_weights(2, 3, np.random.default_rng(42))
        assert np.array_equal(a, b)


class TestTemplatesExecute:
    def test_full_hybrid_tape_preserves_norm(self, rng):
        x = rng.uniform(-2, 2, (5, 4))
        w = random_sel_weights(3, 4, rng)
        ops = angle_embedding(x, 4) + strongly_entangling_layers(w, 4)
        psi = run(ops, 4, batch=5)
        assert np.allclose(state.norms(psi), 1.0)
        e = expval_z(psi)
        assert e.shape == (5, 4)
        assert (np.abs(e) <= 1 + 1e-12).all()
