"""Unit tests for the tape representation and executor."""

import numpy as np
import pytest

from repro.exceptions import GateError, ShapeError, WireError
from repro.quantum import gates, state
from repro.quantum.circuit import (
    GATE_SET,
    Operation,
    ParamRef,
    input_ref,
    run,
    shift_parameter,
    tape_summary,
    weight_ref,
)


class TestParamRef:
    def test_constructors(self):
        assert input_ref(3) == ParamRef("input", 3)
        assert weight_ref(0) == ParamRef("weight", 0)

    def test_invalid_kind(self):
        with pytest.raises(GateError):
            ParamRef("bias", 0)

    def test_negative_index(self):
        with pytest.raises(GateError):
            ParamRef("input", -1)


class TestOperationValidation:
    def test_unknown_gate(self):
        with pytest.raises(GateError):
            Operation("FOO", (0,))

    def test_wire_count_mismatch(self):
        with pytest.raises(WireError):
            Operation("CNOT", (0,))

    def test_param_count_mismatch(self):
        with pytest.raises(GateError):
            Operation("RX", (0,))
        with pytest.raises(GateError):
            Operation("Rot", (0,), (0.1,))

    def test_refs_length_mismatch(self):
        with pytest.raises(GateError):
            Operation("RX", (0,), (0.1,), (None, None))

    def test_default_refs_filled(self):
        op = Operation("Rot", (0,), (0.1, 0.2, 0.3))
        assert op.refs == (None, None, None)
        assert not op.is_trainable

    def test_trainable_flag(self):
        op = Operation("RY", (1,), (0.5,), (weight_ref(2),))
        assert op.is_trainable and op.is_parametrized

    def test_matrix_of_permutation_gate_raises(self):
        with pytest.raises(GateError):
            Operation("CNOT", (0, 1)).matrix()

    def test_deriv_of_underivable_gate_raises(self):
        with pytest.raises(GateError):
            Operation("H", (0,)).deriv_matrices()

    def test_gate_set_consistency(self):
        for name, info in GATE_SET.items():
            assert info.n_wires in (1, 2), name
            assert info.n_params in (0, 1, 3), name


class TestRun:
    def test_empty_tape_returns_zero_state(self):
        psi = run([], 2, batch=3)
        assert np.allclose(psi, state.zero_state(2, batch=3))

    def test_x_flips(self):
        psi = run([Operation("X", (1,))], 2)
        assert np.allclose(state.as_matrix(psi)[0], [0, 1, 0, 0])

    def test_bell_state(self):
        ops = [Operation("H", (0,)), Operation("CNOT", (0, 1))]
        psi = state.as_matrix(run(ops, 2))[0]
        expected = np.array([1, 0, 0, 1]) / np.sqrt(2)
        assert np.allclose(psi, expected)

    def test_initial_state_override(self):
        init = state.basis_state((1, 1), batch=1)
        psi = run([Operation("CNOT", (0, 1))], 2, initial_state=init)
        assert np.allclose(state.as_matrix(psi)[0], [0, 0, 1, 0])

    def test_initial_state_shape_check(self):
        with pytest.raises(ShapeError):
            run([], 2, batch=2, initial_state=state.zero_state(2, batch=1))

    def test_swap_gate_runs(self):
        init = state.basis_state((1, 0), batch=1)
        psi = run([Operation("SWAP", (0, 1))], 2, initial_state=init)
        assert np.allclose(state.as_matrix(psi)[0], [0, 1, 0, 0])

    @pytest.mark.parametrize("name", ["S", "T", "Z", "PhaseShift"])
    def test_diagonal_like_gates_preserve_probabilities(self, name):
        params = (0.3,) if GATE_SET[name].n_params else ()
        pre = [Operation("H", (0,))]
        psi = run(pre + [Operation(name, (0,), params)], 1)
        assert np.allclose(state.probabilities(psi).sum(), 1.0)


class TestShiftParameter:
    def test_shift_changes_only_target(self):
        ops = [
            Operation("RX", (0,), (0.5,), (weight_ref(0),)),
            Operation("RY", (0,), (1.5,), (weight_ref(1),)),
        ]
        shifted = shift_parameter(ops, 1, 0, np.pi / 2)
        assert shifted[0] is ops[0]
        assert np.isclose(float(shifted[1].params[0]), 1.5 + np.pi / 2)
        assert np.isclose(float(ops[1].params[0]), 1.5)  # original intact

    def test_shift_batched_parameter(self):
        ops = [Operation("RY", (0,), (np.array([0.1, 0.2]),), (input_ref(0),))]
        shifted = shift_parameter(ops, 0, 0, 1.0)
        assert np.allclose(shifted[0].params[0], [1.1, 1.2])

    def test_shift_rot_middle_angle(self):
        ops = [Operation("Rot", (0,), (0.1, 0.2, 0.3))]
        shifted = shift_parameter(ops, 0, 1, -0.2)
        assert np.isclose(float(shifted[0].params[1]), 0.0)
        assert np.isclose(float(shifted[0].params[0]), 0.1)

    def test_out_of_range(self):
        ops = [Operation("RX", (0,), (0.5,))]
        with pytest.raises(GateError):
            shift_parameter(ops, 1, 0, 0.1)
        with pytest.raises(GateError):
            shift_parameter(ops, 0, 1, 0.1)


class TestTapeSummary:
    def test_counts(self):
        ops = [
            Operation("H", (0,)),
            Operation("CNOT", (0, 1)),
            Operation("CNOT", (1, 0)),
            Operation("RY", (0,), (0.3,)),
        ]
        assert tape_summary(ops) == {"H": 1, "CNOT": 2, "RY": 1}

    def test_empty(self):
        assert tape_summary([]) == {}
