"""Unit tests for batched statevector operations.

Gate applications are validated against the brute-force reference: build
the full ``2**n x 2**n`` unitary with Kronecker products and multiply.
"""

import numpy as np
import pytest

from repro.exceptions import ShapeError, WireError
from repro.quantum import gates, state


def kron_on_wire(mat: np.ndarray, wire: int, n: int) -> np.ndarray:
    """Full-space operator applying ``mat`` on one wire."""
    out = np.eye(1, dtype=np.complex128)
    for w in range(n):
        out = np.kron(out, mat if w == wire else np.eye(2))
    return out


def full_cnot(control: int, target: int, n: int) -> np.ndarray:
    """Brute-force CNOT on arbitrary wires of an n-qubit register."""
    dim = 2**n
    out = np.zeros((dim, dim), dtype=np.complex128)
    for idx in range(dim):
        bits = [(idx >> (n - 1 - w)) & 1 for w in range(n)]
        if bits[control]:
            bits[target] ^= 1
        new = sum(b << (n - 1 - w) for w, b in enumerate(bits))
        out[new, idx] = 1.0
    return out


class TestInitialStates:
    def test_zero_state_shape_and_norm(self):
        psi = state.zero_state(3, batch=4)
        assert psi.shape == (4, 2, 2, 2)
        assert np.allclose(state.norms(psi), 1.0)
        assert psi[0, 0, 0, 0] == 1.0

    def test_basis_state(self):
        psi = state.basis_state((1, 0, 1), batch=2)
        flat = state.as_matrix(psi)
        assert np.allclose(flat[:, 0b101], 1.0)
        assert np.allclose(np.abs(flat).sum(axis=1), 1.0)

    def test_invalid_arguments(self):
        with pytest.raises(ShapeError):
            state.zero_state(0)
        with pytest.raises(ShapeError):
            state.zero_state(2, batch=0)
        with pytest.raises(ShapeError):
            state.basis_state(())
        with pytest.raises(ShapeError):
            state.basis_state((0, 2))

    def test_num_qubits(self):
        assert state.num_qubits(state.zero_state(4)) == 4


class TestSingleQubitApplication:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    @pytest.mark.parametrize("wire_frac", [0.0, 0.5, 1.0])
    def test_matches_kron_reference(self, n, wire_frac):
        wire = min(n - 1, int(wire_frac * n))
        rng = np.random.default_rng(7)
        psi = rng.standard_normal((2, 2**n)) + 1j * rng.standard_normal(
            (2, 2**n)
        )
        psi /= np.linalg.norm(psi, axis=1, keepdims=True)
        shaped = psi.reshape((2,) + (2,) * n)
        mat = gates.rot(0.3, 0.8, -0.4)
        got = state.apply_single_qubit(shaped, mat, wire)
        expected = psi @ kron_on_wire(mat, wire, n).T
        assert np.allclose(state.as_matrix(got), expected)

    def test_batched_matrices(self):
        thetas = np.array([0.2, 1.4, -0.6])
        mats = gates.ry(thetas)
        psi = state.zero_state(2, batch=3)
        got = state.apply_single_qubit(psi, mats, 0)
        for b, t in enumerate(thetas):
            single = state.apply_single_qubit(
                state.zero_state(2, batch=1), gates.ry(t), 0
            )
            assert np.allclose(got[b], single[0])

    def test_wire_out_of_range(self):
        psi = state.zero_state(2)
        with pytest.raises(WireError):
            state.apply_single_qubit(psi, gates.PAULI_X, 2)

    def test_batch_mismatch(self):
        psi = state.zero_state(2, batch=2)
        with pytest.raises(ShapeError):
            state.apply_single_qubit(psi, gates.ry(np.zeros(3)), 0)

    def test_bad_matrix_rank(self):
        psi = state.zero_state(2)
        with pytest.raises(ShapeError):
            state.apply_single_qubit(psi, np.zeros((2, 2, 2, 2)), 0)


class TestTwoQubitApplication:
    @pytest.mark.parametrize("control,target", [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2)])
    def test_cnot_matches_reference(self, control, target):
        n = 3
        rng = np.random.default_rng(5)
        psi = rng.standard_normal((2, 2**n)) + 1j * rng.standard_normal((2, 2**n))
        shaped = psi.reshape((2,) + (2,) * n)
        got = state.apply_cnot(shaped, control, target)
        expected = psi @ full_cnot(control, target, n).T
        assert np.allclose(state.as_matrix(got), expected)

    def test_cnot_equals_generic_two_qubit(self):
        psi = np.random.default_rng(3).standard_normal((1, 8)).astype(complex)
        shaped = psi.reshape(1, 2, 2, 2)
        via_perm = state.apply_cnot(shaped, 0, 2)
        via_mat = state.apply_two_qubit(shaped, gates.CNOT, 0, 2)
        assert np.allclose(via_perm, via_mat)

    def test_cz_symmetry(self):
        rng = np.random.default_rng(9)
        psi = (rng.standard_normal((2, 8)) + 1j * rng.standard_normal((2, 8)))
        shaped = psi.reshape(2, 2, 2, 2)
        assert np.allclose(
            state.apply_cz(shaped, 0, 2), state.apply_cz(shaped, 2, 0)
        )

    def test_cz_matches_matrix(self):
        psi = np.random.default_rng(11).standard_normal((1, 4)).astype(complex)
        shaped = psi.reshape(1, 2, 2)
        via_perm = state.apply_cz(shaped, 0, 1)
        via_mat = state.apply_two_qubit(shaped, gates.CZ, 0, 1)
        assert np.allclose(via_perm, via_mat)

    def test_swap_via_two_qubit(self):
        psi = state.basis_state((0, 1), batch=1)
        swapped = state.apply_two_qubit(psi, gates.SWAP, 0, 1)
        assert np.allclose(state.as_matrix(swapped)[0], [0, 0, 1, 0])

    def test_same_wire_rejected(self):
        psi = state.zero_state(2)
        with pytest.raises(WireError):
            state.apply_cnot(psi, 1, 1)
        with pytest.raises(WireError):
            state.apply_cz(psi, 0, 0)
        with pytest.raises(WireError):
            state.apply_two_qubit(psi, gates.SWAP, 1, 1)

    def test_bad_two_qubit_shape(self):
        psi = state.zero_state(2)
        with pytest.raises(ShapeError):
            state.apply_two_qubit(psi, np.eye(3), 0, 1)


class TestProbabilities:
    def test_probabilities_sum_to_one(self):
        psi = state.apply_single_qubit(
            state.zero_state(3, batch=2), gates.HADAMARD, 1
        )
        probs = state.probabilities(psi)
        assert probs.shape == (2, 8)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_norm_preserved_by_gates(self):
        psi = state.zero_state(3, batch=2)
        psi = state.apply_single_qubit(psi, gates.rot(0.1, 2.2, 0.7), 0)
        psi = state.apply_cnot(psi, 0, 1)
        psi = state.apply_cz(psi, 1, 2)
        assert np.allclose(state.norms(psi), 1.0)
