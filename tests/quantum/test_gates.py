"""Unit tests for gate matrices and their derivatives."""

import numpy as np
import pytest

from repro.exceptions import GateError
from repro.quantum import gates


class TestFixedGates:
    def test_paulis_are_unitary_and_hermitian(self):
        for mat in (gates.PAULI_X, gates.PAULI_Y, gates.PAULI_Z):
            assert gates.is_unitary(mat)
            assert np.allclose(mat, mat.conj().T)

    def test_pauli_algebra(self):
        # X Y = i Z and cyclic permutations.
        assert np.allclose(
            gates.PAULI_X @ gates.PAULI_Y, 1j * gates.PAULI_Z
        )
        assert np.allclose(
            gates.PAULI_Y @ gates.PAULI_Z, 1j * gates.PAULI_X
        )
        assert np.allclose(
            gates.PAULI_Z @ gates.PAULI_X, 1j * gates.PAULI_Y
        )

    def test_hadamard_squares_to_identity(self):
        assert np.allclose(gates.HADAMARD @ gates.HADAMARD, np.eye(2))

    def test_s_and_t(self):
        assert np.allclose(gates.S_GATE @ gates.S_GATE, gates.PAULI_Z)
        assert np.allclose(gates.T_GATE @ gates.T_GATE, gates.S_GATE)

    def test_cnot_is_permutation(self):
        assert gates.is_unitary(gates.CNOT)
        # |10> -> |11>, |11> -> |10>
        assert gates.CNOT[3, 2] == 1 and gates.CNOT[2, 3] == 1

    def test_swap(self):
        # SWAP = CNOT(0,1) CNOT(1,0) CNOT(0,1); check action on |01>.
        vec = np.zeros(4)
        vec[1] = 1.0
        assert np.allclose(gates.SWAP @ vec, [0, 0, 1, 0])


class TestRotations:
    @pytest.mark.parametrize("builder", [gates.rx, gates.ry, gates.rz])
    def test_zero_angle_is_identity(self, builder):
        assert np.allclose(builder(0.0), np.eye(2))

    @pytest.mark.parametrize(
        "builder,pauli",
        [
            (gates.rx, gates.PAULI_X),
            (gates.ry, gates.PAULI_Y),
            (gates.rz, gates.PAULI_Z),
        ],
    )
    def test_pi_rotation_is_minus_i_pauli(self, builder, pauli):
        assert np.allclose(builder(np.pi), -1j * pauli, atol=1e-12)

    @pytest.mark.parametrize("builder", [gates.rx, gates.ry, gates.rz])
    def test_unitarity_random_angles(self, builder):
        rng = np.random.default_rng(0)
        for theta in rng.uniform(-10, 10, size=5):
            assert gates.is_unitary(builder(theta))

    @pytest.mark.parametrize("builder", [gates.rx, gates.ry, gates.rz])
    def test_additivity(self, builder):
        # R(a) R(b) == R(a + b) for rotations about a fixed axis.
        a, b = 0.7, -1.3
        assert np.allclose(builder(a) @ builder(b), builder(a + b))

    def test_batched_angles_shape_and_content(self):
        thetas = np.array([0.1, 0.2, 0.3])
        batch = gates.ry(thetas)
        assert batch.shape == (3, 2, 2)
        for i, t in enumerate(thetas):
            assert np.allclose(batch[i], gates.ry(t))

    def test_2d_angles_rejected(self):
        with pytest.raises(GateError):
            gates.rx(np.zeros((2, 2)))

    def test_phase_shift(self):
        assert np.allclose(
            gates.phase_shift(np.pi), np.diag([1, -1]), atol=1e-12
        )


class TestRot:
    def test_rot_composition(self):
        phi, theta, omega = 0.3, 1.1, -0.7
        expected = gates.rz(omega) @ gates.ry(theta) @ gates.rz(phi)
        assert np.allclose(gates.rot(phi, theta, omega), expected)

    def test_rot_unitary(self):
        rng = np.random.default_rng(1)
        for angles in rng.uniform(-5, 5, size=(5, 3)):
            assert gates.is_unitary(gates.rot(*angles))

    def test_rot_batched(self):
        phis = np.array([0.1, 0.5])
        thetas = np.array([0.2, 0.6])
        omegas = np.array([0.3, 0.7])
        batch = gates.rot(phis, thetas, omegas)
        assert batch.shape == (2, 2, 2)
        assert np.allclose(batch[1], gates.rot(0.5, 0.6, 0.7))


class TestDerivatives:
    @pytest.mark.parametrize(
        "builder,deriv",
        [
            (gates.rx, gates.rx_deriv),
            (gates.ry, gates.ry_deriv),
            (gates.rz, gates.rz_deriv),
        ],
    )
    def test_against_finite_differences(self, builder, deriv):
        eps = 1e-7
        for theta in (-2.0, 0.0, 0.9):
            numeric = (builder(theta + eps) - builder(theta - eps)) / (2 * eps)
            assert np.allclose(deriv(theta), numeric, atol=1e-6)

    def test_rot_derivs_against_finite_differences(self):
        eps = 1e-7
        angles = np.array([0.4, -1.2, 2.2])
        analytic = gates.rot_deriv(*angles)
        for k in range(3):
            plus = angles.copy()
            minus = angles.copy()
            plus[k] += eps
            minus[k] -= eps
            numeric = (gates.rot(*plus) - gates.rot(*minus)) / (2 * eps)
            assert np.allclose(analytic[k], numeric, atol=1e-6), f"angle {k}"

    def test_batched_derivs(self):
        thetas = np.array([0.3, 1.7])
        batch = gates.ry_deriv(thetas)
        assert batch.shape == (2, 2, 2)
        assert np.allclose(batch[0], gates.ry_deriv(0.3))


class TestControlled:
    def test_controlled_x_is_cnot(self):
        assert np.allclose(gates.controlled(gates.PAULI_X), gates.CNOT)

    def test_controlled_z_is_cz(self):
        assert np.allclose(gates.controlled(gates.PAULI_Z), gates.CZ)

    def test_controlled_rejects_wrong_shape(self):
        with pytest.raises(GateError):
            gates.controlled(np.eye(4))


class TestIsUnitary:
    def test_rejects_non_square(self):
        assert not gates.is_unitary(np.ones((2, 3)))

    def test_rejects_non_unitary(self):
        assert not gates.is_unitary(2 * np.eye(2))
