"""Patch EXPERIMENTS.md's classical rows from classical_reduced.json.

One-shot helper used when the classical protocol finishes after the
document was first rendered.  Prefer regenerating the whole document with
``scripts/render_experiments.py`` when all three families are cached.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core import load_protocol
from repro.core.comparison import rate_of_increase

ROOT = Path(__file__).resolve().parent.parent


def main() -> None:
    result = load_protocol(ROOT / "results" / "classical_reduced.json")
    rows = []
    for lvl in result.levels:
        w = lvl.smallest_winner
        rows.append(
            f"| classical | {lvl.feature_size} | {w.spec.label} | {w.flops} "
            f"| {w.params} | {w.mean_train_accuracy:.3f} "
            f"| {w.mean_val_accuracy:.3f} |"
        )
    flops = result.smallest_flops_series()
    params = result.smallest_params_series()
    f_rate = 100 * rate_of_increase(flops[0], flops[-1])
    p_rate = 100 * rate_of_increase(params[0], params[-1])

    doc = (ROOT / "EXPERIMENTS.md").read_text()
    doc = re.sub(
        r"\| classical \| 10 \|.*\n\| classical \| 40 \|.*\n"
        r"\| classical \| 80 \|.*\n\| classical \| 110 \|.*\n",
        "\n".join(rows) + "\n",
        doc,
    )
    doc = doc.replace(
        "| classical | 88.5 % | ~86–91 % (winner C[4]→C[4..10]) "
        "| 88.5 % | ~87–95 % |",
        f"| classical | 88.5 % | **{f_rate:.1f} %** ({flops[0]:.0f}→"
        f"{flops[-1]:.0f}) | 88.5 % | **{p_rate:.1f} %** ({params[0]:.0f}→"
        f"{params[-1]:.0f}) |",
    )
    doc = doc.replace(
        "measured SEL 31.0 % < BEL 52.0 % < classical ≳86 %.",
        f"measured SEL 31.0 % < BEL 52.0 % < classical {f_rate:.1f} %.",
    )
    doc = doc.replace(
        "Rows marked * were still completing at the time this file was "
        "written;\nregenerate the table with the commands above (the SEL "
        "and BEL(≤80) rows\nare read from `results/*.json`).",
        "All rows are read from `results/*.json`; regenerate with the "
        "commands above.",
    )
    (ROOT / "EXPERIMENTS.md").write_text(doc)
    print("patched classical rows:", [r.split("|")[3].strip() for r in rows])
    print(f"classical FLOPs rate {f_rate:.1f}%, params rate {p_rate:.1f}%")


if __name__ == "__main__":
    main()
