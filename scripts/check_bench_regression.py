#!/usr/bin/env python
"""Guard against hot-path performance regressions between snapshots.

Compares the two most recent ``benchmarks/BENCH_<rev>.json`` snapshots
(by their recorded ``datetime``) and fails when any benchmark present in
both slowed down by more than the threshold (default 20% on mean
runtime).  Benchmarks that appear in only one snapshot are reported but
never fail the check, so adding or retiring benchmarks stays painless.

Usage:

    python scripts/check_bench_regression.py                 # latest two
    python scripts/check_bench_regression.py OLD.json NEW.json
    python scripts/check_bench_regression.py --threshold 0.3

Snapshots taken on different machines (``machine``/``cpu_count``
mismatch) only warn: wall-clock deltas across hardware are not
regressions.  Pass ``--strict`` to fail anyway.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO / "benchmarks"


def load_snapshot(path: pathlib.Path) -> dict:
    data = json.loads(path.read_text())
    data["_path"] = path
    return data


def latest_two() -> tuple[dict, dict]:
    """The two most recent snapshots, oldest first."""
    snapshots = sorted(
        (load_snapshot(p) for p in BENCH_DIR.glob("BENCH_*.json")),
        key=lambda s: s.get("datetime") or "",
    )
    if len(snapshots) < 2:
        raise SystemExit(
            f"need at least two BENCH_*.json snapshots under {BENCH_DIR}, "
            f"found {len(snapshots)}"
        )
    return snapshots[-2], snapshots[-1]


def compare(old: dict, new: dict, threshold: float) -> tuple[list[str], list[str]]:
    """Return (regressions, notes) comparing mean runtimes."""
    regressions: list[str] = []
    notes: list[str] = []
    old_benches = old.get("benchmarks", {})
    new_benches = new.get("benchmarks", {})
    for name in sorted(set(old_benches) | set(new_benches)):
        if name not in new_benches:
            notes.append(f"retired: {name}")
            continue
        if name not in old_benches:
            notes.append(f"new: {name}")
            continue
        before = old_benches[name]["mean_s"]
        after = new_benches[name]["mean_s"]
        if before <= 0:
            continue
        ratio = after / before
        line = f"{name}: {before * 1e6:.0f}us -> {after * 1e6:.0f}us ({ratio:.2f}x)"
        if ratio > 1.0 + threshold:
            regressions.append(line)
        else:
            notes.append(line)
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "snapshots",
        nargs="*",
        type=pathlib.Path,
        help="explicit OLD NEW snapshot paths (default: latest two by date)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional slowdown on mean runtime (default 0.20)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on regressions even across different machines",
    )
    args = parser.parse_args(argv)

    if args.snapshots and len(args.snapshots) != 2:
        parser.error("pass either no snapshot paths or exactly two (OLD NEW)")
    if args.snapshots:
        old, new = (load_snapshot(p) for p in args.snapshots)
    else:
        old, new = latest_two()

    print(f"old: {old['_path'].name} ({old.get('datetime')})")
    print(f"new: {new['_path'].name} ({new.get('datetime')})")

    # Same arch + core count on two different hosts is still a different
    # machine; `node` (hostname) disambiguates.  Snapshots predating the
    # node field compare as cross-machine (warn-only), which is the
    # conservative direction.
    same_machine = (
        old.get("node") is not None
        and old.get("node") == new.get("node")
        and old.get("machine") == new.get("machine")
        and old.get("cpu_count") == new.get("cpu_count")
    )
    regressions, notes = compare(old, new, args.threshold)
    for line in notes:
        print(f"  {line}")
    if not regressions:
        print("no hot-path regressions")
        return 0
    print(f"\n{len(regressions)} benchmark(s) slower than "
          f"{100 * args.threshold:.0f}% tolerance:")
    for line in regressions:
        print(f"  REGRESSION {line}")
    if not same_machine and not args.strict:
        print(
            "snapshots come from different machines; reporting only "
            "(use --strict to fail)"
        )
        return 0
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
