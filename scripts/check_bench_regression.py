#!/usr/bin/env python
"""Guard against hot-path performance regressions between snapshots.

Compares the two most recent ``benchmarks/BENCH_<rev>.json`` snapshots
(by their recorded ``datetime``) and fails when any benchmark present in
both slowed down by more than the threshold (default 20% on mean
runtime).  Benchmarks that appear in only one snapshot are reported but
never fail the check, so adding or retiring benchmarks stays painless.

Usage:

    python scripts/check_bench_regression.py                 # latest two
    python scripts/check_bench_regression.py OLD.json NEW.json
    python scripts/check_bench_regression.py --threshold 0.3
    python scripts/check_bench_regression.py --baseline 896fba4

``--baseline REV`` compares the *latest* snapshot against the snapshot
whose recorded revision (or filename) matches ``REV`` instead of the
second-latest — useful for measuring a PR against a chosen anchor.

With fewer than two snapshots there is nothing to compare: the script
says so and exits 0 (a fresh clone or a pruned benchmarks directory is
not an error).

Snapshots taken on different machines (``machine``/``cpu_count``
mismatch) only warn: wall-clock deltas across hardware are not
regressions.  Pass ``--strict`` to fail anyway.

``--history`` switches to reporting mode: instead of the latest pair,
it prints the full per-snapshot trajectory table — one row per
benchmark, one column per committed snapshot (oldest to newest, mean
runtimes) — so a review can see where a hot path sped up or slipped
across the whole PR sequence.  Always exits 0.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO / "benchmarks"


def load_snapshot(path: pathlib.Path) -> dict:
    data = json.loads(path.read_text())
    data["_path"] = path
    return data


def all_snapshots() -> list[dict]:
    """Every committed snapshot, oldest first by recorded datetime."""
    return sorted(
        (load_snapshot(p) for p in BENCH_DIR.glob("BENCH_*.json")),
        key=lambda s: s.get("datetime") or "",
    )


def find_baseline(snapshots: list[dict], rev: str) -> dict:
    """The snapshot whose revision or filename matches ``rev``."""
    matches = [
        s
        for s in snapshots
        if rev in (s.get("rev") or "") or rev in s["_path"].name
    ]
    if not matches:
        known = ", ".join(s.get("rev") or s["_path"].name for s in snapshots)
        raise SystemExit(
            f"no snapshot matches --baseline {rev!r}; known revisions: "
            f"{known or '(none)'}"
        )
    if len(matches) > 1:
        names = ", ".join(s["_path"].name for s in matches)
        raise SystemExit(
            f"--baseline {rev!r} is ambiguous; it matches: {names}"
        )
    return matches[0]


def format_seconds(seconds: float) -> str:
    """Compact human scale: us under 1ms, ms under 1s, else seconds."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def print_history(snapshots: list[dict]) -> None:
    """The full perf trajectory: benchmarks x snapshots, mean runtimes."""
    revs = [s.get("rev") or s["_path"].stem.removeprefix("BENCH_") for s in snapshots]
    names = sorted({n for s in snapshots for n in s.get("benchmarks", {})})
    # Short row labels: the fully qualified pytest id minus the shared
    # "benchmarks/" prefix still uniquely names every benchmark.
    rows = []
    for name in names:
        label = name.removeprefix("benchmarks/")
        cells = []
        for snap in snapshots:
            entry = snap.get("benchmarks", {}).get(name)
            cells.append(format_seconds(entry["mean_s"]) if entry else "-")
        rows.append((label, cells))
    if not rows:
        print(f"0 benchmark(s) across {len(snapshots)} snapshot(s)")
        return
    label_width = max(len(label) for label, _ in rows)
    widths = [
        max(len(rev), max(len(row[1][i]) for row in rows))
        for i, rev in enumerate(revs)
    ]
    header = " " * label_width + "  " + "  ".join(
        rev.rjust(w) for rev, w in zip(revs, widths)
    )
    print(f"{len(names)} benchmark(s) across {len(snapshots)} snapshot(s), "
          "oldest to newest (mean runtime; '-' = not in that snapshot):")
    print(header)
    for label, cells in rows:
        line = label.ljust(label_width) + "  " + "  ".join(
            cell.rjust(w) for cell, w in zip(cells, widths)
        )
        print(line)
    nodes = {s.get("node") for s in snapshots}
    if len(nodes) > 1:
        print(
            "note: snapshots span multiple machines; cross-machine "
            "deltas are not comparable"
        )


def compare(old: dict, new: dict, threshold: float) -> tuple[list[str], list[str]]:
    """Return (regressions, notes) comparing mean runtimes."""
    regressions: list[str] = []
    notes: list[str] = []
    old_benches = old.get("benchmarks", {})
    new_benches = new.get("benchmarks", {})
    for name in sorted(set(old_benches) | set(new_benches)):
        if name not in new_benches:
            notes.append(f"retired: {name}")
            continue
        if name not in old_benches:
            notes.append(f"new: {name}")
            continue
        # A backend switch (e.g. a torch-timed entry replacing a numpy
        # one under the same id) is an environment change, not a perf
        # delta: report it, never fail on it.  Entries predating the
        # field compare as "numpy".
        old_backend = old_benches[name].get("backend", "numpy")
        new_backend = new_benches[name].get("backend", "numpy")
        if old_backend != new_backend:
            notes.append(
                f"backend changed: {name} ({old_backend} -> {new_backend}; "
                "not comparable)"
            )
            continue
        before = old_benches[name]["mean_s"]
        after = new_benches[name]["mean_s"]
        if before <= 0:
            continue
        ratio = after / before
        line = f"{name}: {before * 1e6:.0f}us -> {after * 1e6:.0f}us ({ratio:.2f}x)"
        if ratio > 1.0 + threshold:
            regressions.append(line)
        else:
            notes.append(line)
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "snapshots",
        nargs="*",
        type=pathlib.Path,
        help="explicit OLD NEW snapshot paths (default: latest two by date)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional slowdown on mean runtime (default 0.20)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on regressions even across different machines",
    )
    parser.add_argument(
        "--baseline",
        metavar="REV",
        default=None,
        help="compare the latest snapshot against the snapshot whose "
        "revision (or filename) matches REV, instead of the second-latest",
    )
    parser.add_argument(
        "--history",
        action="store_true",
        help="print the full per-snapshot trajectory table (every "
        "benchmark across every committed snapshot) instead of checking "
        "the latest pair; always exits 0",
    )
    args = parser.parse_args(argv)

    if args.history:
        if args.snapshots or args.baseline:
            parser.error("--history scans every committed snapshot; drop "
                         "the explicit paths / --baseline")
        snapshots = all_snapshots()
        if not snapshots:
            print(f"no BENCH_*.json snapshots under {BENCH_DIR}")
            return 0
        print_history(snapshots)
        return 0

    if args.snapshots and len(args.snapshots) != 2:
        parser.error("pass either no snapshot paths or exactly two (OLD NEW)")
    if args.snapshots and args.baseline:
        parser.error("--baseline only applies when snapshots are discovered; "
                     "drop the explicit OLD NEW paths")
    if args.snapshots:
        old, new = (load_snapshot(p) for p in args.snapshots)
    else:
        snapshots = all_snapshots()
        if len(snapshots) < 2:
            print(
                f"nothing to compare: found {len(snapshots)} BENCH_*.json "
                f"snapshot(s) under {BENCH_DIR} and a regression check "
                "needs two.  Run `python benchmarks/run_benchmarks.py` to "
                "record one."
            )
            return 0
        new = snapshots[-1]
        if args.baseline is not None:
            old = find_baseline(snapshots, args.baseline)
            if old is new:
                raise SystemExit(
                    f"--baseline {args.baseline!r} selects the latest "
                    "snapshot itself; nothing to compare it against"
                )
        else:
            old = snapshots[-2]

    print(f"old: {old['_path'].name} ({old.get('datetime')})")
    print(f"new: {new['_path'].name} ({new.get('datetime')})")

    # Same arch + core count on two different hosts is still a different
    # machine; `node` (hostname) disambiguates.  Snapshots predating the
    # node field compare as cross-machine (warn-only), which is the
    # conservative direction.
    same_machine = (
        old.get("node") is not None
        and old.get("node") == new.get("node")
        and old.get("machine") == new.get("machine")
        and old.get("cpu_count") == new.get("cpu_count")
    )
    regressions, notes = compare(old, new, args.threshold)
    for line in notes:
        print(f"  {line}")
    if not regressions:
        print("no hot-path regressions")
        return 0
    print(f"\n{len(regressions)} benchmark(s) slower than "
          f"{100 * args.threshold:.0f}% tolerance:")
    for line in regressions:
        print(f"  REGRESSION {line}")
    if not same_machine and not args.strict:
        print(
            "snapshots come from different machines; reporting only "
            "(use --strict to fail)"
        )
        return 0
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
