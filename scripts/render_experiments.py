"""Render EXPERIMENTS.md from cached reduced-profile protocol results.

Usage:  python scripts/render_experiments.py [results_dir] [output_md]

Reads ``{classical,bel,sel}_reduced.json`` from the results directory
(produced by ``repro fig6/7/8 --profile reduced --cache results/``) and
writes the paper-vs-measured record for every figure and table.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import paperdata
from repro.core import comparative_analysis, load_protocol
from repro.core.export import comparison_markdown, winners_markdown
from repro.data import probe_complexity
from repro.experiments.table1_ablation import (
    paper_reference_rows,
    rows_from_protocol,
)

RESULTS = Path(sys.argv[1] if len(sys.argv) > 1 else "results")
OUTPUT = Path(sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md")


def table1_markdown(rows, title):
    lines = [
        f"**{title}**",
        "",
        "| model | FS/BC | TF | Enc+CL | CL | Enc | QL |",
        "|---|---|---|---|---|---|---|",
    ]
    for r in rows:
        lines.append(
            f"| hybrid({r.ansatz.upper()}) | {r.feature_size}/"
            f"({r.n_qubits},{r.n_layers}) | {r.total} | {r.enc_plus_cl} "
            f"| {r.cl} | {r.enc} | {r.ql} |"
        )
    return "\n".join(lines)


def main() -> None:
    results = {
        family: load_protocol(RESULTS / f"{family}_reduced.json")
        for family in ("classical", "bel", "sel")
    }
    ordered = [results["classical"], results["bel"], results["sel"]]
    analysis = comparative_analysis(ordered)
    cfg = results["classical"].config

    print("probing Fig 4(b) ...", file=sys.stderr)
    probe = probe_complexity(
        (10, 40, 80, 110), n_points=600, epochs=30, batch_size=16
    )

    flops_rates = {f: s.rate_percent for f, s in analysis.flops.items()}
    param_rates = {f: s.rate_percent for f, s in analysis.params.items()}
    ordering_holds = paperdata.headline_claim_ordering(
        {k: v / 100 for k, v in flops_rates.items()}
    )

    def rate_row(family):
        f = analysis.flops[family]
        p = analysis.params[family]
        pf = paperdata.FLOPS_RATES[family]
        pp = paperdata.PARAM_RATES[family]
        return (
            f"| {family} | {pf.rate_percent:.1f}% | {f.rate_percent:.1f}% "
            f"| {pf.absolute:.0f} | {f.absolute_increase:.0f} "
            f"| {pp.rate_percent:.1f}% | {p.rate_percent:.1f}% "
            f"| {pp.absolute:.0f} | {p.absolute_increase:.0f} |"
        )

    probe_rows = "\n".join(
        f"| {r.feature_size} | {r.noise:.2f} | {r.val_accuracy:.3f} "
        f"| {r.train_time_s:.2f}s |"
        for r in probe
    )

    sel_winners = {
        lvl.feature_size: lvl.smallest_winner.spec.label
        for lvl in results["sel"].levels
    }
    bel_winners = {
        lvl.feature_size: lvl.smallest_winner.spec.label
        for lvl in results["bel"].levels
    }
    classical_winners = {
        lvl.feature_size: lvl.smallest_winner.spec.label
        for lvl in results["classical"].levels
    }

    text = f"""# EXPERIMENTS — paper vs. measured

Every figure and table of the paper's evaluation, regenerated with this
library, side by side with the published values.

**Measurement profile** (`reduced`): feature sizes {cfg.feature_sizes},
{cfg.n_experiments} experiment(s) x {cfg.runs_per_candidate} runs per
candidate, {cfg.epochs} epochs, batch {cfg.batch_size},
{cfg.n_points} points, threshold {cfg.threshold}, early stopping on, at
most {cfg.max_candidates} candidates per search.  The `full` profile
reproduces the paper's exact protocol (11 levels, 5x5, threshold 0.90,
no early stop) at roughly a CPU-week.  Regenerate with:

```bash
repro fig6  --profile reduced --cache results/
repro fig7  --profile reduced --cache results/
repro fig8  --profile reduced --cache results/
python scripts/render_experiments.py results/ EXPERIMENTS.md
```

Two deliberate deviations, argued in DESIGN.md: the hybrid input layer
is linear (the paper's figure is ambiguous; a ReLU into the qubit
bottleneck costs accuracy), and the reduced profile's iso-accuracy
threshold is 0.85 instead of 0.90 (the 0.90 line falls inside validation
sampling noise on our dataset realization; 0.85 makes every pass/fail
decision stable without changing the methodology).  Absolute FLOPs are
larger than the paper's because our convention prices the simulated
quantum layer at first-principles statevector cost, whereas the paper
counts TensorFlow-profiler ops of PennyLane's graph; classical-layer
FLOPs are calibrated to match the paper's Table I exactly.

## Fig. 4(b) — problem complexity dial

Paper: as features (and coupled noise) increase, a fixed classifier's
accuracy declines while training time rises.

| features | noise | probe val. accuracy | probe train time |
|---|---|---|---|
{probe_rows}

Measured: accuracy falls from {probe[0].val_accuracy:.3f} at 10 features
to {probe[-1].val_accuracy:.3f} at 110 — the dial works as described.

## Figs. 6-8 — best-performing models per complexity level

Winning (lowest-FLOPs passing) architectures:

{winners_markdown(ordered)}

* **Fig. 6 (classical)**: paper — needs progressively more sophisticated
  architectures; measured winners: {classical_winners}.
* **Fig. 7 (BEL)**: paper — (3,2) suffices to 40 features, then the
  circuit must grow ((3,4) at 80, (4,4) at 110); measured winners:
  {bel_winners}.
* **Fig. 8 (SEL)**: paper — the same small circuit solves every level;
  measured winners: {sel_winners}.

## Fig. 9 — parameter counts

Parameter counts of the winners appear in the table above; the paper's
qualitative claims and our measurements:

* classical parameter counts rise steadily with complexity —
  measured {analysis.params['classical'].low:.0f} -> {analysis.params['classical'].high:.0f};
* BEL parameters rise when the circuit grows —
  measured {analysis.params['bel'].low:.0f} -> {analysis.params['bel'].high:.0f};
* SEL parameters rise only through the input layer —
  measured {analysis.params['sel'].low:.0f} -> {analysis.params['sel'].high:.0f}.

## Fig. 10 — rate-of-increase comparison (the headline result)

Rates are relative to the high-complexity value, `(v_hi - v_lo)/v_hi`,
matching the paper's arithmetic (its 53.1% = 1800/3389).

| family | FLOPs rate (paper) | FLOPs rate (measured) | dFLOPs (paper) | dFLOPs (measured) | param rate (paper) | param rate (measured) | dparams (paper) | dparams (measured) |
|---|---|---|---|---|---|---|---|---|
{rate_row('classical')}
{rate_row('bel')}
{rate_row('sel')}

Measured full comparison:

{comparison_markdown(analysis)}

**Headline ordering (SEL slowest-growing, classical fastest):
{'HOLDS' if ordering_holds else 'DOES NOT HOLD'}.**
Measured FLOPs rates: classical {flops_rates['classical']:.1f}%,
BEL {flops_rates['bel']:.1f}%, SEL {flops_rates['sel']:.1f}%
(paper: 88.5% / 80.1% / 53.1%).  Our SEL rate is *lower* than the
paper's because our convention prices the (constant) quantum layer
higher, enlarging the constant part of the total; the direction and
ordering of the claim are what the paper's conclusion rests on.

## Table I — FLOPs ablation (Enc / CL / QL)

{table1_markdown(sum((rows_from_protocol(results[f]) for f in ('bel', 'sel')), []), 'Measured (reduced profile winners, paper convention)')}

{table1_markdown(paper_reference_rows(), "Paper (TensorFlow profiler counts)")}

Qualitative claims, both present in our measurements:

* **Enc** depends only on the qubit count — constant across feature
  sizes for a fixed circuit (exactly constant in both tables);
* **CL** grows linearly with feature size — slope 6q per feature in our
  calibrated convention, matching the paper's CL column exactly
  (283/823/1543 at q=3 with the ReLU input variant);
* **QL** constant for SEL across all levels; grows for BEL only when
  the search enlarges the circuit;
* classical + encoding dominate the hybrid total — the "simulation
  overhead" the paper argues would disappear on quantum-native hardware.

## Known divergences from the paper

1. Absolute FLOPs differ (documented convention difference); classical
   components match exactly by calibration.
2. The reduced profile's threshold is 0.85 (see header); the full
   profile keeps 0.90.
3. The paper's own percentages are internally inconsistent in places
   (abstract: classical FLOPs +88.1% vs section IV-E: 88.5%; abstract
   attributes 81.4% parameter growth to HQNNs while IV-E gives BEL
   89.6% and SEL 81.4%).  We compare against the section IV-E values
   (recorded in `repro.paperdata`).
4. Winning architectures at intermediate levels wobble between nearby
   configurations run-to-run (the paper averages 5 experiments; the
   reduced profile runs {cfg.n_experiments}).
"""
    OUTPUT.write_text(text)
    print(f"wrote {OUTPUT}", file=sys.stderr)


if __name__ == "__main__":
    main()
