"""Legacy shim for environments without the ``wheel`` package.

All metadata lives in ``pyproject.toml``; this file only enables
``python setup.py develop`` / ``pip install -e .`` on older toolchains
where PEP 660 editable installs are unavailable.
"""

from setuptools import setup

setup()
