"""The paper's methodology in miniature: FLOPs-sorted grid search.

At one complexity level, rank every candidate architecture by its
statically-computed FLOPs, train candidates in ascending order, and stop
at the first that reaches the accuracy threshold — by construction the
cheapest sufficient model (paper sections III-B/C/E/F).

Run:  python examples/model_search.py
"""

from repro import make_spiral, stratified_split
from repro.core import TrainingSettings, grid_search, rank_by_flops
from repro.core.search_space import classical_search_space, hybrid_search_space

FEATURES = 10
#: The reduced-profile iso-accuracy condition (see EXPERIMENTS.md).
THRESHOLD = 0.85


def show_search(name, specs, split):
    print(f"\n=== {name}: {len(specs)} candidates ===")
    ranked = rank_by_flops(specs)
    preview = ", ".join(f"{s.label}:{s.flops()}" for s in ranked[:5])
    print(f"cheapest five by FLOPs: {preview}, ...")
    outcome = grid_search(
        specs,
        split,
        threshold=THRESHOLD,
        settings=TrainingSettings(
            epochs=60, batch_size=8, runs=2, early_stop_threshold=THRESHOLD
        ),
        seed=0,
        max_candidates=8,
        progress=lambda c: print(
            f"  trained {c.spec.label:<10} flops={c.flops:<6} "
            f"train={c.mean_train_accuracy:.3f} val={c.mean_val_accuracy:.3f}"
            f"{'  <-- winner' if c.passes(THRESHOLD) else ''}"
        ),
    )
    if outcome.winner:
        w = outcome.winner
        print(
            f"winner: {w.spec.label} ({w.flops} FLOPs, {w.params} params) "
            f"after training {outcome.candidates_trained} of {len(specs)} "
            "candidates"
        )
    else:
        print("no winner within the candidate budget")


def main():
    data = make_spiral(n_features=FEATURES, n_points=900, seed=0)
    split = stratified_split(data, seed=0)
    show_search("classical", classical_search_space(FEATURES), split)
    show_search("hybrid SEL", hybrid_search_space(FEATURES, "sel"), split)


if __name__ == "__main__":
    main()
