"""Table-I-style FLOPs ablation across counting conventions.

Decomposes hybrid-model FLOPs into encoding (Enc), classical layers (CL)
and quantum layer (QL) for the paper's reported feature sizes, under all
three counting conventions.  The qualitative claims are convention-
independent:

* Enc depends only on the qubit count (constant across feature sizes);
* CL grows linearly with the feature size;
* QL is constant for a fixed circuit, regardless of the feature size.

Run:  python examples/flops_ablation.py
"""

from repro.config import REPORTED_FEATURE_SIZES
from repro.experiments.report import format_table
from repro.flops import CONVENTIONS, hybrid_flops_breakdown

#: The winning circuits the paper reports in Table I.
PAPER_WINNERS = {
    "bel": {10: (3, 2), 40: (3, 2), 80: (3, 4), 110: (4, 4)},
    "sel": {10: (3, 2), 40: (3, 2), 80: (3, 2), 110: (3, 2)},
}


def main():
    for convention in CONVENTIONS:
        rows = []
        for ansatz, winners in PAPER_WINNERS.items():
            for fs in REPORTED_FEATURE_SIZES:
                q, l = winners[fs]
                bd = hybrid_flops_breakdown(
                    fs, q, l, ansatz, convention=convention
                )
                rows.append(
                    [
                        f"hybrid({ansatz.upper()})",
                        f"{fs}/({q},{l})",
                        bd.total,
                        bd.encoding_plus_classical,
                        bd.classical,
                        bd.encoding,
                        bd.quantum,
                    ]
                )
        print(
            format_table(
                ["model", "FS/BC", "TF", "Enc+CL", "CL", "Enc", "QL"],
                rows,
                title=f"\nTable I under convention {convention!r}",
            )
        )
        sel_rows = [r for r in rows if r[0] == "hybrid(SEL)"]
        constant_ql = len({r[6] for r in sel_rows}) == 1
        print(f"SEL quantum layer constant across feature sizes: {constant_ql}")


if __name__ == "__main__":
    main()
