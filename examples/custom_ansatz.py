"""Extending the library with a custom variational ansatz.

The paper evaluates two circuit families (BEL and SEL).  This example
shows the extension point a downstream user would reach for: subclass
:class:`repro.hybrid.QuantumLayer` and override ``build_tape`` to define
a new ansatz — here a CZ-ring entangler with RX rotations — and train it
inside the same Sequential/Adam stack, profile its FLOPs, and check its
gradients against the parameter-shift oracle.

Run:  python examples/custom_ansatz.py
"""

import numpy as np

from repro import make_spiral, profile_model, stratified_split, train_model
from repro.hybrid import QuantumLayer
from repro.nn import Dense, Sequential, Softmax
from repro.quantum import (
    angle_embedding,
    parameter_shift_gradients,
    run,
)
from repro.quantum.circuit import Operation, weight_ref


class CZRingLayer(QuantumLayer):
    """RX rotations + a CZ ring per layer (weights shape (L, q))."""

    def __init__(self, n_qubits, n_layers, rng=None, name="quantum_czring"):
        # Reuse the BEL weight layout (one angle per qubit per layer).
        super().__init__(n_qubits, n_layers, ansatz="bel", rng=rng, name=name)

    def build_tape(self, x):
        ops = angle_embedding(x, self.n_qubits, rotation=self.rotation)
        for layer in range(self.n_layers):
            for i in range(self.n_qubits):
                flat = layer * self.n_qubits + i
                ops.append(
                    Operation(
                        "RX", (i,), (self.weights[layer, i],),
                        (weight_ref(flat),),
                    )
                )
            for i in range(self.n_qubits):
                ops.append(Operation("CZ", (i, (i + 1) % self.n_qubits)))
        return ops


def main():
    features, qubits, layers = 8, 3, 2
    data = make_spiral(n_features=features, n_points=600, seed=0)
    split = stratified_split(data, seed=0)

    rng = np.random.default_rng(0)
    model = Sequential(
        [
            Dense(features, qubits, rng=rng, name="dense_in"),
            CZRingLayer(qubits, layers, rng=rng),
            Dense(qubits, 3, rng=rng, name="dense_out"),
            Softmax(),
        ],
        name="hybrid_czring",
    )

    # Sanity: the adjoint gradients of the custom tape match the
    # parameter-shift rule.
    qlayer = model.layers[1]
    x = rng.uniform(-1, 1, (4, qubits))
    grad = rng.standard_normal((4, qubits))
    qlayer.forward(x, training=True)
    dx_adjoint = qlayer.backward(grad)
    tape = qlayer.build_tape(x)
    dx_shift, _ = parameter_shift_gradients(
        tape, qubits, 4, grad, qubits, qlayer.n_weights
    )
    assert np.allclose(dx_adjoint, dx_shift, atol=1e-9)
    print("custom ansatz gradients verified against parameter-shift")

    history = train_model(
        model,
        split.x_train,
        split.y_train,
        split.x_val,
        split.y_val,
        epochs=30,
        batch_size=8,
        rng=np.random.default_rng(1),
        early_stop_threshold=0.9,
    )
    print(
        f"CZ-ring hybrid: train {history.max_train_accuracy:.3f}, "
        f"val {history.max_val_accuracy:.3f} "
        f"in {history.epochs_run} epochs"
    )
    print(profile_model(model).summary())


if __name__ == "__main__":
    main()
