"""Mini Fig. 10: how classical and hybrid complexity scales with the
problem.

Runs the full protocol (search spaces, FLOPs-sorted search, threshold) on
a reduced grid of complexity levels with a small training budget, then
prints the rate-of-increase comparison the paper's conclusion rests on.

Run:  python examples/scaling_comparison.py          (a few minutes)
"""

from repro.core import comparative_analysis
from repro.experiments.fig10_comparative import render
from repro.experiments.runner import RunProfile, run_family

PROFILE = RunProfile(
    name="example",
    feature_sizes=(10, 40),
    n_experiments=1,
    runs_per_candidate=1,
    epochs=60,
    batch_size=8,
    n_points=900,
    early_stop=True,
    max_candidates=10,
)


def main():
    results = []
    for family in ("classical", "bel", "sel"):
        print(f"searching {family} models ...")
        results.append(
            run_family(
                family,
                PROFILE,
                progress=lambda msg: print(f"  {msg}"),
            )
        )
    analysis = comparative_analysis(results)
    print()
    print(render(analysis))
    print(
        "\nThe paper's claim ordering — classical > BEL > SEL rate of "
        "increase — should be visible in the FLOPs panel."
    )


if __name__ == "__main__":
    main()
