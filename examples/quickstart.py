"""Quickstart: train one classical and one hybrid model on the spiral task.

Regenerates, in miniature, the paper's core objects: the spiral dataset
(Fig. 4a), the two architectures (Fig. 3), and the two complexity
metrics (FLOPs and parameter count) used to compare them.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    build_classical_model,
    build_hybrid_model,
    make_spiral,
    profile_model,
    stratified_split,
    train_model,
)

FEATURES = 10
SEED = 0


def ascii_scatter(dataset, width=56, height=20):
    """Fig. 4(a): the first two features, one glyph per class."""
    glyphs = "ox+"
    grid = [[" "] * width for _ in range(height)]
    x = dataset.features[:, 0]
    y = dataset.features[:, 1]
    for xi, yi, label in zip(x, y, dataset.labels):
        col = int((xi - x.min()) / (x.max() - x.min() + 1e-9) * (width - 1))
        row = int((yi - y.min()) / (y.max() - y.min() + 1e-9) * (height - 1))
        grid[height - 1 - row][col] = glyphs[label]
    return "\n".join("".join(row) for row in grid)


def main():
    print(f"Spiral dataset: {FEATURES} features, "
          f"noise = 0.1 + 0.003*{FEATURES}")
    data = make_spiral(n_features=FEATURES, n_points=900, seed=SEED)
    print(ascii_scatter(data))
    split = stratified_split(data, seed=SEED)

    rng = np.random.default_rng(SEED)
    classical = build_classical_model(FEATURES, hidden=(6,), rng=rng)
    hybrid = build_hybrid_model(
        FEATURES, n_qubits=3, n_layers=2, ansatz="sel", rng=rng
    )

    for name, model in (("classical C[6]", classical), ("hybrid SEL(3,2)", hybrid)):
        history = train_model(
            model,
            split.x_train,
            split.y_train,
            split.x_val,
            split.y_val,
            epochs=40,
            batch_size=8,
            rng=np.random.default_rng(SEED),
            early_stop_threshold=0.9,
        )
        print(f"\n=== {name} ===")
        print(
            f"max train acc {history.max_train_accuracy:.3f} | "
            f"max val acc {history.max_val_accuracy:.3f} | "
            f"epochs {history.epochs_run} | {history.wall_time_s:.1f}s"
        )
        print(profile_model(model).summary())


if __name__ == "__main__":
    main()
