"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with one ``except`` clause
while still being able to discriminate on the finer-grained subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent arguments."""


class WireError(ConfigurationError):
    """A quantum operation referenced a wire outside the register."""


class ShapeError(ConfigurationError):
    """An array argument had an incompatible shape."""


class GateError(ConfigurationError):
    """An unknown gate name or invalid gate parameterization was used."""


class BackendUnavailable(ConfigurationError):
    """A requested array backend's library cannot be imported.

    Raised by :func:`repro.backends.get_backend` for known backends
    (torch, cupy) whose optional dependency is missing;
    :func:`repro.backends.resolve_backend` converts it into a clean
    fallback to the NumPy backend."""


class SearchError(ReproError):
    """The model search could not complete (e.g. empty search space)."""


class TrainingCancelled(ReproError):
    """A training run was cooperatively cancelled mid-flight.

    Raised by :func:`repro.nn.training.train_model` when its
    ``cancel_check`` fires; the persistent worker pool uses it to abort
    speculative runs whose search has already finished."""


class SearchExhaustedError(SearchError):
    """No candidate in the search space met the accuracy condition."""


class ProfileError(ReproError):
    """The FLOPs profiler encountered a layer it cannot cost."""


class ExperimentError(ReproError):
    """An experiment driver was invoked with an invalid configuration."""
