"""Experiment E2 — paper Fig. 4(b).

Demonstrates the complexity dial: as the feature count (and its coupled
noise) rises, a *fixed* reference classifier loses accuracy while its
training time grows.
"""

from __future__ import annotations

from ..data.complexity_probe import ProbeResult, probe_complexity
from .report import format_table
from .runner import RunProfile, get_profile

__all__ = ["run", "render"]


def run(profile: str | RunProfile = "smoke") -> list[ProbeResult]:
    """Probe every feature size of the profile with a fixed MLP."""
    prof = get_profile(profile)
    return probe_complexity(
        prof.feature_sizes,
        hidden=(10,),
        n_points=prof.n_points,
        epochs=max(5, prof.epochs // 2),
        batch_size=prof.batch_size,
    )


def render(results: list[ProbeResult]) -> str:
    """Fig. 4(b) as a text table."""
    rows = [
        [
            r.feature_size,
            f"{r.noise:.3f}",
            f"{r.train_accuracy:.3f}",
            f"{r.val_accuracy:.3f}",
            f"{r.train_time_s:.2f}",
        ]
        for r in results
    ]
    return format_table(
        ["features", "noise", "train_acc", "val_acc", "train_time_s"],
        rows,
        title=(
            "Fig 4(b): fixed reference classifier vs problem complexity "
            "(accuracy should fall, time should rise)"
        ),
    )
