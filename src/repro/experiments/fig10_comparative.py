"""Experiment E7 — paper Fig. 10.

The headline comparison: rate of increase in FLOPs (panel a) and
parameter count (panel b) as problem complexity grows, for classical,
hybrid-BEL and hybrid-SEL models.  The paper's claim ordering is

    classical > hybrid (BEL) > hybrid (SEL)

for both metrics, i.e. SEL-based HQNNs adapt to problem complexity with
the smallest growth in computational demands.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from ..core.comparison import ComparativeAnalysis, comparative_analysis
from ..core.experiment import ProtocolResult
from .report import format_table
from .runner import RunProfile, run_family_cached

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.pool import PersistentPool

__all__ = ["run", "analyze", "render"]

_FAMILIES = ("classical", "bel", "sel")


def run(
    profile: str | RunProfile = "smoke",
    cache_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
    workers: int = 1,
    pool: "PersistentPool | None" = None,
    **config_overrides,
) -> list[ProtocolResult]:
    """Run (or load) all three family protocols."""
    return [
        run_family_cached(
            f,
            profile,
            cache_dir=cache_dir,
            progress=progress,
            workers=workers,
            pool=pool,
            **config_overrides,
        )
        for f in _FAMILIES
    ]


def analyze(
    results: Sequence[ProtocolResult], use: str = "smallest"
) -> ComparativeAnalysis:
    """Fig. 10's analysis object (rates relative to the high level)."""
    return comparative_analysis(list(results), use=use)


def render(analysis: ComparativeAnalysis) -> str:
    """Fig. 10 as text: headline rates plus the pairwise-rate curves."""
    blocks = ["Fig 10: comparative rate-of-increase analysis"]
    blocks.append(analysis.summary_table())

    sizes = analysis.feature_sizes
    span_labels = [f"{sizes[0]}-{fs}" for fs in sizes[1:]]
    for panel, data in (("a: FLOPs", analysis.flops), ("b: params", analysis.params)):
        rows = []
        for family, series in data.items():
            rates = series.pairwise_rates()
            rows.append([family] + [f"{100.0 * r:.1f}" for r in rates])
        blocks.append(
            format_table(
                ["family"] + span_labels,
                rows,
                title=f"panel {panel}: % increase relative to the high level",
            )
        )
    return "\n\n".join(blocks)
