"""Plain-text rendering of the paper's figures and tables.

The repository is matplotlib-free by design (offline environment), so
every "figure" is regenerated as the numeric series the paper plots,
rendered as aligned text tables that can be diffed across runs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.experiment import ProtocolResult
from ..exceptions import ExperimentError

__all__ = [
    "format_table",
    "format_series",
    "format_level_winners",
    "format_protocol_overview",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table."""
    if not headers:
        raise ExperimentError("table needs at least one column")
    cells = [[str(h) for h in headers]] + [
        [_fmt(v) for v in row] for row in rows
    ]
    widths = [
        max(len(r[c]) for r in cells) for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "  "
    lines.append(sep.join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep.join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(sep.join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def format_series(
    feature_sizes: Sequence[int],
    series: Mapping[str, Sequence[float]],
    title: str,
    value_name: str = "value",
) -> str:
    """One row per feature size, one column per named series."""
    headers = ["features"] + list(series)
    rows = []
    for i, fs in enumerate(feature_sizes):
        rows.append([fs] + [series[name][i] for name in series])
    return format_table(headers, rows, title=f"{title} ({value_name})")


def format_level_winners(result: ProtocolResult) -> str:
    """The per-subplot content of the paper's Figs. 6-8: the winning
    model of each independent experiment, its FLOPs, and the average."""
    lines = [
        f"Best-performing {result.family} models per complexity level "
        f"(threshold {result.config.threshold:.0%}, "
        f"{result.config.n_experiments} experiments)"
    ]
    for lvl in result.levels:
        winners = lvl.winners
        if not winners:
            lines.append(f"  features={lvl.feature_size}: NO WINNER")
            continue
        entries = ", ".join(
            f"{w.spec.label}:{w.flops}" for w in winners
        )
        lines.append(
            f"  features={lvl.feature_size}: {entries}  "
            f"avg_flops={lvl.mean_flops:.1f} avg_params={lvl.mean_params:.1f}"
        )
    return "\n".join(lines)


def format_protocol_overview(results: Sequence[ProtocolResult]) -> str:
    """Compact multi-family overview used by the CLI."""
    headers = ["family", "features", "winner", "flops", "params"]
    rows = []
    for result in results:
        for lvl in result.levels:
            winner = lvl.smallest_winner
            rows.append(
                [
                    result.family,
                    lvl.feature_size,
                    winner.spec.label if winner else "-",
                    winner.flops if winner else "-",
                    winner.params if winner else "-",
                ]
            )
    return format_table(headers, rows, title="Smallest winning models")
