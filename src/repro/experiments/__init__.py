"""Experiment drivers — one module per paper figure/table.

========  =======================================  =========================
Driver    Paper artifact                           What it regenerates
========  =======================================  =========================
fig4      Fig. 4(b)                                dataset-complexity probe
fig6      Fig. 6                                   classical winners' FLOPs
fig7      Fig. 7                                   hybrid-BEL winners' FLOPs
fig8      Fig. 8                                   hybrid-SEL winners' FLOPs
fig9      Fig. 9                                   winners' parameter counts
fig10     Fig. 10(a,b)                             rate-of-increase analysis
table1    Table I                                  Enc/CL/QL FLOPs ablation
========  =======================================  =========================

Every driver exposes ``run(profile, ...)`` returning structured results
and ``render(...)`` producing the paper-style text table.
"""

from . import (
    fig4_dataset_complexity,
    fig6_classical_flops,
    fig7_bel_flops,
    fig8_sel_flops,
    fig9_parameters,
    fig10_comparative,
    report,
    table1_ablation,
)
from .runner import (
    FULL,
    PROFILES,
    REDUCED,
    SMOKE,
    RunProfile,
    get_profile,
    run_family,
    run_family_cached,
)

__all__ = [
    "fig4_dataset_complexity",
    "fig6_classical_flops",
    "fig7_bel_flops",
    "fig8_sel_flops",
    "fig9_parameters",
    "fig10_comparative",
    "table1_ablation",
    "report",
    "RunProfile",
    "SMOKE",
    "REDUCED",
    "FULL",
    "PROFILES",
    "get_profile",
    "run_family",
    "run_family_cached",
]
