"""Experiment E3 — paper Fig. 6.

FLOPs consumption of the best-performing *classical* models across
complexity levels: grid-search the 155-combination classical space at
every feature size and report the winners' FLOPs.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..core.experiment import ProtocolResult
from .report import format_level_winners
from .runner import RunProfile, run_family_cached

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.pool import PersistentPool

__all__ = ["run", "render"]


def run(
    profile: str | RunProfile = "smoke",
    cache_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
    workers: int = 1,
    pool: "PersistentPool | None" = None,
    **config_overrides,
) -> ProtocolResult:
    """Run (or load) the classical protocol under a profile."""
    return run_family_cached(
        "classical",
        profile,
        cache_dir=cache_dir,
        progress=progress,
        workers=workers,
        pool=pool,
        **config_overrides,
    )


def render(result: ProtocolResult) -> str:
    """Fig. 6 as text: winners and average FLOPs per complexity level."""
    header = "Fig 6: FLOPs of best-performing classical models"
    return header + "\n" + format_level_winners(result)
