"""Experiment E8 — paper Table I.

Ablation: break each winning hybrid model's FLOPs into encoding (Enc),
classical layers (CL) and the trainable quantum layer (QL).  The paper's
qualitative findings, which hold under every counting convention:

* Enc depends only on the qubit count — constant across feature sizes
  for a fixed circuit;
* CL grows linearly with the feature size (input layer);
* QL is constant for SEL (the same circuit solves every level) and grows
  for BEL only when the search had to enlarge the circuit;
* Enc+CL dominates the hybrid total (the simulation overhead the paper
  argues would vanish on fault-tolerant hardware with quantum-native
  data).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from ..core.experiment import ProtocolResult
from ..core.search_space import HybridSpec
from ..exceptions import ExperimentError
from ..flops.conventions import CountingConvention
from ..flops.formulas import hybrid_flops_breakdown
from .report import format_table
from .runner import RunProfile, run_family_cached

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.pool import PersistentPool

__all__ = [
    "AblationRow",
    "rows_from_protocol",
    "paper_reference_rows",
    "run",
    "render",
    "PAPER_TABLE1",
]


@dataclass(frozen=True)
class AblationRow:
    """One line of Table I."""

    ansatz: str
    feature_size: int
    n_qubits: int
    n_layers: int
    total: int
    enc_plus_cl: int
    cl: int
    enc: int
    ql: int

    @property
    def best_combination(self) -> str:
        return f"({self.n_qubits},{self.n_layers})"


#: The paper's published Table I (TF-profiler counts), for side-by-side
#: comparison in reports and in EXPERIMENTS.md.
PAPER_TABLE1: tuple[AblationRow, ...] = (
    AblationRow("bel", 10, 3, 2, 977, 749, 283, 466, 228),
    AblationRow("bel", 40, 3, 2, 1517, 1289, 823, 466, 228),
    AblationRow("bel", 80, 3, 4, 2537, 2009, 1543, 466, 528),
    AblationRow("bel", 110, 4, 4, 4797, 3901, 2769, 1132, 896),
    AblationRow("sel", 10, 3, 2, 1589, 749, 283, 466, 840),
    AblationRow("sel", 40, 3, 2, 2129, 1289, 823, 466, 840),
    AblationRow("sel", 80, 3, 2, 2849, 2009, 1543, 466, 840),
    AblationRow("sel", 110, 3, 2, 3389, 2549, 2083, 466, 840),
)


def row_for_spec(
    spec: HybridSpec, convention: str | CountingConvention = "paper"
) -> AblationRow:
    """Compute the Table I decomposition for one hybrid spec."""
    breakdown = hybrid_flops_breakdown(
        spec.n_features,
        spec.n_qubits,
        spec.n_layers,
        spec.ansatz,
        spec.n_classes,
        convention,
    )
    return AblationRow(
        ansatz=spec.ansatz,
        feature_size=spec.n_features,
        n_qubits=spec.n_qubits,
        n_layers=spec.n_layers,
        total=breakdown.total,
        enc_plus_cl=breakdown.encoding_plus_classical,
        cl=breakdown.classical,
        enc=breakdown.encoding,
        ql=breakdown.quantum,
    )


def rows_from_protocol(
    result: ProtocolResult,
    convention: str | CountingConvention = "paper",
) -> list[AblationRow]:
    """Decompose each level's smallest winning hybrid model."""
    if result.family not in ("bel", "sel"):
        raise ExperimentError(
            f"Table I applies to hybrid families, got {result.family!r}"
        )
    rows = []
    for lvl in result.levels:
        winner = lvl.smallest_winner
        if winner is None:
            continue
        spec = winner.spec
        if not isinstance(spec, HybridSpec):
            raise ExperimentError("hybrid protocol produced non-hybrid spec")
        rows.append(row_for_spec(spec, convention))
    return rows


def paper_reference_rows(ansatz: str | None = None) -> list[AblationRow]:
    """The published Table I, optionally filtered by ansatz."""
    if ansatz is None:
        return list(PAPER_TABLE1)
    return [r for r in PAPER_TABLE1 if r.ansatz == ansatz]


def run(
    profile: str | RunProfile = "smoke",
    cache_dir: str | Path | None = None,
    convention: str | CountingConvention = "paper",
    progress: Callable[[str], None] | None = None,
    workers: int = 1,
    pool: "PersistentPool | None" = None,
    **config_overrides,
) -> dict[str, list[AblationRow]]:
    """Run (or load) both hybrid protocols and decompose the winners."""
    out: dict[str, list[AblationRow]] = {}
    for family in ("bel", "sel"):
        result = run_family_cached(
            family,
            profile,
            cache_dir=cache_dir,
            progress=progress,
            workers=workers,
            pool=pool,
            **config_overrides,
        )
        out[family] = rows_from_protocol(result, convention)
    return out


def render(
    rows_by_family: dict[str, list[AblationRow]],
    include_paper_reference: bool = True,
) -> str:
    """Table I as text, optionally with the paper's numbers alongside."""
    blocks = [
        "Table I: FLOPs breakdown of hybrid networks "
        "(TF = Enc + CL + QL, per sample)"
    ]
    headers = ["model", "FS/BC", "TF", "Enc+CL", "CL", "Enc", "QL"]

    def to_table(rows: Sequence[AblationRow], title: str) -> str:
        body = [
            [
                f"hybrid({r.ansatz.upper()})",
                f"{r.feature_size}/{r.best_combination}",
                r.total,
                r.enc_plus_cl,
                r.cl,
                r.enc,
                r.ql,
            ]
            for r in rows
        ]
        return format_table(headers, body, title=title)

    for family, rows in rows_by_family.items():
        if rows:
            blocks.append(to_table(rows, f"measured ({family})"))
    if include_paper_reference:
        blocks.append(
            to_table(PAPER_TABLE1, "paper (TensorFlow profiler counts)")
        )
    return "\n\n".join(blocks)
