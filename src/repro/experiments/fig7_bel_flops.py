"""Experiment E4 — paper Fig. 7.

FLOPs consumption of the best-performing hybrid models with the Basic
Entangling Layer (BEL) ansatz across complexity levels.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..core.experiment import ProtocolResult
from .report import format_level_winners
from .runner import RunProfile, run_family_cached

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.pool import PersistentPool

__all__ = ["run", "render"]


def run(
    profile: str | RunProfile = "smoke",
    cache_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
    workers: int = 1,
    pool: "PersistentPool | None" = None,
    **config_overrides,
) -> ProtocolResult:
    """Run (or load) the hybrid-BEL protocol under a profile."""
    return run_family_cached(
        "bel",
        profile,
        cache_dir=cache_dir,
        progress=progress,
        workers=workers,
        pool=pool,
        **config_overrides,
    )


def render(result: ProtocolResult) -> str:
    """Fig. 7 as text: winners and average FLOPs per complexity level."""
    header = "Fig 7: FLOPs of best-performing hybrid (BEL) models"
    return header + "\n" + format_level_winners(result)
