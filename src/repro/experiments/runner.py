"""Run profiles and shared machinery for the experiment drivers.

The paper's full protocol (11 complexity levels x 5 experiments x 5 runs
x up to 155 candidates x 100 epochs) is far beyond a laptop budget; the
authors rely on FLOPs-sorted early stopping, and even then a full rerun
is hours of compute.  Every experiment driver therefore accepts a
*profile*:

``smoke``
    Seconds.  Tiny dataset, two levels, one experiment, capped candidate
    count.  Exercises every code path; used by the test suite and the
    pytest benchmarks.
``reduced``
    Tens of minutes on a laptop.  The paper's reported feature sizes
    (10/40/80/110), one experiment, two runs per candidate, early
    stopping, threshold 0.85 (see RunProfile).  This is the profile
    behind the numbers in EXPERIMENTS.md.
``full``
    The paper's exact protocol.

Profiles only change *scale* knobs; the methodology (search spaces,
ordering, thresholds, metrics) is identical across profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..core.experiment import ProtocolConfig, ProtocolResult, run_protocol
from ..core.results import load_protocol, save_protocol
from ..exceptions import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.pool import PersistentPool

__all__ = [
    "RunProfile",
    "SMOKE",
    "REDUCED",
    "FULL",
    "PROFILES",
    "get_profile",
    "run_family",
    "run_family_cached",
]


@dataclass(frozen=True)
class RunProfile:
    """Scale knobs for one experiment execution.

    ``threshold`` is the iso-accuracy condition.  The full profile uses
    the paper's 0.90.  The reduced profile uses 0.85: with our NumPy
    substrate and dataset realization the achievable validation ceiling
    at the highest complexity level sits at ~0.87-0.91 for *every* model
    family, so the paper's 0.90 line falls inside the sampling noise of a
    300-point validation set (one sample = 0.33 accuracy points) and
    pass/fail decisions near it are coin flips.  Dropping the line to
    0.85 keeps the methodology identical (one fixed threshold for all
    families and levels) while giving every decision a >=2-point margin.
    See EXPERIMENTS.md.
    """

    name: str
    feature_sizes: tuple[int, ...]
    n_experiments: int
    runs_per_candidate: int
    epochs: int
    batch_size: int
    n_points: int
    early_stop: bool
    max_candidates: int | None
    threshold: float | None = None

    def protocol_config(self, **overrides) -> ProtocolConfig:
        """Materialize a :class:`ProtocolConfig` for this profile."""
        cfg = ProtocolConfig(
            feature_sizes=self.feature_sizes,
            n_experiments=self.n_experiments,
            runs_per_candidate=self.runs_per_candidate,
            epochs=self.epochs,
            batch_size=self.batch_size,
            n_points=self.n_points,
            early_stop=self.early_stop,
            max_candidates=self.max_candidates,
        )
        if self.threshold is not None:
            cfg = cfg.with_(threshold=self.threshold)
        return cfg.with_(**overrides) if overrides else cfg


SMOKE = RunProfile(
    name="smoke",
    feature_sizes=(10, 30),
    n_experiments=1,
    runs_per_candidate=1,
    epochs=15,
    batch_size=8,
    n_points=150,
    early_stop=True,
    max_candidates=4,
    threshold=0.4,
)

REDUCED = RunProfile(
    name="reduced",
    feature_sizes=(10, 40, 80, 110),
    n_experiments=1,
    runs_per_candidate=2,
    epochs=100,
    batch_size=8,
    n_points=1500,
    early_stop=True,
    # At 80+ features every width-2-first classical combination (31 of
    # them) costs fewer FLOPs than any width-4 model, so the cap must
    # exceed 31 for the classical search to be able to escalate.
    max_candidates=45,
    threshold=0.85,
)

FULL = RunProfile(
    name="full",
    feature_sizes=tuple(range(10, 120, 10)),
    n_experiments=5,
    runs_per_candidate=5,
    epochs=100,
    batch_size=8,
    n_points=1500,
    early_stop=False,
    max_candidates=None,
)

PROFILES: dict[str, RunProfile] = {p.name: p for p in (SMOKE, REDUCED, FULL)}


def get_profile(name: str | RunProfile) -> RunProfile:
    """Look a profile up by name (pass-through for instances)."""
    if isinstance(name, RunProfile):
        return name
    try:
        return PROFILES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown profile {name!r}; options: {sorted(PROFILES)}"
        ) from None


def run_family(
    family: str,
    profile: str | RunProfile = "smoke",
    progress: Callable[[str], None] | None = None,
    workers: int = 1,
    pool: "PersistentPool | None" = None,
    **config_overrides,
) -> ProtocolResult:
    """Run the protocol for one family under a profile.

    ``workers`` selects the grid-search execution mode (see
    :func:`repro.core.grid_search.grid_search`); it scales wall time
    only — results are identical for any worker count.  ``pool`` lends
    an existing :class:`~repro.runtime.pool.PersistentPool` so warm
    workers carry over across families (without it, ``workers > 1``
    creates one pool per protocol run).
    """
    prof = get_profile(profile)
    cfg = prof.protocol_config(workers=workers, **config_overrides)
    return run_protocol(family, cfg, progress=progress, pool=pool)


def run_family_cached(
    family: str,
    profile: str | RunProfile = "smoke",
    cache_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
    workers: int = 1,
    pool: "PersistentPool | None" = None,
    **config_overrides,
) -> ProtocolResult:
    """Like :func:`run_family`, but reuse a JSON result when present.

    The cache key is ``{family}_{profile}.json`` inside ``cache_dir``;
    pass ``cache_dir=None`` to disable caching entirely.  ``workers``,
    ``pool``, ``vectorized_runs``, ``stacked_candidates``,
    ``max_retries``, ``journal``, ``spool``, ``connect`` and
    ``memory_budget`` do not
    enter the cache key: they select execution/supervision mechanics that
    produce identical results, so any may serve another's cache.  Every other config
    override *does* change results, so it is appended to the key —
    ``repro fig8 --runs 3`` will never be served a default-runs cache
    entry (nor poison it).  ``backend`` is deliberately in the second
    camp: device backends are tolerance-grade, not bit-identical, so
    ``backend="torch"`` results live under their own ``_backend-torch``
    cache files and never serve (or poison) the NumPy reference cache.
    """
    prof = get_profile(profile)
    if cache_dir is None:
        return run_family(
            family,
            prof,
            progress=progress,
            workers=workers,
            pool=pool,
            **config_overrides,
        )
    cache_dir = Path(cache_dir)
    base_cfg = prof.protocol_config()
    affecting = {
        k: v
        for k, v in sorted(config_overrides.items())
        if k
        not in (
            "vectorized_runs",
            "stacked_candidates",
            "max_retries",
            "journal",
            "spool",
            "connect",
            "memory_budget",
        )
        and getattr(base_cfg, k, None) != v
    }
    suffix = "".join(f"_{k}-{v}" for k, v in affecting.items())
    path = cache_dir / f"{family}_{prof.name}{suffix}.json"
    if path.exists():
        return load_protocol(path)
    result = run_family(
        family,
        prof,
        progress=progress,
        workers=workers,
        pool=pool,
        **config_overrides,
    )
    save_protocol(result, path)
    return result
