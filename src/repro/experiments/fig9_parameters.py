"""Experiment E6 — paper Fig. 9.

Parameter counts of the top-performing models per complexity level,
three panels: classical (top), hybrid BEL (middle), hybrid SEL (bottom).
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from ..core.experiment import ProtocolResult
from ..exceptions import ExperimentError
from .report import format_table
from .runner import RunProfile, run_family_cached

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.pool import PersistentPool

__all__ = ["run", "render"]

_PANEL_ORDER = ("classical", "bel", "sel")


def run(
    profile: str | RunProfile = "smoke",
    cache_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
    workers: int = 1,
    pool: "PersistentPool | None" = None,
    **config_overrides,
) -> list[ProtocolResult]:
    """Run (or load) all three family protocols."""
    return [
        run_family_cached(
            f,
            profile,
            cache_dir=cache_dir,
            progress=progress,
            workers=workers,
            pool=pool,
            **config_overrides,
        )
        for f in _PANEL_ORDER
    ]


def render(results: Sequence[ProtocolResult]) -> str:
    """Fig. 9 as text: one panel per family, winners' parameter counts."""
    if not results:
        raise ExperimentError("fig9 needs at least one protocol result")
    blocks = ["Fig 9: parameter counts of best-performing models"]
    for result in results:
        rows = []
        for lvl in result.levels:
            winners = lvl.winners
            rows.append(
                [
                    lvl.feature_size,
                    ", ".join(
                        f"{w.spec.label}:{w.params}" for w in winners
                    )
                    or "-",
                    f"{lvl.mean_params:.1f}" if winners else "-",
                ]
            )
        blocks.append(
            format_table(
                ["features", "winners (params)", "avg_params"],
                rows,
                title=f"panel: {result.family}",
            )
        )
    return "\n\n".join(blocks)
