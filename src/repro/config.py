"""Paper-level experimental constants.

Every number in this module is taken directly from the text of

    Kashif, Marchisio, Shafique, "Computational Advantage in Hybrid Quantum
    Neural Networks: Myth or Reality?", DAC 2025 (arXiv:2412.04991).

Keeping them in one place makes the provenance auditable and lets the
experiment drivers (``repro.experiments``) build scaled-down *profiles*
(smoke / reduced / full) by overriding a few fields rather than redefining
the protocol.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Dataset (paper section III-A)
# --------------------------------------------------------------------------

#: Total number of points in the spiral dataset.
N_POINTS = 1500

#: Number of spiral arms / target classes.
N_CLASSES = 3

#: Feature sizes ("complexity levels") studied by the paper: 10..110 step 10.
FEATURE_SIZES = tuple(range(10, 120, 10))

#: Noise applied to the dataset as a function of the feature count
#: (paper: ``noise = 0.1 + 0.003 * num_features``).
NOISE_INTERCEPT = 0.1
NOISE_SLOPE = 0.003


def noise_for_features(num_features: int) -> float:
    """Return the paper's noise level for a given feature count.

    >>> round(noise_for_features(10), 3)
    0.13
    >>> round(noise_for_features(110), 3)
    0.43
    """
    return NOISE_INTERCEPT + NOISE_SLOPE * num_features


#: Fraction of points held out for validation.  The paper plots train and
#: validation accuracies; an 80/20 split is the conventional choice and the
#: one we adopt (documented substitution, the paper does not state a ratio).
VALIDATION_FRACTION = 0.2

# --------------------------------------------------------------------------
# Model search spaces (paper sections III-B and III-C)
# --------------------------------------------------------------------------

#: Hidden-layer width options for the classical grid search.
CLASSICAL_NEURON_OPTIONS = (2, 4, 6, 8, 10)

#: Maximum number of hidden layers in the classical grid search.
CLASSICAL_MAX_LAYERS = 3

#: Qubit counts explored for hybrid models.
HYBRID_QUBIT_OPTIONS = (3, 4, 5)

#: Quantum-layer depths explored for hybrid models.
HYBRID_DEPTH_OPTIONS = tuple(range(1, 11))

# --------------------------------------------------------------------------
# Training protocol (paper sections III-F and IV)
# --------------------------------------------------------------------------

#: Accuracy that both train and validation must reach (averaged over runs).
ACCURACY_THRESHOLD = 0.90

#: Adam learning rate.
LEARNING_RATE = 0.001

#: Mini-batch size.
BATCH_SIZE = 8

#: Training epochs per run.
EPOCHS = 100

#: Independent runs whose max-accuracy is averaged per candidate model.
RUNS_PER_CANDIDATE = 5

#: Number of times the whole search is repeated per complexity level.
N_EXPERIMENTS = 5

# --------------------------------------------------------------------------
# Reporting (paper section IV-E)
# --------------------------------------------------------------------------

#: Feature sizes for which the paper reports parameter counts and Table I.
REPORTED_FEATURE_SIZES = (10, 40, 80, 110)

# --------------------------------------------------------------------------
# Runtime (not from the paper)
# --------------------------------------------------------------------------

#: Fraction of the probed free memory used as the implicit search-wide
#: memory budget when neither ``--memory-budget`` nor
#: ``REPRO_MEMORY_BUDGET`` is set.  A runtime knob, not a paper constant:
#: it bounds how much of the host (or device) the fused sweeps may claim
#: concurrently; see ``repro.runtime.memory``.
MEMORY_BUDGET_FRACTION = 0.5

#: Cross-host spool defaults (``repro.runtime.cluster``; runtime knobs,
#: not paper constants).  An agent rewrites its heartbeat counter every
#: ``SPOOL_HEARTBEAT_S``; the coordinator reclaims a chunk lease after
#: observing no counter change for ``SPOOL_LEASE_TIMEOUT_S`` on its own
#: monotonic clock (remote wall clocks are never compared, so host skew
#: is irrelevant — the ratio just needs enough slack for NFS attribute
#: caching and scheduler hiccups).  With no live agent for
#: ``SPOOL_AGENT_GRACE_S`` the coordinator finishes the search
#: in-process instead of waiting forever.
SPOOL_HEARTBEAT_S = 5.0
SPOOL_LEASE_TIMEOUT_S = 60.0
SPOOL_POLL_INTERVAL_S = 0.5
SPOOL_AGENT_GRACE_S = 30.0

#: Cross-host TCP defaults (``repro.runtime.cluster_tcp``; runtime
#: knobs, not paper constants).  An agent sends an application-level
#: heartbeat frame every ``TCP_HEARTBEAT_S``; the coordinator expires a
#: chunk lease after seeing no frame from its holder for
#: ``TCP_LEASE_TIMEOUT_S`` on its own monotonic clock (host clock skew
#: is irrelevant, exactly as on the spool).  A frame that *started*
#: arriving must keep moving: any single socket read or write stalling
#: past ``TCP_FRAME_TIMEOUT_S`` marks the connection dead, which is how
#: a mid-frame partition is told apart from an agent that is merely
#: training.  With no live agent for ``TCP_AGENT_GRACE_S`` the
#: coordinator finishes in-process; a disconnected agent redials with
#: decorrelated-jitter backoff (``repro.runtime.backoff``) capped at
#: ``TCP_RECONNECT_CAP_S`` and gives up for good after
#: ``TCP_RECONNECT_TIMEOUT_S`` without a successful connection.
TCP_HEARTBEAT_S = 5.0
TCP_LEASE_TIMEOUT_S = 60.0
TCP_POLL_INTERVAL_S = 0.5
TCP_AGENT_GRACE_S = 30.0
TCP_FRAME_TIMEOUT_S = 30.0
TCP_RECONNECT_CAP_S = 5.0
TCP_RECONNECT_TIMEOUT_S = 60.0
