"""FLOPs accounting for classical layers.

Costs are per data sample (batch size 1), forward and backward, matching
the paper's profiler methodology (model graph + GradientTape graph).
Loss-function FLOPs are excluded — the paper profiles the model graphs.
"""

from __future__ import annotations

from ..exceptions import ProfileError
from ..nn.layers import (
    Dense,
    Dropout,
    Flatten,
    Layer,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from .conventions import CountingConvention

__all__ = ["classical_layer_flops", "dense_flops", "relu_flops", "softmax_flops"]


def dense_flops(
    conv: CountingConvention, n_in: int, n_out: int
) -> tuple[int, int]:
    """(forward, backward) FLOPs of a Dense layer for one sample."""
    return conv.dense_fwd(n_in, n_out), conv.dense_bwd(n_in, n_out)


def relu_flops(conv: CountingConvention, n: int) -> tuple[int, int]:
    """(forward, backward) FLOPs of a ReLU over ``n`` units."""
    return conv.relu_fwd(n), conv.relu_bwd(n)


def softmax_flops(conv: CountingConvention, n: int) -> tuple[int, int]:
    """(forward, backward) FLOPs of a softmax over ``n`` units."""
    return conv.softmax_fwd(n), conv.softmax_bwd(n)


def classical_layer_flops(
    conv: CountingConvention, layer: Layer, input_dim: int
) -> tuple[int, int, int]:
    """(forward, backward, output_dim) for one classical layer.

    Raises :class:`~repro.exceptions.ProfileError` for layer types this
    module does not know (the profiler handles quantum layers itself).
    """
    if isinstance(layer, Dense):
        fwd, bwd = dense_flops(conv, layer.in_features, layer.out_features)
        return fwd, bwd, layer.out_features
    if isinstance(layer, ReLU):
        fwd, bwd = relu_flops(conv, input_dim)
        return fwd, bwd, input_dim
    if isinstance(layer, Softmax):
        fwd, bwd = softmax_flops(conv, input_dim)
        return fwd, bwd, input_dim
    if isinstance(layer, Tanh):
        return (
            conv.tanh_fwd_per_unit * input_dim,
            conv.tanh_bwd_per_unit * input_dim,
            input_dim,
        )
    if isinstance(layer, Sigmoid):
        return (
            conv.sigmoid_fwd_per_unit * input_dim,
            conv.sigmoid_bwd_per_unit * input_dim,
            input_dim,
        )
    if isinstance(layer, Dropout):
        return (
            conv.dropout_fwd_per_unit * input_dim,
            conv.dropout_bwd_per_unit * input_dim,
            input_dim,
        )
    if isinstance(layer, Flatten):
        return 0, 0, input_dim
    raise ProfileError(
        f"no classical FLOPs rule for layer type {type(layer).__name__}"
    )
