"""FLOPs accounting framework (the paper's complexity metric #1).

Replaces the paper's TensorFlow-profiler procedure with an analytic,
convention-parameterized cost model.  See
:mod:`repro.flops.conventions` for the counting rules and their
calibration against the paper's Table I.
"""

from .classical import (
    classical_layer_flops,
    dense_flops,
    relu_flops,
    softmax_flops,
)
from .conventions import (
    CONVENTIONS,
    FIRST_PRINCIPLES,
    PAPER,
    PARAMETER_SHIFT,
    CountingConvention,
    get_convention,
)
from .formulas import (
    classical_model_flops,
    classical_param_count,
    hybrid_flops_breakdown,
    hybrid_model_flops,
    hybrid_param_count,
)
from .profiler import (
    FlopsBreakdown,
    LayerProfile,
    ModelProfile,
    profile_model,
)
from .quantum import (
    QuantumLayerFlops,
    count_tape_params,
    operation_fwd_flops,
    quantum_layer_flops,
    split_tape,
    tape_fwd_flops,
)

__all__ = [
    "CountingConvention",
    "PAPER",
    "FIRST_PRINCIPLES",
    "PARAMETER_SHIFT",
    "CONVENTIONS",
    "get_convention",
    "dense_flops",
    "relu_flops",
    "softmax_flops",
    "classical_layer_flops",
    "operation_fwd_flops",
    "tape_fwd_flops",
    "split_tape",
    "count_tape_params",
    "QuantumLayerFlops",
    "quantum_layer_flops",
    "LayerProfile",
    "FlopsBreakdown",
    "ModelProfile",
    "profile_model",
    "classical_param_count",
    "classical_model_flops",
    "hybrid_param_count",
    "hybrid_model_flops",
    "hybrid_flops_breakdown",
]
