"""Closed-form cost formulas on model *specifications*.

The grid search ranks hundreds of candidate architectures by FLOPs before
training anything (paper section III-E).  Instantiating each model just to
cost it would be wasteful, so these helpers compute FLOPs and parameter
counts directly from the specification.  They are guaranteed to agree
with :func:`repro.flops.profiler.profile_model` on built models — the
test suite checks the equivalence exhaustively over both search spaces.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..quantum.templates import (
    angle_embedding,
    basic_entangler_layers,
    bel_param_count,
    sel_param_count,
    strongly_entangling_layers,
)
from .conventions import CountingConvention, get_convention
from .profiler import FlopsBreakdown
from .quantum import quantum_layer_flops

__all__ = [
    "classical_param_count",
    "classical_model_flops",
    "hybrid_param_count",
    "hybrid_model_flops",
    "hybrid_flops_breakdown",
]


def classical_param_count(
    n_features: int, hidden: Sequence[int], n_classes: int = 3
) -> int:
    """Trainable parameters of a classical MLP spec."""
    if not hidden:
        raise ConfigurationError("classical spec needs >= 1 hidden layer")
    total = 0
    dim = n_features
    for width in hidden:
        total += dim * width + width
        dim = width
    total += dim * n_classes + n_classes
    return total


def classical_model_flops(
    n_features: int,
    hidden: Sequence[int],
    n_classes: int = 3,
    convention: str | CountingConvention = "paper",
) -> int:
    """Per-sample forward+backward FLOPs of a classical MLP spec."""
    conv = get_convention(convention)
    total = 0
    dim = n_features
    for width in hidden:
        total += conv.dense_fwd(dim, width) + conv.dense_bwd(dim, width)
        total += conv.relu_fwd(width) + conv.relu_bwd(width)
        dim = width
    total += conv.dense_fwd(dim, n_classes) + conv.dense_bwd(dim, n_classes)
    total += conv.softmax_fwd(n_classes) + conv.softmax_bwd(n_classes)
    return int(total)


def hybrid_param_count(
    n_features: int,
    n_qubits: int,
    n_layers: int,
    ansatz: str = "sel",
    n_classes: int = 3,
    hidden: Sequence[int] = (),
) -> int:
    """Trainable parameters of an HQNN spec (Fig. 3 architecture).

    ``hidden`` is the optional classical head in front of the input
    layer (``Dense + ReLU`` per width), matching
    :func:`repro.hybrid.build_hybrid_model`.
    """
    ansatz = ansatz.lower()
    if ansatz == "bel":
        q_params = bel_param_count(n_layers, n_qubits)
    elif ansatz == "sel":
        q_params = sel_param_count(n_layers, n_qubits)
    else:
        raise ConfigurationError(f"unknown ansatz {ansatz!r}")
    head = 0
    dim = n_features
    for width in hidden:
        head += dim * width + width
        dim = width
    input_dense = dim * n_qubits + n_qubits
    output_dense = n_qubits * n_classes + n_classes
    return head + input_dense + q_params + output_dense


def _spec_tape(n_qubits: int, n_layers: int, ansatz: str):
    """Representative tape for a hybrid spec (zero weights/inputs)."""
    x = np.zeros((1, n_qubits))
    ops = angle_embedding(x, n_qubits)
    ansatz = ansatz.lower()
    if ansatz == "bel":
        ops += basic_entangler_layers(
            np.zeros((n_layers, n_qubits)), n_qubits
        )
    elif ansatz == "sel":
        ops += strongly_entangling_layers(
            np.zeros((n_layers, n_qubits, 3)), n_qubits
        )
    else:
        raise ConfigurationError(f"unknown ansatz {ansatz!r}")
    return ops


def hybrid_flops_breakdown(
    n_features: int,
    n_qubits: int,
    n_layers: int,
    ansatz: str = "sel",
    n_classes: int = 3,
    convention: str | CountingConvention = "paper",
    input_activation: str | None = None,
    hidden: Sequence[int] = (),
) -> FlopsBreakdown:
    """Table I decomposition (Enc / CL / QL) for an HQNN spec.

    ``input_activation`` must match the builder's choice (``None`` for
    the default linear input layer, ``"relu"`` for the Table-I-calibrated
    variant); see :func:`repro.hybrid.build_hybrid_model`.  ``hidden``
    is the optional classical head in front of the input layer.
    """
    conv = get_convention(convention)
    if input_activation not in (None, "relu"):
        raise ConfigurationError(
            f"input_activation must be None or 'relu', "
            f"got {input_activation!r}"
        )
    classical = 0
    dim = n_features
    for width in hidden:
        classical += conv.dense_fwd(dim, width) + conv.dense_bwd(dim, width)
        classical += conv.relu_fwd(width) + conv.relu_bwd(width)
        dim = width
    classical += (
        conv.dense_fwd(dim, n_qubits)
        + conv.dense_bwd(dim, n_qubits)
        + conv.dense_fwd(n_qubits, n_classes)
        + conv.dense_bwd(n_qubits, n_classes)
        + conv.softmax_fwd(n_classes)
        + conv.softmax_bwd(n_classes)
    )
    if input_activation == "relu":
        classical += conv.relu_fwd(n_qubits) + conv.relu_bwd(n_qubits)
    qf = quantum_layer_flops(conv, _spec_tape(n_qubits, n_layers, ansatz), n_qubits)
    return FlopsBreakdown(
        encoding=qf.encoding_total,
        classical=int(classical),
        quantum=qf.quantum_total,
    )


def hybrid_model_flops(
    n_features: int,
    n_qubits: int,
    n_layers: int,
    ansatz: str = "sel",
    n_classes: int = 3,
    convention: str | CountingConvention = "paper",
    input_activation: str | None = None,
    hidden: Sequence[int] = (),
) -> int:
    """Per-sample forward+backward FLOPs of an HQNN spec."""
    return hybrid_flops_breakdown(
        n_features,
        n_qubits,
        n_layers,
        ansatz,
        n_classes,
        convention,
        input_activation,
        hidden,
    ).total
