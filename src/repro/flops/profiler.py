"""Model-level FLOPs profiler.

Walks a :class:`repro.nn.Sequential` model layer by layer, costing
classical layers via :mod:`repro.flops.classical` and quantum layers via
:mod:`repro.flops.quantum`, and produces:

* a per-layer table (forward / backward / parameters),
* the paper's Table I decomposition: total, encoding, classical,
  quantum-layer FLOPs.

This replaces the paper's TensorFlow-profiler-on-frozen-graph procedure.
All numbers are per data sample, forward + backward.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ProfileError
from ..hybrid.quantum_layer import QuantumLayer
from ..nn.model import Sequential
from .classical import classical_layer_flops
from .conventions import CountingConvention, get_convention
from .quantum import QuantumLayerFlops, quantum_layer_flops

__all__ = ["LayerProfile", "FlopsBreakdown", "ModelProfile", "profile_model"]


@dataclass(frozen=True)
class LayerProfile:
    """FLOPs and parameters of one layer."""

    name: str
    kind: str  # "classical" or "quantum"
    forward: int
    backward: int
    params: int

    @property
    def total(self) -> int:
        return self.forward + self.backward


@dataclass(frozen=True)
class FlopsBreakdown:
    """The paper's Table I columns (per sample, forward + backward)."""

    encoding: int
    classical: int
    quantum: int

    @property
    def total(self) -> int:
        """Table I "TF": encoding + classical + quantum."""
        return self.encoding + self.classical + self.quantum

    @property
    def encoding_plus_classical(self) -> int:
        """Table I "Enc+CL"."""
        return self.encoding + self.classical

    def as_table_row(self) -> dict[str, int]:
        """Render with the paper's column names."""
        return {
            "TF": self.total,
            "Enc+CL": self.encoding_plus_classical,
            "CL": self.classical,
            "Enc": self.encoding,
            "QL": self.quantum,
        }


@dataclass
class ModelProfile:
    """Complete cost profile of a model."""

    model_name: str
    convention: str
    layers: list[LayerProfile] = field(default_factory=list)
    breakdown: FlopsBreakdown = FlopsBreakdown(0, 0, 0)

    @property
    def total_flops(self) -> int:
        return self.breakdown.total

    @property
    def forward_flops(self) -> int:
        return int(sum(l.forward for l in self.layers))

    @property
    def backward_flops(self) -> int:
        return int(sum(l.backward for l in self.layers))

    @property
    def param_count(self) -> int:
        return int(sum(l.params for l in self.layers))

    def summary(self) -> str:
        """Human-readable per-layer table."""
        lines = [
            f"FLOPs profile of {self.model_name} "
            f"(convention: {self.convention}, per sample)",
            f"{'layer':<22}{'kind':<12}{'fwd':>10}{'bwd':>10}{'params':>8}",
            "-" * 62,
        ]
        for l in self.layers:
            lines.append(
                f"{l.name:<22}{l.kind:<12}{l.forward:>10}{l.backward:>10}"
                f"{l.params:>8}"
            )
        lines.append("-" * 62)
        row = self.breakdown.as_table_row()
        lines.append(
            f"total={row['TF']}  Enc+CL={row['Enc+CL']}  CL={row['CL']}  "
            f"Enc={row['Enc']}  QL={row['QL']}"
        )
        return "\n".join(lines)


def _infer_input_dim(model: Sequential) -> int:
    """The input feature dimension implied by the first sized layer."""
    for layer in model.layers:
        in_features = getattr(layer, "in_features", None)
        if in_features is not None:
            return int(in_features)
        n_qubits = getattr(layer, "n_qubits", None)
        if n_qubits is not None:
            return int(n_qubits)
    raise ProfileError(
        "cannot infer the input dimension: model has no Dense or quantum "
        "layer; pass input_dim explicitly"
    )


def profile_model(
    model: Sequential,
    convention: str | CountingConvention = "paper",
    input_dim: int | None = None,
) -> ModelProfile:
    """Cost every layer of ``model`` under a counting convention."""
    conv = get_convention(convention)
    if input_dim is None:
        input_dim = _infer_input_dim(model)

    profile = ModelProfile(model_name=model.name, convention=conv.name)
    encoding = classical = quantum = 0
    dim = input_dim
    for layer in model.layers:
        if isinstance(layer, QuantumLayer):
            tape = layer.representative_tape()
            qf: QuantumLayerFlops = quantum_layer_flops(
                conv, tape, layer.n_qubits
            )
            profile.layers.append(
                LayerProfile(
                    name=layer.name,
                    kind="quantum",
                    forward=qf.forward_total,
                    backward=qf.backward_total,
                    params=layer.param_count,
                )
            )
            encoding += qf.encoding_total
            quantum += qf.quantum_total
            dim = layer.n_qubits
        else:
            fwd, bwd, dim = classical_layer_flops(conv, layer, dim)
            profile.layers.append(
                LayerProfile(
                    name=layer.name,
                    kind="classical",
                    forward=fwd,
                    backward=bwd,
                    params=layer.param_count,
                )
            )
            classical += fwd + bwd
    profile.breakdown = FlopsBreakdown(
        encoding=encoding, classical=classical, quantum=quantum
    )
    return profile
