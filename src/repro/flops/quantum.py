"""FLOPs accounting for simulated quantum layers.

The tape produced by :class:`repro.hybrid.QuantumLayer` is split into its
*encoding* segment (gates whose parameters are input features — the
paper's "Enc" column in Table I) and its *ansatz* segment (trainable
gates plus entanglers — together with measurement, the paper's "QL"
column).  Costs are per data sample on a ``2**n``-amplitude statevector.

Three gradient-costing modes (chosen by the convention):

``backprop``
    TensorFlow-style differentiation through the simulation: each
    component's backward cost is ``backprop_multiplier x`` its forward
    cost.  This is how the paper's models are actually trained.
``adjoint``
    Two reverse sweeps (bra and ket) plus one generator application and
    one inner product per trainable scalar.
``parameter_shift``
    Hardware-realistic: two additional *full-circuit* executions per
    scalar parameter.  All shift-execution cost is attributed to the
    quantum layer (the shifts exist only to differentiate it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ProfileError
from ..quantum.circuit import Operation
from .conventions import CountingConvention

__all__ = [
    "operation_fwd_flops",
    "tape_fwd_flops",
    "split_tape",
    "count_tape_params",
    "QuantumLayerFlops",
    "quantum_layer_flops",
]

#: Gates applied as dense 2x2 matrices.
_DENSE_1Q = {"RX", "RY", "H", "X", "Y", "S", "T"}
#: Gates applied as diagonal matrices.
_DIAGONAL_1Q = {"RZ", "PhaseShift", "Z"}
#: Controlled rotations: a 2x2 applied to the control=1 half-space.
_CONTROLLED_1Q = {"CRX", "CRY", "CRZ"}


def operation_fwd_flops(
    conv: CountingConvention, op: Operation, n_qubits: int
) -> int:
    """Forward cost of one gate: matrix construction + state update."""
    name = op.name
    if name in _DENSE_1Q:
        build = conv.gate_build_single if op.is_parametrized else 0
        return build + conv.single_qubit_gate(n_qubits)
    if name in _DIAGONAL_1Q:
        build = conv.gate_build_single if op.is_parametrized else 0
        return build + conv.diagonal_gate(n_qubits)
    if name == "Rot":
        return conv.gate_build_rot + conv.single_qubit_gate(n_qubits)
    if name in _CONTROLLED_1Q:
        return conv.gate_build_single + conv.single_qubit_gate(n_qubits) // 2
    if name == "CNOT":
        return conv.cnot(n_qubits)
    if name == "CZ":
        return conv.cz(n_qubits)
    if name == "SWAP":
        return 3 * conv.cnot(n_qubits)
    raise ProfileError(f"no FLOPs rule for gate {name!r}")


def tape_fwd_flops(
    conv: CountingConvention, ops: Sequence[Operation], n_qubits: int
) -> int:
    """Forward cost of a whole tape."""
    return int(sum(operation_fwd_flops(conv, op, n_qubits) for op in ops))


def split_tape(
    ops: Sequence[Operation],
) -> tuple[list[Operation], list[Operation]]:
    """Split a tape into (encoding ops, ansatz ops).

    An operation belongs to the encoding segment iff any of its parameters
    is an ``input`` reference.
    """
    encoding: list[Operation] = []
    ansatz: list[Operation] = []
    for op in ops:
        refs = [r for r in op.refs if r is not None]
        if refs and all(r.kind == "input" for r in refs):
            encoding.append(op)
        elif any(r.kind == "input" for r in refs):
            raise ProfileError(
                f"{op.name} mixes input and weight parameters; the "
                "encoding/ansatz split is undefined"
            )
        else:
            ansatz.append(op)
    return encoding, ansatz


def count_tape_params(ops: Sequence[Operation]) -> tuple[int, int]:
    """Count referenced (input, weight) scalar parameters of a tape."""
    n_in = sum(
        1 for op in ops for r in op.refs if r is not None and r.kind == "input"
    )
    n_w = sum(
        1 for op in ops for r in op.refs if r is not None and r.kind == "weight"
    )
    return n_in, n_w


@dataclass(frozen=True)
class QuantumLayerFlops:
    """Per-sample FLOPs of one quantum layer, split like the paper's
    Table I."""

    encoding_fwd: int
    encoding_bwd: int
    ansatz_fwd: int
    ansatz_bwd: int
    measurement_fwd: int
    measurement_bwd: int

    @property
    def encoding_total(self) -> int:
        """The paper's "Enc" column."""
        return self.encoding_fwd + self.encoding_bwd

    @property
    def quantum_total(self) -> int:
        """The paper's "QL" column (ansatz + measurement)."""
        return (
            self.ansatz_fwd
            + self.ansatz_bwd
            + self.measurement_fwd
            + self.measurement_bwd
        )

    @property
    def forward_total(self) -> int:
        return self.encoding_fwd + self.ansatz_fwd + self.measurement_fwd

    @property
    def backward_total(self) -> int:
        return self.encoding_bwd + self.ansatz_bwd + self.measurement_bwd

    @property
    def total(self) -> int:
        return self.forward_total + self.backward_total


def quantum_layer_flops(
    conv: CountingConvention,
    ops: Sequence[Operation],
    n_qubits: int,
    n_measured_wires: int | None = None,
) -> QuantumLayerFlops:
    """Cost a quantum layer's tape under a convention."""
    if n_measured_wires is None:
        n_measured_wires = n_qubits
    encoding_ops, ansatz_ops = split_tape(ops)
    enc_fwd = tape_fwd_flops(conv, encoding_ops, n_qubits)
    ans_fwd = tape_fwd_flops(conv, ansatz_ops, n_qubits)
    meas_fwd = conv.expval_z(n_qubits, n_measured_wires)

    mode = conv.quantum_gradient_mode
    if mode == "backprop":
        mult = conv.backprop_multiplier
        enc_bwd = int(round(mult * enc_fwd))
        ans_bwd = int(round(mult * ans_fwd))
        meas_bwd = int(round(mult * meas_fwd))
    elif mode == "adjoint":
        # Two reverse sweeps (bra and ket) re-apply every gate inverse,
        # plus one generator application and one inner product per scalar.
        n_in, n_w = count_tape_params(ops)
        dim = 2**n_qubits
        inner_product = dim * (conv.complex_mul + conv.complex_add)
        per_param = conv.single_qubit_gate(n_qubits) + inner_product
        enc_bwd = 2 * enc_fwd + n_in * per_param
        ans_bwd = 2 * ans_fwd + n_w * per_param
        # Seeding the bra applies the Z linear combination once.
        meas_bwd = conv.expval_z(n_qubits, n_measured_wires)
    else:  # parameter_shift
        n_in, n_w = count_tape_params(ops)
        circuit_fwd = enc_fwd + ans_fwd + meas_fwd
        enc_bwd = 0
        ans_bwd = 2 * (n_in + n_w) * circuit_fwd
        meas_bwd = 0
    return QuantumLayerFlops(
        encoding_fwd=enc_fwd,
        encoding_bwd=enc_bwd,
        ansatz_fwd=ans_fwd,
        ansatz_bwd=ans_bwd,
        measurement_fwd=meas_fwd,
        measurement_bwd=meas_bwd,
    )
