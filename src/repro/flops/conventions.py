"""FLOPs-counting conventions.

There is no single agreed definition of "one FLOP" for a neural network,
and the paper's absolute numbers are whatever TensorFlow's profiler counts
on the frozen graph of a Keras/PennyLane model.  We therefore make the
counting rules *explicit data*: a :class:`CountingConvention` holds every
constant used to cost classical layers, statevector simulation and
gradient computation.  Three conventions ship with the library:

``PAPER``
    Classical-layer costs calibrated against the paper's Table I, which
    pins the classical component of the hybrid networks to
    ``6*q*F + 26*q + 25`` FLOPs for an ``F -> q -> 3`` hybrid head
    (Dense forward ``2*i*o + o``, backward ``4*i*o + 2*o``; ReLU forward
    ``n``, backward ``4n``; Softmax ``3n - 1`` each way).  Quantum costs
    use textbook statevector arithmetic with a backprop-through-simulation
    backward (multiplier 2), matching how the paper trains (TensorFlow
    differentiates the simulation).
``FIRST_PRINCIPLES``
    Textbook costs everywhere (ReLU backward ``n``, Softmax ``4n``, CNOT
    free because it is an index permutation).
``PARAMETER_SHIFT``
    Same forward costs as ``PAPER`` but quantum gradients are costed as
    they would be obtained on hardware: two extra full-circuit executions
    per scalar circuit parameter.

Every experiment in :mod:`repro.experiments` accepts a convention; the
paper's qualitative conclusions are convention-independent (exercised by
``benchmarks/test_ablation_conventions.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..exceptions import ConfigurationError

__all__ = [
    "CountingConvention",
    "PAPER",
    "FIRST_PRINCIPLES",
    "PARAMETER_SHIFT",
    "get_convention",
    "CONVENTIONS",
]

_QUANTUM_GRADIENT_MODES = ("backprop", "adjoint", "parameter_shift")


@dataclass(frozen=True)
class CountingConvention:
    """All constants of one FLOPs-accounting scheme.

    Classical constants are FLOPs per scalar unless stated otherwise;
    quantum constants cost operations on a ``2**n``-amplitude state.
    """

    name: str

    # -- classical layers ---------------------------------------------------
    #: FLOPs per multiply-accumulate in a matmul forward pass.
    dense_fwd_per_mac: int = 2
    #: FLOPs per output unit for the bias addition.
    dense_fwd_bias: int = 1
    #: Backward matmul cost as a multiple of the forward matmul cost
    #: (2 covers dL/dW and dL/dx, each the same size as the forward).
    dense_bwd_matmul_factor: int = 2
    #: FLOPs per output unit for the bias gradient.
    dense_bwd_bias: int = 2
    relu_fwd_per_unit: int = 1
    relu_bwd_per_unit: int = 4
    softmax_fwd_per_unit: int = 3
    softmax_fwd_const: int = -1
    softmax_bwd_per_unit: int = 3
    softmax_bwd_const: int = -1
    #: Extension layers (not used by the paper's architectures).
    tanh_fwd_per_unit: int = 5
    tanh_bwd_per_unit: int = 3
    sigmoid_fwd_per_unit: int = 4
    sigmoid_bwd_per_unit: int = 3
    dropout_fwd_per_unit: int = 2
    dropout_bwd_per_unit: int = 1

    # -- complex arithmetic ---------------------------------------------------
    complex_mul: int = 6
    complex_add: int = 2

    # -- statevector simulation ----------------------------------------------
    #: FLOPs to build a rotation matrix from one angle (trig + assembly).
    gate_build_single: int = 8
    #: FLOPs to build a ``Rot(phi, theta, omega)`` matrix.
    gate_build_rot: int = 24
    #: Extra FLOPs per amplitude for a CNOT (an index permutation; the
    #: paper's TF graph realizes it with arithmetic, so PAPER counts 1).
    cnot_per_amplitude: int = 1
    #: Same for CZ (a sign flip on a quarter of the amplitudes).
    cz_per_amplitude: int = 1

    # -- measurement -----------------------------------------------------------
    #: FLOPs per amplitude to square amplitudes into probabilities
    #: (re^2 + im^2: 2 muls + 1 add).
    amp_square_per_amplitude: int = 3
    #: FLOPs per amplitude per measured wire for the signed reduction.
    expval_reduce_per_amplitude: int = 1

    # -- quantum gradients -------------------------------------------------------
    #: One of "backprop", "adjoint", "parameter_shift".
    quantum_gradient_mode: str = "backprop"
    #: Backward cost as a multiple of forward cost (backprop mode).
    backprop_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.quantum_gradient_mode not in _QUANTUM_GRADIENT_MODES:
            raise ConfigurationError(
                f"quantum_gradient_mode must be one of "
                f"{_QUANTUM_GRADIENT_MODES}, got {self.quantum_gradient_mode!r}"
            )
        if self.dense_fwd_per_mac < 1:
            raise ConfigurationError("dense_fwd_per_mac must be >= 1")
        if self.backprop_multiplier < 0:
            raise ConfigurationError("backprop_multiplier must be >= 0")

    # -- classical cost helpers ---------------------------------------------

    def dense_fwd(self, n_in: int, n_out: int) -> int:
        """Forward FLOPs of a Dense layer (matmul + bias), one sample."""
        return self.dense_fwd_per_mac * n_in * n_out + self.dense_fwd_bias * n_out

    def dense_bwd(self, n_in: int, n_out: int) -> int:
        """Backward FLOPs of a Dense layer, one sample."""
        matmul = self.dense_fwd_per_mac * n_in * n_out
        return self.dense_bwd_matmul_factor * matmul + self.dense_bwd_bias * n_out

    def relu_fwd(self, n: int) -> int:
        return self.relu_fwd_per_unit * n

    def relu_bwd(self, n: int) -> int:
        return self.relu_bwd_per_unit * n

    def softmax_fwd(self, n: int) -> int:
        return self.softmax_fwd_per_unit * n + self.softmax_fwd_const

    def softmax_bwd(self, n: int) -> int:
        return self.softmax_bwd_per_unit * n + self.softmax_bwd_const

    # -- quantum cost helpers -----------------------------------------------

    def single_qubit_gate(self, n_qubits: int) -> int:
        """Apply a dense 2x2 gate to a ``2**n`` state: ``2**(n-1)`` little
        matvecs of 4 complex muls + 2 complex adds each."""
        pairs = 2 ** (n_qubits - 1)
        return pairs * (4 * self.complex_mul + 2 * self.complex_add)

    def diagonal_gate(self, n_qubits: int) -> int:
        """Apply a diagonal 2x2 gate (RZ/PhaseShift): one complex mul per
        amplitude."""
        return (2**n_qubits) * self.complex_mul

    def cnot(self, n_qubits: int) -> int:
        return self.cnot_per_amplitude * 2 ** (n_qubits - 1)

    def cz(self, n_qubits: int) -> int:
        return self.cz_per_amplitude * 2 ** (n_qubits - 2) if n_qubits >= 2 else 0

    def expval_z(self, n_qubits: int, n_wires: int) -> int:
        """Per-wire Z expectations with a shared ``|amp|^2`` pass."""
        dim = 2**n_qubits
        return self.amp_square_per_amplitude * dim + (
            self.expval_reduce_per_amplitude * dim * n_wires
        )

    # -- derivation ----------------------------------------------------------

    def with_(self, **overrides) -> "CountingConvention":
        """Return a copy with some constants replaced (ablation helper)."""
        return replace(self, **overrides)


#: Convention calibrated to the paper's Table I classical decomposition.
PAPER = CountingConvention(name="paper")

#: Textbook statevector/NN costs.
FIRST_PRINCIPLES = CountingConvention(
    name="first_principles",
    relu_bwd_per_unit=1,
    softmax_fwd_per_unit=4,
    softmax_fwd_const=0,
    softmax_bwd_per_unit=4,
    softmax_bwd_const=0,
    cnot_per_amplitude=0,
    cz_per_amplitude=0,
)

#: Hardware-realistic gradient costing (two circuit runs per parameter).
PARAMETER_SHIFT = CountingConvention(
    name="parameter_shift",
    quantum_gradient_mode="parameter_shift",
)

CONVENTIONS: dict[str, CountingConvention] = {
    c.name: c for c in (PAPER, FIRST_PRINCIPLES, PARAMETER_SHIFT)
}


def get_convention(name: str | CountingConvention) -> CountingConvention:
    """Look a convention up by name (pass-through for instances)."""
    if isinstance(name, CountingConvention):
        return name
    try:
        return CONVENTIONS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown convention {name!r}; options: {sorted(CONVENTIONS)}"
        ) from None
