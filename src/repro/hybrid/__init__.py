"""Hybrid quantum-classical models (classical layers + quantum layer)."""

from .builders import build_classical_model, build_hybrid_model
from .quantum_layer import (
    ANSATZE,
    GRADIENT_METHODS,
    QuantumLayer,
    StackedQuantumLayer,
)

__all__ = [
    "QuantumLayer",
    "StackedQuantumLayer",
    "ANSATZE",
    "GRADIENT_METHODS",
    "build_classical_model",
    "build_hybrid_model",
]
