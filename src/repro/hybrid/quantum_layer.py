"""The quantum layer: a Keras-style layer backed by the statevector
simulator.

This is our replacement for PennyLane's ``qml.qnn.KerasLayer`` (which the
paper uses to embed QNodes into TensorFlow models).  The layer maps a
``(B, n_qubits)`` activation to ``(B, n_qubits)`` Pauli-Z expectation
values:

    angle embedding (RY per qubit) -> BEL or SEL ansatz -> per-wire <Z>.

Backward uses adjoint differentiation by default (exact, cheap); the
parameter-shift rule is available as an alternative backend and as a
hardware-realistic cost model for :mod:`repro.flops`.

Execution is routed through the compiled engine
(:class:`repro.quantum.engine.CompiledTape`): the circuit structure from
``build_tape`` is compiled once on the first forward pass, and every
subsequent call only rebinds the per-batch encoding angles and the
current trainable weights into the compiled parameter slots.  Subclasses
that override ``build_tape`` get compiled automatically; tapes the engine
cannot rebind (per-sample parameters without ``input`` refs) silently
fall back to the reference executor, which stays the semantics oracle.
"""

from __future__ import annotations

import numpy as np

from ..backends import active_backend
from ..exceptions import ConfigurationError, ShapeError
from ..nn.layers import Layer
from ..nn.stacked import StackedLayer, register_group_pivot, register_stacker
from ..quantum.adjoint import adjoint_gradients
from ..quantum.circuit import Operation, run
from ..quantum.engine import CompiledTape, compiled_tape
from ..quantum.measurements import expval_z
from ..quantum.parameter_shift import (
    compiled_parameter_shift_gradients,
    parameter_shift_gradients,
)
from ..quantum.templates import (
    angle_embedding,
    basic_entangler_layers,
    bel_param_count,
    random_bel_weights,
    random_sel_weights,
    sel_param_count,
    strongly_entangling_layers,
)

__all__ = [
    "QuantumLayer",
    "StackedQuantumLayer",
    "ANSATZE",
    "GRADIENT_METHODS",
]

ANSATZE = ("bel", "sel")
GRADIENT_METHODS = ("adjoint", "parameter_shift")


class QuantumLayer(Layer):
    """Angle-encoded variational quantum circuit as a neural layer.

    Parameters
    ----------
    n_qubits:
        Width of the register; also the layer's input and output
        dimension (one encoded feature and one measured wire per qubit).
    n_layers:
        Ansatz depth (repetitions of the entangling block).
    ansatz:
        ``"bel"`` (Basic Entangling Layer, one RY per qubit + CNOT ring)
        or ``"sel"`` (Strongly Entangling Layer, full ``Rot`` per qubit +
        cycling-range CNOT ring), per the paper's Fig. 5.
    rotation:
        Axis for the encoding rotations and BEL rotations (paper: Y).
    gradient_method:
        ``"adjoint"`` (default) or ``"parameter_shift"``.
    """

    def __init__(
        self,
        n_qubits: int,
        n_layers: int,
        ansatz: str = "sel",
        rotation: str = "Y",
        gradient_method: str = "adjoint",
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name=name or f"quantum_{ansatz}")
        if n_qubits < 1:
            raise ConfigurationError(f"n_qubits must be >= 1, got {n_qubits}")
        if n_layers < 1:
            raise ConfigurationError(f"n_layers must be >= 1, got {n_layers}")
        ansatz = ansatz.lower()
        if ansatz not in ANSATZE:
            raise ConfigurationError(
                f"ansatz must be one of {ANSATZE}, got {ansatz!r}"
            )
        if gradient_method not in GRADIENT_METHODS:
            raise ConfigurationError(
                f"gradient_method must be one of {GRADIENT_METHODS}, "
                f"got {gradient_method!r}"
            )
        self.n_qubits = n_qubits
        self.n_layers = n_layers
        self.ansatz = ansatz
        self.rotation = rotation
        self.gradient_method = gradient_method

        rng = rng or np.random.default_rng()
        if ansatz == "bel":
            self.weights = random_bel_weights(n_layers, n_qubits, rng)
        else:
            self.weights = random_sel_weights(n_layers, n_qubits, rng)
        self.params = [self.weights]
        self.grads = [np.zeros_like(self.weights)]

        self._cache_ops: list[Operation] | None = None
        self._cache_state: np.ndarray | None = None
        self._cache_batch: int = 0
        self._cache_x: np.ndarray | None = None
        self._engine: CompiledTape | None = None
        self._engine_disabled = False

    # -- tape construction -----------------------------------------------

    @property
    def n_weights(self) -> int:
        """Number of trainable circuit parameters."""
        if self.ansatz == "bel":
            return bel_param_count(self.n_layers, self.n_qubits)
        return sel_param_count(self.n_layers, self.n_qubits)

    def build_tape(self, x: np.ndarray) -> list[Operation]:
        """Encoding + ansatz tape for a batch of inputs ``(B, n_qubits)``."""
        ops = angle_embedding(x, self.n_qubits, rotation=self.rotation)
        if self.ansatz == "bel":
            ops += basic_entangler_layers(
                self.weights, self.n_qubits, rotation=self.rotation
            )
        else:
            ops += strongly_entangling_layers(self.weights, self.n_qubits)
        return ops

    def representative_tape(self) -> list[Operation]:
        """A batch-1, all-zero-input tape (for structural FLOPs analysis)."""
        return self.build_tape(np.zeros((1, self.n_qubits)))

    # -- layer interface ---------------------------------------------------

    def _compile_engine(self, x: np.ndarray) -> CompiledTape | None:
        """Compile ``build_tape`` once, if the engine can rebind it.

        Per-sample (1-D) parameters are only rebindable through ``input``
        refs; a tape carrying any other per-sample value — including a
        batch-1 ``(1,)`` array — would go stale between batches, so such
        layers permanently use the reference executor instead.  (A
        data-dependent *scalar* parameter without a ref is
        indistinguishable from a genuine constant and cannot be detected:
        custom ``build_tape`` implementations must attach refs to, or
        keep 1-D, anything derived from ``x``.)
        """
        tape = self.build_tape(x)
        for op in tape:
            for ref, param in zip(op.refs, op.params):
                rebindable = ref is not None and ref.kind == "input"
                if param.ndim == 1 and not rebindable:
                    self._engine_disabled = True
                    return None
        # compiled_tape consults the process-wide compile cache when the
        # runtime enabled it (grid-search workers retrain the same circuit
        # structures for every job); every referenced parameter is rebound
        # on each forward, which is exactly the cache's sharing contract.
        return compiled_tape(tape, self.n_qubits)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.n_qubits:
            raise ShapeError(
                f"{self.name} expected (batch, {self.n_qubits}), "
                f"got {x.shape}"
            )
        if self._engine is None and not self._engine_disabled:
            self._engine = self._compile_engine(x)
        if self._engine is None:
            return self._forward_reference(x, training)
        record = training and self.gradient_method == "adjoint"
        state = self._engine.execute(
            inputs=x, weights=self.weights.reshape(-1), record=record
        )
        if training and self.gradient_method == "parameter_shift":
            self._cache_x = x
        return self._engine.expvals(state)

    def _forward_reference(self, x: np.ndarray, training: bool) -> np.ndarray:
        ops = self.build_tape(x)
        state = run(ops, self.n_qubits, batch=x.shape[0])
        if training:
            self._cache_ops = ops
            self._cache_state = state
            self._cache_batch = x.shape[0]
        return expval_z(state)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._engine is not None:
            input_grads, weight_grads = self._backward_compiled(grad)
        else:
            input_grads, weight_grads = self._backward_reference(grad)
        self.grads[0] += weight_grads.reshape(self.weights.shape)
        return input_grads

    def _backward_compiled(
        self, grad: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.gradient_method == "adjoint":
            if not self._engine.has_record:
                raise ShapeError(
                    f"{self.name}.backward called without a training forward"
                )
            # adjoint_gradients consumes (and releases) the recorded
            # forward, so nothing pins the batch statevectors afterwards.
            return self._engine.adjoint_gradients(
                grad, n_inputs=self.n_qubits, n_weights=self.n_weights
            )
        if self._cache_x is None:
            raise ShapeError(
                f"{self.name}.backward called without a training forward"
            )
        x = self._cache_x
        self._cache_x = None
        return compiled_parameter_shift_gradients(
            self._engine,
            grad,
            n_inputs=self.n_qubits,
            n_weights=self.n_weights,
            inputs=x,
            weights=self.weights.reshape(-1),
        )

    def _backward_reference(
        self, grad: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._cache_ops is None or self._cache_state is None:
            raise ShapeError(
                f"{self.name}.backward called without a training forward"
            )
        try:
            if self.gradient_method == "adjoint":
                return adjoint_gradients(
                    self._cache_ops,
                    self._cache_state,
                    grad,
                    n_inputs=self.n_qubits,
                    n_weights=self.n_weights,
                )
            return parameter_shift_gradients(
                self._cache_ops,
                self.n_qubits,
                self._cache_batch,
                grad,
                n_inputs=self.n_qubits,
                n_weights=self.n_weights,
            )
        finally:
            # Release the forward cache so long grid-search runs do not
            # pin the largest batch statevector between steps.
            self._cache_ops = None
            self._cache_state = None

    def output_dim(self, input_dim: int) -> int:
        if input_dim != self.n_qubits:
            raise ShapeError(
                f"{self.name} expects {self.n_qubits} inputs, got {input_dim}"
            )
        return self.n_qubits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumLayer(qubits={self.n_qubits}, layers={self.n_layers}, "
            f"ansatz={self.ansatz!r}, params={self.param_count})"
        )


class StackedQuantumLayer(StackedLayer):
    """R same-structure :class:`QuantumLayer` instances as one stack.

    Drives the engine's run-stacked path: one compiled tape executes all
    R runs' forward (and adjoint backward) passes over a fused run-major
    ``(R * B, n_qubits)`` batch, with per-run ``(R, n_weights)`` weight
    bindings and per-run weight gradients.  The engine kernels are
    bit-identical to R independent executions
    (``tests/quantum/test_engine_stacked.py``), which is what lets
    ``vectorized_runs`` searches reproduce per-run results exactly.

    Built by :func:`repro.nn.stacked.stack_models` via the registered
    stacker; only adjoint-differentiated layers with engine-compilable
    tapes stack (anything else falls back to scalar training).
    """

    def __init__(self, runs: int, layers: "list[QuantumLayer]") -> None:
        first = layers[0]
        super().__init__(runs, name=f"stacked_{first.name}")
        # The stacked path is the explicit opt-in point for device
        # execution: the engine compiles against whatever backend is
        # active when the stack is built (scalar QuantumLayer always
        # stays on the bit-exact NumPy path).
        self._xp = active_backend()
        self.n_qubits = first.n_qubits
        self.n_weights = first.n_weights
        self.weights = self._xp.asarray(
            np.stack([lay.weights for lay in layers])
        )
        self.params = [self.weights]
        self.grads = [self._xp.zeros_like(self.weights)]
        self._engine: CompiledTape = compiled_tape(
            first.representative_tape(), first.n_qubits, backend=self._xp
        )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not self._xp.is_numpy:
            x = self._xp.to_numpy(x)
        x = np.asarray(x, dtype=np.float64)
        if (
            x.ndim != 2
            or x.shape[1] != self.n_qubits
            or x.shape[0] % self.runs
        ):
            raise ShapeError(
                f"{self.name} expected (runs*batch, {self.n_qubits}), "
                f"got {x.shape} for runs={self.runs}"
            )
        state = self._engine.execute(
            inputs=x,
            weights=self.weights.reshape(self.runs, -1),
            runs=self.runs,
            record=training,
        )
        return self._engine.expvals(state, runs=self.runs)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if not self._engine.has_record:
            raise ShapeError(
                f"{self.name}.backward called without a training forward"
            )
        input_grads, weight_grads = self._engine.adjoint_gradients(
            grad, n_inputs=self.n_qubits, n_weights=self.n_weights
        )
        self.grads[0] += weight_grads.reshape(self.weights.shape)
        return input_grads

    def peak_bytes(self, rows: int) -> int:
        # The compiled engine's recorded-adjoint sweep dominates this
        # layer's working set; the weight stacks are counted by the
        # owning StackedSequential/GroupedStack.
        return self._engine.peak_bytes(rows, runs=self.runs, mode="adjoint")

    def sync_to_layers(self, layers) -> None:
        for r, lay in enumerate(layers):
            lay.weights[...] = self._xp.to_numpy(self.weights[r])

    def compact(self, keep) -> None:
        """Drop frozen runs' weight rows; the compiled engine adapts to
        the smaller run-major batch on the next execute (its per-run
        kernels are bit-identical for any slice count)."""
        super().compact(keep)
        self.weights = self.weights[keep]
        self.params = [self.weights]
        self.grads = [g[keep] for g in self.grads]


def _stack_quantum_layers(runs, layers):
    """Stacker for exact :class:`QuantumLayer` instances (see
    :func:`repro.nn.stacked.register_stacker`).

    Returns ``None`` — scalar fallback — for parameter-shift layers, for
    mismatched structures, and for tapes the engine cannot rebind (the
    same per-sample-parameter check :meth:`QuantumLayer._compile_engine`
    applies).
    """
    first = layers[0]
    for lay in layers:
        if (
            lay.gradient_method != "adjoint"
            or lay.n_qubits != first.n_qubits
            or lay.n_layers != first.n_layers
            or lay.ansatz != first.ansatz
            or lay.rotation != first.rotation
            or lay.weights.shape != first.weights.shape
        ):
            return None
    tape = first.build_tape(np.zeros((1, first.n_qubits)))
    for op in tape:
        for ref, param in zip(op.refs, op.params):
            rebindable = ref is not None and ref.kind == "input"
            if param.ndim == 1 and not rebindable:
                return None
    return StackedQuantumLayer(runs, layers)


register_stacker(QuantumLayer, _stack_quantum_layers)

# The quantum layer is the split point for cross-candidate stacks:
# candidates whose tapes are structurally identical fuse their quantum
# sweep (and the fixed classical tail) across every run of every
# candidate, while heterogeneous classical heads stay per candidate.
register_group_pivot(QuantumLayer)
