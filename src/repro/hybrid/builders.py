"""Model builders matching the paper's architectures (Fig. 3).

Classical models:

    Input(features) -> [Dense(h_i) + ReLU]* -> Dense(classes) + Softmax

with hidden widths drawn from {2, 4, 6, 8, 10} and at most three hidden
layers.

Hybrid models:

    Input(features) -> Dense(n_qubits)              (input layer, paper:
                                                    "neurons = # of qubits")
                    -> angle embedding -> BEL/SEL ansatz -> per-wire <Z>
                    -> Dense(classes) + Softmax     (output layer)

Only the quantum block (qubits, depth, ansatz) is varied during the hybrid
model search; the two classical layers are fixed by the feature count and
the number of classes.

The paper's Fig. 3 is ambiguous about whether the hybrid input layer has
a ReLU.  We default to a *linear* input layer: a ReLU in front of the
angle encoding zeroes half of each projected coordinate, which through a
``n_qubits``-wide bottleneck discards the sign information the spiral
task needs (empirically it costs several accuracy points at high feature
counts).  Pass ``input_activation="relu"`` for the ReLU variant — the
FLOPs conventions were calibrated against Table I using that variant, and
``repro.flops.formulas`` accepts the same switch.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..nn.layers import Dense, ReLU, Softmax
from ..nn.model import Sequential
from .quantum_layer import QuantumLayer

__all__ = ["build_classical_model", "build_hybrid_model"]


def build_classical_model(
    n_features: int,
    hidden: Sequence[int],
    n_classes: int = 3,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """Build a classical MLP for one grid-search combination.

    ``hidden`` is the tuple of hidden-layer widths, e.g. ``(4, 10)``.
    """
    if n_features < 1:
        raise ConfigurationError(f"n_features must be >= 1, got {n_features}")
    if n_classes < 2:
        raise ConfigurationError(f"n_classes must be >= 2, got {n_classes}")
    if not hidden:
        raise ConfigurationError("classical models need >= 1 hidden layer")
    if any(h < 1 for h in hidden):
        raise ConfigurationError(f"hidden widths must be >= 1, got {hidden}")
    rng = rng or np.random.default_rng()
    layers = []
    in_dim = n_features
    for i, width in enumerate(hidden):
        layers.append(Dense(in_dim, width, rng=rng, name=f"dense_{i}"))
        layers.append(ReLU(name=f"relu_{i}"))
        in_dim = width
    layers.append(Dense(in_dim, n_classes, rng=rng, name="dense_out"))
    layers.append(Softmax(name="softmax"))
    name = "classical_" + "x".join(str(h) for h in hidden)
    return Sequential(layers, name=name)


def build_hybrid_model(
    n_features: int,
    n_qubits: int,
    n_layers: int,
    ansatz: str = "sel",
    n_classes: int = 3,
    rotation: str = "Y",
    gradient_method: str = "adjoint",
    input_activation: str | None = None,
    hidden: Sequence[int] = (),
    rng: np.random.Generator | None = None,
) -> Sequential:
    """Build an HQNN for one grid-search combination (Fig. 3, right).

    ``input_activation`` is ``None`` (linear input layer, default) or
    ``"relu"`` — see the module docstring for the trade-off.

    ``hidden`` prepends an optional classical head — ``Dense(h) + ReLU``
    per width, mirroring the classical builder — in front of the input
    layer.  The paper's search spaces keep it empty; head-varying
    spaces produce many candidates sharing one quantum structure, which
    the cross-candidate stacked runtime trains as a single fused sweep.
    """
    if n_features < 1:
        raise ConfigurationError(f"n_features must be >= 1, got {n_features}")
    if n_classes < 2:
        raise ConfigurationError(f"n_classes must be >= 2, got {n_classes}")
    if input_activation not in (None, "relu"):
        raise ConfigurationError(
            f"input_activation must be None or 'relu', "
            f"got {input_activation!r}"
        )
    if any(h < 1 for h in hidden):
        raise ConfigurationError(f"hidden widths must be >= 1, got {hidden}")
    rng = rng or np.random.default_rng()
    layers: list = []
    in_dim = n_features
    for i, width in enumerate(hidden):
        layers.append(Dense(in_dim, width, rng=rng, name=f"dense_head_{i}"))
        layers.append(ReLU(name=f"relu_head_{i}"))
        in_dim = width
    layers.append(Dense(in_dim, n_qubits, rng=rng, name="dense_in"))
    if input_activation == "relu":
        layers.append(ReLU(name="relu_in"))
    layers += [
        QuantumLayer(
            n_qubits,
            n_layers,
            ansatz=ansatz,
            rotation=rotation,
            gradient_method=gradient_method,
            rng=rng,
        ),
        Dense(n_qubits, n_classes, rng=rng, name="dense_out"),
        Softmax(name="softmax"),
    ]
    name = f"hybrid_{ansatz}_q{n_qubits}_l{n_layers}"
    if hidden:
        name += "_h" + "x".join(str(h) for h in hidden)
    return Sequential(layers, name=name)
