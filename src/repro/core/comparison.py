"""Comparative analysis (paper section IV-E, Fig. 10).

The paper's headline metric is the *rate of increase* of a quantity as
the problem scales from its lowest to its highest complexity level.
Back-deriving from the published numbers (e.g. SEL FLOPs: absolute
increase 1800 on a 110-feature total of 3389 -> "53.1 %") shows the rate
is normalized by the **high**-complexity value:

    ``rate = (v_high - v_low) / v_high``.

For the comparison the paper selects *the smallest of the five winning
configurations* per level (section IV-E), which is what
:func:`comparative_analysis` uses by default; pass ``use="mean"`` for the
five-winner average instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ExperimentError
from .experiment import ProtocolResult

__all__ = [
    "rate_of_increase",
    "absolute_increase",
    "SeriesSummary",
    "ComparativeAnalysis",
    "comparative_analysis",
]


def rate_of_increase(v_low: float, v_high: float) -> float:
    """The paper's rate metric: ``(v_high - v_low) / v_high``."""
    if v_high <= 0:
        raise ExperimentError(
            f"rate of increase needs a positive high value, got {v_high}"
        )
    return (v_high - v_low) / v_high


def absolute_increase(v_low: float, v_high: float) -> float:
    """Plain difference, as reported alongside the rates."""
    return v_high - v_low


@dataclass(frozen=True)
class SeriesSummary:
    """One quantity (FLOPs or params) across complexity levels."""

    feature_sizes: tuple[int, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.feature_sizes) != len(self.values):
            raise ExperimentError("feature_sizes and values length mismatch")
        if len(self.values) < 2:
            raise ExperimentError("a series needs at least two levels")

    @property
    def low(self) -> float:
        return self.values[0]

    @property
    def high(self) -> float:
        return self.values[-1]

    @property
    def absolute_increase(self) -> float:
        return absolute_increase(self.low, self.high)

    @property
    def rate(self) -> float:
        return rate_of_increase(self.low, self.high)

    @property
    def rate_percent(self) -> float:
        return 100.0 * self.rate

    def pairwise_rates(self) -> list[float]:
        """Rates from the first level to each later level (Fig. 10's
        x-axis: 10-20, 10-30, ..., 10-110)."""
        return [
            rate_of_increase(self.low, v) if v > 0 else float("nan")
            for v in self.values[1:]
        ]


@dataclass
class ComparativeAnalysis:
    """Fig. 10: rate-of-increase comparison across model families."""

    feature_sizes: tuple[int, ...]
    flops: dict[str, SeriesSummary]
    params: dict[str, SeriesSummary]

    def summary_table(self) -> str:
        """Text rendering of the paper's headline comparison."""
        lines = [
            "Rate of increase, complexity "
            f"{self.feature_sizes[0]} -> {self.feature_sizes[-1]} features "
            "(rate = (high - low) / high)",
            f"{'family':<12}{'FLOPs lo':>10}{'FLOPs hi':>10}"
            f"{'dFLOPs':>10}{'rate%':>8}   "
            f"{'par lo':>8}{'par hi':>8}{'dpar':>8}{'rate%':>8}",
            "-" * 92,
        ]
        for family in self.flops:
            f = self.flops[family]
            p = self.params[family]
            lines.append(
                f"{family:<12}{f.low:>10.1f}{f.high:>10.1f}"
                f"{f.absolute_increase:>10.1f}{f.rate_percent:>8.1f}   "
                f"{p.low:>8.1f}{p.high:>8.1f}"
                f"{p.absolute_increase:>8.1f}{p.rate_percent:>8.1f}"
            )
        return "\n".join(lines)


def _series(
    result: ProtocolResult, quantity: str, use: str
) -> SeriesSummary:
    if use == "smallest":
        values = (
            result.smallest_flops_series()
            if quantity == "flops"
            else result.smallest_params_series()
        )
    elif use == "mean":
        values = (
            result.mean_flops_series()
            if quantity == "flops"
            else result.mean_params_series()
        )
    else:
        raise ExperimentError(f"use must be 'smallest' or 'mean', got {use!r}")
    if any(np.isnan(v) for v in values):
        raise ExperimentError(
            f"{result.family}: some levels have no winner; cannot compare"
        )
    return SeriesSummary(
        feature_sizes=tuple(result.feature_sizes), values=tuple(values)
    )


def comparative_analysis(
    results: Sequence[ProtocolResult], use: str = "smallest"
) -> ComparativeAnalysis:
    """Build the Fig. 10 comparison from per-family protocol results."""
    if not results:
        raise ExperimentError("need at least one protocol result")
    sizes = tuple(results[0].feature_sizes)
    for r in results[1:]:
        if tuple(r.feature_sizes) != sizes:
            raise ExperimentError(
                "protocol results cover different feature sizes"
            )
    return ComparativeAnalysis(
        feature_sizes=sizes,
        flops={r.family: _series(r, "flops", use) for r in results},
        params={r.family: _series(r, "params", use) for r in results},
    )
