"""The paper's full experimental protocol (Fig. 3).

For every complexity level (feature size):

1. generate the spiral dataset at that level;
2. run the FLOPs-sorted grid search; each candidate is averaged over
   ``runs_per_candidate`` independent runs;
3. repeat the whole search ``n_experiments`` times (the paper uses 5) so
   training stochasticity is averaged at the *winner* level too;
4. record the list of winning configurations, their FLOPs and parameter
   counts.

:class:`ProtocolConfig` holds every knob so the experiment drivers can
define smoke/reduced/full profiles by replacing a few fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from .. import config as paper_config
from ..data.spiral import make_spiral
from ..data.splits import DataSplit, stratified_split
from ..exceptions import ExperimentError
from .grid_search import (
    CandidateResult,
    SearchOutcome,
    TrainingSettings,
    grid_search,
)
from .search_space import search_space_for_family

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.pool import PersistentPool

__all__ = ["ProtocolConfig", "LevelResult", "ProtocolResult", "run_protocol"]


@dataclass(frozen=True)
class ProtocolConfig:
    """Every knob of the benchmarking protocol.

    Defaults are the paper's full-fidelity settings; the experiment
    drivers override them for the smoke/reduced profiles.
    """

    feature_sizes: tuple[int, ...] = paper_config.FEATURE_SIZES
    n_experiments: int = paper_config.N_EXPERIMENTS
    runs_per_candidate: int = paper_config.RUNS_PER_CANDIDATE
    threshold: float = paper_config.ACCURACY_THRESHOLD
    epochs: int = paper_config.EPOCHS
    batch_size: int = paper_config.BATCH_SIZE
    learning_rate: float = paper_config.LEARNING_RATE
    n_points: int = paper_config.N_POINTS
    val_fraction: float = paper_config.VALIDATION_FRACTION
    early_stop: bool = False
    max_candidates: int | None = None
    convention: str = "paper"
    dataset_seed: int = 0
    base_seed: int = 0
    #: Worker processes per grid search: 1 (default) = in-process
    #: sequential, 0 = all cores, N > 1 = that many processes; negative
    #: values are rejected.  Any value yields the same results; workers
    #: only change wall time.
    workers: int = 1
    #: Run-stacked candidate training (one vectorized sweep per run set,
    #: see :class:`~repro.core.grid_search.TrainingSettings`); results
    #: are identical with it on or off, only wall time changes.
    vectorized_runs: bool = True
    #: Cross-candidate stacked execution: candidates with structurally
    #: identical tapes merge their run sets into one fused sweep.
    #: Results are identical with it on or off, only wall time changes.
    stacked_candidates: bool = True
    #: How many times the parallel scheduler re-executes a chunk lost to
    #: a worker death, hard timeout, or runtime error before degrading
    #: to in-process sequential execution.  Never changes results.
    max_retries: int = 2
    #: Optional checkpoint journal path.  Each of the protocol's grid
    #: searches writes its own derived file next to this path (e.g.
    #: ``ckpt-f4-e0.jsonl`` for ``ckpt.jsonl``): journals compact to a
    #: single search's records on resume, so sharing one file across
    #: searches would discard every other search's checkpoint.  An
    #: interrupted protocol rerun skips everything already committed.
    journal: str | None = None
    #: Optional shared-filesystem spool directory: every grid search of
    #: the protocol runs as a cluster coordinator, leasing chunks to
    #: ``repro cluster-agent`` processes on any host sharing the
    #: filesystem (see ``repro.runtime.cluster``).  Overrides
    #: ``workers``/pool execution; results are identical either way.
    spool: str | None = None
    #: Optional ``HOST:PORT`` to bind as a TCP cluster coordinator:
    #: every grid search leases chunks to ``repro cluster-agent
    #: --connect`` processes over checksummed socket frames — no shared
    #: filesystem needed (see ``repro.runtime.cluster_tcp``).  Overrides
    #: ``workers``/pool execution; mutually exclusive with ``spool``;
    #: results are identical either way.
    connect: str | None = None
    #: Array backend for the stacked training sweeps ("numpy", "torch",
    #: "cupy"; None = REPRO_BACKEND env, then NumPy).  NumPy is the
    #: bit-exact reference; device backends are tolerance-grade (see
    #: docs/backends.md) and fall back to NumPy when unimportable.
    backend: str | None = None
    #: Memory budget in bytes for the speculative runtime (None = the
    #: ``REPRO_MEMORY_BUDGET`` env var, then an automatic fraction of
    #: free memory; <= 0 disables governance).  Budgets size stacked
    #: groups and bound in-flight bytes; results never change (see
    #: docs/parallel_runtime.md, "Memory governance").
    memory_budget: float | None = None

    def training_settings(self) -> TrainingSettings:
        return TrainingSettings(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            runs=self.runs_per_candidate,
            early_stop_threshold=self.threshold if self.early_stop else None,
            vectorized_runs=self.vectorized_runs,
            stacked_candidates=self.stacked_candidates,
            max_retries=self.max_retries,
            backend=self.backend,
            memory_budget=self.memory_budget,
        )

    def with_(self, **overrides) -> "ProtocolConfig":
        """Copy with some fields replaced."""
        return replace(self, **overrides)


@dataclass
class LevelResult:
    """All experiments at one complexity level."""

    feature_size: int
    outcomes: list[SearchOutcome] = field(default_factory=list)

    @property
    def winners(self) -> list[CandidateResult]:
        """Winning candidates of the successful experiments."""
        return [o.winner for o in self.outcomes if o.winner is not None]

    @property
    def n_successes(self) -> int:
        return len(self.winners)

    @property
    def mean_flops(self) -> float:
        """Average FLOPs of the winning models (paper's plotted value)."""
        winners = self.winners
        if not winners:
            return float("nan")
        return float(np.mean([w.flops for w in winners]))

    @property
    def mean_params(self) -> float:
        winners = self.winners
        if not winners:
            return float("nan")
        return float(np.mean([w.params for w in winners]))

    @property
    def smallest_winner(self) -> CandidateResult | None:
        """Lowest-FLOPs winner (used by the paper's section IV-E)."""
        winners = self.winners
        if not winners:
            return None
        return min(winners, key=lambda w: (w.flops, w.params))

    @property
    def candidates_trained(self) -> int:
        return int(sum(o.candidates_trained for o in self.outcomes))


@dataclass
class ProtocolResult:
    """Outcome of the protocol for one model family."""

    family: str
    config: ProtocolConfig
    levels: list[LevelResult] = field(default_factory=list)

    @property
    def feature_sizes(self) -> list[int]:
        return [lvl.feature_size for lvl in self.levels]

    def mean_flops_series(self) -> list[float]:
        return [lvl.mean_flops for lvl in self.levels]

    def mean_params_series(self) -> list[float]:
        return [lvl.mean_params for lvl in self.levels]

    def smallest_flops_series(self) -> list[float]:
        return [
            float(w.flops) if (w := lvl.smallest_winner) else float("nan")
            for lvl in self.levels
        ]

    def smallest_params_series(self) -> list[float]:
        return [
            float(w.params) if (w := lvl.smallest_winner) else float("nan")
            for lvl in self.levels
        ]

    def level(self, feature_size: int) -> LevelResult:
        for lvl in self.levels:
            if lvl.feature_size == feature_size:
                return lvl
        raise ExperimentError(
            f"no level for feature size {feature_size} in this result"
        )


def _level_seed(cfg: ProtocolConfig, feature_size: int, experiment: int) -> int:
    """Deterministic, collision-free seed per (config, level, experiment)."""
    return (
        cfg.base_seed * 1_000_003 + feature_size * 101 + experiment
    ) % (2**31)


def _search_journal_path(
    journal: str | None, feature_size: int, experiment: int
) -> str | None:
    """One journal file per (level, experiment) search.

    Journals compact to one search's committed prefix on resume
    (:meth:`repro.runtime.journal.SearchJournal.load`), so the
    protocol's searches must not share a file: the derived name keeps
    every search's checkpoint alive across a protocol rerun.
    """
    if journal is None:
        return None
    import pathlib

    base = pathlib.Path(journal)
    return str(
        base.with_name(
            f"{base.stem}-f{feature_size}-e{experiment}{base.suffix}"
        )
    )


def make_level_split(cfg: ProtocolConfig, feature_size: int) -> DataSplit:
    """The dataset split shared by all experiments at one level."""
    dataset = make_spiral(
        feature_size, n_points=cfg.n_points, seed=cfg.dataset_seed
    )
    return stratified_split(
        dataset, val_fraction=cfg.val_fraction, seed=cfg.dataset_seed
    )


def run_protocol(
    family: str,
    cfg: ProtocolConfig | None = None,
    progress: Callable[[str], None] | None = None,
    pool: "PersistentPool | None" = None,
) -> ProtocolResult:
    """Run the full protocol for one model family.

    ``family`` is ``"classical"``, ``"bel"`` or ``"sel"``.

    The protocol is many grid searches back to back (one per level x
    experiment), so with ``cfg.workers > 1`` it creates **one**
    :class:`~repro.runtime.pool.PersistentPool` up front and reuses it
    for every search: workers spin up once, each level's dataset is
    published to shared memory once and unlinked as soon as its last
    experiment finishes.  Pass ``pool`` to share an even longer-lived
    pool across protocols (the CLI does this for ``repro all``); an
    explicit pool is used as-is and left open for the caller.
    """
    cfg = cfg or ProtocolConfig()
    if cfg.n_experiments < 1:
        raise ExperimentError("n_experiments must be >= 1")
    result = ProtocolResult(family=family, config=cfg)
    settings = cfg.training_settings()

    # Fault-tolerance events (worker lost, chunk retried/timed out,
    # sequential fallback) flow into the same string-based progress
    # sink the drivers already display, so retries are visible without
    # a new reporting channel.
    on_event = None
    if progress is not None:
        on_event = lambda event: progress(f"[{family}] runtime: {event}")  # noqa: E731

    from ..runtime.parallel import resolve_workers

    owns_pool = False
    if (
        pool is None
        and cfg.spool is None
        and cfg.connect is None
        and resolve_workers(cfg.workers) > 1
    ):
        from ..runtime.pool import PersistentPool

        pool = PersistentPool(resolve_workers(cfg.workers), backend=cfg.backend)
        owns_pool = True
    try:
        for feature_size in cfg.feature_sizes:
            split = make_level_split(cfg, feature_size)
            specs = search_space_for_family(family, feature_size)
            level = LevelResult(feature_size=feature_size)
            try:
                for experiment in range(cfg.n_experiments):
                    outcome = grid_search(
                        specs,
                        split,
                        threshold=cfg.threshold,
                        settings=settings,
                        convention=cfg.convention,
                        seed=_level_seed(cfg, feature_size, experiment),
                        max_candidates=cfg.max_candidates,
                        workers=cfg.workers,
                        pool=pool,
                        journal=_search_journal_path(
                            cfg.journal, feature_size, experiment
                        ),
                        on_event=on_event,
                        spool=cfg.spool,
                        connect=cfg.connect,
                    )
                    level.outcomes.append(outcome)
                    if progress is not None:
                        winner = (
                            outcome.winner.spec.label if outcome.winner else "-"
                        )
                        progress(
                            f"[{family}] fs={feature_size} "
                            f"exp={experiment + 1}/"
                            f"{cfg.n_experiments} winner={winner} "
                            f"({outcome.candidates_trained} candidates)"
                        )
            finally:
                if pool is not None:
                    # This level's dataset is done: unlink its segment
                    # now (or when the last search referencing it ends).
                    pool.retire_split(split)
            result.levels.append(level)
    finally:
        if owns_pool:
            pool.close()
    return result
