"""The paper's benchmarking methodology (its primary contribution).

Search spaces, the FLOPs-sorted sequential grid search, the five-times-
repeated experiment protocol, the comparative (rate-of-increase)
analysis, and result serialization.
"""

from .comparison import (
    ComparativeAnalysis,
    SeriesSummary,
    absolute_increase,
    comparative_analysis,
    rate_of_increase,
)
from .experiment import (
    LevelResult,
    ProtocolConfig,
    ProtocolResult,
    make_level_split,
    run_protocol,
)
from .export import (
    comparison_markdown,
    winners_csv,
    winners_markdown,
    write_winners_csv,
)
from .grid_search import (
    CandidateResult,
    SearchOutcome,
    TrainingSettings,
    grid_search,
    rank_by_flops,
)
from .results import (
    load_protocol,
    protocol_from_dict,
    protocol_to_dict,
    save_protocol,
)
from .search_space import (
    FAMILIES,
    ClassicalSpec,
    HybridSpec,
    ModelSpec,
    classical_search_space,
    combination_count,
    hybrid_search_space,
    search_space_for_family,
)

__all__ = [
    "FAMILIES",
    "ModelSpec",
    "ClassicalSpec",
    "HybridSpec",
    "combination_count",
    "classical_search_space",
    "hybrid_search_space",
    "search_space_for_family",
    "TrainingSettings",
    "CandidateResult",
    "SearchOutcome",
    "grid_search",
    "rank_by_flops",
    "ProtocolConfig",
    "ProtocolResult",
    "LevelResult",
    "run_protocol",
    "make_level_split",
    "rate_of_increase",
    "absolute_increase",
    "SeriesSummary",
    "ComparativeAnalysis",
    "comparative_analysis",
    "save_protocol",
    "load_protocol",
    "protocol_to_dict",
    "protocol_from_dict",
    "winners_csv",
    "write_winners_csv",
    "winners_markdown",
    "comparison_markdown",
]
