"""Model search spaces (paper sections III-B and III-C).

Classical space: every MLP with 1..3 hidden layers and widths from
{2, 4, 6, 8, 10} — ``m * (m**n - 1) / (m - 1) = 155`` combinations.

Hybrid space: qubits in {3, 4, 5} x quantum depth in {1..10} — 30
combinations per ansatz; the classical head is fixed by the feature count
and class count (only the quantum block is searched).

Specs are lightweight, hashable descriptions that know how to report
their parameter count and FLOPs (without being built) and how to build
the actual trainable model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import config
from ..exceptions import ConfigurationError
from ..flops.conventions import CountingConvention
from ..flops.formulas import (
    classical_model_flops,
    classical_param_count,
    hybrid_model_flops,
    hybrid_param_count,
)
from ..hybrid.builders import build_classical_model, build_hybrid_model
from ..nn.model import Sequential

__all__ = [
    "ModelSpec",
    "ClassicalSpec",
    "HybridSpec",
    "combination_count",
    "classical_search_space",
    "hybrid_search_space",
    "search_space_for_family",
    "FAMILIES",
]

FAMILIES = ("classical", "bel", "sel")


@dataclass(frozen=True)
class ModelSpec:
    """Common interface of search-space entries."""

    n_features: int
    n_classes: int = 3

    @property
    def label(self) -> str:
        raise NotImplementedError

    @property
    def param_count(self) -> int:
        raise NotImplementedError

    def flops(self, convention: str | CountingConvention = "paper") -> int:
        raise NotImplementedError

    def build(self, rng: np.random.Generator | None = None) -> Sequential:
        raise NotImplementedError

    def group_key(self) -> tuple | None:
        """Structural signature for cross-candidate stacked execution.

        Candidates with equal non-``None`` keys compile to structurally
        identical tapes (same qubits/ansatz/depth at the same feature
        size), so the runtime may merge their run sets into one fused
        sweep (:func:`repro.nn.stacked.stack_candidates`).  ``None``
        means this spec never groups.
        """
        return None


@dataclass(frozen=True)
class ClassicalSpec(ModelSpec):
    """One classical grid-search combination."""

    hidden: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.hidden:
            raise ConfigurationError("ClassicalSpec needs >= 1 hidden layer")

    @property
    def label(self) -> str:
        return "C[" + ",".join(str(h) for h in self.hidden) + "]"

    @property
    def param_count(self) -> int:
        return classical_param_count(
            self.n_features, self.hidden, self.n_classes
        )

    def flops(self, convention: str | CountingConvention = "paper") -> int:
        return classical_model_flops(
            self.n_features, self.hidden, self.n_classes, convention
        )

    def build(self, rng: np.random.Generator | None = None) -> Sequential:
        return build_classical_model(
            self.n_features, self.hidden, self.n_classes, rng=rng
        )


@dataclass(frozen=True)
class HybridSpec(ModelSpec):
    """One hybrid grid-search combination.

    ``hidden`` is an optional classical head (``Dense + ReLU`` per
    width) in front of the quantum block's input layer.  The paper's
    search space keeps it empty; head-varying spaces hold many
    candidates that differ *only* in their head — structurally
    identical tapes the runtime trains as one cross-candidate fused
    sweep (see :meth:`group_key`).
    """

    n_qubits: int = 3
    n_layers: int = 1
    ansatz: str = "sel"
    hidden: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.ansatz not in ("bel", "sel"):
            raise ConfigurationError(f"unknown ansatz {self.ansatz!r}")
        if self.n_qubits < 1 or self.n_layers < 1:
            raise ConfigurationError(
                f"invalid hybrid spec: q={self.n_qubits}, l={self.n_layers}"
            )
        if any(h < 1 for h in self.hidden):
            raise ConfigurationError(
                f"hidden widths must be >= 1, got {self.hidden}"
            )

    @property
    def label(self) -> str:
        base = f"{self.ansatz.upper()}({self.n_qubits},{self.n_layers})"
        if self.hidden:
            base += "+C[" + ",".join(str(h) for h in self.hidden) + "]"
        return base

    @property
    def param_count(self) -> int:
        return hybrid_param_count(
            self.n_features,
            self.n_qubits,
            self.n_layers,
            self.ansatz,
            self.n_classes,
            hidden=self.hidden,
        )

    def flops(self, convention: str | CountingConvention = "paper") -> int:
        return hybrid_model_flops(
            self.n_features,
            self.n_qubits,
            self.n_layers,
            self.ansatz,
            self.n_classes,
            convention,
            hidden=self.hidden,
        )

    def build(self, rng: np.random.Generator | None = None) -> Sequential:
        return build_hybrid_model(
            self.n_features,
            self.n_qubits,
            self.n_layers,
            ansatz=self.ansatz,
            n_classes=self.n_classes,
            hidden=self.hidden,
            rng=rng,
        )

    def group_key(self) -> tuple | None:
        # Everything that shapes the compiled tape and the fixed
        # classical tail — the head (``hidden``) is deliberately
        # excluded: it only shapes the per-candidate prefix stack.
        return (
            "hybrid",
            self.n_features,
            self.n_classes,
            self.n_qubits,
            self.n_layers,
            self.ansatz,
        )


def combination_count(n_options: int, max_layers: int) -> int:
    """The paper's formula: ``m * (m**n - 1) / (m - 1)`` combinations.

    >>> combination_count(5, 3)
    155
    >>> combination_count(2, 2)
    6
    """
    if n_options < 1 or max_layers < 1:
        raise ConfigurationError("need >= 1 option and >= 1 layer")
    if n_options == 1:
        return max_layers
    return n_options * (n_options**max_layers - 1) // (n_options - 1)


def classical_search_space(
    n_features: int,
    neuron_options: Sequence[int] = config.CLASSICAL_NEURON_OPTIONS,
    max_layers: int = config.CLASSICAL_MAX_LAYERS,
    n_classes: int = config.N_CLASSES,
) -> list[ClassicalSpec]:
    """All classical combinations, shallow-first, in deterministic order."""
    if not neuron_options:
        raise ConfigurationError("neuron_options must be non-empty")
    specs: list[ClassicalSpec] = []
    for depth in range(1, max_layers + 1):
        for hidden in itertools.product(neuron_options, repeat=depth):
            specs.append(
                ClassicalSpec(
                    n_features=n_features,
                    n_classes=n_classes,
                    hidden=tuple(hidden),
                )
            )
    return specs


def hybrid_search_space(
    n_features: int,
    ansatz: str,
    qubit_options: Sequence[int] = config.HYBRID_QUBIT_OPTIONS,
    depth_options: Sequence[int] = config.HYBRID_DEPTH_OPTIONS,
    n_classes: int = config.N_CLASSES,
    head_options: Sequence[Sequence[int]] = ((),),
) -> list[HybridSpec]:
    """All hybrid combinations for one ansatz.

    ``head_options`` extends the space with classical-head variants per
    quantum block (default: the paper's single head-less architecture).
    Every head variant of one ``(qubits, depth)`` cell shares a tape
    structure, so the search trains them as one cross-candidate stack.
    """
    if not qubit_options or not depth_options:
        raise ConfigurationError("qubit/depth options must be non-empty")
    if not head_options:
        raise ConfigurationError("head_options must be non-empty")
    return [
        HybridSpec(
            n_features=n_features,
            n_classes=n_classes,
            n_qubits=q,
            n_layers=l,
            ansatz=ansatz,
            hidden=tuple(head),
        )
        for q in qubit_options
        for l in depth_options
        for head in head_options
    ]


def search_space_for_family(
    family: str,
    n_features: int,
    n_classes: int = config.N_CLASSES,
    neuron_options: Sequence[int] = config.CLASSICAL_NEURON_OPTIONS,
    max_layers: int = config.CLASSICAL_MAX_LAYERS,
    qubit_options: Sequence[int] = config.HYBRID_QUBIT_OPTIONS,
    depth_options: Sequence[int] = config.HYBRID_DEPTH_OPTIONS,
) -> list[ModelSpec]:
    """Search space of one model family: classical, bel or sel."""
    if family == "classical":
        return list(
            classical_search_space(
                n_features, neuron_options, max_layers, n_classes
            )
        )
    if family in ("bel", "sel"):
        return list(
            hybrid_search_space(
                n_features, family, qubit_options, depth_options, n_classes
            )
        )
    raise ConfigurationError(
        f"unknown family {family!r}; options: {FAMILIES}"
    )
