"""Result (de)serialization.

Protocol runs are expensive, so every result object can round-trip
through JSON: run once, analyze many times.  The on-disk schema is
versioned; loaders refuse newer majors.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

from ..exceptions import ExperimentError
from .experiment import LevelResult, ProtocolConfig, ProtocolResult
from .grid_search import CandidateResult, SearchOutcome
from .search_space import ClassicalSpec, HybridSpec, ModelSpec

__all__ = [
    "SCHEMA_VERSION",
    "spec_to_dict",
    "spec_from_dict",
    "candidate_to_dict",
    "candidate_from_dict",
    "outcome_to_dict",
    "outcome_from_dict",
    "protocol_to_dict",
    "protocol_from_dict",
    "save_protocol",
    "load_protocol",
]

SCHEMA_VERSION = "1.0"


def spec_to_dict(spec: ModelSpec) -> dict[str, Any]:
    if isinstance(spec, ClassicalSpec):
        return {
            "type": "classical",
            "n_features": spec.n_features,
            "n_classes": spec.n_classes,
            "hidden": list(spec.hidden),
        }
    if isinstance(spec, HybridSpec):
        return {
            "type": "hybrid",
            "n_features": spec.n_features,
            "n_classes": spec.n_classes,
            "n_qubits": spec.n_qubits,
            "n_layers": spec.n_layers,
            "ansatz": spec.ansatz,
            "hidden": list(spec.hidden),
        }
    raise ExperimentError(f"cannot serialize spec type {type(spec).__name__}")


def spec_from_dict(data: dict[str, Any]) -> ModelSpec:
    kind = data.get("type")
    if kind == "classical":
        return ClassicalSpec(
            n_features=int(data["n_features"]),
            n_classes=int(data["n_classes"]),
            hidden=tuple(int(h) for h in data["hidden"]),
        )
    if kind == "hybrid":
        return HybridSpec(
            n_features=int(data["n_features"]),
            n_classes=int(data["n_classes"]),
            n_qubits=int(data["n_qubits"]),
            n_layers=int(data["n_layers"]),
            ansatz=str(data["ansatz"]),
            # Pre-head snapshots have no "hidden" field (the paper's
            # architecture): absent means the empty head.
            hidden=tuple(int(h) for h in data.get("hidden", ())),
        )
    raise ExperimentError(f"unknown spec type {kind!r}")


def candidate_to_dict(candidate: CandidateResult) -> dict[str, Any]:
    return {
        "spec": spec_to_dict(candidate.spec),
        "flops": candidate.flops,
        "params": candidate.params,
        "train_accuracies": list(candidate.train_accuracies),
        "val_accuracies": list(candidate.val_accuracies),
        "epochs_run": list(candidate.epochs_run),
        "wall_time_s": candidate.wall_time_s,
    }


def candidate_from_dict(data: dict[str, Any]) -> CandidateResult:
    return CandidateResult(
        spec=spec_from_dict(data["spec"]),
        flops=int(data["flops"]),
        params=int(data["params"]),
        train_accuracies=[float(a) for a in data["train_accuracies"]],
        val_accuracies=[float(a) for a in data["val_accuracies"]],
        epochs_run=[int(e) for e in data["epochs_run"]],
        wall_time_s=float(data["wall_time_s"]),
    )


def outcome_to_dict(outcome: SearchOutcome) -> dict[str, Any]:
    return {
        "threshold": outcome.threshold,
        "winner": (
            candidate_to_dict(outcome.winner) if outcome.winner else None
        ),
        "evaluated": [candidate_to_dict(c) for c in outcome.evaluated],
    }


def outcome_from_dict(data: dict[str, Any]) -> SearchOutcome:
    return SearchOutcome(
        threshold=float(data["threshold"]),
        winner=(
            candidate_from_dict(data["winner"]) if data["winner"] else None
        ),
        evaluated=[candidate_from_dict(c) for c in data["evaluated"]],
    )


def protocol_to_dict(result: ProtocolResult) -> dict[str, Any]:
    return {
        "schema_version": SCHEMA_VERSION,
        "family": result.family,
        "config": asdict(result.config),
        "levels": [
            {
                "feature_size": lvl.feature_size,
                "outcomes": [outcome_to_dict(o) for o in lvl.outcomes],
            }
            for lvl in result.levels
        ],
    }


def protocol_from_dict(data: dict[str, Any]) -> ProtocolResult:
    major = str(data.get("schema_version", "0")).split(".")[0]
    if major != SCHEMA_VERSION.split(".")[0]:
        raise ExperimentError(
            f"result schema {data.get('schema_version')!r} is incompatible "
            f"with library schema {SCHEMA_VERSION}"
        )
    cfg_data = dict(data["config"])
    cfg_data["feature_sizes"] = tuple(cfg_data["feature_sizes"])
    cfg = ProtocolConfig(**cfg_data)
    result = ProtocolResult(family=str(data["family"]), config=cfg)
    for lvl_data in data["levels"]:
        level = LevelResult(feature_size=int(lvl_data["feature_size"]))
        level.outcomes = [
            outcome_from_dict(o) for o in lvl_data["outcomes"]
        ]
        result.levels.append(level)
    return result


def save_protocol(result: ProtocolResult, path: str | Path) -> None:
    """Write a protocol result as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(protocol_to_dict(result), indent=2))


def load_protocol(path: str | Path) -> ProtocolResult:
    """Read a protocol result saved by :func:`save_protocol`."""
    return protocol_from_dict(json.loads(Path(path).read_text()))
