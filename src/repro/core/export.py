"""Export protocol results to CSV and Markdown.

Protocol runs are stored as JSON (:mod:`repro.core.results`); these
helpers flatten them into spreadsheet-friendly CSV and publication-ready
Markdown, which is how EXPERIMENTS.md embeds the measured numbers.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Sequence

from ..exceptions import ExperimentError
from .comparison import ComparativeAnalysis
from .experiment import ProtocolResult

__all__ = [
    "winners_csv",
    "write_winners_csv",
    "winners_markdown",
    "comparison_markdown",
]

_WINNER_FIELDS = (
    "family",
    "feature_size",
    "experiment",
    "winner",
    "flops",
    "params",
    "mean_train_accuracy",
    "mean_val_accuracy",
    "candidates_trained",
)


def _winner_rows(results: Sequence[ProtocolResult]) -> list[dict]:
    rows: list[dict] = []
    for result in results:
        for lvl in result.levels:
            for exp_index, outcome in enumerate(lvl.outcomes):
                winner = outcome.winner
                rows.append(
                    {
                        "family": result.family,
                        "feature_size": lvl.feature_size,
                        "experiment": exp_index,
                        "winner": winner.spec.label if winner else "",
                        "flops": winner.flops if winner else "",
                        "params": winner.params if winner else "",
                        "mean_train_accuracy": (
                            round(winner.mean_train_accuracy, 4) if winner else ""
                        ),
                        "mean_val_accuracy": (
                            round(winner.mean_val_accuracy, 4) if winner else ""
                        ),
                        "candidates_trained": outcome.candidates_trained,
                    }
                )
    return rows


def winners_csv(results: Sequence[ProtocolResult]) -> str:
    """One CSV row per (family, level, experiment) winner."""
    if not results:
        raise ExperimentError("nothing to export")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_WINNER_FIELDS)
    writer.writeheader()
    writer.writerows(_winner_rows(results))
    return buffer.getvalue()


def write_winners_csv(
    results: Sequence[ProtocolResult], path: str | Path
) -> None:
    """Write :func:`winners_csv` output to a file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(winners_csv(results))


def winners_markdown(results: Sequence[ProtocolResult]) -> str:
    """A Markdown table of the smallest winner per family and level."""
    if not results:
        raise ExperimentError("nothing to export")
    lines = [
        "| family | features | winner | FLOPs | params | train | val |",
        "|---|---|---|---|---|---|---|",
    ]
    for result in results:
        for lvl in result.levels:
            winner = lvl.smallest_winner
            if winner is None:
                lines.append(
                    f"| {result.family} | {lvl.feature_size} | — | — | — "
                    "| — | — |"
                )
                continue
            lines.append(
                f"| {result.family} | {lvl.feature_size} "
                f"| {winner.spec.label} | {winner.flops} | {winner.params} "
                f"| {winner.mean_train_accuracy:.3f} "
                f"| {winner.mean_val_accuracy:.3f} |"
            )
    return "\n".join(lines)


def comparison_markdown(analysis: ComparativeAnalysis) -> str:
    """Fig. 10 as a Markdown table (rates relative to the high level)."""
    lines = [
        "| family | FLOPs low | FLOPs high | FLOPs rate | params low "
        "| params high | params rate |",
        "|---|---|---|---|---|---|---|",
    ]
    for family in analysis.flops:
        f = analysis.flops[family]
        p = analysis.params[family]
        lines.append(
            f"| {family} | {f.low:.0f} | {f.high:.0f} "
            f"| {f.rate_percent:.1f}% | {p.low:.0f} | {p.high:.0f} "
            f"| {p.rate_percent:.1f}% |"
        )
    return "\n".join(lines)
