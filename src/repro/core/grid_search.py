"""FLOPs-ordered grid search (paper sections III-E/F).

The paper's trick for taming exhaustive search: sort all candidate
architectures by (statically computed) FLOPs *before* training anything,
then train in ascending order and stop at the first candidate whose
averaged max-over-epochs train **and** validation accuracies reach the
threshold.  The first success is, by construction, the cheapest
successful model.

``workers > 1`` fans the (candidate, run) training jobs out across a
process pool (:mod:`repro.runtime.parallel`) while preserving those
sequential early-stop semantics exactly: candidates are still committed
in FLOPs order, the winner is still the cheapest pass, and every run
uses the same ``(seed, candidate, run)``-derived RNG stream, so the
returned :class:`SearchOutcome` is identical to the sequential one.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..data.splits import DataSplit
from ..exceptions import SearchError
from ..flops.conventions import CountingConvention, get_convention
from ..runtime.jobs import RunResult, execute_candidates, execute_runs
from .search_space import ModelSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.pool import PersistentPool

__all__ = [
    "TrainingSettings",
    "CandidateResult",
    "SearchOutcome",
    "rank_by_flops",
    "aggregate_runs",
    "grid_search",
    "plan_group",
    "MAX_GROUP_CANDIDATES",
    "MAX_ADAPTIVE_GROUP",
    "GROUP_LOOKAHEAD",
]

#: Candidates fused into one cross-candidate sweep are capped: the
#: whole group trains speculatively once its first member's turn comes,
#: so the cap bounds the work discarded when that member passes.
MAX_GROUP_CANDIDATES = 4

#: How far past the commit frontier the sequential search scans for
#: same-structure candidates to group.  Non-matching candidates in
#: between are skipped (they commit from their own, later groups).
GROUP_LOOKAHEAD = 8

#: Member ceiling for budget-driven group growth.  An *explicit* memory
#: budget (``TrainingSettings.memory_budget`` / ``REPRO_MEMORY_BUDGET``)
#: lets :func:`plan_group` grow past :data:`MAX_GROUP_CANDIDATES` while
#: the predicted group bytes stay under budget, but never past the
#: lookahead window — speculation stays bounded by rank distance.
MAX_ADAPTIVE_GROUP = GROUP_LOOKAHEAD + 1


@dataclass(frozen=True)
class TrainingSettings:
    """How each candidate run is trained (paper defaults).

    ``vectorized_runs`` selects the run-stacked execution mode: a
    candidate's whole run set trains as one
    :class:`~repro.nn.training.VectorizedTrainer` sweep (bit-identical
    metrics, one kernel sweep instead of ``runs``).  Models that cannot
    be stacked fall back to per-run training automatically; results are
    the same either way, only wall time changes.

    ``return_histories`` keeps each run's full per-epoch
    :class:`~repro.nn.training.History` on its
    :class:`~repro.runtime.jobs.RunResult` (and on
    :attr:`CandidateResult.histories`) instead of dropping it after the
    max-over-epochs metrics are extracted.

    ``stacked_candidates`` lets the search merge the run sets of
    several candidates whose compiled tapes are structurally identical
    (equal :meth:`~repro.core.search_space.ModelSpec.group_key`) into
    one cross-candidate fused sweep — speculative, bounded by
    :data:`MAX_GROUP_CANDIDATES`.  ``compact_frozen`` drops
    early-stopped runs' rows from subsequent stacked sweeps instead of
    masking them.  Results are bit-identical with either knob on or
    off; only wall time changes.

    The remaining knobs configure the parallel scheduler's *fault
    tolerance* (chunks are deterministic, so none of them can change
    results — see ``docs/parallel_runtime.md``):

    - ``max_retries``: how many times a chunk lost to a worker death,
      hard timeout, or runtime error is re-executed before the search
      gives up on the pool.
    - ``fallback_sequential``: on retry exhaustion, finish the
      remaining candidates in-process with the sequential primitive
      instead of raising.  Disable when a candidate is suspected of
      *killing* its process (an in-process rerun would kill the
      driver).
    - ``chunk_timeout_s``: absolute per-chunk deadline (submission to
      completion).  ``None`` derives deadlines from measured cost:
      ``chunk_deadline_factor`` x the cost model's seconds estimate,
      floored at ``chunk_deadline_floor_s`` — and only once the model
      is calibrated.
    - ``watchdog_interval_s``: how often the scheduler checks worker
      liveness and deadlines while idle (``None`` = runtime default,
      10s).

    ``backend`` selects the array backend the stacked sweeps execute on
    (``"numpy"``, ``"torch"``, ``"cupy"``; ``None`` defers to the
    ``REPRO_BACKEND`` environment variable, then the process default,
    then NumPy).  Only the NumPy backend is bit-exact; device backends
    are tolerance-grade (see ``docs/backends.md``).  A requested
    backend whose library is unimportable falls back to NumPy with a
    ``backend-fallback`` :class:`~repro.runtime.parallel.SearchEvent`.

    ``memory_budget`` caps the predicted concurrent working-set bytes
    of fused sweeps and in-flight chunks (``--memory-budget`` on the
    CLI).  ``None`` defers to the ``REPRO_MEMORY_BUDGET`` environment
    variable, then to a fraction of the backend's free-memory probe; a
    non-positive value disables governance.  An *explicit* budget also
    unlocks group growth past :data:`MAX_GROUP_CANDIDATES` when groups
    are predicted cheap.  Budgets shape wall time and allocation only —
    splitting and the scalar fallback are bit-identity-preserving, so
    the :class:`SearchOutcome` never changes (see
    ``docs/parallel_runtime.md``, "Memory governance").
    """

    epochs: int = 100
    batch_size: int = 8
    learning_rate: float = 0.001
    runs: int = 5
    early_stop_threshold: float | None = None
    vectorized_runs: bool = True
    return_histories: bool = False
    stacked_candidates: bool = True
    compact_frozen: bool = True
    max_retries: int = 2
    fallback_sequential: bool = True
    chunk_timeout_s: float | None = None
    chunk_deadline_factor: float = 8.0
    chunk_deadline_floor_s: float = 30.0
    watchdog_interval_s: float | None = None
    backend: str | None = None
    memory_budget: float | None = None


@dataclass
class CandidateResult:
    """Aggregated outcome of the runs of one candidate architecture.

    ``histories`` is populated (one entry per run, in run order) only
    when :attr:`TrainingSettings.return_histories` is set.
    """

    spec: ModelSpec
    flops: int
    params: int
    train_accuracies: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)
    epochs_run: list[int] = field(default_factory=list)
    wall_time_s: float = 0.0
    histories: list = field(default_factory=list)

    @property
    def mean_train_accuracy(self) -> float:
        return float(np.mean(self.train_accuracies))

    @property
    def mean_val_accuracy(self) -> float:
        return float(np.mean(self.val_accuracies))

    def passes(self, threshold: float) -> bool:
        """The paper's success condition: both averages >= threshold."""
        return (
            self.mean_train_accuracy >= threshold
            and self.mean_val_accuracy >= threshold
        )


@dataclass
class SearchOutcome:
    """Result of one grid search at one complexity level."""

    threshold: float
    winner: CandidateResult | None
    evaluated: list[CandidateResult] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.winner is not None

    @property
    def candidates_trained(self) -> int:
        return len(self.evaluated)


def rank_by_flops(
    specs: Sequence[ModelSpec],
    convention: str | CountingConvention = "paper",
) -> list[ModelSpec]:
    """Sort ascending by FLOPs; ties broken by parameter count then label
    (fully deterministic)."""
    conv = get_convention(convention)
    return sorted(
        specs, key=lambda s: (s.flops(conv), s.param_count, s.label)
    )


def aggregate_runs(
    spec: ModelSpec,
    convention: CountingConvention,
    run_results: Sequence[RunResult],
) -> CandidateResult:
    """Fold per-run results (in run order) into one :class:`CandidateResult`.

    Shared by the sequential path and the parallel scheduler so
    aggregation is deterministic regardless of run completion order.
    """
    result = CandidateResult(
        spec=spec, flops=spec.flops(convention), params=spec.param_count
    )
    for rr in run_results:
        result.train_accuracies.append(rr.train_accuracy)
        result.val_accuracies.append(rr.val_accuracy)
        result.epochs_run.append(rr.epochs_run)
        result.wall_time_s += rr.wall_time_s
        if rr.history is not None:
            result.histories.append(rr.history)
    return result


def _ladder_runs(
    spec: ModelSpec,
    seed: int,
    candidate_index: int,
    runs: Sequence[int],
    split: DataSplit,
    settings: TrainingSettings,
    notify: Callable[[str, Sequence[int]], None] | None = None,
) -> list[RunResult]:
    """:func:`~repro.runtime.jobs.execute_runs` with the OOM recovery
    ladder.

    An out-of-memory failure in the vectorized sweep degrades stepwise —
    retry the fused sweep on the NumPy backend (device OOMs fit in host
    RAM far more often than not), then fall to the per-run scalar path —
    instead of raising.  Every step trains from the same
    ``(seed, candidate, run)`` streams, and the scalar path is the
    bit-identity oracle, so degradation never changes results.  A scalar
    OOM raises: the ladder has no smaller allocation left to try.
    """
    try:
        return execute_runs(
            spec,
            seed,
            candidate_index,
            runs,
            split,
            settings,
            vectorized=settings.vectorized_runs,
        )
    except Exception as exc:  # noqa: BLE001 - classified below
        from ..runtime.memory import is_memory_error

        if not (settings.vectorized_runs and is_memory_error(exc)):
            raise
    if notify is not None:
        notify("vectorized run sweep hit OOM", (candidate_index,))
    from ..backends import resolve_backend

    numpy_settings = replace(settings, backend="numpy")
    resolved, _ = resolve_backend(settings.backend)
    if not resolved.is_numpy:
        try:
            return execute_runs(
                spec,
                seed,
                candidate_index,
                runs,
                split,
                numpy_settings,
                vectorized=True,
            )
        except Exception as exc:  # noqa: BLE001 - classified below
            from ..runtime.memory import is_memory_error

            if not is_memory_error(exc):
                raise
        if notify is not None:
            notify("numpy retry hit OOM", (candidate_index,))
    return execute_runs(
        spec,
        seed,
        candidate_index,
        runs,
        split,
        numpy_settings,
        vectorized=False,
    )


def _evaluate_candidate(
    spec: ModelSpec,
    split: DataSplit,
    settings: TrainingSettings,
    seed: int,
    candidate_index: int,
    convention: CountingConvention,
    notify: Callable[[str, Sequence[int]], None] | None = None,
) -> CandidateResult:
    """Train one candidate ``settings.runs`` times and aggregate.

    With ``settings.vectorized_runs`` the whole run set trains as one
    stacked sweep (:func:`repro.runtime.jobs.execute_runs`); metrics are
    bit-identical to the per-run loop either way.  Out-of-memory
    failures degrade through :func:`_ladder_runs`.
    """
    return aggregate_runs(
        spec,
        convention,
        _ladder_runs(
            spec,
            seed,
            candidate_index,
            range(settings.runs),
            split,
            settings,
            notify=notify,
        ),
    )


def plan_group(
    ranked: Sequence[ModelSpec],
    index: int,
    settings: TrainingSettings,
    skip: "frozenset[int] | set[int]" = frozenset(),
    *,
    budget=None,
) -> list[int]:
    """Candidate indices to train as one fused sweep, anchored at ``index``.

    Scans up to :data:`GROUP_LOOKAHEAD` candidates past the anchor for
    equal non-``None`` group keys, capped at
    :data:`MAX_GROUP_CANDIDATES` members; ``skip`` holds indices whose
    results already exist (earlier speculation).  Grouping never
    changes results — members are committed strictly in rank order and
    anything past a winner is discarded — so the plan only shapes wall
    time.

    ``budget`` (a resolved :class:`~repro.runtime.memory.MemoryBudget`)
    makes the plan memory-governed: members are admitted only while the
    group's predicted peak bytes
    (:func:`~repro.runtime.memory.estimate_candidate_bytes`) fit, so an
    overweight group shrinks — down to the anchor alone.  An *explicit*
    budget additionally raises the member ceiling to
    :data:`MAX_ADAPTIVE_GROUP`, growing predicted-cheap groups past the
    legacy cap (still lookahead-bounded).
    """
    if not (settings.stacked_candidates and settings.vectorized_runs):
        return [index]
    key = ranked[index].group_key()
    if key is None:
        return [index]
    active = budget is not None and budget.active
    cap = (
        MAX_ADAPTIVE_GROUP
        if active and budget.explicit
        else MAX_GROUP_CANDIDATES
    )
    group_bytes = 0
    if active:
        from ..runtime.memory import estimate_candidate_bytes

        group_bytes = estimate_candidate_bytes(
            ranked[index], settings.batch_size, settings.runs
        )
    group = [index]
    limit = min(len(ranked), index + 1 + GROUP_LOOKAHEAD)
    for j in range(index + 1, limit):
        if len(group) >= cap:
            break
        if j in skip:
            continue
        if ranked[j].group_key() != key:
            continue
        if active:
            member_bytes = estimate_candidate_bytes(
                ranked[j], settings.batch_size, settings.runs
            )
            if group_bytes + member_bytes > budget.bytes:
                break
            group_bytes += member_bytes
        group.append(j)
    return group


def _evaluate_group(
    ranked: Sequence[ModelSpec],
    indices: Sequence[int],
    split: DataSplit,
    settings: TrainingSettings,
    seed: int,
    convention: CountingConvention,
    notify: Callable[[str, Sequence[int]], None] | None = None,
) -> "dict[int, CandidateResult | Exception] | None":
    """Train a multi-candidate group as one fused sweep.

    Returns per-candidate results keyed by candidate index — or
    ``None`` when the group cannot be stacked (the caller then trains
    the anchor alone, speculating nothing).  A failure inside the fused
    sweep falls back to per-candidate execution so the error is
    re-attributed to the candidate the sequential loop would blame:
    errors are captured per candidate and surface only at that
    candidate's commit turn.

    An *out-of-memory* failure takes the recovery ladder instead: the
    group splits in half (each half fused again, recursively), then per
    candidate, then down :func:`_ladder_runs` — every step
    bit-identity-preserving, each reported through ``notify``.
    """
    group = [(ranked[j], j, range(settings.runs)) for j in indices]
    try:
        results = execute_candidates(group, seed, split, settings)
    except Exception as exc:  # noqa: BLE001 - re-run per candidate to attribute
        from ..runtime.memory import is_memory_error

        if notify is not None and is_memory_error(exc) and len(indices) > 1:
            notify(
                f"fused sweep of {len(indices)} candidates hit OOM, "
                f"splitting in half",
                tuple(indices),
            )
            mid = (len(indices) + 1) // 2
            out: dict[int, CandidateResult | Exception] = {}
            for half in (list(indices[:mid]), list(indices[mid:])):
                if len(half) > 1:
                    sub = _evaluate_group(
                        ranked,
                        half,
                        split,
                        settings,
                        seed,
                        convention,
                        notify=notify,
                    )
                    if sub is not None:
                        out.update(sub)
                        continue
                for j in half:
                    try:
                        out[j] = aggregate_runs(
                            ranked[j],
                            convention,
                            _ladder_runs(
                                ranked[j],
                                seed,
                                j,
                                range(settings.runs),
                                split,
                                settings,
                                notify=notify,
                            ),
                        )
                    except Exception as sub_exc:  # noqa: BLE001
                        out[j] = sub_exc
            return out
        results = None
    else:
        if results is None:
            return None
        out = {}
        for spec, j, _ in group:
            out[j] = aggregate_runs(
                spec,
                convention,
                [rr for rr in results if rr.candidate_index == j],
            )
        return out
    out = {}
    for spec, j, runs_j in group:
        try:
            out[j] = aggregate_runs(
                spec,
                convention,
                _ladder_runs(
                    spec,
                    seed,
                    j,
                    runs_j,
                    split,
                    settings,
                    notify=notify,
                ),
            )
        except Exception as exc:  # noqa: BLE001 - surfaced at commit turn
            out[j] = exc
    return out


def grid_search(
    specs: Sequence[ModelSpec],
    split: DataSplit,
    threshold: float = 0.90,
    settings: TrainingSettings | None = None,
    convention: str | CountingConvention = "paper",
    seed: int = 0,
    max_candidates: int | None = None,
    progress: Callable[[CandidateResult], None] | None = None,
    workers: int | None = 1,
    pool: "PersistentPool | None" = None,
    journal: "str | None" = None,
    on_event: Callable[..., None] | None = None,
    spool: "str | None" = None,
    connect: "str | None" = None,
) -> SearchOutcome:
    """Run the FLOPs-sorted search.

    Parameters
    ----------
    specs:
        The search space (any order; ranked internally).
    split:
        Train/validation data for this complexity level.
    threshold:
        Accuracy both averaged metrics must reach (paper: 0.90).
    settings:
        Per-candidate training configuration.
    seed:
        Base seed; run ``r`` of candidate ``c`` uses ``(seed, c, r)``
        derived streams, so searches are reproducible.
    max_candidates:
        Optional cap on how many candidates may be trained (reduced
        profiles); ``None`` trains until success or exhaustion.
    progress:
        Optional callback invoked after each candidate (commit order,
        i.e. FLOPs order, under either execution mode).
    workers:
        ``1`` (default) runs the exact sequential loop in-process.
        ``> 1`` fans (candidate, run) jobs out across that many worker
        processes with speculative FLOPs-order commit semantics
        (:func:`repro.runtime.parallel.speculative_search`); ``None``
        or ``0`` uses all available cores.  The outcome is identical in
        either mode (only ``wall_time_s`` values differ).
    pool:
        An optional :class:`repro.runtime.pool.PersistentPool` to run
        the parallel search on.  When given it takes precedence over
        ``workers``: warm workers are reused (no per-search pool
        spin-up) and the dataset is served to workers from shared
        memory, published at most once per (pool, split).  The caller
        owns the pool's lifetime.  Results are identical with or
        without a pool.
    journal:
        Optional path to a JSONL checkpoint journal
        (:class:`repro.runtime.journal.SearchJournal`).  Every
        committed candidate is appended durably; rerunning the same
        configuration against the same journal skips the completed
        prefix (replaying it through ``progress``) and produces an
        outcome bit-identical to an uninterrupted run.  A journal
        written under a different configuration is ignored (records are
        keyed by a config hash).  Incompatible with
        ``settings.return_histories`` (histories are not journaled).
    on_event:
        Optional callback receiving a
        :class:`repro.runtime.parallel.SearchEvent` for every
        fault-tolerance decision the parallel scheduler takes (worker
        loss, retry, deadline warning/timeout, sequential fallback);
        unused by the sequential path.
    spool:
        Optional path to a shared-filesystem spool directory (or a
        :class:`repro.runtime.cluster.SpoolConfig`).  When given, the
        search runs as a cross-host cluster coordinator
        (:func:`repro.runtime.cluster.cluster_search`): chunks are
        leased to ``repro cluster-agent`` processes — on this or any
        host sharing the filesystem — instead of local pool workers,
        and ``workers``/``pool`` are ignored.  The outcome is
        bit-identical to the sequential baseline regardless of agent
        count or failures; losing every agent finishes the search
        in-process.  An execution knob like ``workers``: it never
        affects results.
    connect:
        Optional ``HOST:PORT`` to bind (or a
        :class:`repro.runtime.cluster_tcp.TcpConfig`).  When given, the
        search runs as a TCP cluster coordinator
        (:func:`repro.runtime.cluster_tcp.tcp_cluster_search`): chunks
        are leased to ``repro cluster-agent --connect`` processes over
        checksummed socket frames — no shared filesystem required —
        instead of local pool workers, and ``workers``/``pool`` are
        ignored.  Same guarantee as ``spool``: the outcome is
        bit-identical to the sequential baseline regardless of agent
        count, disconnects, or partitions; losing every agent finishes
        the search in-process.  Mutually exclusive with ``spool``.

    Returns
    -------
    SearchOutcome
        ``winner`` is the first (lowest-FLOPs) passing candidate, or
        ``None`` if the space (or the cap) was exhausted.
    """
    if not specs:
        raise SearchError("empty search space")
    if spool is not None and connect is not None:
        raise SearchError(
            "spool= and connect= are mutually exclusive: pick one "
            "cluster transport (shared-filesystem spool or TCP)"
        )
    settings = settings or TrainingSettings()
    if settings.runs < 1:
        raise SearchError(f"settings.runs must be >= 1, got {settings.runs}")
    # Resolve the array backend once up front: an unknown name raises
    # here (typo = configuration bug), and an unimportable backend
    # emits a single structured fallback event — the per-job resolution
    # in the runtime then falls back silently and consistently.
    from ..backends import resolve_backend

    _, backend_fallback = resolve_backend(settings.backend)
    if backend_fallback is not None and on_event is not None:
        from ..runtime.parallel import SearchEvent

        on_event(
            SearchEvent(kind="backend-fallback", message=backend_fallback)
        )
    conv = get_convention(convention)
    ranked = rank_by_flops(specs, conv)
    if max_candidates is not None:
        ranked = ranked[:max_candidates]

    # Checkpoint/resume: replay the journal's committed prefix (if any)
    # through the normal commit path — same progress sequence, same
    # early-stop check — then hand the frontier to whichever execution
    # mode runs the rest.  Candidate indices are *absolute* ranks:
    # every run's RNG stream derives from (seed, candidate_index, run),
    # so the remainder must never be computed over a sliced list.
    search_journal = None
    outcome = SearchOutcome(threshold=threshold, winner=None)
    start_index = 0
    if journal is not None:
        if settings.return_histories:
            raise SearchError(
                "journal= cannot be combined with "
                "settings.return_histories: journal records drop "
                "per-epoch histories, so a resumed outcome could not "
                "be bit-identical"
            )
        from ..runtime.journal import SearchJournal, search_key

        search_journal = SearchJournal(
            journal, search_key(ranked, threshold, settings, conv, seed)
        )
        for candidate in search_journal.load():
            outcome.evaluated.append(candidate)
            if progress is not None:
                progress(candidate)
            if candidate.passes(threshold):
                outcome.winner = candidate
                return outcome
        start_index = len(outcome.evaluated)
        if start_index >= len(ranked):
            return outcome

    if spool is not None:
        from ..runtime.cluster import cluster_search

        return cluster_search(
            ranked,
            split,
            threshold,
            settings,
            conv,
            seed,
            spool=spool,
            progress=progress,
            journal=search_journal,
            on_event=on_event,
            outcome=outcome,
            start_index=start_index,
        )

    if connect is not None:
        from ..runtime.cluster_tcp import tcp_cluster_search

        return tcp_cluster_search(
            ranked,
            split,
            threshold,
            settings,
            conv,
            seed,
            connect=connect,
            progress=progress,
            journal=search_journal,
            on_event=on_event,
            outcome=outcome,
            start_index=start_index,
        )

    from ..runtime.parallel import resolve_workers, speculative_search

    n_workers = resolve_workers(workers)
    if pool is not None or n_workers > 1:
        return speculative_search(
            ranked,
            split,
            threshold,
            settings,
            conv,
            seed,
            workers=n_workers,
            progress=progress,
            pool=pool,
            journal=search_journal,
            on_event=on_event,
            outcome=outcome,
            start_index=start_index,
        )

    # The same compiled-tape reuse the parallel workers get: every
    # (candidate, run) rebuilds a structurally identical circuit, so
    # cache compilations for the duration of the search and restore the
    # caller's cache state afterwards.  Cache hits return clones sharing
    # only the immutable program, so results are unchanged.
    from ..quantum.engine import (
        compile_cache_info,
        disable_compile_cache,
        enable_compile_cache,
    )

    had_cache = compile_cache_info()["enabled"]
    if not had_cache:
        # Leave an already-configured cache (custom maxsize) untouched.
        enable_compile_cache()

    # Memory governance: one budget resolution for the whole search
    # (settings > env > a fraction of the free-memory probe), consulted
    # by every group plan; OOM-ladder steps surface as memory-degrade
    # events.  Budgets shape group sizes, never results.
    from ..runtime.memory import resolve_memory_budget
    from ..runtime.parallel import SearchEvent

    budget = resolve_memory_budget(getattr(settings, "memory_budget", None))

    def notify(message: str, candidates: Sequence[int] = ()) -> None:
        if on_event is not None:
            on_event(
                SearchEvent(
                    kind="memory-degrade",
                    message=message,
                    candidates=tuple(candidates),
                )
            )

    try:
        # Results of speculatively trained group members past the
        # commit frontier; an Exception entry re-raises at its
        # candidate's turn (exactly when the ungrouped loop would hit
        # it) and is discarded wholesale if a cheaper candidate passes.
        speculated: dict[int, CandidateResult | Exception] = {}
        index = start_index
        while index < len(ranked):
            if index in speculated:
                committed = speculated.pop(index)
                if isinstance(committed, Exception):
                    raise committed
                candidate = committed
            else:
                group = plan_group(
                    ranked,
                    index,
                    settings,
                    skip=speculated.keys(),
                    budget=budget,
                )
                if budget.active and on_event is not None:
                    ungoverned = plan_group(
                        ranked, index, settings, skip=speculated.keys()
                    )
                    if len(group) != len(ungoverned):
                        grew = len(group) > len(ungoverned)
                        on_event(
                            SearchEvent(
                                kind="group-resize",
                                message=(
                                    f"budget ({budget.source}) "
                                    f"{'grew' if grew else 'shrank'} group "
                                    f"at {index} to {len(group)} members "
                                    f"(ungoverned: {len(ungoverned)})"
                                ),
                                candidates=tuple(group),
                            )
                        )
                verdicts = (
                    _evaluate_group(
                        ranked,
                        group,
                        split,
                        settings,
                        seed,
                        conv,
                        notify=notify,
                    )
                    if len(group) > 1
                    else None
                )
                if verdicts is None:
                    candidate = _evaluate_candidate(
                        ranked[index],
                        split,
                        settings,
                        seed=seed,
                        candidate_index=index,
                        convention=conv,
                        notify=notify,
                    )
                else:
                    # Re-enter the loop: the anchor's verdict now sits
                    # in `speculated` and commits through the single
                    # raise-or-commit branch above.
                    speculated.update(verdicts)
                    continue
            outcome.evaluated.append(candidate)
            if search_journal is not None:
                # Journal before the progress callback: if the driver
                # dies inside its own callback, the committed candidate
                # is already durable and a resume replays it.
                search_journal.append(index, candidate)
            if progress is not None:
                progress(candidate)
            if candidate.passes(threshold):
                outcome.winner = candidate
                break
            index += 1
        return outcome
    finally:
        if not had_cache:
            disable_compile_cache()
