"""FLOPs-ordered sequential grid search (paper sections III-E/F).

The paper's trick for taming exhaustive search: sort all candidate
architectures by (statically computed) FLOPs *before* training anything,
then train in ascending order and stop at the first candidate whose
averaged max-over-epochs train **and** validation accuracies reach the
threshold.  The first success is, by construction, the cheapest
successful model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..data.splits import DataSplit
from ..exceptions import SearchError
from ..flops.conventions import CountingConvention, get_convention
from ..nn.optimizers import Adam
from ..nn.training import History, train_model
from .search_space import ModelSpec

__all__ = ["TrainingSettings", "CandidateResult", "SearchOutcome", "rank_by_flops", "grid_search"]


@dataclass(frozen=True)
class TrainingSettings:
    """How each candidate run is trained (paper defaults)."""

    epochs: int = 100
    batch_size: int = 8
    learning_rate: float = 0.001
    runs: int = 5
    early_stop_threshold: float | None = None


@dataclass
class CandidateResult:
    """Aggregated outcome of the runs of one candidate architecture."""

    spec: ModelSpec
    flops: int
    params: int
    train_accuracies: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)
    epochs_run: list[int] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def mean_train_accuracy(self) -> float:
        return float(np.mean(self.train_accuracies))

    @property
    def mean_val_accuracy(self) -> float:
        return float(np.mean(self.val_accuracies))

    def passes(self, threshold: float) -> bool:
        """The paper's success condition: both averages >= threshold."""
        return (
            self.mean_train_accuracy >= threshold
            and self.mean_val_accuracy >= threshold
        )


@dataclass
class SearchOutcome:
    """Result of one grid search at one complexity level."""

    threshold: float
    winner: CandidateResult | None
    evaluated: list[CandidateResult] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.winner is not None

    @property
    def candidates_trained(self) -> int:
        return len(self.evaluated)


def rank_by_flops(
    specs: Sequence[ModelSpec],
    convention: str | CountingConvention = "paper",
) -> list[ModelSpec]:
    """Sort ascending by FLOPs; ties broken by parameter count then label
    (fully deterministic)."""
    conv = get_convention(convention)
    return sorted(
        specs, key=lambda s: (s.flops(conv), s.param_count, s.label)
    )


def _evaluate_candidate(
    spec: ModelSpec,
    split: DataSplit,
    settings: TrainingSettings,
    seed: int,
    candidate_index: int,
    convention: CountingConvention,
) -> CandidateResult:
    """Train one candidate ``settings.runs`` times and aggregate."""
    result = CandidateResult(
        spec=spec, flops=spec.flops(convention), params=spec.param_count
    )
    for run in range(settings.runs):
        rng = np.random.default_rng((seed, candidate_index, run))
        model = spec.build(rng=rng)
        history: History = train_model(
            model,
            split.x_train,
            split.y_train,
            split.x_val,
            split.y_val,
            epochs=settings.epochs,
            batch_size=settings.batch_size,
            optimizer=Adam(learning_rate=settings.learning_rate),
            rng=rng,
            early_stop_threshold=settings.early_stop_threshold,
        )
        result.train_accuracies.append(history.max_train_accuracy)
        result.val_accuracies.append(history.max_val_accuracy)
        result.epochs_run.append(history.epochs_run)
        result.wall_time_s += history.wall_time_s
    return result


def grid_search(
    specs: Sequence[ModelSpec],
    split: DataSplit,
    threshold: float = 0.90,
    settings: TrainingSettings | None = None,
    convention: str | CountingConvention = "paper",
    seed: int = 0,
    max_candidates: int | None = None,
    progress: Callable[[CandidateResult], None] | None = None,
) -> SearchOutcome:
    """Run the FLOPs-sorted sequential search.

    Parameters
    ----------
    specs:
        The search space (any order; ranked internally).
    split:
        Train/validation data for this complexity level.
    threshold:
        Accuracy both averaged metrics must reach (paper: 0.90).
    settings:
        Per-candidate training configuration.
    seed:
        Base seed; run ``r`` of candidate ``c`` uses ``(seed, c, r)``
        derived streams, so searches are reproducible.
    max_candidates:
        Optional cap on how many candidates may be trained (reduced
        profiles); ``None`` trains until success or exhaustion.
    progress:
        Optional callback invoked after each candidate.

    Returns
    -------
    SearchOutcome
        ``winner`` is the first (lowest-FLOPs) passing candidate, or
        ``None`` if the space (or the cap) was exhausted.
    """
    if not specs:
        raise SearchError("empty search space")
    settings = settings or TrainingSettings()
    conv = get_convention(convention)
    ranked = rank_by_flops(specs, conv)
    if max_candidates is not None:
        ranked = ranked[:max_candidates]

    outcome = SearchOutcome(threshold=threshold, winner=None)
    for index, spec in enumerate(ranked):
        candidate = _evaluate_candidate(
            spec,
            split,
            settings,
            seed=seed,
            candidate_index=index,
            convention=conv,
        )
        outcome.evaluated.append(candidate)
        if progress is not None:
            progress(candidate)
        if candidate.passes(threshold):
            outcome.winner = candidate
            break
    return outcome
