"""The paper's published numbers, as data.

Everything the paper reports numerically — the Table I decomposition,
the Fig. 10 headline rates, and the abstract's claims — collected in one
module so reports, tests and EXPERIMENTS.md compare against a single
source of truth (with page references).

Note: the paper's percentages are internally inconsistent in places
(e.g. the abstract quotes 88.1% for classical FLOPs growth where section
IV-E derives 88.5%; section IV-E quotes BEL parameter growth as both
89.6% and, in the abstract, 81.4% is attributed to HQNNs generally).
We record the section IV-E values and the derivable identities; the
inconsistencies are annotated in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PaperRates",
    "FLOPS_RATES",
    "PARAM_RATES",
    "FLOPS_ABSOLUTE_INCREASE",
    "PARAM_ABSOLUTE_INCREASE",
    "TABLE1_WINNERS",
    "ACCURACY_THRESHOLD",
    "headline_claim_ordering",
]

#: The paper's iso-accuracy condition (section III).
ACCURACY_THRESHOLD = 0.90


@dataclass(frozen=True)
class PaperRates:
    """One family's published low->high complexity growth."""

    family: str
    rate_percent: float  #: (v110 - v10) / v110 * 100, section IV-E
    absolute: float  #: v110 - v10


#: Fig. 10(a) / section IV-E(a): FLOPs growth from 10 to 110 features.
FLOPS_RATES = {
    "classical": PaperRates("classical", 88.5, 3285.0),
    "bel": PaperRates("bel", 80.13, 3941.6),
    "sel": PaperRates("sel", 53.1, 1800.0),
}

#: Fig. 10(b) / section IV-E(b): parameter growth from 10 to 110 features.
PARAM_RATES = {
    "classical": PaperRates("classical", 88.5, 520.8),
    "bel": PaperRates("bel", 89.6, 441.0),
    "sel": PaperRates("sel", 81.4, 276.0),
}

#: Convenience views.
FLOPS_ABSOLUTE_INCREASE = {k: v.absolute for k, v in FLOPS_RATES.items()}
PARAM_ABSOLUTE_INCREASE = {k: v.absolute for k, v in PARAM_RATES.items()}

#: Table I's winning circuit per (ansatz, feature size): (qubits, layers).
TABLE1_WINNERS = {
    ("bel", 10): (3, 2),
    ("bel", 40): (3, 2),
    ("bel", 80): (3, 4),
    ("bel", 110): (4, 4),
    ("sel", 10): (3, 2),
    ("sel", 40): (3, 2),
    ("sel", 80): (3, 2),
    ("sel", 110): (3, 2),
}


def headline_claim_ordering(rates: dict[str, float]) -> bool:
    """The paper's central claim, as a predicate over measured rates:
    hybrid-SEL grows slowest, classical fastest.

    >>> headline_claim_ordering({"classical": 0.885, "bel": 0.80, "sel": 0.53})
    True
    """
    return rates["sel"] < rates["bel"] < rates["classical"] or (
        rates["sel"] < rates["classical"] and rates["sel"] < rates["bel"]
    )
