"""Keras-style layers with explicit forward/backward passes.

Each layer caches whatever its backward pass needs during ``forward`` and
exposes its trainable state through two parallel lists, ``params`` and
``grads`` (same shapes).  Optimizers update ``params`` in place, which
keeps the model, its layers and the optimizer views consistent.

The gradient implementations are validated against central finite
differences in ``tests/nn/test_gradients.py``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from . import initializers

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "Softmax",
    "Flatten",
    "Tanh",
    "Sigmoid",
    "Dropout",
]


class Layer:
    """Base class: a differentiable, optionally-parametrized transform."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__
        self.params: list[np.ndarray] = []
        self.grads: list[np.ndarray] = []

    # -- interface ---------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def output_dim(self, input_dim: int) -> int:
        """Feature dimension produced for a given input dimension."""
        return input_dim

    # -- bookkeeping ---------------------------------------------------------

    @property
    def param_count(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(p.size for p in self.params))

    def zero_grads(self) -> None:
        for g in self.grads:
            g[...] = 0.0

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(params={self.param_count})"


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``.

    ``W`` has shape ``(in_features, out_features)``; ``b`` has shape
    ``(out_features,)``.  Defaults mirror Keras (Glorot-uniform weights,
    zero biases).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        weight_init: str = "glorot_uniform",
        bias_init: str = "zeros",
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        if in_features < 1 or out_features < 1:
            raise ConfigurationError(
                f"Dense dims must be positive, got ({in_features}, "
                f"{out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng()
        w_init = initializers.get(weight_init)
        b_init = initializers.get(bias_init)
        self.weight = w_init((in_features, out_features), rng)
        self.bias = b_init((out_features,), rng)
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]
        self._cache_x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name} expected (batch, {self.in_features}), "
                f"got {x.shape}"
            )
        if training:
            self._cache_x = x
        return x @ self.weight + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache_x is None:
            raise ShapeError(
                f"{self.name}.backward called without a training forward"
            )
        x = self._cache_x
        self.grads[0] += x.T @ grad
        self.grads[1] += grad.sum(axis=0)
        return grad @ self.weight.T

    def output_dim(self, input_dim: int) -> int:
        if input_dim != self.in_features:
            raise ShapeError(
                f"{self.name} expects {self.in_features} inputs, "
                f"got {input_dim}"
            )
        return self.out_features


class ReLU(Layer):
    """Elementwise rectifier."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name=name)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0.0
        if training:
            self._mask = mask
        return np.where(mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError(
                f"{self.name}.backward called without a training forward"
            )
        return grad * self._mask


class Softmax(Layer):
    """Row-wise softmax (the paper's output activation).

    Backward implements the full Jacobian-vector product
    ``p * (g - sum(g * p))`` so it composes with any loss defined on
    probabilities.
    """

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name=name)
        self._probs: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        shifted = x - x.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        if training:
            self._probs = probs
        return probs

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._probs is None:
            raise ShapeError(
                f"{self.name}.backward called without a training forward"
            )
        p = self._probs
        dot = np.sum(grad * p, axis=1, keepdims=True)
        return p * (grad - dot)


class Tanh(Layer):
    """Elementwise hyperbolic tangent.

    Not used by the paper's architectures, but a common alternative for
    the hybrid input layer: it bounds the encoded angles to (-1, 1)
    without discarding sign information like a ReLU does.
    """

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name=name)
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(x)
        if training:
            self._out = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise ShapeError(
                f"{self.name}.backward called without a training forward"
            )
        return grad * (1.0 - self._out**2)


class Sigmoid(Layer):
    """Elementwise logistic function."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name=name)
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.empty_like(x, dtype=np.float64)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        if training:
            self._out = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise ShapeError(
                f"{self.name}.backward called without a training forward"
            )
        return grad * self._out * (1.0 - self._out)


class Dropout(Layer):
    """Inverted dropout: active only during training.

    Provided for regularization experiments on the noisy high-feature
    levels; the paper's models do not use it.
    """

    def __init__(
        self,
        rate: float,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(
                f"dropout rate must be in [0, 1), got {rate}"
            )
        self.rate = float(rate)
        self._rng = rng or np.random.default_rng()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None if not training else np.ones_like(x)
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep) / keep
        self._mask = mask
        return x * mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError(
                f"{self.name}.backward called without a training forward"
            )
        return grad * self._mask


class Flatten(Layer):
    """Collapse all trailing axes into the feature axis."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name=name)
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise ShapeError(
                f"{self.name}.backward called without a training forward"
            )
        return grad.reshape(self._shape)
