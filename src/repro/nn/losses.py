"""Loss functions.

The paper's models end in an explicit softmax layer followed by
categorical cross-entropy, so :class:`CrossEntropy` operates on
*probabilities* (with an epsilon clip guarding the log/division).  The
composition softmax-then-cross-entropy reproduces the familiar ``p - y``
logits gradient exactly wherever the clip is inactive; the fused
:class:`SoftmaxCrossEntropy` (on logits) is also provided for users who
prefer the numerically fused form.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError

__all__ = ["Loss", "CrossEntropy", "SoftmaxCrossEntropy", "MeanSquaredError"]

_EPS = 1e-12


class Loss:
    """Base class: scalar loss plus gradient w.r.t. the model output."""

    def value(self, output: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, output: np.ndarray, targets: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _check(output: np.ndarray, targets: np.ndarray) -> None:
        if output.shape != targets.shape:
            raise ShapeError(
                f"output {output.shape} and targets {targets.shape} differ"
            )


class CrossEntropy(Loss):
    """Categorical cross-entropy on probabilities with one-hot targets.

    ``L = -mean_b sum_c y_{bc} log(p_{bc})``.
    """

    def value(self, output: np.ndarray, targets: np.ndarray) -> float:
        self._check(output, targets)
        clipped = np.clip(output, _EPS, 1.0)
        return float(-np.mean(np.sum(targets * np.log(clipped), axis=1)))

    def gradient(self, output: np.ndarray, targets: np.ndarray) -> np.ndarray:
        self._check(output, targets)
        clipped = np.clip(output, _EPS, 1.0)
        batch = output.shape[0]
        return -(targets / clipped) / batch


class SoftmaxCrossEntropy(Loss):
    """Fused softmax + cross-entropy on *logits* (stable log-sum-exp)."""

    def value(self, output: np.ndarray, targets: np.ndarray) -> float:
        self._check(output, targets)
        shifted = output - output.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(
            np.sum(np.exp(shifted), axis=1, keepdims=True)
        )
        return float(-np.mean(np.sum(targets * log_probs, axis=1)))

    def gradient(self, output: np.ndarray, targets: np.ndarray) -> np.ndarray:
        self._check(output, targets)
        shifted = output - output.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        return (probs - targets) / output.shape[0]


class MeanSquaredError(Loss):
    """``L = mean_b mean_c (p - y)^2`` — provided for completeness."""

    def value(self, output: np.ndarray, targets: np.ndarray) -> float:
        self._check(output, targets)
        return float(np.mean((output - targets) ** 2))

    def gradient(self, output: np.ndarray, targets: np.ndarray) -> np.ndarray:
        self._check(output, targets)
        return 2.0 * (output - targets) / output.size
