"""Gradient-descent optimizers.

:class:`Adam` mirrors Keras' implementation and defaults (the paper trains
every model with Adam at learning rate 0.001).  Optimizers mutate the
parameter arrays in place so the layers' views stay valid.
"""

from __future__ import annotations

import numpy as np

from ..backends import active_backend
from ..exceptions import ConfigurationError

__all__ = ["Optimizer", "SGD", "Adam", "StackedAdam"]


class Optimizer:
    """Base class for in-place parameter updates."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(
                f"learning rate must be positive, got {learning_rate}"
            )
        self.learning_rate = float(learning_rate)

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        raise NotImplementedError

    @staticmethod
    def _check(params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ConfigurationError(
                f"{len(params)} params but {len(grads)} grads"
            )


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: list[np.ndarray] | None = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self._check(params, grads)
        if self.momentum == 0.0:
            for p, g in zip(params, grads):
                p -= self.learning_rate * g
            return
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.learning_rate * g
            p += v


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with Keras defaults."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        epsilon: float = 1e-7,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta_1 < 1.0 or not 0.0 <= beta_2 < 1.0:
            raise ConfigurationError("betas must be in [0, 1)")
        self.beta_1 = float(beta_1)
        self.beta_2 = float(beta_2)
        self.epsilon = float(epsilon)
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self._check(params, grads)
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        lr_t = self.learning_rate * (
            np.sqrt(1.0 - self.beta_2**self._t) / (1.0 - self.beta_1**self._t)
        )
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta_1
            m += (1.0 - self.beta_1) * g
            v *= self.beta_2
            v += (1.0 - self.beta_2) * np.square(g)
            p -= lr_t * m / (np.sqrt(v) + self.epsilon)


class StackedAdam(Adam):
    """Adam over run-stacked ``(R, ...)`` parameters with freeze masking.

    Used by :class:`repro.nn.training.VectorizedTrainer`: every
    parameter (and every moment buffer) carries a leading run axis, so
    one elementwise update steps all R runs' Adam states at once —
    bit-identical to R independent :class:`Adam` instances stepping in
    lockstep, because the update is elementwise and the shared ``t``
    counter equals each active run's own step count.

    ``active`` masks runs that hit their early-stop threshold: a frozen
    run's parameters *and* moment estimates stay untouched (exactly as
    if its scalar training loop had broken out), while the surviving
    runs keep stepping.  Frozen runs never resume, so the shared ``t``
    stays equal to every active run's step count.

    ``row_maps`` supports cross-candidate stacks
    (:class:`repro.nn.stacked.GroupedStack`): parameter stacks whose
    leading axis covers only a subset of the group's slices carry an
    index map from their rows to global slice ids, and the ``active``
    mask is translated through it per parameter.

    ``compact`` mirrors the stacks' frozen-row compaction: moment
    buffers gather the surviving rows (bit-identical values), and a
    parameter stack whose rows all froze drops its state entirely.

    The parameter stacks may live on any array backend (the stacked
    layers put them wherever :func:`repro.backends.active_backend`
    said at construction); the update routes its elementwise primitives
    through the same backend so moments stay device-resident.  On the
    NumPy backend every call is the verbatim pre-backend sequence.
    """

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        epsilon: float = 1e-7,
        backend=None,
    ) -> None:
        super().__init__(learning_rate, beta_1, beta_2, epsilon)
        self._xp = backend if backend is not None else active_backend()

    def step(
        self,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        active: np.ndarray | None = None,
        row_maps: "list[np.ndarray | None] | None" = None,
    ) -> None:
        xp = self._xp
        self._check(params, grads)
        if self._m is None:
            self._m = [xp.zeros_like(p) for p in params]
            self._v = [xp.zeros_like(p) for p in params]
        self._t += 1
        lr_t = self.learning_rate * (
            np.sqrt(1.0 - self.beta_2**self._t) / (1.0 - self.beta_1**self._t)
        )
        if active is None or bool(np.all(active)):
            # Unmasked update: same elementwise sequence as Adam.step,
            # with the array primitives routed through the backend.
            for p, g, m, v in zip(params, grads, self._m, self._v):
                m *= self.beta_1
                m += (1.0 - self.beta_1) * g
                v *= self.beta_2
                v += (1.0 - self.beta_2) * xp.square(g)
                p -= lr_t * m / (xp.sqrt(v) + self.epsilon)
            return
        idx = np.flatnonzero(active)
        for i, (p, g, m, v) in enumerate(zip(params, grads, self._m, self._v)):
            rows = row_maps[i] if row_maps is not None else None
            local = idx if rows is None else np.flatnonzero(active[rows])
            if local.size == 0:
                continue
            # Fancy indexing copies the active slices; the arithmetic on
            # them is the same elementwise sequence as the unmasked
            # update, then the results are written back in place.
            ms, vs, gs = m[local], v[local], g[local]
            ms *= self.beta_1
            ms += (1.0 - self.beta_1) * gs
            vs *= self.beta_2
            vs += (1.0 - self.beta_2) * xp.square(gs)
            m[local] = ms
            v[local] = vs
            p[local] = p[local] - lr_t * ms / (xp.sqrt(vs) + self.epsilon)

    def compact(self, row_keeps: "list[np.ndarray]") -> None:
        """Gather each parameter's surviving moment rows.

        ``row_keeps`` aligns with the parameter list of the *last* step:
        one index array per parameter; an empty array drops the
        parameter's state (its stack left the group).  No-op before the
        first step (no moments exist yet).
        """
        if self._m is None:
            return
        kept_m: list[np.ndarray] = []
        kept_v: list[np.ndarray] = []
        for m, v, keep in zip(self._m, self._v, row_keeps):
            if keep.size:
                kept_m.append(m[keep])
                kept_v.append(v[keep])
        self._m = kept_m
        self._v = kept_v
