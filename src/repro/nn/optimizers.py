"""Gradient-descent optimizers.

:class:`Adam` mirrors Keras' implementation and defaults (the paper trains
every model with Adam at learning rate 0.001).  Optimizers mutate the
parameter arrays in place so the layers' views stay valid.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["Optimizer", "SGD", "Adam", "StackedAdam"]


class Optimizer:
    """Base class for in-place parameter updates."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(
                f"learning rate must be positive, got {learning_rate}"
            )
        self.learning_rate = float(learning_rate)

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        raise NotImplementedError

    @staticmethod
    def _check(params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ConfigurationError(
                f"{len(params)} params but {len(grads)} grads"
            )


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: list[np.ndarray] | None = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self._check(params, grads)
        if self.momentum == 0.0:
            for p, g in zip(params, grads):
                p -= self.learning_rate * g
            return
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.learning_rate * g
            p += v


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with Keras defaults."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        epsilon: float = 1e-7,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta_1 < 1.0 or not 0.0 <= beta_2 < 1.0:
            raise ConfigurationError("betas must be in [0, 1)")
        self.beta_1 = float(beta_1)
        self.beta_2 = float(beta_2)
        self.epsilon = float(epsilon)
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self._check(params, grads)
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        lr_t = self.learning_rate * (
            np.sqrt(1.0 - self.beta_2**self._t) / (1.0 - self.beta_1**self._t)
        )
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta_1
            m += (1.0 - self.beta_1) * g
            v *= self.beta_2
            v += (1.0 - self.beta_2) * np.square(g)
            p -= lr_t * m / (np.sqrt(v) + self.epsilon)


class StackedAdam(Adam):
    """Adam over run-stacked ``(R, ...)`` parameters with freeze masking.

    Used by :class:`repro.nn.training.VectorizedTrainer`: every
    parameter (and every moment buffer) carries a leading run axis, so
    one elementwise update steps all R runs' Adam states at once —
    bit-identical to R independent :class:`Adam` instances stepping in
    lockstep, because the update is elementwise and the shared ``t``
    counter equals each active run's own step count.

    ``active`` masks runs that hit their early-stop threshold: a frozen
    run's parameters *and* moment estimates stay untouched (exactly as
    if its scalar training loop had broken out), while the surviving
    runs keep stepping.  Frozen runs never resume, so the shared ``t``
    stays equal to every active run's step count.
    """

    def step(
        self,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        active: np.ndarray | None = None,
    ) -> None:
        if active is None or bool(np.all(active)):
            super().step(params, grads)
            return
        self._check(params, grads)
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        lr_t = self.learning_rate * (
            np.sqrt(1.0 - self.beta_2**self._t) / (1.0 - self.beta_1**self._t)
        )
        idx = np.flatnonzero(active)
        for p, g, m, v in zip(params, grads, self._m, self._v):
            # Fancy indexing copies the active slices; the arithmetic on
            # them is the same elementwise sequence as the unmasked
            # update, then the results are written back in place.
            ms, vs, gs = m[idx], v[idx], g[idx]
            ms *= self.beta_1
            ms += (1.0 - self.beta_1) * gs
            vs *= self.beta_2
            vs += (1.0 - self.beta_2) * np.square(gs)
            m[idx] = ms
            v[idx] = vs
            p[idx] = p[idx] - lr_t * ms / (np.sqrt(vs) + self.epsilon)
