"""Run-stacked models: R same-structure models trained as one stack.

The paper's protocol trains every candidate architecture ``runs`` times
with an identical structure — only the seed-derived initial parameters
differ — so a training step's work factors as *structure x runs*.  This
module folds the run axis into the batch axis: a
:class:`StackedSequential` holds one set of ``(R, ...)``-shaped
parameter stacks and executes all R runs' forward/backward passes in a
single sweep over run-major ``(R * B, features)`` activations (run ``r``
owns rows ``r*B .. (r+1)*B``).

Per-sample arithmetic is *bit-identical* to running the R source models
independently:

* :class:`StackedDense` applies one gemm per run slice — NumPy's
  batched ``matmul`` over a ``(R, B, in) @ (R, in, out)`` stack performs
  the same per-slice gemm a scalar :class:`~repro.nn.layers.Dense` would;
* parameter-free elementwise/row-wise layers (ReLU, Tanh, Sigmoid,
  Softmax, Flatten) operate row-independently, so the scalar
  implementations are reused as-is on the fused batch;
* the quantum layer's run-stacked engine path
  (:meth:`repro.quantum.engine.CompiledTape.execute` with ``runs=R``)
  is differentially tested bitwise against per-run execution.

Stacking is *structural*: :func:`stack_models` inspects the R source
models layer by layer and returns ``None`` whenever any layer has no
registered stacker (custom layer types, Dropout, parameter-shift
quantum layers...).  Callers fall back to the scalar per-run loop in
that case, so vectorization is always an optimization, never a
behaviour change.  Layer types register themselves via
:func:`register_stacker` (the hybrid quantum layer does this on import,
keeping this module free of a quantum dependency).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..exceptions import ShapeError
from .layers import Dense, Flatten, Layer, ReLU, Sigmoid, Softmax, Tanh
from .model import Sequential

__all__ = [
    "StackedLayer",
    "StackedDense",
    "StackedSequential",
    "register_stacker",
    "stack_models",
]


class StackedLayer:
    """Base class: one layer position of R run-stacked models.

    The interface mirrors :class:`~repro.nn.layers.Layer` but activations
    carry a fused run-major ``(R * B, features)`` batch.  ``params`` and
    ``grads`` hold ``(R, ...)`` stacks (leading run axis).
    """

    def __init__(self, runs: int, name: str) -> None:
        self.runs = runs
        self.name = name
        self.params: list[np.ndarray] = []
        self.grads: list[np.ndarray] = []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grads(self) -> None:
        for g in self.grads:
            g[...] = 0.0

    def sync_to_layers(self, layers: Sequence[Layer]) -> None:
        """Copy the per-run parameter slices back into the source layers."""


class _StackedPassthrough(StackedLayer):
    """A parameter-free row-wise layer applied to the fused batch.

    Elementwise and row-wise layers compute each output row from its own
    input row only, so applying one scalar instance to the fused
    ``(R*B, F)`` batch is exactly R independent applications.
    """

    def __init__(self, runs: int, layer: Layer) -> None:
        super().__init__(runs, name=f"stacked_{layer.name}")
        self._layer = layer

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self._layer.forward(x, training=training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self._layer.backward(grad)


class StackedDense(StackedLayer):
    """R :class:`~repro.nn.layers.Dense` layers as one batched stack.

    Weights are ``(R, in, out)`` and biases ``(R, out)``.  The forward
    and backward gemms run per run slice: one dgemm per run keeps the
    arithmetic bit-identical to the scalar layer (a single fused gemm
    would let BLAS block differently and drift in the last ulp, which
    run-vectorized searches are not allowed to do).
    """

    def __init__(self, runs: int, layers: Sequence[Dense]) -> None:
        super().__init__(runs, name=f"stacked_{layers[0].name}")
        self.in_features = layers[0].in_features
        self.out_features = layers[0].out_features
        self.weight = np.stack([lay.weight for lay in layers])
        self.bias = np.stack([lay.bias for lay in layers])
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]
        self._cache_x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if (
            x.ndim != 2
            or x.shape[1] != self.in_features
            or x.shape[0] % self.runs
        ):
            raise ShapeError(
                f"{self.name} expected (runs*batch, {self.in_features}), "
                f"got {x.shape} for runs={self.runs}"
            )
        if training:
            self._cache_x = x
        per = x.shape[0] // self.runs
        out = np.empty((x.shape[0], self.out_features))
        for r in range(self.runs):
            sl = slice(r * per, (r + 1) * per)
            out[sl] = x[sl] @ self.weight[r] + self.bias[r]
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache_x is None:
            raise ShapeError(
                f"{self.name}.backward called without a training forward"
            )
        x = self._cache_x
        per = x.shape[0] // self.runs
        out = np.empty((x.shape[0], self.in_features))
        for r in range(self.runs):
            sl = slice(r * per, (r + 1) * per)
            self.grads[0][r] += x[sl].T @ grad[sl]
            self.grads[1][r] += grad[sl].sum(axis=0)
            out[sl] = grad[sl] @ self.weight[r].T
        return out

    def sync_to_layers(self, layers: Sequence[Layer]) -> None:
        for r, lay in enumerate(layers):
            lay.weight[...] = self.weight[r]
            lay.bias[...] = self.bias[r]


#: type -> stacker(runs, layers) registry.  Keyed on the *exact* type:
#: a subclass may override behaviour the stacker does not model, so it
#: conservatively falls back to the scalar path instead.
_STACKERS: dict[type, Callable[[int, Sequence[Layer]], StackedLayer | None]] = {}

#: Parameter-free row-wise layers whose scalar implementation is reused
#: directly on the fused batch.
_PASSTHROUGH_TYPES = (ReLU, Tanh, Sigmoid, Softmax, Flatten)


def register_stacker(
    layer_type: type,
    stacker: Callable[[int, Sequence[Layer]], StackedLayer | None],
) -> None:
    """Register a stacked implementation for an exact layer type.

    ``stacker(runs, layers)`` receives the R aligned layer instances and
    returns a :class:`StackedLayer`, or ``None`` if these particular
    instances cannot be stacked (the model then falls back to scalar
    training).
    """
    _STACKERS[layer_type] = stacker


def _stack_dense(runs: int, layers: Sequence[Layer]) -> StackedLayer | None:
    first = layers[0]
    for lay in layers:
        if (
            lay.in_features != first.in_features
            or lay.out_features != first.out_features
        ):
            return None
    return StackedDense(runs, layers)


register_stacker(Dense, _stack_dense)


class StackedSequential:
    """R structurally identical :class:`Sequential` models as one stack.

    Build via :func:`stack_models`.  ``forward``/``backward`` take fused
    run-major activations; ``parameters()``/``gradients()`` expose the
    ``(R, ...)`` stacks (feed them to a stacked optimizer such as
    :class:`repro.nn.optimizers.StackedAdam`).
    """

    def __init__(
        self,
        runs: int,
        layers: Sequence[StackedLayer],
        models: Sequence[Sequential],
    ) -> None:
        self.runs = runs
        self.layers = list(layers)
        self._models = list(models)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x, training=False)

    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params]

    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads]

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    def sync_to_models(self) -> None:
        """Write the trained per-run parameters back into the R models."""
        for pos, layer in enumerate(self.layers):
            layer.sync_to_layers([m.layers[pos] for m in self._models])


def stack_models(models: Sequence[Sequential]) -> StackedSequential | None:
    """Fold R structurally identical models into one stacked model.

    Returns ``None`` — vectorization unavailable, train the models
    scalar — unless every layer position holds R instances of one exact
    type that is either a registered stackable type or a known
    parameter-free row-wise layer.
    """
    models = list(models)
    if len(models) < 2:
        return None
    n_layers = len(models[0].layers)
    if any(len(m.layers) != n_layers for m in models[1:]):
        return None
    runs = len(models)
    stacked: list[StackedLayer] = []
    for pos in range(n_layers):
        layers = [m.layers[pos] for m in models]
        tp = type(layers[0])
        if any(type(lay) is not tp for lay in layers[1:]):
            return None
        stacker = _STACKERS.get(tp)
        if stacker is not None:
            entry = stacker(runs, layers)
            if entry is None:
                return None
            stacked.append(entry)
        elif tp in _PASSTHROUGH_TYPES:
            stacked.append(_StackedPassthrough(runs, layers[0]))
        else:
            return None
    return StackedSequential(runs, stacked, models)
