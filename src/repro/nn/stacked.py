"""Run-stacked models: R same-structure models trained as one stack.

The paper's protocol trains every candidate architecture ``runs`` times
with an identical structure — only the seed-derived initial parameters
differ — so a training step's work factors as *structure x runs*.  This
module folds the run axis into the batch axis: a
:class:`StackedSequential` holds one set of ``(R, ...)``-shaped
parameter stacks and executes all R runs' forward/backward passes in a
single sweep over run-major ``(R * B, features)`` activations (run ``r``
owns rows ``r*B .. (r+1)*B``).

Per-sample arithmetic is *bit-identical* to running the R source models
independently:

* :class:`StackedDense` applies one gemm per run slice — NumPy's
  batched ``matmul`` over a ``(R, B, in) @ (R, in, out)`` stack performs
  the same per-slice gemm a scalar :class:`~repro.nn.layers.Dense` would;
* parameter-free elementwise/row-wise layers (ReLU, Tanh, Sigmoid,
  Softmax, Flatten) operate row-independently, so the scalar
  implementations are reused as-is on the fused batch;
* the quantum layer's run-stacked engine path
  (:meth:`repro.quantum.engine.CompiledTape.execute` with ``runs=R``)
  is differentially tested bitwise against per-run execution.

Stacking is *structural*: :func:`stack_models` inspects the R source
models layer by layer and returns ``None`` whenever any layer has no
registered stacker (custom layer types, Dropout, parameter-shift
quantum layers...).  Callers fall back to the scalar per-run loop in
that case, so vectorization is always an optimization, never a
behaviour change.  Layer types register themselves via
:func:`register_stacker` (the hybrid quantum layer does this on import,
keeping this module free of a quantum dependency).

**Cross-candidate stacks.**  :func:`stack_candidates` generalizes the
run axis to a *slice* axis spanning several candidates: C candidates x
R runs whose models share one expensive pivot structure (the quantum
layer — same qubits/ansatz/depth) merge into a single
:class:`GroupedStack` of S = sum(R_c) slices.  Heterogeneous classical
heads are handled per candidate (each candidate's prefix layers form
their own R_c-slice stack over that candidate's contiguous row block),
while the pivot and everything after it — structurally identical across
the group — stack across all S slices.  Per-slice arithmetic is again
bit-identical to the per-candidate stacks (and transitively to scalar
training): prefix gemms see the same per-slice row blocks, and the
pivot's per-slice engine kernels do not care whether neighbouring
slices belong to the same candidate.

**Frozen-row compaction.**  Every stacked layer supports
``compact(keep)``: dropping a slice's rows from the parameter stacks
(an index-map gather) leaves the surviving slices' per-slice kernels —
einsum-only quantum kernels, per-slice gemms — bit-identical, so a run
that early-stops (or a candidate whose runs all finished) can leave the
fused sweep instead of riding along frozen.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..backends import active_backend
from ..exceptions import ShapeError
from .layers import Dense, Flatten, Layer, ReLU, Sigmoid, Softmax, Tanh
from .model import Sequential

__all__ = [
    "StackedLayer",
    "StackedDense",
    "StackedSequential",
    "GroupedStack",
    "register_stacker",
    "register_group_pivot",
    "stack_models",
    "stack_candidates",
]


class StackedLayer:
    """Base class: one layer position of R run-stacked models.

    The interface mirrors :class:`~repro.nn.layers.Layer` but activations
    carry a fused run-major ``(R * B, features)`` batch.  ``params`` and
    ``grads`` hold ``(R, ...)`` stacks (leading run axis).
    """

    def __init__(self, runs: int, name: str) -> None:
        self.runs = runs
        self.name = name
        self.params: list[np.ndarray] = []
        self.grads: list[np.ndarray] = []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grads(self) -> None:
        for g in self.grads:
            g[...] = 0.0

    def peak_bytes(self, rows: int) -> int:
        """Predicted activation working-set bytes of one training step
        over a fused ``(rows, features)`` batch, excluding the parameter
        stacks (the owning stack counts those, with their optimizer
        moments).  Parameter-free layers cost nothing beyond the
        activations already counted by their neighbours."""
        return 0

    def sync_to_layers(self, layers: Sequence[Layer]) -> None:
        """Copy the per-run parameter slices back into the source layers."""

    def compact(self, keep: np.ndarray) -> None:
        """Drop all run rows not in ``keep`` (an index array).

        The gather is a plain fancy-index copy, so the surviving rows'
        values — and every per-slice kernel that consumes them — are
        bit-identical to the uncompacted stack's.  Subclasses with
        parameters extend this to gather their stacks.
        """
        self.runs = int(np.asarray(keep).size)


class _StackedPassthrough(StackedLayer):
    """A parameter-free row-wise layer applied to the fused batch.

    Elementwise and row-wise layers compute each output row from its own
    input row only, so applying one scalar instance to the fused
    ``(R*B, F)`` batch is exactly R independent applications.
    """

    def __init__(self, runs: int, layer: Layer) -> None:
        super().__init__(runs, name=f"stacked_{layer.name}")
        self._layer = layer
        self._xp = active_backend()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # Scalar layer implementations are NumPy; on a device backend
        # the activation round-trips through host here.
        if not self._xp.is_numpy:
            x = self._xp.to_numpy(x)
        return self._layer.forward(x, training=training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if not self._xp.is_numpy:
            grad = self._xp.to_numpy(grad)
        return self._layer.backward(grad)


class StackedDense(StackedLayer):
    """R :class:`~repro.nn.layers.Dense` layers as one batched stack.

    Weights are ``(R, in, out)`` and biases ``(R, out)``.  The forward
    and backward gemms run per run slice: one dgemm per run keeps the
    arithmetic bit-identical to the scalar layer (a single fused gemm
    would let BLAS block differently and drift in the last ulp, which
    run-vectorized searches are not allowed to do).
    """

    def __init__(self, runs: int, layers: Sequence[Dense]) -> None:
        super().__init__(runs, name=f"stacked_{layers[0].name}")
        self._xp = active_backend()
        self.in_features = layers[0].in_features
        self.out_features = layers[0].out_features
        # asarray is a no-copy identity on the NumPy backend and a
        # one-time device upload elsewhere; the stacks then stay
        # device-resident for the whole training loop.
        self.weight = self._xp.asarray(
            np.stack([lay.weight for lay in layers])
        )
        self.bias = self._xp.asarray(np.stack([lay.bias for lay in layers]))
        self.params = [self.weight, self.bias]
        self.grads = [
            self._xp.zeros_like(self.weight),
            self._xp.zeros_like(self.bias),
        ]
        self._cache_x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = self._xp.as_real(x)
        if (
            x.ndim != 2
            or x.shape[1] != self.in_features
            or x.shape[0] % self.runs
        ):
            raise ShapeError(
                f"{self.name} expected (runs*batch, {self.in_features}), "
                f"got {tuple(x.shape)} for runs={self.runs}"
            )
        if training:
            self._cache_x = x
        per = x.shape[0] // self.runs
        out = self._xp.empty(
            (x.shape[0], self.out_features), dtype=self._xp.real_dtype
        )
        for r in range(self.runs):
            sl = slice(r * per, (r + 1) * per)
            out[sl] = x[sl] @ self.weight[r] + self.bias[r]
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache_x is None:
            raise ShapeError(
                f"{self.name}.backward called without a training forward"
            )
        grad = self._xp.as_real(grad)
        x = self._cache_x
        per = x.shape[0] // self.runs
        out = self._xp.empty(
            (x.shape[0], self.in_features), dtype=self._xp.real_dtype
        )
        for r in range(self.runs):
            sl = slice(r * per, (r + 1) * per)
            self.grads[0][r] += x[sl].T @ grad[sl]
            self.grads[1][r] += grad[sl].sum(axis=0)
            out[sl] = grad[sl] @ self.weight[r].T
        return out

    def peak_bytes(self, rows: int) -> int:
        # The cached forward input plus the output block, float64 rows.
        return 2 * rows * (self.in_features + self.out_features) * 8

    def sync_to_layers(self, layers: Sequence[Layer]) -> None:
        for r, lay in enumerate(layers):
            lay.weight[...] = self._xp.to_numpy(self.weight[r])
            lay.bias[...] = self._xp.to_numpy(self.bias[r])

    def compact(self, keep: np.ndarray) -> None:
        super().compact(keep)
        self.weight = self.weight[keep]
        self.bias = self.bias[keep]
        self.params = [self.weight, self.bias]
        self.grads = [g[keep] for g in self.grads]
        self._cache_x = None


def _param_nbytes(p) -> int:
    """Bytes held by one parameter stack (backend-agnostic)."""
    nbytes = getattr(p, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    size = 1
    for s in getattr(p, "shape", ()):
        size *= int(s)
    return size * 8


#: type -> stacker(runs, layers) registry.  Keyed on the *exact* type:
#: a subclass may override behaviour the stacker does not model, so it
#: conservatively falls back to the scalar path instead.
_STACKERS: dict[type, Callable[[int, Sequence[Layer]], StackedLayer | None]] = {}

#: Parameter-free row-wise layers whose scalar implementation is reused
#: directly on the fused batch.
_PASSTHROUGH_TYPES = (ReLU, Tanh, Sigmoid, Softmax, Flatten)


def register_stacker(
    layer_type: type,
    stacker: Callable[[int, Sequence[Layer]], StackedLayer | None],
) -> None:
    """Register a stacked implementation for an exact layer type.

    ``stacker(runs, layers)`` receives the R aligned layer instances and
    returns a :class:`StackedLayer`, or ``None`` if these particular
    instances cannot be stacked (the model then falls back to scalar
    training).
    """
    _STACKERS[layer_type] = stacker


def _stack_dense(runs: int, layers: Sequence[Layer]) -> StackedLayer | None:
    first = layers[0]
    for lay in layers:
        if (
            lay.in_features != first.in_features
            or lay.out_features != first.out_features
        ):
            return None
    return StackedDense(runs, layers)


register_stacker(Dense, _stack_dense)


class StackedSequential:
    """R structurally identical :class:`Sequential` models as one stack.

    Build via :func:`stack_models`.  ``forward``/``backward`` take fused
    run-major activations; ``parameters()``/``gradients()`` expose the
    ``(R, ...)`` stacks (feed them to a stacked optimizer such as
    :class:`repro.nn.optimizers.StackedAdam`).
    """

    def __init__(
        self,
        runs: int,
        layers: Sequence[StackedLayer],
        models: Sequence[Sequential],
    ) -> None:
        self.runs = runs
        self.layers = list(layers)
        self._models = list(models)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x, training=False)

    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params]

    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads]

    def row_maps(self) -> list[np.ndarray | None]:
        """Per-parameter map from parameter rows to stack slices.

        ``None`` means the identity (every parameter stack spans every
        slice) — true for a plain run stack.  :class:`GroupedStack`
        overrides this for per-candidate parameter stacks.
        """
        return [None] * len(self.parameters())

    def peak_bytes(self, batch: int) -> int:
        """Predicted peak working-set bytes of one training step.

        Parameter stacks count four times over — values, gradients and
        the two Adam moment stacks a
        :class:`~repro.nn.optimizers.StackedAdam` holds — plus each
        layer's activation working set over the fused ``runs * batch``
        rows.  An upper envelope for admission control, cross-checked by
        the runtime's measured bytes EWMA.
        """
        rows = self.runs * batch
        total = 4 * sum(_param_nbytes(p) for p in self.parameters())
        total += sum(layer.peak_bytes(rows) for layer in self.layers)
        return total

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    def sync_to_models(self) -> None:
        """Write the trained per-run parameters back into the R models."""
        for pos, layer in enumerate(self.layers):
            layer.sync_to_layers([m.layers[pos] for m in self._models])

    def compact(self, keep: np.ndarray) -> None:
        """Drop every run row not in ``keep`` from all layer stacks."""
        keep = np.asarray(keep, dtype=np.intp)
        for layer in self.layers:
            layer.compact(keep)
        self._models = [self._models[i] for i in keep]
        self.runs = int(keep.size)


def _stack_rows(
    runs: int, rows: Sequence[Sequence[Layer]]
) -> list[StackedLayer] | None:
    """Stack aligned layer rows (one list of ``runs`` instances per
    position); ``None`` if any position has no exact-type stacker."""
    stacked: list[StackedLayer] = []
    for layers in rows:
        tp = type(layers[0])
        if any(type(lay) is not tp for lay in layers[1:]):
            return None
        stacker = _STACKERS.get(tp)
        if stacker is not None:
            entry = stacker(runs, layers)
            if entry is None:
                return None
            stacked.append(entry)
        elif tp in _PASSTHROUGH_TYPES:
            stacked.append(_StackedPassthrough(runs, layers[0]))
        else:
            return None
    return stacked


def stack_models(models: Sequence[Sequential]) -> StackedSequential | None:
    """Fold R structurally identical models into one stacked model.

    Returns ``None`` — vectorization unavailable, train the models
    scalar — unless every layer position holds R instances of one exact
    type that is either a registered stackable type or a known
    parameter-free row-wise layer.
    """
    models = list(models)
    if len(models) < 2:
        return None
    n_layers = len(models[0].layers)
    if any(len(m.layers) != n_layers for m in models[1:]):
        return None
    runs = len(models)
    stacked = _stack_rows(
        runs, [[m.layers[pos] for m in models] for pos in range(n_layers)]
    )
    if stacked is None:
        return None
    return StackedSequential(runs, stacked, models)


# -- cross-candidate groups -------------------------------------------------

#: Layer types a heterogeneous candidate group may be split at: each
#: member model must contain exactly one pivot layer, the pivot and the
#: layers after it stack across the whole group, and everything before
#: it stacks per candidate.  The hybrid quantum layer registers itself
#: on import (same pattern as the stacker registry).
_GROUP_PIVOTS: set[type] = set()


def register_group_pivot(layer_type: type) -> None:
    """Mark a layer type as a valid cross-candidate split point."""
    _GROUP_PIVOTS.add(layer_type)


class _GroupMember:
    """One candidate's run set inside a :class:`GroupedStack`."""

    __slots__ = ("models", "prefix", "pivot_pos", "size")

    def __init__(
        self,
        models: list[Sequential],
        prefix: StackedSequential | None,
        pivot_pos: int,
    ) -> None:
        self.models = models
        self.prefix = prefix
        self.pivot_pos = pivot_pos
        self.size = len(models)


class GroupedStack:
    """C candidates x R runs as one stack with per-candidate prefixes.

    Built by :func:`stack_candidates`.  The fused activation batch is
    *slice-major*: slice ``s`` (candidate-major, runs in order) owns
    rows ``s*B .. (s+1)*B``, exactly like :class:`StackedSequential`'s
    run-major layout — ``runs`` here counts slices.  Classical prefix
    layers that differ between candidates run per candidate on that
    candidate's contiguous row block; the pivot layer (the quantum
    sweep) and the shared suffix run once over all S slices.

    Every kernel is per slice (per-slice gemms, per-run engine
    kernels), so each slice's arithmetic is bit-identical to the same
    run trained in a single-candidate stack — which is what lets
    candidate-stacked grid searches reproduce unstacked results
    exactly.
    """

    def __init__(
        self, members: list[_GroupMember], shared: list[StackedLayer]
    ) -> None:
        self.members = members
        self.shared = shared
        self.runs = sum(m.size for m in members)
        self._xp = active_backend()

    @property
    def _segmented(self) -> bool:
        return any(m.prefix is not None for m in self.members)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # Segmentation bookkeeping is host-side: per-candidate blocks are
        # sliced out of a host array and re-gathered into one.  Device
        # backends hand each block to the prefix stack (which uploads
        # it) and download its output; the shared pivot re-binds its
        # inputs host-side anyway, so no transfer is wasted.
        x = np.asarray(self._xp.to_numpy(x), dtype=np.float64)
        if x.ndim != 2 or x.shape[0] % self.runs:
            raise ShapeError(
                f"grouped stack expected (slices*batch, features), got "
                f"{x.shape} for {self.runs} slices"
            )
        out = x
        if self._segmented:
            per = x.shape[0] // self.runs
            mid: np.ndarray | None = None
            offset = 0
            for member in self.members:
                rows = member.size * per
                block = x[offset : offset + rows]
                if member.prefix is not None:
                    block = self._xp.to_numpy(
                        member.prefix.forward(block, training=training)
                    )
                if mid is None:
                    mid = np.empty(
                        (x.shape[0], block.shape[1]), dtype=np.float64
                    )
                mid[offset : offset + rows] = block
                offset += rows
            out = mid
        for layer in self.shared:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.shared):
            grad = layer.backward(grad)
        if not self._segmented:
            return grad
        grad = np.asarray(self._xp.to_numpy(grad), dtype=np.float64)
        per = grad.shape[0] // self.runs
        out: np.ndarray | None = None
        offset = 0
        for member in self.members:
            rows = member.size * per
            block = grad[offset : offset + rows]
            if member.prefix is not None:
                block = self._xp.to_numpy(member.prefix.backward(block))
            if out is None:
                out = np.empty(
                    (grad.shape[0], block.shape[1]), dtype=np.float64
                )
            out[offset : offset + rows] = block
            offset += rows
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x, training=False)

    def parameters(self) -> list[np.ndarray]:
        out = []
        for member in self.members:
            if member.prefix is not None:
                out.extend(member.prefix.parameters())
        for layer in self.shared:
            out.extend(layer.params)
        return out

    def gradients(self) -> list[np.ndarray]:
        out = []
        for member in self.members:
            if member.prefix is not None:
                out.extend(member.prefix.gradients())
        for layer in self.shared:
            out.extend(layer.grads)
        return out

    def row_maps(self) -> list[np.ndarray | None]:
        """Slice indices behind each parameter stack's rows.

        Prefix parameters of the candidate at slice offset ``o`` with
        ``R_c`` runs map to slices ``o .. o+R_c``; shared parameters map
        identically (``None``).  The optimizer uses these maps to
        translate a global freeze mask into per-parameter row masks.
        """
        maps: list[np.ndarray | None] = []
        offset = 0
        for member in self.members:
            if member.prefix is not None:
                rows = np.arange(offset, offset + member.size)
                maps.extend(
                    [rows] * len(member.prefix.parameters())
                )
            offset += member.size
        maps.extend([None] * sum(len(lay.params) for lay in self.shared))
        return maps

    def peak_bytes(self, batch: int) -> int:
        """Predicted peak working-set bytes of one grouped training step.

        Same accounting as :meth:`StackedSequential.peak_bytes` — every
        parameter stack four times over (values, grads, Adam moments) —
        with prefix layers counted over their candidate's row block and
        the shared pivot/suffix over all ``runs * batch`` fused rows.
        """
        rows = self.runs * batch
        total = 4 * sum(_param_nbytes(p) for p in self.parameters())
        for member in self.members:
            if member.prefix is not None:
                total += sum(
                    layer.peak_bytes(member.size * batch)
                    for layer in member.prefix.layers
                )
        total += sum(layer.peak_bytes(rows) for layer in self.shared)
        return total

    def zero_grads(self) -> None:
        for member in self.members:
            if member.prefix is not None:
                member.prefix.zero_grads()
        for layer in self.shared:
            layer.zero_grads()

    def sync_to_models(self) -> None:
        """Write every slice's parameters back into its source model."""
        for member in self.members:
            if member.prefix is not None:
                member.prefix.sync_to_models()
        flat = [
            (model, member.pivot_pos)
            for member in self.members
            for model in member.models
        ]
        for j, layer in enumerate(self.shared):
            layer.sync_to_layers([m.layers[pos + j] for m, pos in flat])

    def compact(self, keep: np.ndarray) -> None:
        """Drop every slice not in ``keep`` (current slice indices).

        A candidate whose slices all vanish leaves the group entirely —
        its prefix stack (and its parameters) drop out of
        :meth:`parameters` — so the caller must compact any optimizer
        state with the matching :meth:`row_maps` *before* this call.
        """
        keep = np.asarray(keep, dtype=np.intp)
        survivors: list[_GroupMember] = []
        offset = 0
        for member in self.members:
            local = keep[(keep >= offset) & (keep < offset + member.size)]
            local = local - offset
            offset += member.size
            if local.size == 0:
                continue
            if member.prefix is not None:
                member.prefix.compact(local)
            member.models = [member.models[i] for i in local]
            member.size = int(local.size)
            survivors.append(member)
        self.members = survivors
        for layer in self.shared:
            layer.compact(keep)
        self.runs = int(keep.size)


def stack_candidates(
    model_groups: Sequence[Sequence[Sequential]],
) -> GroupedStack | None:
    """Fold several candidates' run sets into one :class:`GroupedStack`.

    ``model_groups[c]`` holds candidate ``c``'s run models (all
    structurally identical to each other by construction).  Returns
    ``None`` — train each candidate separately — unless either

    * every model across the whole group stacks position-wise
      (identical layer types and shapes: the fully fused case), or
    * every model has exactly one registered pivot layer
      (:func:`register_group_pivot`), the pivot and the layers after it
      stack across all S slices, and each candidate's prefix stacks on
      its own (heterogeneous classical heads).
    """
    groups = [list(g) for g in model_groups]
    if any(not g for g in groups):
        return None
    flat = [m for g in groups for m in g]
    total = len(flat)
    if total < 2:
        return None
    # Fully aligned fast path: one stack over every slice, no segments.
    n_layers = len(flat[0].layers)
    if all(len(m.layers) == n_layers for m in flat):
        stacked = _stack_rows(
            total, [[m.layers[pos] for m in flat] for pos in range(n_layers)]
        )
        if stacked is not None:
            members = [_GroupMember(g, None, 0) for g in groups]
            return GroupedStack(members, stacked)
    # Segmented path: split each model at its unique pivot layer.
    split_at: list[int] = []
    for model in flat:
        pivots = [
            pos
            for pos, lay in enumerate(model.layers)
            if type(lay) in _GROUP_PIVOTS
        ]
        if len(pivots) != 1:
            return None
        split_at.append(pivots[0])
    suffix_lens = {
        len(m.layers) - pos for m, pos in zip(flat, split_at)
    }
    if len(suffix_lens) != 1:
        return None
    shared = _stack_rows(
        total,
        [
            [m.layers[pos + j] for m, pos in zip(flat, split_at)]
            for j in range(suffix_lens.pop())
        ],
    )
    if shared is None:
        return None
    members = []
    start = 0
    for group in groups:
        positions = split_at[start : start + len(group)]
        start += len(group)
        pos = positions[0]
        if any(p != pos for p in positions):
            return None
        if pos == 0:
            prefix = None
        else:
            rows = [[m.layers[j] for m in group] for j in range(pos)]
            layers = _stack_rows(len(group), rows)
            if layers is None:
                return None
            prefix = StackedSequential(len(group), layers, group)
        members.append(_GroupMember(group, prefix, pos))
    return GroupedStack(members, shared)
