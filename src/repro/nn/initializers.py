"""Weight initializers.

Keras defaults are mirrored because the paper builds its models with
Keras: ``Dense`` uses Glorot-uniform weights and zero biases.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["glorot_uniform", "he_uniform", "normal", "zeros", "get"]


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Uniform(-limit, limit) with ``limit = sqrt(6 / (fan_in + fan_out))``."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Uniform(-limit, limit) with ``limit = sqrt(6 / fan_in)``."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Standard-normal scaled by 0.05 (Keras ``RandomNormal`` default)."""
    return 0.05 * rng.standard_normal(size=shape)


def zeros(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All zeros (Keras bias default).  ``rng`` accepted for uniformity."""
    return np.zeros(shape, dtype=np.float64)


_REGISTRY = {
    "glorot_uniform": glorot_uniform,
    "he_uniform": he_uniform,
    "normal": normal,
    "zeros": zeros,
}


def get(name: str):
    """Look up an initializer by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown initializer {name!r}; options: {sorted(_REGISTRY)}"
        ) from None


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ConfigurationError("initializer shape must be non-empty")
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[0], shape[1]
