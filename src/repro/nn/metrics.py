"""Classification metrics."""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError

__all__ = ["accuracy", "confusion_matrix"]


def _to_labels(y: np.ndarray) -> np.ndarray:
    """Accept either integer labels or one-hot rows."""
    y = np.asarray(y)
    if y.ndim == 2:
        return np.argmax(y, axis=1)
    if y.ndim == 1:
        return y.astype(np.int64)
    raise ShapeError(f"labels must be 1-D or one-hot 2-D, got shape {y.shape}")


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct argmax predictions.

    ``y_pred`` may be class probabilities/logits ``(B, C)`` or labels
    ``(B,)``; likewise ``y_true``.
    """
    t = _to_labels(y_true)
    p = _to_labels(y_pred)
    if t.shape != p.shape:
        raise ShapeError(f"label shapes differ: {t.shape} vs {p.shape}")
    if t.size == 0:
        raise ShapeError("cannot compute accuracy of zero samples")
    return float(np.mean(t == p))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> np.ndarray:
    """Row = true class, column = predicted class."""
    t = _to_labels(y_true)
    p = _to_labels(y_pred)
    if t.shape != p.shape:
        raise ShapeError(f"label shapes differ: {t.shape} vs {p.shape}")
    out = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(out, (t, p), 1)
    return out
