"""Sequential model container."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .layers import Layer
from .metrics import accuracy

__all__ = ["Sequential"]


class Sequential:
    """A linear stack of layers with joint forward/backward passes."""

    def __init__(self, layers: Sequence[Layer], name: str = "sequential"):
        if not layers:
            raise ConfigurationError("Sequential needs at least one layer")
        self.layers = list(layers)
        self.name = name

    # -- execution -----------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference forward pass (no caches kept)."""
        return self.forward(x, training=False)

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    # -- parameters ----------------------------------------------------------

    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params]

    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads]

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    @property
    def param_count(self) -> int:
        return int(sum(layer.param_count for layer in self.layers))

    # -- evaluation ----------------------------------------------------------

    def evaluate_accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Argmax accuracy of ``predict(x)`` against labels/one-hot ``y``."""
        return accuracy(y, self.predict(x))

    def summary(self) -> str:
        """Human-readable architecture table."""
        lines = [f"Model: {self.name}", "-" * 46]
        lines.append(f"{'layer':<24}{'params':>10}")
        for layer in self.layers:
            lines.append(f"{layer.name:<24}{layer.param_count:>10}")
        lines.append("-" * 46)
        lines.append(f"{'total':<24}{self.param_count:>10}")
        return "\n".join(lines)

    def __iter__(self) -> Iterable[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)
