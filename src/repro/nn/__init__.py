"""Minimal Keras-style neural-network framework.

Implements exactly what the paper's classical and hybrid models need:
``Dense``/``ReLU``/``Softmax`` layers, categorical cross-entropy, Adam,
and a training loop recording max-over-epochs train/validation accuracy.
"""

from . import initializers
from .layers import (
    Dense,
    Dropout,
    Flatten,
    Layer,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from .losses import CrossEntropy, Loss, MeanSquaredError, SoftmaxCrossEntropy
from .metrics import accuracy, confusion_matrix
from .model import Sequential
from .optimizers import SGD, Adam, Optimizer, StackedAdam
from .stacked import (
    GroupedStack,
    StackedSequential,
    stack_candidates,
    stack_models,
)
from .training import (
    History,
    VectorizedTrainer,
    iterate_minibatches,
    train_model,
    train_stack,
)

__all__ = [
    "initializers",
    "Layer",
    "Dense",
    "ReLU",
    "Softmax",
    "Flatten",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "Loss",
    "CrossEntropy",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "accuracy",
    "confusion_matrix",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "StackedAdam",
    "StackedSequential",
    "GroupedStack",
    "stack_models",
    "stack_candidates",
    "History",
    "train_model",
    "train_stack",
    "VectorizedTrainer",
    "iterate_minibatches",
]
