"""Training loop implementing the paper's protocol.

Per the paper (sections III-F and IV): Adam with learning rate 0.001,
batch size 8, 100 epochs; after every epoch both train and validation
accuracy are recorded and the *maximum over epochs* is the run's score.

``early_stop_threshold`` is an optional speed-up used by the reduced
experiment profiles: once both running maxima reach the threshold the
remaining epochs cannot change the pass/fail decision for this run (the
maxima are monotone), so training may stop.  The full-fidelity profile
keeps it disabled, matching the paper exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..exceptions import ConfigurationError, ShapeError, TrainingCancelled
from .losses import CrossEntropy, Loss
from .metrics import accuracy
from .model import Sequential
from .optimizers import Adam, Optimizer

__all__ = ["History", "train_model", "iterate_minibatches"]


@dataclass
class History:
    """Per-epoch training record."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    epochs_run: int = 0
    wall_time_s: float = 0.0
    stopped_early: bool = False

    @property
    def max_train_accuracy(self) -> float:
        return max(self.train_accuracy, default=0.0)

    @property
    def max_val_accuracy(self) -> float:
        return max(self.val_accuracy, default=0.0)

    def meets_threshold(self, threshold: float) -> bool:
        """The paper's success condition for a single run."""
        return (
            self.max_train_accuracy >= threshold
            and self.max_val_accuracy >= threshold
        )


def iterate_minibatches(
    n_samples: int,
    batch_size: int,
    rng: np.random.Generator,
    shuffle: bool = True,
):
    """Yield index arrays covering ``range(n_samples)`` in mini-batches."""
    if batch_size < 1:
        raise ConfigurationError(f"batch size must be >= 1, got {batch_size}")
    order = np.arange(n_samples)
    if shuffle:
        rng.shuffle(order)
    for start in range(0, n_samples, batch_size):
        yield order[start : start + batch_size]


def train_model(
    model: Sequential,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    epochs: int = 100,
    batch_size: int = 8,
    loss: Loss | None = None,
    optimizer: Optimizer | None = None,
    rng: np.random.Generator | None = None,
    early_stop_threshold: float | None = None,
    shuffle: bool = True,
    cancel_check: Callable[[], bool] | None = None,
) -> History:
    """Train ``model`` and return its :class:`History`.

    ``y_train``/``y_val`` must be one-hot encoded (shape ``(B, C)``).

    ``cancel_check`` (optional) is polled at every epoch boundary; when
    it returns true, training aborts by raising
    :class:`~repro.exceptions.TrainingCancelled`.  The persistent worker
    pool uses it to stop speculative runs whose grid search has already
    committed a winner, bounding a stale worker's extra work to one
    epoch.
    """
    if y_train.ndim != 2 or y_val.ndim != 2:
        raise ShapeError("targets must be one-hot encoded (2-D)")
    if x_train.shape[0] != y_train.shape[0]:
        raise ShapeError("x_train and y_train batch sizes differ")
    if x_val.shape[0] != y_val.shape[0]:
        raise ShapeError("x_val and y_val batch sizes differ")
    if epochs < 1:
        raise ConfigurationError(f"epochs must be >= 1, got {epochs}")

    loss = loss or CrossEntropy()
    optimizer = optimizer or Adam(learning_rate=0.001)
    rng = rng or np.random.default_rng()

    history = History()
    started = time.perf_counter()
    n = x_train.shape[0]

    for _ in range(epochs):
        if cancel_check is not None and cancel_check():
            raise TrainingCancelled(
                f"training cancelled after {history.epochs_run} epochs"
            )
        epoch_losses: list[float] = []
        for idx in iterate_minibatches(n, batch_size, rng, shuffle=shuffle):
            xb, yb = x_train[idx], y_train[idx]
            model.zero_grads()
            out = model.forward(xb, training=True)
            epoch_losses.append(loss.value(out, yb))
            model.backward(loss.gradient(out, yb))
            optimizer.step(model.parameters(), model.gradients())

        history.train_loss.append(float(np.mean(epoch_losses)))
        history.train_accuracy.append(
            accuracy(y_train, model.predict(x_train))
        )
        history.val_accuracy.append(accuracy(y_val, model.predict(x_val)))
        history.epochs_run += 1

        if (
            early_stop_threshold is not None
            and history.meets_threshold(early_stop_threshold)
        ):
            history.stopped_early = True
            break

    history.wall_time_s = time.perf_counter() - started
    return history
