"""Training loop implementing the paper's protocol.

Per the paper (sections III-F and IV): Adam with learning rate 0.001,
batch size 8, 100 epochs; after every epoch both train and validation
accuracy are recorded and the *maximum over epochs* is the run's score.

``early_stop_threshold`` is an optional speed-up used by the reduced
experiment profiles: once both running maxima reach the threshold the
remaining epochs cannot change the pass/fail decision for this run (the
maxima are monotone), so training may stop.  The full-fidelity profile
keeps it disabled, matching the paper exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..backends import active_backend
from ..exceptions import ConfigurationError, ShapeError, TrainingCancelled
from .losses import CrossEntropy, Loss
from .metrics import accuracy
from .model import Sequential
from .optimizers import Adam, Optimizer, StackedAdam
from .stacked import stack_models

__all__ = [
    "History",
    "train_model",
    "iterate_minibatches",
    "train_stack",
    "VectorizedTrainer",
]


@dataclass
class History:
    """Per-epoch training record."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    epochs_run: int = 0
    wall_time_s: float = 0.0
    stopped_early: bool = False

    @property
    def max_train_accuracy(self) -> float:
        return max(self.train_accuracy, default=0.0)

    @property
    def max_val_accuracy(self) -> float:
        return max(self.val_accuracy, default=0.0)

    def meets_threshold(self, threshold: float) -> bool:
        """The paper's success condition for a single run."""
        return (
            self.max_train_accuracy >= threshold
            and self.max_val_accuracy >= threshold
        )


def iterate_minibatches(
    n_samples: int,
    batch_size: int,
    rng: np.random.Generator,
    shuffle: bool = True,
):
    """Yield index arrays covering ``range(n_samples)`` in mini-batches."""
    if batch_size < 1:
        raise ConfigurationError(f"batch size must be >= 1, got {batch_size}")
    order = np.arange(n_samples)
    if shuffle:
        rng.shuffle(order)
    for start in range(0, n_samples, batch_size):
        yield order[start : start + batch_size]


def train_model(
    model: Sequential,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    epochs: int = 100,
    batch_size: int = 8,
    loss: Loss | None = None,
    optimizer: Optimizer | None = None,
    rng: np.random.Generator | None = None,
    early_stop_threshold: float | None = None,
    shuffle: bool = True,
    cancel_check: Callable[[], bool] | None = None,
) -> History:
    """Train ``model`` and return its :class:`History`.

    ``y_train``/``y_val`` must be one-hot encoded (shape ``(B, C)``).

    ``cancel_check`` (optional) is polled at every epoch boundary; when
    it returns true, training aborts by raising
    :class:`~repro.exceptions.TrainingCancelled`.  The persistent worker
    pool uses it to stop speculative runs whose grid search has already
    committed a winner, bounding a stale worker's extra work to one
    epoch.
    """
    if y_train.ndim != 2 or y_val.ndim != 2:
        raise ShapeError("targets must be one-hot encoded (2-D)")
    if x_train.shape[0] != y_train.shape[0]:
        raise ShapeError("x_train and y_train batch sizes differ")
    if x_val.shape[0] != y_val.shape[0]:
        raise ShapeError("x_val and y_val batch sizes differ")
    if epochs < 1:
        raise ConfigurationError(f"epochs must be >= 1, got {epochs}")

    loss = loss or CrossEntropy()
    optimizer = optimizer or Adam(learning_rate=0.001)
    rng = rng or np.random.default_rng()

    history = History()
    started = time.perf_counter()
    n = x_train.shape[0]

    for _ in range(epochs):
        if cancel_check is not None and cancel_check():
            raise TrainingCancelled(
                f"training cancelled after {history.epochs_run} epochs"
            )
        epoch_losses: list[float] = []
        for idx in iterate_minibatches(n, batch_size, rng, shuffle=shuffle):
            xb, yb = x_train[idx], y_train[idx]
            model.zero_grads()
            out = model.forward(xb, training=True)
            epoch_losses.append(loss.value(out, yb))
            model.backward(loss.gradient(out, yb))
            optimizer.step(model.parameters(), model.gradients())

        history.train_loss.append(float(np.mean(epoch_losses)))
        history.train_accuracy.append(
            accuracy(y_train, model.predict(x_train))
        )
        history.val_accuracy.append(accuracy(y_val, model.predict(x_val)))
        history.epochs_run += 1

        if (
            early_stop_threshold is not None
            and history.meets_threshold(early_stop_threshold)
        ):
            history.stopped_early = True
            break

    history.wall_time_s = time.perf_counter() - started
    return history


def train_stack(
    stack,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    epochs: int = 100,
    batch_size: int = 8,
    loss: Loss | None = None,
    learning_rate: float = 0.001,
    rngs: Sequence[np.random.Generator] | None = None,
    early_stop_threshold: float | None = None,
    shuffle: bool = True,
    cancel_check: Callable[[], bool] | None = None,
    compact: bool = True,
) -> list[History]:
    """Train a slice stack in lockstep; one :class:`History` per slice.

    ``stack`` is a :class:`~repro.nn.stacked.StackedSequential` (R runs
    of one candidate) or a :class:`~repro.nn.stacked.GroupedStack`
    (several candidates' run sets fused into one sweep); ``rngs`` holds
    one generator per slice, each in the state its scalar
    :func:`train_model` counterpart would be in when entering training.
    Histories come back in the stack's original slice order.

    Every slice's training is bit-identical to its scalar loop: per-run
    engine kernels, per-slice gemms, per-slice loss values and its own
    RNG stream for minibatch shuffles.  A slice that reaches
    ``early_stop_threshold`` freezes exactly as its scalar loop would
    have broken out — and with ``compact`` (the default) its rows are
    *dropped from subsequent sweeps* instead of riding along frozen: an
    index-map gather of the parameter stacks, optimizer moments and RNG
    bookkeeping that leaves the surviving slices' arithmetic untouched.
    ``compact=False`` keeps the shape-stable masking behaviour; results
    are identical either way, only wall time changes.
    """
    if y_train.ndim != 2 or y_val.ndim != 2:
        raise ShapeError("targets must be one-hot encoded (2-D)")
    if x_train.shape[0] != y_train.shape[0]:
        raise ShapeError("x_train and y_train batch sizes differ")
    if x_val.shape[0] != y_val.shape[0]:
        raise ShapeError("x_val and y_val batch sizes differ")
    if epochs < 1:
        raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
    loss = loss or CrossEntropy()
    total = stack.runs
    rngs = (
        list(rngs)
        if rngs is not None
        else [np.random.default_rng() for _ in range(total)]
    )
    if len(rngs) != total:
        raise ConfigurationError(
            f"need one rng per run: {total} runs, {len(rngs)} rngs"
        )

    # Losses, accuracies and the epoch bookkeeping below are host-side
    # NumPy; stack outputs are downloaded once per forward (identity on
    # the NumPy backend).  The optimizer shares the stack's backend so
    # the parameter/moment updates stay device-resident.
    xp = active_backend()
    optimizer = StackedAdam(learning_rate=learning_rate)
    histories = [History() for _ in range(total)]
    # Row maps only change when the stack compacts; cache them instead
    # of rebuilding per minibatch step.
    maps = stack.row_maps()
    #: Index map: current stack row -> original slice (history / rng).
    slots = np.arange(total)
    active = np.ones(total, dtype=bool)
    started = time.perf_counter()
    n = x_train.shape[0]
    n_val = x_val.shape[0]
    n_classes = y_train.shape[1]
    # The per-epoch evaluation passes see the full train/val sets,
    # tiled slice-major (rebuilt whenever compaction shrinks the stack).
    x_train_tiled = np.tile(x_train, (total, 1))
    x_val_tiled = np.tile(x_val, (total, 1))
    xb = yb = None  # fused minibatch buffers, allocated per size

    for _ in range(epochs):
        if not active.any():
            break
        if cancel_check is not None and cancel_check():
            raise TrainingCancelled(
                "stacked training cancelled after "
                f"{max(h.epochs_run for h in histories)} epochs"
            )
        slices = stack.runs
        # One shuffled index order per active slice — drawn from that
        # slice's own stream, exactly like its scalar loop.  Frozen
        # slices (masking mode only) keep an arbitrary unshuffled
        # order: their rows ride along but nothing reads their results.
        orders = np.empty((slices, n), dtype=np.intp)
        for r in range(slices):
            orders[r] = np.arange(n)
            if shuffle and active[r]:
                rngs[slots[r]].shuffle(orders[r])
        epoch_losses: list[list[float]] = [[] for _ in range(slices)]
        for start in range(0, n, batch_size):
            idx = orders[:, start : start + batch_size]
            per = idx.shape[1]
            rows = idx.reshape(-1)
            if xb is None or xb.shape[0] != slices * per:
                xb = np.empty(
                    (slices * per, x_train.shape[1]), dtype=x_train.dtype
                )
                yb = np.empty((slices * per, n_classes), dtype=y_train.dtype)
            np.take(x_train, rows, axis=0, out=xb)
            np.take(y_train, rows, axis=0, out=yb)
            stack.zero_grads()
            out = xp.to_numpy(stack.forward(xb, training=True))
            # Loss values and gradients per slice: the scalar loss
            # divides by the *slice's* batch, not the fused one.
            grad = np.empty_like(out)
            for r in range(slices):
                sl = slice(r * per, (r + 1) * per)
                if active[r]:
                    epoch_losses[r].append(loss.value(out[sl], yb[sl]))
                grad[sl] = loss.gradient(out[sl], yb[sl])
            stack.backward(grad)
            optimizer.step(
                stack.parameters(),
                stack.gradients(),
                active,
                row_maps=maps,
            )

        train_out = xp.to_numpy(stack.predict(x_train_tiled))
        val_out = xp.to_numpy(stack.predict(x_val_tiled))
        frozen_now = False
        for r in range(slices):
            if not active[r]:
                continue
            history = histories[slots[r]]
            history.train_loss.append(float(np.mean(epoch_losses[r])))
            history.train_accuracy.append(
                accuracy(y_train, train_out[r * n : (r + 1) * n])
            )
            history.val_accuracy.append(
                accuracy(y_val, val_out[r * n_val : (r + 1) * n_val])
            )
            history.epochs_run += 1
            if (
                early_stop_threshold is not None
                and history.meets_threshold(early_stop_threshold)
            ):
                history.stopped_early = True
                history.wall_time_s = time.perf_counter() - started
                active[r] = False
                frozen_now = True
        if compact and frozen_now:
            # Frozen slices leave the sweep.  Their parameters are final
            # right now, so sync everything back (active slices resync
            # at the end) before the index-map gather drops their rows
            # from the stacks and the optimizer moments.
            stack.sync_to_models()
            keep = np.flatnonzero(active)
            if keep.size:
                optimizer.compact(
                    [
                        keep if rows is None else np.flatnonzero(active[rows])
                        for rows in maps
                    ]
                )
                stack.compact(keep)
                maps = stack.row_maps()
                slots = slots[keep]
                active = np.ones(keep.size, dtype=bool)
                x_train_tiled = np.tile(x_train, (keep.size, 1))
                x_val_tiled = np.tile(x_val, (keep.size, 1))
                xb = yb = None

    elapsed = time.perf_counter() - started
    for r in range(stack.runs):
        if active[r]:
            histories[slots[r]].wall_time_s = elapsed
    stack.sync_to_models()
    return histories


class VectorizedTrainer:
    """Train R same-structure models in lockstep as one run-stacked sweep.

    The paper's protocol trains every candidate ``runs`` times with an
    identical architecture, so each epoch's work is R structurally
    identical forward/backward passes.  This trainer folds them into
    one: the models are stacked (:func:`repro.nn.stacked.stack_models`),
    each optimizer step updates all R parameter sets at once
    (:class:`~repro.nn.optimizers.StackedAdam`), and every kernel sweep
    carries a fused run-major ``(R * B, features)`` batch.

    Per-run semantics are preserved exactly:

    * run ``r`` consumes its own RNG stream (``rngs[r]``) for minibatch
      shuffling, drawing the same values in the same order as its
      scalar :func:`train_model` counterpart;
    * every stacked kernel is bit-identical to the scalar one per run
      slice, so losses, accuracies and parameter trajectories match
      per-run training bit for bit;
    * a run that reaches ``early_stop_threshold`` **freezes**: its
      parameters, optimizer state and history stop changing (exactly as
      if its scalar loop had broken out) while the remaining runs keep
      training; by default its rows are then *compacted out* of the
      fused sweep (see :func:`train_stack`), and the epoch loop ends
      when every run is frozen or the epoch budget is spent.

    ``available`` is ``False`` when any layer cannot be stacked (custom
    layers, parameter-shift gradients, Dropout...); callers then fall
    back to the scalar per-run loop — see
    :func:`repro.runtime.jobs.execute_runs`.
    """

    def __init__(
        self,
        models: list[Sequential],
        loss: Loss | None = None,
        learning_rate: float = 0.001,
    ) -> None:
        self.models = list(models)
        self.loss = loss or CrossEntropy()
        self.learning_rate = learning_rate
        self.stack = stack_models(self.models)

    @property
    def available(self) -> bool:
        """Whether these models can be trained as one stack."""
        return self.stack is not None

    def train(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: np.ndarray,
        y_val: np.ndarray,
        epochs: int = 100,
        batch_size: int = 8,
        rngs: Sequence[np.random.Generator] | None = None,
        early_stop_threshold: float | None = None,
        shuffle: bool = True,
        cancel_check: Callable[[], bool] | None = None,
        compact: bool = True,
    ) -> list[History]:
        """Train the stack; return one :class:`History` per run.

        Mirrors :func:`train_model`'s protocol per run.  ``rngs`` holds
        one generator per run (each in the state its scalar counterpart
        would be in when entering training); per-run ``wall_time_s``
        measures lockstep time from start until that run froze or the
        loop ended.  With ``compact`` (the default) early-stopped runs
        are dropped from subsequent sweeps instead of riding along
        frozen — see :func:`train_stack` for the bit-identity contract.
        Raises :class:`~repro.exceptions.TrainingCancelled` when
        ``cancel_check`` fires at an epoch boundary.
        """
        if self.stack is None:
            raise ConfigurationError(
                "models cannot be stacked; check available before train()"
            )
        return train_stack(
            self.stack,
            x_train,
            y_train,
            x_val,
            y_val,
            epochs=epochs,
            batch_size=batch_size,
            loss=self.loss,
            learning_rate=self.learning_rate,
            rngs=rngs,
            early_stop_threshold=early_stop_threshold,
            shuffle=shuffle,
            cancel_check=cancel_check,
            compact=compact,
        )
