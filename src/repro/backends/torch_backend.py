"""Torch execution of the fused stacked sweeps (CPU, or CUDA when available).

The engine's hot shapes — a handful of huge contractions over a
``(C*R*B, 2**n)`` run-major state buffer — are exactly what an
accelerator wants, so this backend maps the :class:`~repro.backends.ArrayBackend`
protocol onto ``torch`` tensors resident on one device for the whole
sweep.  Differences from NumPy that this adapter papers over:

* ``torch.einsum`` has no ``out=`` parameter: the contraction runs
  out-of-place and the result is copied into ``out`` (still on device);
* the axis-1 gather is ``torch.index_select`` with a cached ``int64``
  index tensor instead of ``np.take``;
* ``numpy()``/``from_numpy`` round-trips define the transfer boundary —
  the engine only crosses it for small host-side work (parameter
  binding, gate-matrix construction, per-epoch losses/accuracies).

Torch is an *optional* dependency: importing this module is cheap, and
constructing the backend raises
:class:`~repro.exceptions.BackendUnavailable` when torch is missing, so
callers fall back to NumPy cleanly (see
:func:`repro.backends.resolve_backend`).

Numerics are tolerance-grade, not bit-identical: torch's einsum/gemm
kernels round differently from NumPy's, so this backend is covered by
differential tests at 1e-10 (engine) and end-to-end winner-agreement
tests, never by the strict bitwise suites.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import BackendUnavailable
from . import ArrayBackend

__all__ = ["TorchBackend"]


class TorchBackend(ArrayBackend):
    """:class:`~repro.backends.ArrayBackend` over torch tensors."""

    name = "torch"
    is_numpy = False

    def __init__(self, device: "str | None" = None) -> None:
        try:
            import torch
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise BackendUnavailable(
                "the 'torch' backend requires PyTorch, which is not "
                "installed in this environment"
            ) from exc
        self._torch = torch
        if device is None:
            device = "cuda" if torch.cuda.is_available() else "cpu"
        self.device = torch.device(device)
        self.complex_dtype = torch.complex128
        self.real_dtype = torch.float64

    # -- construction / transfer ----------------------------------------

    def _is_tensor(self, a) -> bool:
        return isinstance(a, self._torch.Tensor)

    def asarray(self, a, dtype=None):
        torch = self._torch
        if self._is_tensor(a):
            return a if dtype is None else a.to(dtype)
        # torch rejects negative-stride ndarrays; normalise first.
        host = np.ascontiguousarray(a)
        return torch.as_tensor(host, dtype=dtype, device=self.device)

    def as_real(self, a):
        return self.asarray(a, dtype=self.real_dtype)

    def to_numpy(self, a) -> np.ndarray:
        if self._is_tensor(a):
            return a.detach().cpu().numpy()
        return np.asarray(a)

    def empty(self, shape, dtype=None):
        return self._torch.empty(
            shape, dtype=dtype or self.real_dtype, device=self.device
        )

    def zeros(self, shape, dtype=None):
        return self._torch.zeros(
            shape, dtype=dtype or self.real_dtype, device=self.device
        )

    def zeros_like(self, a):
        return self._torch.zeros_like(a)

    def ascontiguousarray(self, a):
        return a.contiguous() if self._is_tensor(a) else self.asarray(a)

    # -- kernels ---------------------------------------------------------

    def einsum(self, spec, *operands, out=None):
        result = self._torch.einsum(spec, *operands)
        if out is None:
            return result
        out.copy_(result)
        return out

    def matmul(self, a, b, out=None):
        if out is None:
            return self._torch.matmul(a, b)
        # out= matmul rejects some broadcast/view layouts; stay general.
        out.copy_(self._torch.matmul(a, b))
        return out

    def take(self, a, indices, out):
        return self._torch.index_select(a, 1, indices, out=out)

    def multiply(self, a, b, out):
        # Mixed real*complex out= ufuncs are stricter in torch; compute
        # then copy keeps the promotion semantics of np.multiply.
        out.copy_(a * b)
        return out

    def conj_transpose(self, m):
        return m.swapaxes(-1, -2).conj()

    def abs2(self, z):
        return z.real**2 + z.imag**2

    def sqrt(self, a):
        return self._torch.sqrt(a)

    def square(self, a):
        return self._torch.square(a)

    def fill(self, a, value):
        a.fill_(value)

    def index_const(self, indices):
        torch = self._torch
        host = np.ascontiguousarray(np.asarray(indices, dtype=np.int64))
        return torch.as_tensor(host, dtype=torch.int64, device=self.device)

    def synchronize(self) -> None:
        if self.device.type == "cuda":  # pragma: no cover - needs GPU
            self._torch.cuda.synchronize()

    def free_bytes(self) -> "int | None":
        if self.device.type == "cuda":  # pragma: no cover - needs GPU
            try:
                return int(self._torch.cuda.mem_get_info(self.device)[0])
            except Exception:
                return None
        # CPU tensors allocate from host RAM: the base host probe applies.
        return super().free_bytes()
