"""Pluggable array backends for the fused stacked sweeps.

The compiled engine (:class:`repro.quantum.engine.CompiledTape`) and the
stacked training path (:mod:`repro.nn.stacked`,
:class:`repro.nn.optimizers.StackedAdam`) route every hot array
operation through a small *array-backend protocol* — an ``xp`` namespace
object exposing the ~10 primitives those kernels actually use — so the
``(C*R*B, 2**n)`` cross-candidate sweeps can execute on NumPy (the
default), torch (CPU today, CUDA when available) or CuPy without the
kernels knowing which.

Design rules (see ``docs/backends.md`` for the full contract):

* :class:`NumpyBackend` methods are the **verbatim** NumPy calls the
  pre-backend code performed — same functions, same argument spelling —
  so routing through the protocol preserves bit-identity.  All strict
  differential guarantees (run-stacked == per-run, candidate-stacked ==
  per-candidate, parallel == sequential) are scoped to this backend.
* Device backends (:class:`~repro.backends.torch_backend.TorchBackend`,
  CuPy) keep the big state buffers, gate-matrix stacks and parameter
  stacks resident on-device across a whole fused sweep; only small
  per-epoch quantities (losses, accuracies, synced-back parameters)
  transfer to host.  They are held to *tolerance* differentials, not
  bit-identity.
* Backend selection is data, not global state mutation:
  :func:`resolve_backend` maps an optional name (explicit setting >
  ``REPRO_BACKEND`` env > per-process default > numpy) to a backend with
  a clean fallback-to-numpy when the requested one is unimportable, and
  :func:`use_backend` scopes the active backend around one training
  job.  :func:`active_backend` is what stacked layers capture at
  construction.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

from ..exceptions import BackendUnavailable, ConfigurationError

__all__ = [
    "COMPLEX_DTYPE",
    "REAL_DTYPE",
    "ArrayBackend",
    "NumpyBackend",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "active_backend",
    "use_backend",
    "set_default_backend",
]

#: Canonical complex/real dtypes of the whole simulation substrate.  Every
#: kernel, gate builder and buffer allocation uses these two constants (a
#: backend exposes its native equivalents as ``complex_dtype`` /
#: ``real_dtype``), so no kernel silently upcasts or downcasts when the
#: arrays are torch tensors instead of ndarrays.
COMPLEX_DTYPE = np.complex128
REAL_DTYPE = np.float64

#: Environment variable consulted when no explicit backend is configured.
BACKEND_ENV_VAR = "REPRO_BACKEND"


class ArrayBackend:
    """The ``xp`` protocol: the primitives the hot kernels are written in.

    Subclasses provide a *namespace object*, not a module: engine and
    stacked-layer code holds one instance and calls these methods on
    every hot operation.  The contract per method is the matching NumPy
    call's (shapes, dtypes, ``out=`` semantics); ``asarray``/``to_numpy``
    define the host/device transfer boundary and are identities for
    :class:`NumpyBackend`.
    """

    #: Registry name ("numpy", "torch", "cupy").
    name: str = "abstract"
    #: True only for :class:`NumpyBackend`; kernels use it to skip
    #: device-upload caches and host round-trips entirely.
    is_numpy: bool = False

    # -- dtypes ----------------------------------------------------------
    complex_dtype = COMPLEX_DTYPE
    real_dtype = REAL_DTYPE

    # -- construction / transfer ----------------------------------------
    def asarray(self, a, dtype=None):
        raise NotImplementedError

    def as_real(self, a):
        """``a`` as a backend array of the canonical real dtype."""
        raise NotImplementedError

    def to_numpy(self, a) -> np.ndarray:
        """Download to host; identity for host arrays."""
        raise NotImplementedError

    def empty(self, shape, dtype=None):
        raise NotImplementedError

    def zeros(self, shape, dtype=None):
        raise NotImplementedError

    def zeros_like(self, a):
        raise NotImplementedError

    def ascontiguousarray(self, a):
        raise NotImplementedError

    # -- kernels ---------------------------------------------------------
    def einsum(self, spec, *operands, out=None):
        raise NotImplementedError

    def matmul(self, a, b, out=None):
        raise NotImplementedError

    def take(self, a, indices, out):
        """Axis-1 gather: ``out[:, k] = a[:, indices[k]]``."""
        raise NotImplementedError

    def multiply(self, a, b, out):
        raise NotImplementedError

    def conj_transpose(self, m):
        """Dagger the trailing two axes: ``conj(swapaxes(m, -1, -2))``."""
        raise NotImplementedError

    def abs2(self, z):
        """``|z|^2`` elementwise, matching :func:`repro.quantum.state.abs2`."""
        raise NotImplementedError

    def sqrt(self, a):
        raise NotImplementedError

    def square(self, a):
        raise NotImplementedError

    def fill(self, a, value):
        """In-place constant fill."""
        raise NotImplementedError

    def index_const(self, indices):
        """An integer index array in the backend's native form.

        Used for the compiled permutation tables and sign-flip index
        sets; host identity for NumPy, an ``int64`` device upload for
        device backends.
        """
        raise NotImplementedError

    def synchronize(self) -> None:
        """Block until queued device work finishes (no-op on host)."""

    def free_bytes(self) -> "int | None":
        """Free memory available to this backend's allocations, or ``None``.

        The memory-governance layer (:mod:`repro.runtime.memory`) sizes
        the implicit search budget as a fraction of this probe.  The
        base implementation reports available *host* RAM
        (``/proc/meminfo`` ``MemAvailable``, falling back to
        ``sysconf``); device backends override it with their device's
        free memory.  ``None`` means "unknown" — governance then stays
        off unless the user sets an explicit budget.
        """
        try:
            with open("/proc/meminfo", "rb") as fh:
                for line in fh:
                    if line.startswith(b"MemAvailable:"):
                        return int(line.split()[1]) * 1024
        except OSError:
            pass
        try:
            pages = os.sysconf("SC_AVPHYS_PAGES")
            page_size = os.sysconf("SC_PAGE_SIZE")
        except (ValueError, OSError, AttributeError):
            return None
        if pages <= 0 or page_size <= 0:
            return None
        return int(pages) * int(page_size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


class NumpyBackend(ArrayBackend):
    """The default backend: the pre-backend NumPy code path, verbatim.

    Every method body is exactly the NumPy call the engine and stacked
    layers performed before the backend refactor, so executing through
    this object is bit-identical to the historical behaviour — which is
    what keeps all strict differential tests meaningful.
    """

    name = "numpy"
    is_numpy = True

    def asarray(self, a, dtype=None):
        return np.asarray(a, dtype=dtype)

    def as_real(self, a):
        return np.asarray(a, dtype=REAL_DTYPE)

    def to_numpy(self, a) -> np.ndarray:
        return a if isinstance(a, np.ndarray) else np.asarray(a)

    def empty(self, shape, dtype=None):
        return np.empty(shape, dtype=dtype or REAL_DTYPE)

    def zeros(self, shape, dtype=None):
        return np.zeros(shape, dtype=dtype or REAL_DTYPE)

    def zeros_like(self, a):
        return np.zeros_like(a)

    def ascontiguousarray(self, a):
        return np.ascontiguousarray(a)

    def einsum(self, spec, *operands, out=None):
        return np.einsum(spec, *operands, out=out)

    def matmul(self, a, b, out=None):
        return np.matmul(a, b, out=out)

    def take(self, a, indices, out):
        return np.take(a, indices, axis=1, out=out)

    def multiply(self, a, b, out):
        return np.multiply(a, b, out=out)

    def conj_transpose(self, m):
        return np.conj(np.swapaxes(m, -1, -2))

    def abs2(self, z):
        # Must match repro.quantum.state.abs2 exactly (same expression).
        return z.real**2 + z.imag**2

    def sqrt(self, a):
        return np.sqrt(a)

    def square(self, a):
        return np.square(a)

    def fill(self, a, value):
        a.fill(value)

    def index_const(self, indices):
        return indices


def available_backends() -> tuple[str, ...]:
    """Names :func:`get_backend` understands (importable or not)."""
    return ("numpy", "torch", "cupy")


_INSTANCES: dict[str, ArrayBackend] = {}


def get_backend(name: str) -> ArrayBackend:
    """Look a backend up by name.

    Raises :class:`~repro.exceptions.ConfigurationError` for an unknown
    name and :class:`~repro.exceptions.BackendUnavailable` when the
    backend exists but its library cannot be imported.  Successful
    constructions are cached per process (backends are stateless
    namespaces, so sharing one instance is safe).
    """
    cached = _INSTANCES.get(name)
    if cached is not None:
        return cached
    if name == "numpy":
        backend: ArrayBackend = NumpyBackend()
    elif name == "torch":
        from .torch_backend import TorchBackend

        backend = TorchBackend()
    elif name == "cupy":
        from .cupy_backend import CupyBackend

        backend = CupyBackend()
    else:
        raise ConfigurationError(
            f"unknown array backend {name!r}; options: "
            f"{available_backends()}"
        )
    _INSTANCES[name] = backend
    return backend


def _clear_backend_cache() -> None:
    """Drop cached backend instances (test helper)."""
    _INSTANCES.clear()


#: Context-scoped active backend (set by :func:`use_backend`).
_ACTIVE: ArrayBackend | None = None
#: Per-process default (set once by pool-worker init / embedding code).
_DEFAULT: ArrayBackend | None = None


def active_backend() -> ArrayBackend:
    """The backend hot-path code should execute on *right now*.

    Inside a :func:`use_backend` scope that scope's backend; otherwise
    the process default (:func:`set_default_backend`), otherwise NumPy.
    Stacked layers and engines capture this at construction, so a whole
    fused sweep runs on one backend end to end.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    if _DEFAULT is not None:
        return _DEFAULT
    return get_backend("numpy")


def set_default_backend(backend: "ArrayBackend | str | None") -> None:
    """Set the process-default backend (``None`` resets to NumPy).

    The persistent pool's worker initializer calls this so every job a
    worker executes inherits the pool's backend even when a chunk's
    settings carry none.
    """
    global _DEFAULT
    if isinstance(backend, str):
        backend = get_backend(backend)
    _DEFAULT = backend


@contextmanager
def use_backend(backend: "ArrayBackend | str"):
    """Scope the active backend around one training job.

    Nested scopes restore the previous backend on exit, so a sequential
    grid search driving torch jobs can still build numpy-backed scalar
    models in between.
    """
    global _ACTIVE
    if isinstance(backend, str):
        backend = get_backend(backend)
    previous = _ACTIVE
    _ACTIVE = backend
    try:
        yield backend
    finally:
        _ACTIVE = previous


def resolve_backend(
    name: "str | None" = None,
) -> tuple[ArrayBackend, "str | None"]:
    """Resolve a requested backend name with clean numpy fallback.

    Precedence: explicit ``name`` > the :data:`BACKEND_ENV_VAR`
    environment variable > the process default > ``"numpy"``.  Returns
    ``(backend, fallback_reason)``: ``fallback_reason`` is ``None`` when
    the request was honoured, or a human-readable message when the
    requested backend was unimportable and NumPy was substituted (the
    grid search turns that into a structured ``backend-fallback``
    :class:`~repro.runtime.parallel.SearchEvent`).  Unknown names raise
    :class:`~repro.exceptions.ConfigurationError` — a typo is a
    configuration bug, not a missing library.
    """
    requested = name or os.environ.get(BACKEND_ENV_VAR) or None
    if requested is None:
        return (_DEFAULT or get_backend("numpy")), None
    try:
        return get_backend(requested), None
    except BackendUnavailable as exc:
        return (
            get_backend("numpy"),
            f"backend {requested!r} unavailable, falling back to numpy: "
            f"{exc}",
        )
