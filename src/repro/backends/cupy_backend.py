"""CuPy execution of the fused stacked sweeps (optional, CUDA only).

CuPy mirrors the NumPy API closely enough that the adapter is nearly
mechanical: ``cupy.einsum``/``cupy.matmul`` accept ``out=``, ``take``
supports ``axis=``, and dtypes are the NumPy dtype objects.  The only
real differences are the transfer boundary (``cupy.asarray`` /
``cupy.asnumpy``) and that every array lives on the current CUDA
device.

Like torch, CuPy is optional: constructing the backend raises
:class:`~repro.exceptions.BackendUnavailable` when ``cupy`` is missing
or no CUDA device is usable, and callers fall back to NumPy.  Numerics
are tolerance-grade (cuBLAS reductions round differently from host
BLAS); the strict bitwise suites remain scoped to NumPy.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import BackendUnavailable
from . import ArrayBackend, REAL_DTYPE

__all__ = ["CupyBackend"]


class CupyBackend(ArrayBackend):
    """:class:`~repro.backends.ArrayBackend` over CuPy device arrays."""

    name = "cupy"
    is_numpy = False

    def __init__(self) -> None:
        try:
            import cupy
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise BackendUnavailable(
                "the 'cupy' backend requires CuPy, which is not "
                "installed in this environment"
            ) from exc
        try:  # pragma: no cover - needs a CUDA device
            cupy.cuda.runtime.getDeviceCount()
        except Exception as exc:  # pragma: no cover - needs a CUDA device
            raise BackendUnavailable(
                f"the 'cupy' backend found no usable CUDA device: {exc}"
            ) from exc
        self._cp = cupy

    # -- construction / transfer ----------------------------------------

    def asarray(self, a, dtype=None):
        return self._cp.asarray(a, dtype=dtype)

    def as_real(self, a):
        return self._cp.asarray(a, dtype=REAL_DTYPE)

    def to_numpy(self, a) -> np.ndarray:
        if isinstance(a, self._cp.ndarray):
            return self._cp.asnumpy(a)
        return np.asarray(a)

    def empty(self, shape, dtype=None):
        return self._cp.empty(shape, dtype=dtype or REAL_DTYPE)

    def zeros(self, shape, dtype=None):
        return self._cp.zeros(shape, dtype=dtype or REAL_DTYPE)

    def zeros_like(self, a):
        return self._cp.zeros_like(a)

    def ascontiguousarray(self, a):
        return self._cp.ascontiguousarray(a)

    # -- kernels ---------------------------------------------------------

    def einsum(self, spec, *operands, out=None):
        result = self._cp.einsum(spec, *operands)
        if out is None:
            return result
        out[...] = result
        return out

    def matmul(self, a, b, out=None):
        return self._cp.matmul(a, b, out=out)

    def take(self, a, indices, out):
        return self._cp.take(a, indices, axis=1, out=out)

    def multiply(self, a, b, out):
        out[...] = a * b
        return out

    def conj_transpose(self, m):
        return self._cp.conj(self._cp.swapaxes(m, -1, -2))

    def abs2(self, z):
        return z.real**2 + z.imag**2

    def sqrt(self, a):
        return self._cp.sqrt(a)

    def square(self, a):
        return self._cp.square(a)

    def fill(self, a, value):
        a.fill(value)

    def index_const(self, indices):
        return self._cp.asarray(np.asarray(indices, dtype=np.int64))

    def synchronize(self) -> None:  # pragma: no cover - needs a GPU
        self._cp.cuda.runtime.deviceSynchronize()

    def free_bytes(self) -> "int | None":  # pragma: no cover - needs a GPU
        try:
            return int(self._cp.cuda.runtime.memGetInfo()[0])
        except Exception:
            return None
