"""repro — reproduction of "Computational Advantage in Hybrid Quantum
Neural Networks: Myth or Reality?" (Kashif, Marchisio, Shafique, DAC 2025;
arXiv:2412.04991).

The library answers the paper's question — *does a quantum layer buy
computational efficiency?* — by rebuilding, from scratch and on NumPy
only, everything the study needs:

* :mod:`repro.quantum` — a batched statevector simulator with the paper's
  templates (angle embedding, BEL, SEL) and two exact gradient backends;
* :mod:`repro.nn` — a Keras-style NN framework (Dense/ReLU/Softmax,
  cross-entropy, Adam, the paper's training loop);
* :mod:`repro.hybrid` — the quantum layer and the paper's classical /
  hybrid model architectures;
* :mod:`repro.flops` — a convention-parameterized FLOPs profiler
  (the paper's complexity metric), calibrated against its Table I;
* :mod:`repro.data` — the spiral dataset with the feature-count
  complexity dial;
* :mod:`repro.core` — the benchmarking methodology: search spaces,
  FLOPs-sorted grid search, the 5x5 experiment protocol and the
  rate-of-increase comparison;
* :mod:`repro.runtime` — the parallel search runtime: process-pool
  execution of (candidate, run) training jobs with speculative
  FLOPs-order semantics, bit-identical to the sequential search;
* :mod:`repro.experiments` — drivers that regenerate every figure and
  table of the paper's evaluation.

Quickstart::

    from repro import make_spiral, stratified_split, build_hybrid_model
    from repro.nn import train_model
    from repro.flops import profile_model

    data = make_spiral(n_features=10)
    split = stratified_split(data)
    model = build_hybrid_model(10, n_qubits=3, n_layers=2, ansatz="sel")
    history = train_model(model, split.x_train, split.y_train,
                          split.x_val, split.y_val, epochs=30)
    print(history.max_val_accuracy)
    print(profile_model(model).summary())
"""

from . import (
    config,
    core,
    data,
    experiments,
    flops,
    hybrid,
    nn,
    paperdata,
    quantum,
    runtime,
)
from .core import (
    ClassicalSpec,
    HybridSpec,
    ProtocolConfig,
    comparative_analysis,
    grid_search,
    run_protocol,
)
from .data import make_spiral, stratified_split
from .flops import profile_model
from .hybrid import QuantumLayer, build_classical_model, build_hybrid_model
from .nn import Sequential, train_model

__version__ = "1.0.0"

__all__ = [
    "config",
    "core",
    "data",
    "experiments",
    "flops",
    "hybrid",
    "nn",
    "paperdata",
    "quantum",
    "runtime",
    "make_spiral",
    "stratified_split",
    "build_classical_model",
    "build_hybrid_model",
    "QuantumLayer",
    "Sequential",
    "train_model",
    "profile_model",
    "grid_search",
    "run_protocol",
    "comparative_analysis",
    "ProtocolConfig",
    "ClassicalSpec",
    "HybridSpec",
    "__version__",
]
