"""Picklable training-job payloads and the shared run primitive.

The parallel search runtime ships jobs to worker processes, so a job
must be a small, picklable value object: the :class:`ModelSpec` (frozen
dataclass), the base seed and the ``(candidate_index, run)`` coordinates
that derive the job's RNG stream.  The heavyweight, per-search constants
— the :class:`~repro.data.splits.DataSplit` and
:class:`~repro.core.grid_search.TrainingSettings` — travel once per
worker via the pool initializer, not once per job.

:func:`execute_job` is the *only* place a (candidate, run) training run
happens: the sequential grid search and every pool worker call the same
function with the same ``(seed, candidate_index, run)``-derived RNG, so
parallel results are bit-identical to sequential ones by construction
rather than by testing alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..nn.optimizers import Adam
from ..nn.training import train_model

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.grid_search import TrainingSettings
    from ..core.search_space import ModelSpec
    from ..data.splits import DataSplit

__all__ = ["TrainingJob", "RunResult", "execute_job"]


@dataclass(frozen=True)
class TrainingJob:
    """One (candidate, run) training unit of a grid search."""

    spec: "ModelSpec"
    seed: int
    candidate_index: int
    run: int


@dataclass(frozen=True)
class RunResult:
    """The outcome of one training run, reduced to what aggregation needs.

    Histories stay in the worker; only the paper's per-run metrics (max
    train/val accuracy over epochs), the epoch count and the wall time
    cross the process boundary.
    """

    candidate_index: int
    run: int
    train_accuracy: float
    val_accuracy: float
    epochs_run: int
    wall_time_s: float


def execute_job(
    job: TrainingJob,
    split: "DataSplit",
    settings: "TrainingSettings",
    cancel_check: Callable[[], bool] | None = None,
) -> RunResult:
    """Train one run of one candidate; deterministic given the job alone.

    The RNG stream is derived from ``(seed, candidate_index, run)`` — no
    state is shared between jobs, which is what makes the search
    embarrassingly parallel without changing its semantics.

    ``cancel_check`` is forwarded to the training loop (polled per
    epoch); it only ever fires on speculative runs whose search already
    finished, so it cannot change any reported result.
    """
    rng = np.random.default_rng((job.seed, job.candidate_index, job.run))
    model = job.spec.build(rng=rng)
    history = train_model(
        model,
        split.x_train,
        split.y_train,
        split.x_val,
        split.y_val,
        epochs=settings.epochs,
        batch_size=settings.batch_size,
        optimizer=Adam(learning_rate=settings.learning_rate),
        rng=rng,
        early_stop_threshold=settings.early_stop_threshold,
        cancel_check=cancel_check,
    )
    return RunResult(
        candidate_index=job.candidate_index,
        run=job.run,
        train_accuracy=history.max_train_accuracy,
        val_accuracy=history.max_val_accuracy,
        epochs_run=history.epochs_run,
        wall_time_s=history.wall_time_s,
    )
