"""Picklable training-job payloads and the shared run primitives.

The parallel search runtime ships jobs to worker processes, so a job
must be a small, picklable value object: the :class:`ModelSpec` (frozen
dataclass), the base seed and the ``(candidate_index, run)`` coordinates
that derive the job's RNG stream.  The heavyweight, per-search constants
— the :class:`~repro.data.splits.DataSplit` and
:class:`~repro.core.grid_search.TrainingSettings` — travel once per
worker via the pool initializer, not once per job.

:func:`execute_job` is the *only* place a scalar (candidate, run)
training run happens: the sequential grid search and every pool worker
call the same function with the same ``(seed, candidate_index,
run)``-derived RNG, so parallel results are bit-identical to sequential
ones by construction rather than by testing alone.

:func:`execute_runs` is its run-vectorized sibling: it trains a whole
run set of one candidate as one stacked sweep
(:class:`repro.nn.training.VectorizedTrainer`) when the model stacks,
and falls back to per-run :func:`execute_job` calls otherwise.  The
stacked path's kernels are bit-identical to the scalar ones per run, so
either path yields the same :class:`RunResult` list.

:func:`execute_candidates` generalizes one step further: several
candidates whose compiled tapes are structurally identical (equal
:meth:`~repro.core.search_space.ModelSpec.group_key`) merge their run
sets into one cross-candidate fused sweep
(:func:`repro.nn.stacked.stack_candidates` +
:func:`repro.nn.training.train_stack`).  Per-slice arithmetic is again
bit-identical to the per-candidate paths, so grouping is pure wall-time
optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..backends import resolve_backend, use_backend
from ..nn.optimizers import Adam
from ..nn.stacked import stack_candidates
from ..nn.training import VectorizedTrainer, train_model, train_stack

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.grid_search import TrainingSettings
    from ..core.search_space import ModelSpec
    from ..data.splits import DataSplit
    from ..nn.training import History

__all__ = [
    "TrainingJob",
    "RunResult",
    "execute_job",
    "execute_runs",
    "execute_candidates",
]


@dataclass(frozen=True)
class TrainingJob:
    """One (candidate, run) training unit of a grid search."""

    spec: "ModelSpec"
    seed: int
    candidate_index: int
    run: int


@dataclass(frozen=True)
class RunResult:
    """The outcome of one training run, reduced to what aggregation needs.

    By default histories stay in the worker; only the paper's per-run
    metrics (max train/val accuracy over epochs), the epoch count and
    the wall time cross the process boundary.  With
    ``TrainingSettings.return_histories`` the full per-epoch
    :class:`~repro.nn.training.History` rides along too — large ones are
    shipped back through shared memory rather than the pool's pickle
    channel (see :mod:`repro.runtime.pool`).
    """

    candidate_index: int
    run: int
    train_accuracy: float
    val_accuracy: float
    epochs_run: int
    wall_time_s: float
    history: "History | None" = None


def _settings_backend(settings: "TrainingSettings"):
    """The ``use_backend`` scope for one job's settings.

    Resolves ``settings.backend`` (explicit > ``REPRO_BACKEND`` env >
    process default > numpy) with the standard fallback-to-numpy when
    the requested backend is unimportable; the structured fallback
    event is emitted once by the grid search, not per job.  Scoping the
    active backend around each stacked sweep is what lets pooled
    workers and the sequential path share one selection mechanism.
    """
    backend, _ = resolve_backend(getattr(settings, "backend", None))
    return use_backend(backend)


def execute_job(
    job: TrainingJob,
    split: "DataSplit",
    settings: "TrainingSettings",
    cancel_check: Callable[[], bool] | None = None,
) -> RunResult:
    """Train one run of one candidate; deterministic given the job alone.

    The RNG stream is derived from ``(seed, candidate_index, run)`` — no
    state is shared between jobs, which is what makes the search
    embarrassingly parallel without changing its semantics.

    ``cancel_check`` is forwarded to the training loop (polled per
    epoch); it only ever fires on speculative runs whose search already
    finished, so it cannot change any reported result.
    """
    rng = np.random.default_rng((job.seed, job.candidate_index, job.run))
    model = job.spec.build(rng=rng)
    history = train_model(
        model,
        split.x_train,
        split.y_train,
        split.x_val,
        split.y_val,
        epochs=settings.epochs,
        batch_size=settings.batch_size,
        optimizer=Adam(learning_rate=settings.learning_rate),
        rng=rng,
        early_stop_threshold=settings.early_stop_threshold,
        cancel_check=cancel_check,
    )
    return _to_result(job.candidate_index, job.run, history, settings)


def _to_result(
    candidate_index: int,
    run: int,
    history: "History",
    settings: "TrainingSettings",
) -> RunResult:
    return RunResult(
        candidate_index=candidate_index,
        run=run,
        train_accuracy=history.max_train_accuracy,
        val_accuracy=history.max_val_accuracy,
        epochs_run=history.epochs_run,
        wall_time_s=history.wall_time_s,
        history=history if getattr(settings, "return_histories", False) else None,
    )


def execute_runs(
    spec: "ModelSpec",
    seed: int,
    candidate_index: int,
    runs: Sequence[int],
    split: "DataSplit",
    settings: "TrainingSettings",
    cancel_check: Callable[[], bool] | None = None,
    vectorized: bool = True,
) -> list[RunResult]:
    """Train several runs of one candidate; same results either way.

    With ``vectorized`` (and at least two runs), the models are built
    from their per-run RNG streams, stacked, and trained in lockstep by
    one :class:`~repro.nn.training.VectorizedTrainer` sweep — the
    innermost hot loop of a grid search becomes one tape sweep instead
    of ``len(runs)``.  Models that cannot be stacked (custom layers,
    parameter-shift gradients...), and single-run sets, fall back to
    scalar :func:`execute_job` calls.  Both paths produce bit-identical
    :class:`RunResult` metrics; only ``wall_time_s`` differs (stacked
    runs share the lockstep clock).

    The stacked sweep runs on the backend resolved from
    ``settings.backend`` (scalar fallbacks always use NumPy — the
    scalar layers are NumPy code).
    """
    runs = list(runs)

    def scalar() -> list[RunResult]:
        return [
            execute_job(
                TrainingJob(spec, seed, candidate_index, run),
                split,
                settings,
                cancel_check=cancel_check,
            )
            for run in runs
        ]

    if not vectorized or len(runs) < 2:
        return scalar()
    with _settings_backend(settings):
        # Build each run's model from its own (seed, candidate, run)
        # stream; the streams then continue into minibatch shuffling,
        # exactly as in execute_job.  Build errors surface at the lowest
        # run first, like the scalar loop's.
        rngs = [
            np.random.default_rng((seed, candidate_index, run))
            for run in runs
        ]
        models = [spec.build(rng=rng) for rng in rngs]
        trainer = VectorizedTrainer(
            models, learning_rate=settings.learning_rate
        )
        if not trainer.available:
            # Unstackable models: train the ones just built (their rngs
            # are already past initialization, exactly where
            # execute_job's would be) instead of rebuilding each from
            # scratch.
            return [
                _to_result(
                    candidate_index,
                    run,
                    train_model(
                        model,
                        split.x_train,
                        split.y_train,
                        split.x_val,
                        split.y_val,
                        epochs=settings.epochs,
                        batch_size=settings.batch_size,
                        optimizer=Adam(learning_rate=settings.learning_rate),
                        rng=rng,
                        early_stop_threshold=settings.early_stop_threshold,
                        cancel_check=cancel_check,
                    ),
                    settings,
                )
                for run, model, rng in zip(runs, models, rngs)
            ]
        histories = trainer.train(
            split.x_train,
            split.y_train,
            split.x_val,
            split.y_val,
            epochs=settings.epochs,
            batch_size=settings.batch_size,
            rngs=rngs,
            early_stop_threshold=settings.early_stop_threshold,
            cancel_check=cancel_check,
            compact=getattr(settings, "compact_frozen", True),
        )
    return [
        _to_result(candidate_index, run, history, settings)
        for run, history in zip(runs, histories)
    ]


def execute_candidates(
    group: Sequence[tuple["ModelSpec", int, Sequence[int]]],
    seed: int,
    split: "DataSplit",
    settings: "TrainingSettings",
    cancel_check: Callable[[], bool] | None = None,
) -> list[RunResult] | None:
    """Train several candidates' run sets as one cross-candidate sweep.

    ``group`` holds ``(spec, candidate_index, runs)`` triples whose
    specs share a tape structure (equal ``group_key``).  Every slice —
    one ``(candidate, run)`` pair, candidate-major in group order —
    builds its model from the same ``(seed, candidate_index, run)``
    stream the scalar and per-candidate paths use, so results are
    bit-identical to training each candidate separately.

    Returns ``None`` when the group cannot be stacked
    (:func:`repro.nn.stacked.stack_candidates` declined) — the caller
    falls back to per-candidate execution with nothing consumed.  A
    training (or build) error raises: the error cannot be attributed to
    one candidate from inside the fused sweep, so callers re-run per
    candidate to reproduce the exact per-candidate error.
    """
    slices = [
        (spec, candidate_index, run)
        for spec, candidate_index, runs in group
        for run in runs
    ]
    if len(slices) < 2:
        return None
    with _settings_backend(settings):
        rngs = [
            np.random.default_rng((seed, candidate_index, run))
            for _, candidate_index, run in slices
        ]
        models = [
            spec.build(rng=rng) for (spec, _, _), rng in zip(slices, rngs)
        ]
        model_groups = []
        offset = 0
        for _, _, runs in group:
            model_groups.append(models[offset : offset + len(runs)])
            offset += len(runs)
        stack = stack_candidates(model_groups)
        if stack is None:
            return None
        histories = train_stack(
            stack,
            split.x_train,
            split.y_train,
            split.x_val,
            split.y_val,
            epochs=settings.epochs,
            batch_size=settings.batch_size,
            learning_rate=settings.learning_rate,
            rngs=rngs,
            early_stop_threshold=settings.early_stop_threshold,
            cancel_check=cancel_check,
            compact=getattr(settings, "compact_frozen", True),
        )
    return [
        _to_result(candidate_index, run, history, settings)
        for (_, candidate_index, run), history in zip(slices, histories)
    ]
