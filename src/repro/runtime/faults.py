"""Deterministic fault injection for the parallel search runtime.

Fault tolerance is only trustworthy if every failure path is exercised
by *real* process death, not by mocks: a worker that is ``kill -9``-ed
mid-chunk goes through the same ``multiprocessing.Pool`` respawn, the
same lost-callback hole and the same watchdog detection as a production
OOM kill.  This module provides hook-based faults that workers execute
on themselves, armed by the parent through the pool's shared control
segment (the same 4 KiB segment that carries the cancellation floor —
see :mod:`repro.runtime.pool`):

* ``kill`` — the worker SIGKILLs itself at the start of a matching
  chunk, exactly the signal an OOM killer sends;
* ``delay`` — the worker sleeps before executing a matching chunk,
  pushing it past its scheduler deadline;
* ``corrupt-result`` — the worker ships a shared-memory result handle
  whose segment holds garbage, exercising the parent's result-inflation
  error path;
* ``oom`` — the worker raises :class:`MemoryError` at the start of a
  matching chunk's fused sweep, exercising the memory-governance
  recovery ladder (group halving, per-candidate, scalar — see
  :mod:`repro.runtime.pool`) rather than the crash/retry machinery.

A plan matches either a specific ``candidate`` index (fully
deterministic regardless of worker count or scheduling) or the Nth
chunk execution counted across all workers (``after_chunks``; the
counter lives in the control segment and is exact for one worker,
best-effort under concurrent increments).  ``times`` bounds how often
the plan fires, so a killed chunk's *retry* runs clean — which is what
lets a test assert the retried search's outcome is bit-identical to the
fault-free one.

Faults never fire outside an armed plan: with the plan region zeroed
(the default), :func:`maybe_fire` is one 4-byte read per chunk.

The cluster runtime (:mod:`repro.runtime.cluster`) has its own fault
kinds — shared memory does not cross hosts, so its plans are armed as
*spool files* instead of control-segment bytes:

* ``host-kill`` — the agent SIGKILLs itself right after claiming a
  matching chunk's lease, exercising lease expiry and chunk re-enqueue;
* ``lease-steal`` — the agent suspends its heartbeat for ``delay_s``
  (a network partition), lets the coordinator expire its lease and
  re-issue the chunk, then *rejoins* and still writes its now-duplicate
  result, exercising first-commit-wins dedup;
* ``torn-file`` — the agent writes a truncated result frame, exercising
  checksum detection and quarantine.

The TCP transport (:mod:`repro.runtime.cluster_tcp`) adds three more
file-armed kinds — its agents take a ``fault_dir`` pointing at the same
token directory layout, so the one-shot discipline carries over:

* ``conn-drop`` — the agent writes half its result frame and then
  closes the connection, exercising mid-frame torn-delivery detection,
  dead-connection requeue and agent reconnect with backoff;
* ``partition`` — the agent suspends its heartbeat frames for
  ``delay_s`` while holding its finished result (the connection looks
  silent, not closed), lets the coordinator expire the lease and
  re-issue the chunk, then resumes and delivers the now-duplicate
  result, exercising first-commit-wins dedup over sockets;
* ``slow-frame`` — the agent stalls mid-result-frame for ``delay_s``,
  exercising the coordinator's per-frame read timeout.

``times`` is enforced cross-process by one-shot token files claimed via
atomic rename (:func:`claim_spool_fault`), so a retried chunk runs clean
on any host.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..exceptions import SearchError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pool import JobChunk, ShmResultHandle

__all__ = [
    "FaultPlan",
    "KILL",
    "DELAY",
    "CORRUPT_RESULT",
    "OOM",
    "HOST_KILL",
    "LEASE_STEAL",
    "TORN_FILE",
    "CONN_DROP",
    "PARTITION",
    "SLOW_FRAME",
    "arm_spool_fault",
    "clear_spool_fault",
    "claim_spool_fault",
]

KILL = "kill"
DELAY = "delay"
CORRUPT_RESULT = "corrupt-result"
OOM = "oom"
HOST_KILL = "host-kill"
LEASE_STEAL = "lease-steal"
TORN_FILE = "torn-file"
CONN_DROP = "conn-drop"
PARTITION = "partition"
SLOW_FRAME = "slow-frame"
_SPOOL_KINDS = (HOST_KILL, LEASE_STEAL, TORN_FILE)
_TCP_KINDS = (HOST_KILL, CONN_DROP, PARTITION, SLOW_FRAME)
#: Every kind armed as one-shot token files rather than control-segment
#: bytes (the union of the spool's and the TCP transport's kinds).
_FILE_KINDS = tuple(dict.fromkeys(_SPOOL_KINDS + _TCP_KINDS))
_KINDS = (KILL, DELAY, CORRUPT_RESULT, OOM) + _FILE_KINDS

# Control-segment layout.  Byte 0 onward is owned by the cancellation
# protocol (an 8-byte generation floor, see pool._cancel_floor); the
# fault region sits behind it so arming a fault never perturbs
# cancellation and vice versa.
CTRL_SIZE = 4096
_COUNTER_OFF = 8  # u64: chunks started while a plan was armed
_FIRED_OFF = 16  # u64: how often the plan has fired
_PLAN_LEN_OFF = 24  # u32: length of the JSON plan (0 = disarmed)
_PLAN_OFF = 32
_PLAN_MAX = CTRL_SIZE - _PLAN_OFF


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault, armed via :meth:`PersistentPool.install_fault`.

    ``candidate`` targets any chunk carrying that candidate index;
    when ``None``, the plan fires on the ``after_chunks``-th chunk
    execution (1-based, counted across workers).  ``times`` caps the
    number of firings; the plan is inert afterwards, so retried chunks
    run clean.
    """

    kind: str
    candidate: int | None = None
    after_chunks: int = 1
    delay_s: float = 0.0
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise SearchError(
                f"unknown fault kind {self.kind!r}; options: {_KINDS}"
            )
        if self.times < 1:
            raise SearchError(f"fault times must be >= 1, got {self.times}")


def _read_u64(buf, off: int) -> int:
    return int.from_bytes(buf[off : off + 8], "little")


def _write_u64(buf, off: int, value: int) -> None:
    buf[off : off + 8] = value.to_bytes(8, "little")


def install(buf, plan: FaultPlan) -> None:
    """Arm ``plan`` in a control segment (parent side)."""
    payload = json.dumps(
        {
            "kind": plan.kind,
            "candidate": plan.candidate,
            "after_chunks": plan.after_chunks,
            "delay_s": plan.delay_s,
            "times": plan.times,
        }
    ).encode()
    if len(payload) > _PLAN_MAX:  # pragma: no cover - plans are tiny
        raise SearchError("fault plan too large for the control segment")
    _write_u64(buf, _COUNTER_OFF, 0)
    _write_u64(buf, _FIRED_OFF, 0)
    # Plan bytes land before the length field becomes non-zero, so a
    # worker can never parse a half-written plan.
    buf[_PLAN_OFF : _PLAN_OFF + len(payload)] = payload
    buf[_PLAN_LEN_OFF : _PLAN_LEN_OFF + 4] = len(payload).to_bytes(4, "little")


def clear(buf) -> None:
    """Disarm any plan and reset the counters (parent side)."""
    buf[_PLAN_LEN_OFF : _PLAN_LEN_OFF + 4] = (0).to_bytes(4, "little")
    _write_u64(buf, _COUNTER_OFF, 0)
    _write_u64(buf, _FIRED_OFF, 0)


def read_plan(buf) -> FaultPlan | None:
    """The armed plan, or ``None`` (worker side)."""
    length = int.from_bytes(buf[_PLAN_LEN_OFF : _PLAN_LEN_OFF + 4], "little")
    if length == 0:
        return None
    try:
        data = json.loads(bytes(buf[_PLAN_OFF : _PLAN_OFF + length]))
        return FaultPlan(
            kind=data["kind"],
            candidate=data["candidate"],
            after_chunks=int(data["after_chunks"]),
            delay_s=float(data["delay_s"]),
            times=int(data["times"]),
        )
    except (ValueError, KeyError, SearchError):  # pragma: no cover
        return None  # torn or foreign write: never fault spuriously


def maybe_fire(buf, chunk: "JobChunk") -> str | None:
    """Worker-side hook, called once per live chunk execution.

    Returns the fired kind for faults the caller must act on (``delay``
    already slept; ``corrupt-result`` asks the caller to ship garbage;
    ``oom`` asks the caller to raise :class:`MemoryError` at the start
    of the chunk's first fused sweep), ``None`` when nothing fired.  A
    ``kill`` fault does not return.
    """
    plan = read_plan(buf)
    if plan is None:
        return None
    count = _read_u64(buf, _COUNTER_OFF) + 1
    _write_u64(buf, _COUNTER_OFF, count)
    if plan.candidate is not None:
        matched = any(
            job.candidate_index == plan.candidate for job in chunk.jobs
        )
    else:
        matched = count >= plan.after_chunks
    if not matched:
        return None
    fired = _read_u64(buf, _FIRED_OFF)
    if fired >= plan.times:
        return None
    _write_u64(buf, _FIRED_OFF, fired + 1)
    if plan.kind == KILL:
        # The real thing: an uncatchable SIGKILL mid-chunk, exactly what
        # the OOM killer delivers.  The chunk's callbacks never fire.
        os.kill(os.getpid(), signal.SIGKILL)
    if plan.kind == DELAY:
        time.sleep(plan.delay_s)
    return plan.kind


def corrupt_shipment(nbytes: int = 64) -> "ShmResultHandle":
    """A result handle whose segment holds garbage (worker side).

    The parent's result inflation (`pool._receive_result`) attaches,
    fails to unpickle, unlinks the segment and routes the error to the
    search's error callback — the same path a worker crash mid-result
    takes in production.
    """
    from .pool import ShmResultHandle, _create_named_segment

    shm = _create_named_segment("flt", nbytes)
    shm.buf[:nbytes] = (b"\xde\xad\xbe\xef" * (nbytes // 4 + 1))[:nbytes]
    shm.close()
    return ShmResultHandle(segment=shm.name, nbytes=nbytes)


# -- spool-armed faults (cluster agents) ------------------------------------

_SPOOL_FAULT_DIR = "faults"
_SPOOL_PLAN_FILE = "plan.json"


def _spool_fault_dir(spool_dir) -> str:
    return os.path.join(os.fspath(spool_dir), _SPOOL_FAULT_DIR)


def arm_spool_fault(spool_dir, plan: FaultPlan) -> None:
    """Arm one deterministic cluster fault in a spool (test/parent side).

    Writes ``faults/plan.json`` plus ``plan.times`` one-shot token files;
    an agent only fires after claiming a token by atomic rename, so the
    firing bound holds across any number of agent processes and hosts.
    File-armed plans must target a ``candidate`` — chunk-counting order
    is not deterministic across hosts.  TCP agents point their
    ``fault_dir`` at the same layout, so their kinds (``conn-drop``,
    ``partition``, ``slow-frame``) arm identically.
    """
    if plan.kind not in _FILE_KINDS:
        raise SearchError(
            f"fault kind {plan.kind!r} cannot be file-armed; "
            f"options: {_FILE_KINDS}"
        )
    if plan.candidate is None:
        raise SearchError("spool fault plans must target a candidate index")
    directory = _spool_fault_dir(spool_dir)
    os.makedirs(directory, exist_ok=True)
    clear_spool_fault(spool_dir)
    for i in range(plan.times):
        with open(os.path.join(directory, f"token-{i}"), "w"):
            pass
    payload = json.dumps(
        {
            "kind": plan.kind,
            "candidate": plan.candidate,
            "delay_s": plan.delay_s,
            "times": plan.times,
        }
    )
    # Tokens land before the plan becomes visible (and the plan itself
    # lands by rename), so an agent can never read a half-armed fault.
    tmp = os.path.join(directory, f".plan.tmp{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(payload)
    os.replace(tmp, os.path.join(directory, _SPOOL_PLAN_FILE))


def clear_spool_fault(spool_dir) -> None:
    """Disarm any spool plan and remove all tokens, fired or not."""
    directory = _spool_fault_dir(spool_dir)
    try:
        names = os.listdir(directory)
    except OSError:
        return
    for name in names:
        try:
            os.unlink(os.path.join(directory, name))
        except OSError:  # pragma: no cover - raced another cleaner
            continue


def claim_spool_fault(spool_dir, candidates) -> FaultPlan | None:
    """Agent-side hook: the armed plan if it matches and a token remains.

    ``candidates`` is the claimed chunk's candidate-index collection.
    Claiming consumes one token file by atomic rename; with no tokens
    left (or no plan, or no match) nothing fires.
    """
    directory = _spool_fault_dir(spool_dir)
    try:
        with open(
            os.path.join(directory, _SPOOL_PLAN_FILE), encoding="utf-8"
        ) as fh:
            data = json.loads(fh.read())
        plan = FaultPlan(
            kind=data["kind"],
            candidate=data["candidate"],
            delay_s=float(data["delay_s"]),
            times=int(data["times"]),
        )
    except (OSError, ValueError, KeyError, SearchError):
        return None  # disarmed, torn, or foreign: never fault spuriously
    if plan.candidate not in set(candidates):
        return None
    try:
        names = sorted(os.listdir(directory))
    except OSError:  # pragma: no cover - spool vanished mid-claim
        return None
    for name in names:
        if not name.startswith("token-") or ".fired" in name:
            continue
        token = os.path.join(directory, name)
        try:
            os.rename(token, f"{token}.fired-{os.getpid()}")
        except OSError:
            continue  # another agent claimed it first
        return plan
    return None

