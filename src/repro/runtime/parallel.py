"""Process-pool scheduler with speculative FLOPs-order semantics.

The paper's search trains candidates strictly in ascending-FLOPs order
and stops at the first pass, which makes the *decision* sequential even
though the *work* — ``runs`` independent trainings per candidate, each
on its own ``(seed, candidate, run)``-derived RNG stream — is
embarrassingly parallel.  The scheduler exploits that gap:

* jobs are submitted to a :class:`multiprocessing.pool.Pool` in FLOPs
  order, a bounded window ahead of the commit frontier (*speculation*:
  workers may train candidate ``i + k`` before candidate ``i``'s verdict
  is known);
* finished runs are buffered and candidates are **committed strictly in
  FLOPs order** — a candidate's verdict (pass, fail, or even a training
  error) is only acted upon once every cheaper candidate has been
  committed, so a crash in a speculatively-trained expensive candidate
  cannot surface from a search the sequential path would have won
  earlier;
* the first committed pass is the winner (by construction the cheapest,
  exactly as in the sequential path); the pool is then **terminated**,
  killing in-flight speculative trainings immediately — the search
  neither waits on losing candidates nor leaves stray workers competing
  with the caller's next search.

The reported :class:`~repro.core.grid_search.SearchOutcome` — winner,
evaluated list, per-run accuracies, progress-callback sequence — is
identical to ``workers=1`` regardless of completion order.  Every worker
runs :func:`repro.runtime.jobs.execute_job`, the same primitive the
sequential path uses, and enables the process-wide compiled-tape cache
(:func:`repro.quantum.engine.enable_compile_cache`) so repeated jobs on
the same circuit structure skip recompilation.
"""

from __future__ import annotations

import multiprocessing
import os
from queue import Empty, SimpleQueue
from typing import TYPE_CHECKING, Callable, Sequence

from ..exceptions import SearchError
from .jobs import RunResult, TrainingJob, execute_job

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.grid_search import (
        CandidateResult,
        SearchOutcome,
        TrainingSettings,
    )
    from ..core.search_space import ModelSpec
    from ..data.splits import DataSplit
    from ..flops.conventions import CountingConvention

__all__ = ["resolve_workers", "speculative_search", "SPECULATION_FACTOR"]

#: In-flight jobs are capped at ``SPECULATION_FACTOR * workers``: enough
#: look-ahead to keep every worker busy across uneven run times, small
#: enough to bound the training work discarded when an early candidate
#: passes.
SPECULATION_FACTOR = 2

#: How often (seconds) the scheduler wakes from waiting on completions
#: to check worker liveness.  ``multiprocessing.Pool`` silently respawns
#: a worker that dies mid-job (OOM kill, native segfault) and the job's
#: callbacks never fire; without this watchdog the search would hang
#: forever on such a loss.
_WATCHDOG_INTERVAL_S = 10.0

# Per-search constants installed into each worker by the pool initializer
# (sent once per worker, not once per job).
_WORKER_SPLIT = None
_WORKER_SETTINGS = None


def resolve_workers(workers: int | None) -> int:
    """Normalize the ``workers`` knob: ``None``/``0`` means all cores."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise SearchError(f"workers must be >= 0 or None, got {workers}")
    return workers


def _init_worker(split: "DataSplit", settings: "TrainingSettings") -> None:
    global _WORKER_SPLIT, _WORKER_SETTINGS
    _WORKER_SPLIT = split
    _WORKER_SETTINGS = settings
    # Candidate runs rebuild structurally identical circuits over and
    # over; cache compiled tapes for the lifetime of this worker.
    from ..quantum.engine import enable_compile_cache

    enable_compile_cache()


def _run_job(job: TrainingJob) -> RunResult:
    return execute_job(job, _WORKER_SPLIT, _WORKER_SETTINGS)


_PRELOAD_SET = False


def _pool_context():
    """The process-start context used for worker pools.

    Prefer ``forkserver``: its server process is exec'd clean before
    workers are forked, which sidesteps the fork-with-threads hazard —
    the scheduler itself runs pool handler threads in this process, and
    plain ``fork`` from a threaded parent can hand a child a held lock
    (an intermittent deadlock).  The server preloads this module (and
    with it numpy and the repro stack), so after the first pool the
    per-search worker startup is a cheap fork from a warm server.
    Platforms without ``forkserver`` (Windows) fall back to their
    default (``spawn``), which is equally thread-safe; everything a job
    needs is picklable by design.
    """
    global _PRELOAD_SET
    try:
        ctx = multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()
    if not _PRELOAD_SET:
        ctx.set_forkserver_preload(["repro.runtime.parallel"])
        _PRELOAD_SET = True
    return ctx


def speculative_search(
    ranked: Sequence["ModelSpec"],
    split: "DataSplit",
    threshold: float,
    settings: "TrainingSettings",
    convention: "CountingConvention",
    seed: int,
    workers: int,
    progress: Callable[["CandidateResult"], None] | None = None,
) -> "SearchOutcome":
    """Parallel grid search over an already-FLOPs-ranked candidate list.

    Returns a :class:`SearchOutcome` equal to the sequential search's —
    same winner, same ``evaluated`` list (same order, same per-run
    accuracy lists), same ``progress`` call sequence.  Only
    ``wall_time_s`` values differ (they measure actual run time).  A
    training error, too, surfaces exactly when the sequential path would
    hit it: at its candidate's commit turn, and never if a cheaper
    candidate passes first.
    """
    from ..core.grid_search import SearchOutcome, aggregate_runs

    if settings.runs < 1:
        raise SearchError(f"settings.runs must be >= 1, got {settings.runs}")
    outcome = SearchOutcome(threshold=threshold, winner=None)
    runs = settings.runs
    jobs = [
        TrainingJob(spec, seed, index, run)
        for index, spec in enumerate(ranked)
        for run in range(runs)
    ]
    # per-candidate buffered results: run -> RunResult | Exception
    pending_runs: dict[int, dict[int, RunResult | Exception]] = {}
    ready: dict[int, "CandidateResult | Exception"] = {}
    next_commit = 0
    window = max(SPECULATION_FACTOR * workers, workers + 1)
    # Speculation is bounded in *candidates*, not just in-flight jobs:
    # only candidates within `lookahead` of the commit frontier may be
    # submitted, so the training work discarded on an early pass is
    # capped at ~`window` jobs past the winner even when one cheap
    # candidate trains much slower than everything after it.  The bound
    # still exposes >= `window` submittable jobs (lookahead * runs >=
    # window), so workers stay busy across uneven run times.
    lookahead = max(1, -(-window // runs))

    # multiprocessing.Pool rather than ProcessPoolExecutor: its
    # terminate() kills in-flight jobs the moment the winner commits,
    # where an executor could only cancel *queued* futures and would
    # leave running speculative trainings competing with whatever the
    # caller does next (or stalling interpreter exit).
    pool = _pool_context().Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(split, settings),
    )
    # Completions cross from the pool's result-handler thread to this
    # one through a thread-safe queue: (job, result, exception).
    completions: SimpleQueue = SimpleQueue()
    pos = 0
    in_flight = 0

    def submit(job: TrainingJob) -> None:
        pool.apply_async(
            _run_job,
            (job,),
            callback=lambda res, job=job: completions.put((job, res, None)),
            error_callback=lambda exc, job=job: completions.put(
                (job, None, exc)
            ),
        )

    def top_up() -> None:
        nonlocal pos, in_flight
        while (
            pos < len(jobs)
            and in_flight < window
            and jobs[pos].candidate_index < next_commit + lookahead
        ):
            submit(jobs[pos])
            pos += 1
            in_flight += 1

    # Worker pids at spawn: a changed set later means a worker died and
    # was respawned — its in-flight job is lost (Pool fires no callback
    # for it), so fail loudly instead of waiting forever.  ``_pool`` is
    # not public API, but it has been the worker list since Python 2 and
    # the watchdog degrades gracefully (attribute check) if it moves.
    worker_pids = {p.pid for p in getattr(pool, "_pool", [])}

    try:
        top_up()
        while in_flight:
            try:
                job, result, error = completions.get(
                    timeout=_WATCHDOG_INTERVAL_S
                )
            except Empty:
                current = {p.pid for p in getattr(pool, "_pool", [])}
                if worker_pids and current != worker_pids:
                    raise SearchError(
                        "a grid-search worker process died unexpectedly "
                        "(killed or out of memory?); its training job was "
                        "lost, aborting the parallel search"
                    )
                continue
            in_flight -= 1
            per_run = pending_runs.setdefault(job.candidate_index, {})
            per_run[job.run] = error if error is not None else result
            if len(per_run) == runs:
                del pending_runs[job.candidate_index]
                # Surface the lowest-run error (the one the sequential
                # loop would hit first), else aggregate normally.
                entry: "CandidateResult | Exception"
                failed = [r for r in range(runs) if isinstance(per_run[r], Exception)]
                if failed:
                    entry = per_run[failed[0]]
                else:
                    entry = aggregate_runs(
                        ranked[job.candidate_index],
                        convention,
                        [per_run[r] for r in range(runs)],
                    )
                ready[job.candidate_index] = entry
            # Commit strictly in FLOPs order; verdicts (and errors) of
            # speculative higher-FLOPs candidates wait until their turn
            # and are discarded wholesale if a cheaper candidate passes
            # first.
            while next_commit in ready:
                committed = ready.pop(next_commit)
                if isinstance(committed, Exception):
                    raise committed
                outcome.evaluated.append(committed)
                next_commit += 1
                if progress is not None:
                    progress(committed)
                if committed.passes(threshold):
                    outcome.winner = committed
                    return outcome
            top_up()
        return outcome
    finally:
        # Kill any still-running speculative trainings immediately (their
        # results are discarded by construction) and reap the workers.
        pool.terminate()
        pool.join()
