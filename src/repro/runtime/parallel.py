"""Process-pool scheduler with speculative FLOPs-order semantics.

The paper's search trains candidates strictly in ascending-FLOPs order
and stops at the first pass, which makes the *decision* sequential even
though the *work* — ``runs`` independent trainings per candidate, each
on its own ``(seed, candidate, run)``-derived RNG stream — is
embarrassingly parallel.  The scheduler exploits that gap:

* work is submitted to a worker pool in bounded-lookahead **chunks**
  (*speculation*: workers may train candidate ``i + k`` before candidate
  ``i``'s verdict is known); each chunk batches consecutive runs of one
  candidate so a single worker invocation shares one dataset attachment
  and one compiled tape across its runs — and, with candidate stacking,
  waiting chunks of candidates with structurally identical tapes merge
  into one multi-candidate chunk the worker trains as a single
  cross-candidate fused sweep;

* within the speculation window, chunks are submitted
  **most-expensive-first** (FLOPs-aware packing): training time scales
  with a candidate's FLOPs, so starting the window's longest jobs first
  minimizes the window's makespan — the classic longest-processing-time
  heuristic.  Submission order never affects results, only wall time,
  because of the commit rule below;

* finished runs are buffered and candidates are **committed strictly in
  FLOPs order** — a candidate's verdict (pass, fail, or even a training
  error) is only acted upon once every cheaper candidate has been
  committed, so a crash in a speculatively-trained expensive candidate
  cannot surface from a search the sequential path would have won
  earlier;

* the first committed pass is the winner (by construction the cheapest,
  exactly as in the sequential path).  In-flight speculative chunks are
  then *cancelled by generation*: queued chunks no-op, running trainings
  abort at the next epoch boundary — and the pool survives for the next
  search instead of being torn down.

The scheduler is also the search's **supervisor**.  Chunks are
deterministic — every run's RNG stream derives from ``(seed, candidate,
run)`` — so a lost chunk can simply be executed again:

* a worker death (OOM kill, segfault; ``multiprocessing.Pool`` silently
  respawns the process and never fires the lost task's callbacks) is
  detected by the pid watchdog; every outstanding chunk is resubmitted
  under a fresh generation, bounded by ``settings.max_retries``;

* each chunk carries a soft/hard **deadline** once the pool's
  :class:`~repro.runtime.pool.ChunkCostModel` has a measured seconds
  scale (or an absolute ``settings.chunk_timeout_s``): overdue chunks
  emit a structured warning, chunks past the hard deadline are cancelled
  via the generation mechanism and retried;

* retry exhaustion degrades gracefully: with
  ``settings.fallback_sequential`` (the default) the remaining
  candidates are trained in-process by the exact sequential primitive,
  so the sweep completes — identically — instead of dying;

* every committed candidate can be appended to a
  :class:`~repro.runtime.journal.SearchJournal` for checkpoint/resume,
  and every supervision decision is surfaced as a :class:`SearchEvent`
  through ``on_event`` (and the ``repro.runtime`` logger).

Execution runs on a :class:`repro.runtime.pool.PersistentPool`.  Pass
one in (``pool=``) to reuse warm workers and published shared-memory
datasets across many searches — the protocol drivers do this — or let
``speculative_search`` create and close an ephemeral one.

The reported :class:`~repro.core.grid_search.SearchOutcome` — winner,
evaluated list, per-run accuracies, progress-callback sequence — is
identical to ``workers=1`` regardless of completion order, chunking,
packing, retries, or a mid-search fallback.  Every worker runs
:func:`repro.runtime.jobs.execute_job`, the same primitive the
sequential path uses.
"""

from __future__ import annotations

import itertools
import logging
import os
import random
import time
from dataclasses import dataclass, replace
from queue import Empty, SimpleQueue
from typing import TYPE_CHECKING, Callable, Sequence

from ..exceptions import SearchError
from .backoff import Backoff
from .jobs import RunResult, execute_runs
from .pool import ChunkResult, JobChunk, PersistentPool, RunError, make_chunks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.grid_search import (
        CandidateResult,
        SearchOutcome,
        TrainingSettings,
    )
    from ..core.search_space import ModelSpec
    from ..data.splits import DataSplit
    from ..flops.conventions import CountingConvention
    from .journal import SearchJournal

__all__ = [
    "resolve_workers",
    "speculative_search",
    "SearchEvent",
    "SPECULATION_FACTOR",
]

logger = logging.getLogger("repro.runtime")

#: In-flight chunks are capped at ``SPECULATION_FACTOR * workers``:
#: enough look-ahead to keep every worker busy across uneven run times,
#: small enough to bound the training work discarded when an early
#: candidate passes.
SPECULATION_FACTOR = 2

#: How often (seconds) the scheduler wakes from waiting on completions
#: to check worker liveness and chunk deadlines.
#: ``multiprocessing.Pool`` silently respawns a worker that dies mid-job
#: (OOM kill, native segfault) and the job's callbacks never fire;
#: without this watchdog the search would hang forever on such a loss.
#: ``TrainingSettings.watchdog_interval_s`` overrides it per search.
_WATCHDOG_INTERVAL_S = 10.0

#: Hard deadline as a multiple of the soft deadline when deadlines are
#: derived from the cost model (an absolute ``chunk_timeout_s`` sets
#: both to the same value).
_HARD_DEADLINE_FACTOR = 2.0


@dataclass(frozen=True)
class SearchEvent:
    """A structured supervision event, delivered to ``on_event``.

    ``kind`` is one of ``"worker-lost"``, ``"retry"``,
    ``"chunk-overdue"``, ``"chunk-timeout"``, ``"sequential-fallback"``,
    ``"backend-fallback"`` (a requested array backend was unimportable
    and the search fell back to NumPy; emitted once per search),
    ``"group-resize"`` (the memory budget grew a stacked group past the
    fixed cap or refused a merge), or ``"memory-degrade"`` (an
    out-of-memory failure walked the recovery ladder — results are
    unchanged, only the execution shape degraded).  The cluster
    coordinator (:mod:`repro.runtime.cluster`) adds ``"lease-expired"``
    (a chunk was reclaimed from a dead or partitioned agent),
    ``"torn-file"`` (a spool file or socket frame failed validation),
    and ``"no-agents"`` (no live agent served the cluster within the
    grace period); the TCP coordinator
    (:mod:`repro.runtime.cluster_tcp`) adds ``"conn-lost"`` (an agent
    connection dropped and its leased chunks were requeued).
    ``candidates`` lists the affected candidate indices (rank order);
    ``attempts`` is the highest submission count among the affected
    chunks at the time of the event.  ``str(event)`` is the human
    message, so string-based progress sinks can display events
    directly.
    """

    kind: str
    message: str
    candidates: tuple[int, ...] = ()
    attempts: int = 0

    def __str__(self) -> str:
        return self.message


class _RetryExhausted(Exception):
    """Internal: a chunk ran out of attempts; carries the would-be error."""

    def __init__(self, error: Exception, attempts: int) -> None:
        super().__init__(str(error))
        self.error = error
        self.attempts = attempts


@dataclass
class _Flight:
    """One outstanding chunk: identity, provenance, and retry state."""

    chunk: JobChunk
    anchor: int  # candidate index the chunk was queued under
    first_run: int
    attempts: int = 1  # submissions so far (1 = first try)
    submitted_at: float = 0.0  # time.monotonic() of the last submission
    soft_deadline_s: float | None = None
    hard_deadline_s: float | None = None
    warned: bool = False


def resolve_workers(workers: int | None) -> int:
    """Normalize the ``workers`` knob: ``None``/``0`` means all cores."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise SearchError(f"workers must be >= 0 or None, got {workers}")
    return workers


def _finish_sequential(
    ranked: Sequence["ModelSpec"],
    split: "DataSplit",
    threshold: float,
    settings: "TrainingSettings",
    convention: "CountingConvention",
    seed: int,
    outcome: "SearchOutcome",
    start: int,
    ready: "dict[int, CandidateResult | RunError]",
    journal: "SearchJournal | None" = None,
    progress: Callable[["CandidateResult"], None] | None = None,
) -> "SearchOutcome":
    """Finish a sweep in-process from the commit frontier.

    Runs the exact sequential primitive (``execute_runs``) from rank
    ``start``, reusing verdicts already buffered in ``ready``; results
    are bit-identical to what distributed execution would have
    produced.  This is the shared graceful-degradation floor: the pool
    scheduler lands here after retry exhaustion, the spool coordinator
    after losing every agent.  The same compiled-tape cache dance as
    the sequential path in :func:`repro.core.grid_search.grid_search`.
    """
    from ..core.grid_search import aggregate_runs
    from ..quantum.engine import (
        compile_cache_info,
        disable_compile_cache,
        enable_compile_cache,
    )

    had_cache = compile_cache_info()["enabled"]
    if not had_cache:
        enable_compile_cache()
    try:
        index = start
        while index < len(ranked):
            verdict = ready.get(index)
            if verdict is None:
                verdict = aggregate_runs(
                    ranked[index],
                    convention,
                    execute_runs(
                        ranked[index],
                        seed,
                        index,
                        range(settings.runs),
                        split,
                        settings,
                        vectorized=settings.vectorized_runs,
                    ),
                )
            if isinstance(verdict, RunError):
                run_error = verdict.error
                try:
                    run_error.attempts = verdict.attempts
                except Exception:  # pragma: no cover
                    pass
                raise run_error
            outcome.evaluated.append(verdict)
            if journal is not None:
                journal.append(index, verdict)
            if progress is not None:
                progress(verdict)
            if verdict.passes(threshold):
                outcome.winner = verdict
                return outcome
            index += 1
        return outcome
    finally:
        if not had_cache:
            disable_compile_cache()


def speculative_search(
    ranked: Sequence["ModelSpec"],
    split: "DataSplit",
    threshold: float,
    settings: "TrainingSettings",
    convention: "CountingConvention",
    seed: int,
    workers: int,
    progress: Callable[["CandidateResult"], None] | None = None,
    pool: PersistentPool | None = None,
    journal: "SearchJournal | None" = None,
    on_event: Callable[[SearchEvent], None] | None = None,
    outcome: "SearchOutcome | None" = None,
    start_index: int = 0,
) -> "SearchOutcome":
    """Parallel grid search over an already-FLOPs-ranked candidate list.

    Returns a :class:`SearchOutcome` equal to the sequential search's —
    same winner, same ``evaluated`` list (same order, same per-run
    accuracy lists), same ``progress`` call sequence.  Only
    ``wall_time_s`` values differ (they measure actual run time).  A
    training error, too, surfaces exactly when the sequential path would
    hit it: at its candidate's commit turn, and never if a cheaper
    candidate passes first.

    ``pool``: a :class:`~repro.runtime.pool.PersistentPool` to run on.
    When omitted, an ephemeral pool is created and torn down with the
    search (the pre-persistent-pool behaviour); when given, the pool's
    worker count wins over ``workers``, the dataset is published to
    shared memory at most once per pool, and the search leaves the pool
    warm for the caller's next search.

    ``journal``: a :class:`~repro.runtime.journal.SearchJournal` to
    append each committed candidate to.  ``outcome``/``start_index``
    carry a journal-restored prefix: ``outcome`` already holds the
    replayed candidates and the scheduler starts committing at rank
    ``start_index``.  ``on_event`` receives a :class:`SearchEvent` for
    every supervision decision (retry, timeout, fallback).
    """
    from ..core.grid_search import (
        MAX_ADAPTIVE_GROUP,
        MAX_GROUP_CANDIDATES,
        SearchOutcome,
        aggregate_runs,
    )
    from .memory import estimate_candidate_bytes, resolve_memory_budget

    if settings.runs < 1:
        raise SearchError(f"settings.runs must be >= 1, got {settings.runs}")
    owns_pool = pool is None
    if owns_pool:
        pool = PersistentPool(workers)
    else:
        workers = pool.workers
    if outcome is None:
        outcome = SearchOutcome(threshold=threshold, winner=None)
    if start_index >= len(ranked):
        return outcome
    runs = settings.runs
    max_retries = settings.max_retries
    watchdog_s = (
        settings.watchdog_interval_s
        if settings.watchdog_interval_s is not None
        else _WATCHDOG_INTERVAL_S
    )
    window = max(SPECULATION_FACTOR * workers, workers + 1)
    # Cross-candidate stacking: vectorized chunks of same-structure
    # candidates still waiting for a worker slot are merged into one
    # multi-candidate chunk (one fused sweep on the worker).  Merging is
    # opportunistic — it depends on what is still unsubmitted when a
    # candidate enters the window — which, like packing order, only
    # shapes wall time: every run's arithmetic is bit-identical however
    # its chunk was grouped, and commits stay in FLOPs order.  Stacking
    # makes single-run candidates worth vectorizing too (the group
    # supplies the slices a lone run lacks).
    stacking = settings.vectorized_runs and getattr(
        settings, "stacked_candidates", True
    )
    vectorized = settings.vectorized_runs and (runs > 1 or stacking)
    group_keys = (
        [spec.group_key() for spec in ranked] if stacking else None
    )
    if vectorized:
        # Run-stacked mode: one chunk per candidate carries the whole
        # run set, so a single worker invocation trains all R runs in
        # one stacked sweep.  The candidate lookahead equals the chunk
        # window (one chunk each).
        chunk_size = runs
        lookahead = window
    else:
        # Speculation is bounded in *candidates*, not just in-flight
        # chunks: only candidates within `lookahead` of the commit
        # frontier may be submitted, so the training work discarded on
        # an early pass is capped at ~`window` chunks past the winner
        # even when one cheap candidate trains much slower than
        # everything after it.  The bound still exposes >= `window`
        # submittable chunks (lookahead * runs >= window * chunk), so
        # workers stay busy across uneven run times.
        lookahead = max(1, -(-window // runs))
        # Runs per chunk: 1 unless `runs` is large relative to the
        # window (many runs, few workers), where batching consecutive
        # runs of one candidate into a single submission amortizes IPC
        # and shares one compiled tape per worker invocation without
        # starving any worker — the window always holds >= `window`
        # submittable chunks.
        chunk_size = max(1, (lookahead * runs) // window)
    #: Static per-candidate cost estimates: the same FLOPs the ranking
    #: was computed from seed the packing order below; measured chunk
    #: times refine it through the pool's ChunkCostModel (an EWMA per
    #: candidate label), so later searches on a persistent pool pack by
    #: observed seconds rather than raw FLOPs.
    costs = [spec.flops(convention) for spec in ranked]
    cost_model = pool.cost_model
    # Memory governance: groups and the in-flight window are sized
    # against this budget.  Sizing never affects results (commits stay
    # in FLOPs order and every execution shape is bit-identical), so
    # the budget only shapes concurrency and group width.
    budget = resolve_memory_budget(getattr(settings, "memory_budget", None))
    group_cap = (
        MAX_ADAPTIVE_GROUP
        if budget.active and budget.explicit
        else MAX_GROUP_CANDIDATES
    )

    def candidate_bytes(index: int, n_runs: int) -> float:
        """Predicted working-set bytes for ``n_runs`` of one candidate.

        Prefers the cost model's measured EWMA (fed by worker
        ``ru_maxrss`` readings) and falls back to the analytic
        :func:`~repro.runtime.memory.estimate_candidate_bytes` model
        before any measurement exists.
        """
        measured = cost_model.bytes_estimate(ranked[index].label, n_runs)
        if measured is not None:
            return measured
        return float(
            estimate_candidate_bytes(
                ranked[index], settings.batch_size, n_runs
            )
        )

    def chunk_bytes(job_chunk: JobChunk) -> float:
        return sum(
            candidate_bytes(c, n)
            for c, n in chunk_run_counts(job_chunk).items()
        )

    generation = pool.new_generation()
    handle = pool.acquire_split(split)

    # per-candidate buffered results: run -> RunResult | RunError
    pending_runs: dict[int, dict[int, RunResult | RunError]] = {}
    ready: dict[int, "CandidateResult | RunError"] = {}
    next_commit = start_index
    next_unqueued = start_index  # next candidate not yet made submittable
    # Submittable chunks as (candidate_index, first_run, chunk).  The
    # most expensive one is picked at *submit* time — estimates must be
    # priced when the slot frees, not when the chunk was queued, or the
    # first measured chunk would leave stale FLOPs-priced entries
    # competing on a different scale.  The pool is at most
    # `lookahead * ceil(runs/chunk)` entries, so a linear scan is
    # cheaper than keeping a heap consistent with moving estimates.
    # Ties (chunks of one candidate, equal-cost candidates) fall back
    # to (candidate, run) order, keeping submission deterministic for
    # any fixed cost-model state.
    submittable: list[tuple[int, int, JobChunk]] = []
    # In-flight chunks by a stable chunk id.  The id survives retries
    # (a resubmission replaces the flight's chunk but keeps its id), so
    # duplicate completions — a superseded copy finishing after its
    # replacement — are recognized and dropped: a chunk's entries are
    # accepted exactly once no matter how many copies ever ran.
    cid_counter = itertools.count()
    outstanding: dict[int, _Flight] = {}

    # Completions cross from the pool's result-handler thread to this
    # one through a thread-safe queue: (cid, chunk, result, exception).
    completions: SimpleQueue = SimpleQueue()

    # Chunk retries pause with jittered backoff before resubmitting:
    # whatever broke the attempt (a worker riding out memory pressure,
    # a transient result-segment failure) is usually still broken a
    # microsecond later, and an immediate resubmit just burns the retry
    # budget against the same condition.  Seeded for a deterministic
    # delay sequence; delays only shape wall time, never results.
    retry_backoff = Backoff(rng=random.Random(seed))

    def emit(
        kind: str,
        message: str,
        candidates: Sequence[int] = (),
        attempts: int = 0,
    ) -> None:
        logger.warning("%s", message)
        if on_event is not None:
            on_event(
                SearchEvent(
                    kind=kind,
                    message=message,
                    candidates=tuple(candidates),
                    attempts=attempts,
                )
            )

    def chunk_run_counts(job_chunk: JobChunk) -> dict[int, int]:
        """Runs per candidate inside a (possibly merged) chunk."""
        counts: dict[int, int] = {}
        for job in job_chunk.jobs:
            counts[job.candidate_index] = counts.get(job.candidate_index, 0) + 1
        return counts

    def flight_candidates(flight: _Flight) -> list[int]:
        return sorted(chunk_run_counts(flight.chunk))

    def chunk_estimate(job_chunk: JobChunk) -> float:
        """Expected chunk seconds: sum of its candidates' estimates."""
        return sum(
            cost_model.estimate(ranked[c].label, costs[c], n)
            for c, n in chunk_run_counts(job_chunk).items()
        )

    def chunk_deadlines(
        job_chunk: JobChunk,
    ) -> tuple[float | None, float | None]:
        """(soft, hard) deadline seconds for a chunk, or (None, None).

        An absolute ``chunk_timeout_s`` wins.  Otherwise deadlines are
        ``chunk_deadline_factor`` x the cost model's measured seconds
        estimate with a ``chunk_deadline_floor_s`` floor — and only
        exist once the model has a real seconds scale (pre-calibration
        "estimates" are raw FLOPs, meaningless as a time).  The clock
        starts at submission, so deadlines include queue wait; the
        generous factor and floor keep a busy-but-healthy pool from
        tripping them.
        """
        if settings.chunk_timeout_s is not None:
            return settings.chunk_timeout_s, settings.chunk_timeout_s
        estimates = [
            cost_model.seconds_estimate(ranked[c].label, costs[c], n)
            for c, n in chunk_run_counts(job_chunk).items()
        ]
        if any(est is None for est in estimates):
            return None, None
        soft = max(
            settings.chunk_deadline_factor * sum(estimates),
            settings.chunk_deadline_floor_s,
        )
        return soft, _HARD_DEADLINE_FACTOR * soft

    def dispatch(cid: int, flight: _Flight) -> None:
        """(Re)submit a flight's chunk to the pool."""
        flight.submitted_at = time.monotonic()
        flight.warned = False
        flight.soft_deadline_s, flight.hard_deadline_s = chunk_deadlines(
            flight.chunk
        )
        pool.submit(
            flight.chunk,
            callback=lambda res, c=flight.chunk, i=cid: completions.put(
                (i, c, res, None)
            ),
            error_callback=lambda exc, c=flight.chunk, i=cid: completions.put(
                (i, c, None, exc)
            ),
        )

    def try_merge(index: int, job_chunk: JobChunk) -> bool:
        """Merge a new candidate's chunk into a waiting same-key chunk.

        Only still-unsubmitted vectorized chunks are candidates, and a
        merged chunk is capped at MAX_GROUP_CANDIDATES members — or
        MAX_ADAPTIVE_GROUP under an *explicit* memory budget, which lets
        predicted-cheap groups grow past the fixed cap; either way the
        budget's byte prediction can refuse a merge the member cap would
        allow.  The merged jobs stay candidate-major so the worker's
        fused sweep sees each candidate's runs contiguously.

        Merging trades parallelism for per-sweep efficiency, so it only
        happens once the window already holds enough distinct chunks to
        keep every submission slot busy: on an idle pool the group's
        members spread across workers instead of collapsing onto one
        (a fused sweep is ~2x cheaper, but starving N-1 workers costs
        ~Nx).  The excess beyond the window's supply merges.
        """
        if len(submittable) + len(outstanding) < window:
            return False
        key = group_keys[index]
        if key is None:
            return False
        for slot, (anchor, first_run, existing) in enumerate(submittable):
            if not existing.vectorized:
                continue
            counts = chunk_run_counts(existing)
            if index in counts or len(counts) >= group_cap:
                continue
            if any(group_keys[c] != key for c in counts):
                continue
            if budget.active:
                merged_bytes = chunk_bytes(existing) + chunk_bytes(job_chunk)
                if merged_bytes > budget.bytes:
                    emit(
                        "group-resize",
                        f"budget ({budget.source}) refused merging "
                        f"candidate {index} into the stacked group "
                        f"{sorted(counts)}: predicted "
                        f"{merged_bytes / 1e6:.1f} MB exceeds "
                        f"{budget.bytes / 1e6:.1f} MB",
                        candidates=sorted(counts) + [index],
                    )
                    continue
            submittable[slot] = (
                anchor,
                first_run,
                JobChunk(
                    jobs=existing.jobs + job_chunk.jobs,
                    handle=existing.handle,
                    settings=existing.settings,
                    generation=existing.generation,
                    vectorized=True,
                ),
            )
            if len(counts) + 1 > MAX_GROUP_CANDIDATES:
                emit(
                    "group-resize",
                    f"budget ({budget.source}) grew a stacked group to "
                    f"{len(counts) + 1} members (fixed cap: "
                    f"{MAX_GROUP_CANDIDATES}) for candidate(s) "
                    f"{sorted(counts) + [index]}",
                    candidates=sorted(counts) + [index],
                )
            return True
        return False

    def top_up() -> None:
        nonlocal next_unqueued
        limit = min(len(ranked), next_commit + lookahead)
        while next_unqueued < limit:
            index = next_unqueued
            chunks = make_chunks(
                ranked[index],
                index,
                seed,
                runs,
                chunk_size,
                handle,
                settings,
                generation,
                vectorized=vectorized,
            )
            if stacking and len(chunks) == 1 and try_merge(index, chunks[0]):
                next_unqueued += 1
                continue
            for job_chunk in chunks:
                submittable.append((index, job_chunk.jobs[0].run, job_chunk))
            next_unqueued += 1
        while submittable and len(outstanding) < window:
            best = max(
                range(len(submittable)),
                key=lambda i: (
                    chunk_estimate(submittable[i][2]),
                    -submittable[i][0],
                    -submittable[i][1],
                ),
            )
            if budget.active and outstanding:
                # Admission control: never put more predicted bytes in
                # flight than the budget.  With nothing outstanding the
                # chunk is admitted regardless — otherwise a single
                # over-budget candidate could deadlock the search; the
                # worker's degradation ladder handles a real OOM.
                in_flight = sum(
                    chunk_bytes(f.chunk) for f in outstanding.values()
                )
                if in_flight + chunk_bytes(submittable[best][2]) > (
                    budget.bytes
                ):
                    break
            anchor, first_run, job_chunk = submittable.pop(best)
            cid = next(cid_counter)
            flight = _Flight(
                chunk=job_chunk, anchor=anchor, first_run=first_run
            )
            outstanding[cid] = flight
            dispatch(cid, flight)

    # -- supervision -------------------------------------------------------

    def bump_attempts(flights: Sequence[_Flight], cause: str) -> None:
        """Count one lost execution per flight; raise on exhaustion."""
        for flight in flights:
            flight.attempts += 1
            if flight.attempts > max_retries + 1:
                error = SearchError(
                    f"{cause}; the chunk for candidate(s) "
                    f"{flight_candidates(flight)} was lost "
                    f"{flight.attempts - 1} time(s) "
                    f"(max_retries={max_retries})"
                )
                error.attempts = flight.attempts - 1
                raise _RetryExhausted(error, flight.attempts - 1)

    def resubmit_outstanding() -> None:
        """Move the whole search to a fresh generation and resubmit.

        Cancellation is generation-wide — there is no per-chunk cancel —
        so retrying *any* chunk via the generation mechanism requires
        resubmitting *every* outstanding chunk under the new generation.
        That is cheap in the common case: innocent chunks that complete
        under the old generation before noticing the cancel still count
        (their results are accepted by chunk id), and ones that do abort
        re-run deterministically.
        """
        nonlocal generation
        generation = pool.advance_generation()
        for slot, (anchor, first_run, job_chunk) in enumerate(submittable):
            # Still-queued chunks must ride the new generation too, or
            # they would no-op the moment a worker picked them up.
            submittable[slot] = (
                anchor,
                first_run,
                replace(job_chunk, generation=generation),
            )
        for cid, flight in outstanding.items():
            flight.chunk = replace(flight.chunk, generation=generation)
            pool.chunk_retries += 1
            dispatch(cid, flight)

    def handle_worker_loss() -> None:
        nonlocal worker_pids
        worker_pids = pool.worker_pids()
        lost = sorted(
            {c for f in outstanding.values() for c in flight_candidates(f)}
        )
        emit(
            "worker-lost",
            "a grid-search worker process died unexpectedly (killed or "
            f"out of memory?); {len(outstanding)} in-flight chunk(s) for "
            f"candidate(s) {lost} may be lost",
            candidates=lost,
        )
        bump_attempts(list(outstanding.values()), cause=(
            "a grid-search worker process died unexpectedly "
            "(killed or out of memory?)"
        ))
        resubmit_outstanding()
        emit(
            "retry",
            f"resubmitted {len(outstanding)} chunk(s) under a new "
            "generation after a worker loss",
            candidates=lost,
            attempts=max(f.attempts for f in outstanding.values()),
        )

    def check_deadlines() -> None:
        now = time.monotonic()
        timed_out: list[_Flight] = []
        for flight in outstanding.values():
            elapsed = now - flight.submitted_at
            if (
                not flight.warned
                and flight.soft_deadline_s is not None
                and elapsed > flight.soft_deadline_s
            ):
                flight.warned = True
                emit(
                    "chunk-overdue",
                    f"chunk for candidate(s) {flight_candidates(flight)} "
                    f"is overdue: {elapsed:.1f}s elapsed vs "
                    f"{flight.soft_deadline_s:.1f}s soft deadline "
                    f"(attempt {flight.attempts})",
                    candidates=flight_candidates(flight),
                    attempts=flight.attempts,
                )
            if (
                flight.hard_deadline_s is not None
                and elapsed > flight.hard_deadline_s
            ):
                timed_out.append(flight)
        if not timed_out:
            return
        cands = sorted(
            {c for f in timed_out for c in flight_candidates(f)}
        )
        pool.chunk_timeouts += len(timed_out)
        emit(
            "chunk-timeout",
            f"cancelling {len(timed_out)} chunk(s) past their hard "
            f"deadline [candidate(s) {cands}] and retrying",
            candidates=cands,
            attempts=max(f.attempts for f in timed_out),
        )
        bump_attempts(timed_out, cause="a chunk exceeded its hard deadline")
        resubmit_outstanding()

    def handle_runtime_error(
        cid: int, flight: _Flight, error: Exception
    ) -> None:
        """An infrastructure failure for one chunk (the chunk runner
        died, or its result segment was corrupt/unpicklable) — per-run
        *training* errors are captured as RunError entries instead.
        Retried alone: the failed submission is dead, so resubmitting
        just this chunk cannot double-deliver."""
        flight.attempts += 1
        cands = flight_candidates(flight)
        if flight.attempts > max_retries + 1:
            try:
                error.attempts = flight.attempts - 1
            except Exception:  # pragma: no cover - exotic exception type
                pass
            raise _RetryExhausted(error, flight.attempts - 1)
        pool.chunk_retries += 1
        delay = retry_backoff.next_delay()
        pool.retry_backoff_s += delay
        emit(
            "retry",
            f"chunk for candidate(s) {cands} failed in the runtime "
            f"({error!r}); retrying in {delay:.2f}s "
            f"(attempt {flight.attempts} of {max_retries + 1})",
            candidates=cands,
            attempts=flight.attempts,
        )
        # The sleep runs on the scheduler thread: capped at 2s, it
        # delays watchdog ticks by less than the watchdog's own
        # resolution, and other completions simply queue behind it.
        time.sleep(delay)
        dispatch(cid, flight)

    def wait_timeout() -> float:
        """Sleep until the watchdog tick or the nearest deadline."""
        nearest = watchdog_s
        now = time.monotonic()
        for flight in outstanding.values():
            elapsed = now - flight.submitted_at
            if flight.soft_deadline_s is not None and not flight.warned:
                nearest = min(nearest, flight.soft_deadline_s - elapsed)
            if flight.hard_deadline_s is not None:
                nearest = min(nearest, flight.hard_deadline_s - elapsed)
        return max(0.05, nearest)

    try:
        try:
            top_up()
            # Worker pids once work is submitted (workers start lazily
            # on the first chunk): a changed set later means a worker
            # died and was respawned — its in-flight chunk is lost (Pool
            # fires no callback for it) and must be resubmitted.
            worker_pids = pool.worker_pids()
            while outstanding:
                try:
                    cid, job_chunk, result, error = completions.get(
                        timeout=wait_timeout()
                    )
                except Empty:
                    current = pool.worker_pids()
                    if not worker_pids:
                        # Workers start lazily: a baseline sampled
                        # before the pool populated its process list
                        # would otherwise disable death detection for
                        # the whole search.  Adopt the first real set.
                        worker_pids = current
                    elif current != worker_pids:
                        handle_worker_loss()
                    check_deadlines()
                    continue
                flight = outstanding.get(cid)
                if flight is None:
                    # A superseded copy of an already-accepted chunk
                    # (chunks are deterministic: its entries are the
                    # ones we already have).
                    continue
                if error is not None:
                    if job_chunk.generation < generation:
                        # A superseded copy's failure; the live copy of
                        # this chunk is still in flight.
                        continue
                    handle_runtime_error(cid, flight, error)
                    continue
                assert isinstance(result, ChunkResult)
                if result.cancelled:
                    if job_chunk.generation < generation:
                        # Expected: the copy this retry superseded
                        # noticed the cancelled generation and bailed.
                        continue
                    raise SearchError(
                        "a worker cancelled a chunk of a live search; "
                        "was the pool closed concurrently?"
                    )
                del outstanding[cid]
                # A healthy completion ends the failure episode: later
                # unrelated retries start from the base delay again.
                retry_backoff.reset()
                # Feed the measured chunk time back into the packer:
                # later windows (and later searches on this pool) order
                # by observed cost instead of the static FLOPs estimate.
                # A merged multi-candidate chunk splits its wall time
                # across its candidates by run share.
                counted = chunk_run_counts(job_chunk)
                for chunk_index, n_chunk_runs in counted.items():
                    cost_model.observe(
                        ranked[chunk_index].label,
                        costs[chunk_index],
                        result.wall_time_s
                        * n_chunk_runs
                        / len(job_chunk.jobs),
                        n_chunk_runs,
                    )
                    # Measured working-set feedback for the memory
                    # governor (0 = the chunk never raised the worker's
                    # RSS high-water mark: skipped, see observe_bytes).
                    cost_model.observe_bytes(
                        ranked[chunk_index].label,
                        result.peak_bytes
                        * n_chunk_runs
                        // len(job_chunk.jobs),
                        n_chunk_runs,
                    )
                if result.memory_degrades:
                    emit(
                        "memory-degrade",
                        f"chunk for candidate(s) {sorted(counted)} hit "
                        "out-of-memory and recovered via "
                        f"{result.memory_degrades} degradation step(s); "
                        "results are unchanged",
                        candidates=sorted(counted),
                    )
                for entry in result.entries:
                    per_run = pending_runs.setdefault(
                        entry.candidate_index, {}
                    )
                    if (
                        isinstance(entry, RunError)
                        and entry.attempts != flight.attempts
                    ):
                        entry = replace(entry, attempts=flight.attempts)
                    per_run[entry.run] = entry
                    if len(per_run) < runs:
                        continue
                    index = entry.candidate_index
                    del pending_runs[index]
                    # Surface the lowest-run error (the one the
                    # sequential loop would hit first), else aggregate
                    # normally.
                    verdict: "CandidateResult | RunError"
                    failed = [
                        r
                        for r in range(runs)
                        if isinstance(per_run[r], RunError)
                    ]
                    if failed:
                        verdict = per_run[failed[0]]
                    else:
                        verdict = aggregate_runs(
                            ranked[index],
                            convention,
                            [per_run[r] for r in range(runs)],
                        )
                    ready[index] = verdict
                # Commit strictly in FLOPs order; verdicts (and errors)
                # of speculative higher-FLOPs candidates wait until
                # their turn and are discarded wholesale if a cheaper
                # candidate passes first.
                while next_commit in ready:
                    committed = ready.pop(next_commit)
                    if isinstance(committed, RunError):
                        run_error = committed.error
                        try:
                            run_error.attempts = committed.attempts
                        except Exception:  # pragma: no cover
                            pass
                        raise run_error
                    outcome.evaluated.append(committed)
                    if journal is not None:
                        journal.append(next_commit, committed)
                    next_commit += 1
                    if progress is not None:
                        progress(committed)
                    if committed.passes(threshold):
                        outcome.winner = committed
                        return outcome
                top_up()
            return outcome
        except _RetryExhausted as exhausted:
            if not settings.fallback_sequential:
                raise exhausted.error from None
            pool.sequential_fallbacks += 1
            emit(
                "sequential-fallback",
                f"retries exhausted ({exhausted.error}); finishing the "
                f"remaining {len(ranked) - next_commit} candidate(s) "
                "in-process sequentially",
                attempts=exhausted.attempts,
            )
            # Stop burning workers on doomed chunks before training
            # in-process.
            pool.cancel(generation)
            return _finish_sequential(
                ranked,
                split,
                threshold,
                settings,
                convention,
                seed,
                outcome,
                next_commit,
                ready,
                journal=journal,
                progress=progress,
            )
    finally:
        # End this search's generation: still-queued speculative chunks
        # no-op, running trainings abort at the next epoch boundary.
        pool.release_split(handle)
        pool.cancel(generation)
        logger.info("pool stats at search end: %s", pool.stats())
        if owns_pool:
            # Ephemeral pool: tear down immediately (kills in-flight
            # speculative trainings outright) and unlink the published
            # dataset segment.
            pool.close()
