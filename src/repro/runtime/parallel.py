"""Process-pool scheduler with speculative FLOPs-order semantics.

The paper's search trains candidates strictly in ascending-FLOPs order
and stops at the first pass, which makes the *decision* sequential even
though the *work* — ``runs`` independent trainings per candidate, each
on its own ``(seed, candidate, run)``-derived RNG stream — is
embarrassingly parallel.  The scheduler exploits that gap:

* work is submitted to a worker pool in bounded-lookahead **chunks**
  (*speculation*: workers may train candidate ``i + k`` before candidate
  ``i``'s verdict is known); each chunk batches consecutive runs of one
  candidate so a single worker invocation shares one dataset attachment
  and one compiled tape across its runs — and, with candidate stacking,
  waiting chunks of candidates with structurally identical tapes merge
  into one multi-candidate chunk the worker trains as a single
  cross-candidate fused sweep;

* within the speculation window, chunks are submitted
  **most-expensive-first** (FLOPs-aware packing): training time scales
  with a candidate's FLOPs, so starting the window's longest jobs first
  minimizes the window's makespan — the classic longest-processing-time
  heuristic.  Submission order never affects results, only wall time,
  because of the commit rule below;

* finished runs are buffered and candidates are **committed strictly in
  FLOPs order** — a candidate's verdict (pass, fail, or even a training
  error) is only acted upon once every cheaper candidate has been
  committed, so a crash in a speculatively-trained expensive candidate
  cannot surface from a search the sequential path would have won
  earlier;

* the first committed pass is the winner (by construction the cheapest,
  exactly as in the sequential path).  In-flight speculative chunks are
  then *cancelled by generation*: queued chunks no-op, running trainings
  abort at the next epoch boundary — and the pool survives for the next
  search instead of being torn down.

Execution runs on a :class:`repro.runtime.pool.PersistentPool`.  Pass
one in (``pool=``) to reuse warm workers and published shared-memory
datasets across many searches — the protocol drivers do this — or let
``speculative_search`` create and close an ephemeral one.

The reported :class:`~repro.core.grid_search.SearchOutcome` — winner,
evaluated list, per-run accuracies, progress-callback sequence — is
identical to ``workers=1`` regardless of completion order, chunking, or
packing.  Every worker runs :func:`repro.runtime.jobs.execute_job`, the
same primitive the sequential path uses.
"""

from __future__ import annotations

import os
from queue import Empty, SimpleQueue
from typing import TYPE_CHECKING, Callable, Sequence

from ..exceptions import SearchError
from .jobs import RunResult
from .pool import ChunkResult, JobChunk, PersistentPool, RunError, make_chunks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.grid_search import (
        CandidateResult,
        SearchOutcome,
        TrainingSettings,
    )
    from ..core.search_space import ModelSpec
    from ..data.splits import DataSplit
    from ..flops.conventions import CountingConvention

__all__ = ["resolve_workers", "speculative_search", "SPECULATION_FACTOR"]

#: In-flight chunks are capped at ``SPECULATION_FACTOR * workers``:
#: enough look-ahead to keep every worker busy across uneven run times,
#: small enough to bound the training work discarded when an early
#: candidate passes.
SPECULATION_FACTOR = 2

#: How often (seconds) the scheduler wakes from waiting on completions
#: to check worker liveness.  ``multiprocessing.Pool`` silently respawns
#: a worker that dies mid-job (OOM kill, native segfault) and the job's
#: callbacks never fire; without this watchdog the search would hang
#: forever on such a loss.
_WATCHDOG_INTERVAL_S = 10.0


def resolve_workers(workers: int | None) -> int:
    """Normalize the ``workers`` knob: ``None``/``0`` means all cores."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise SearchError(f"workers must be >= 0 or None, got {workers}")
    return workers


def speculative_search(
    ranked: Sequence["ModelSpec"],
    split: "DataSplit",
    threshold: float,
    settings: "TrainingSettings",
    convention: "CountingConvention",
    seed: int,
    workers: int,
    progress: Callable[["CandidateResult"], None] | None = None,
    pool: PersistentPool | None = None,
) -> "SearchOutcome":
    """Parallel grid search over an already-FLOPs-ranked candidate list.

    Returns a :class:`SearchOutcome` equal to the sequential search's —
    same winner, same ``evaluated`` list (same order, same per-run
    accuracy lists), same ``progress`` call sequence.  Only
    ``wall_time_s`` values differ (they measure actual run time).  A
    training error, too, surfaces exactly when the sequential path would
    hit it: at its candidate's commit turn, and never if a cheaper
    candidate passes first.

    ``pool``: a :class:`~repro.runtime.pool.PersistentPool` to run on.
    When omitted, an ephemeral pool is created and torn down with the
    search (the pre-persistent-pool behaviour); when given, the pool's
    worker count wins over ``workers``, the dataset is published to
    shared memory at most once per pool, and the search leaves the pool
    warm for the caller's next search.
    """
    from ..core.grid_search import (
        MAX_GROUP_CANDIDATES,
        SearchOutcome,
        aggregate_runs,
    )

    if settings.runs < 1:
        raise SearchError(f"settings.runs must be >= 1, got {settings.runs}")
    owns_pool = pool is None
    if owns_pool:
        pool = PersistentPool(workers)
    else:
        workers = pool.workers
    outcome = SearchOutcome(threshold=threshold, winner=None)
    runs = settings.runs
    window = max(SPECULATION_FACTOR * workers, workers + 1)
    # Cross-candidate stacking: vectorized chunks of same-structure
    # candidates still waiting for a worker slot are merged into one
    # multi-candidate chunk (one fused sweep on the worker).  Merging is
    # opportunistic — it depends on what is still unsubmitted when a
    # candidate enters the window — which, like packing order, only
    # shapes wall time: every run's arithmetic is bit-identical however
    # its chunk was grouped, and commits stay in FLOPs order.  Stacking
    # makes single-run candidates worth vectorizing too (the group
    # supplies the slices a lone run lacks).
    stacking = settings.vectorized_runs and getattr(
        settings, "stacked_candidates", True
    )
    vectorized = settings.vectorized_runs and (runs > 1 or stacking)
    group_keys = (
        [spec.group_key() for spec in ranked] if stacking else None
    )
    if vectorized:
        # Run-stacked mode: one chunk per candidate carries the whole
        # run set, so a single worker invocation trains all R runs in
        # one stacked sweep.  The candidate lookahead equals the chunk
        # window (one chunk each).
        chunk_size = runs
        lookahead = window
    else:
        # Speculation is bounded in *candidates*, not just in-flight
        # chunks: only candidates within `lookahead` of the commit
        # frontier may be submitted, so the training work discarded on
        # an early pass is capped at ~`window` chunks past the winner
        # even when one cheap candidate trains much slower than
        # everything after it.  The bound still exposes >= `window`
        # submittable chunks (lookahead * runs >= window * chunk), so
        # workers stay busy across uneven run times.
        lookahead = max(1, -(-window // runs))
        # Runs per chunk: 1 unless `runs` is large relative to the
        # window (many runs, few workers), where batching consecutive
        # runs of one candidate into a single submission amortizes IPC
        # and shares one compiled tape per worker invocation without
        # starving any worker — the window always holds >= `window`
        # submittable chunks.
        chunk_size = max(1, (lookahead * runs) // window)
    #: Static per-candidate cost estimates: the same FLOPs the ranking
    #: was computed from seed the packing order below; measured chunk
    #: times refine it through the pool's ChunkCostModel (an EWMA per
    #: candidate label), so later searches on a persistent pool pack by
    #: observed seconds rather than raw FLOPs.
    costs = [spec.flops(convention) for spec in ranked]
    cost_model = pool.cost_model

    generation = pool.new_generation()
    handle = pool.acquire_split(split)

    # per-candidate buffered results: run -> RunResult | Exception
    pending_runs: dict[int, dict[int, RunResult | Exception]] = {}
    ready: dict[int, "CandidateResult | Exception"] = {}
    next_commit = 0
    next_unqueued = 0  # next candidate not yet expanded into submittable
    # Submittable chunks as (candidate_index, first_run, chunk).  The
    # most expensive one is picked at *submit* time — estimates must be
    # priced when the slot frees, not when the chunk was queued, or the
    # first measured chunk would leave stale FLOPs-priced entries
    # competing on a different scale.  The pool is at most
    # `lookahead * ceil(runs/chunk)` entries, so a linear scan is
    # cheaper than keeping a heap consistent with moving estimates.
    # Ties (chunks of one candidate, equal-cost candidates) fall back
    # to (candidate, run) order, keeping submission deterministic for
    # any fixed cost-model state.
    submittable: list[tuple[int, int, JobChunk]] = []
    in_flight = 0

    # Completions cross from the pool's result-handler thread to this
    # one through a thread-safe queue: (chunk, result, exception).
    completions: SimpleQueue = SimpleQueue()

    def submit(job_chunk: JobChunk) -> None:
        pool.submit(
            job_chunk,
            callback=lambda res, c=job_chunk: completions.put((c, res, None)),
            error_callback=lambda exc, c=job_chunk: completions.put(
                (c, None, exc)
            ),
        )

    def chunk_run_counts(job_chunk: JobChunk) -> dict[int, int]:
        """Runs per candidate inside a (possibly merged) chunk."""
        counts: dict[int, int] = {}
        for job in job_chunk.jobs:
            counts[job.candidate_index] = counts.get(job.candidate_index, 0) + 1
        return counts

    def chunk_estimate(job_chunk: JobChunk) -> float:
        """Expected chunk seconds: sum of its candidates' estimates."""
        return sum(
            cost_model.estimate(ranked[c].label, costs[c], n)
            for c, n in chunk_run_counts(job_chunk).items()
        )

    def try_merge(index: int, job_chunk: JobChunk) -> bool:
        """Merge a new candidate's chunk into a waiting same-key chunk.

        Only still-unsubmitted vectorized chunks are candidates, and a
        merged chunk is capped at MAX_GROUP_CANDIDATES members; the
        merged jobs stay candidate-major so the worker's fused sweep
        sees each candidate's runs contiguously.

        Merging trades parallelism for per-sweep efficiency, so it only
        happens once the window already holds enough distinct chunks to
        keep every submission slot busy: on an idle pool the group's
        members spread across workers instead of collapsing onto one
        (a fused sweep is ~2x cheaper, but starving N-1 workers costs
        ~Nx).  The excess beyond the window's supply merges.
        """
        if len(submittable) + in_flight < window:
            return False
        key = group_keys[index]
        if key is None:
            return False
        for slot, (anchor, first_run, existing) in enumerate(submittable):
            if not existing.vectorized:
                continue
            counts = chunk_run_counts(existing)
            if index in counts or len(counts) >= MAX_GROUP_CANDIDATES:
                continue
            if any(group_keys[c] != key for c in counts):
                continue
            submittable[slot] = (
                anchor,
                first_run,
                JobChunk(
                    jobs=existing.jobs + job_chunk.jobs,
                    handle=existing.handle,
                    settings=existing.settings,
                    generation=existing.generation,
                    vectorized=True,
                ),
            )
            return True
        return False

    def top_up() -> None:
        nonlocal next_unqueued, in_flight
        limit = min(len(ranked), next_commit + lookahead)
        while next_unqueued < limit:
            index = next_unqueued
            chunks = make_chunks(
                ranked[index],
                index,
                seed,
                runs,
                chunk_size,
                handle,
                settings,
                generation,
                vectorized=vectorized,
            )
            if stacking and len(chunks) == 1 and try_merge(index, chunks[0]):
                next_unqueued += 1
                continue
            for job_chunk in chunks:
                submittable.append((index, job_chunk.jobs[0].run, job_chunk))
            next_unqueued += 1
        while submittable and in_flight < window:
            best = max(
                range(len(submittable)),
                key=lambda i: (
                    chunk_estimate(submittable[i][2]),
                    -submittable[i][0],
                    -submittable[i][1],
                ),
            )
            _, _, job_chunk = submittable.pop(best)
            submit(job_chunk)
            in_flight += 1

    try:
        top_up()
        # Worker pids once work is submitted (workers start lazily on
        # the first chunk): a changed set later means a worker died and
        # was respawned — its in-flight chunk is lost (Pool fires no
        # callback for it), so fail loudly instead of waiting forever.
        worker_pids = pool.worker_pids()
        while in_flight:
            try:
                job_chunk, result, error = completions.get(
                    timeout=_WATCHDOG_INTERVAL_S
                )
            except Empty:
                current = pool.worker_pids()
                if worker_pids and current != worker_pids:
                    raise SearchError(
                        "a grid-search worker process died unexpectedly "
                        "(killed or out of memory?); its training job was "
                        "lost, aborting the parallel search"
                    )
                continue
            in_flight -= 1
            if error is not None:
                # Infrastructure failure (the chunk runner itself died,
                # or its result could not be pickled) — per-run training
                # errors are captured as RunError entries instead.
                raise error
            assert isinstance(result, ChunkResult)
            if result.cancelled:
                raise SearchError(
                    "a worker cancelled a chunk of a live search; was the "
                    "pool closed concurrently?"
                )
            # Feed the measured chunk time back into the packer: later
            # windows (and later searches on this pool) order by
            # observed cost instead of the static FLOPs estimate.  A
            # merged multi-candidate chunk splits its wall time across
            # its candidates by run share.
            counted = chunk_run_counts(job_chunk)
            for chunk_index, n_chunk_runs in counted.items():
                cost_model.observe(
                    ranked[chunk_index].label,
                    costs[chunk_index],
                    result.wall_time_s * n_chunk_runs / len(job_chunk.jobs),
                    n_chunk_runs,
                )
            for entry in result.entries:
                per_run = pending_runs.setdefault(entry.candidate_index, {})
                if isinstance(entry, RunError):
                    per_run[entry.run] = entry.error
                else:
                    per_run[entry.run] = entry
                if len(per_run) < runs:
                    continue
                index = entry.candidate_index
                del pending_runs[index]
                # Surface the lowest-run error (the one the sequential
                # loop would hit first), else aggregate normally.
                verdict: "CandidateResult | Exception"
                failed = [
                    r for r in range(runs) if isinstance(per_run[r], Exception)
                ]
                if failed:
                    verdict = per_run[failed[0]]
                else:
                    verdict = aggregate_runs(
                        ranked[index],
                        convention,
                        [per_run[r] for r in range(runs)],
                    )
                ready[index] = verdict
            # Commit strictly in FLOPs order; verdicts (and errors) of
            # speculative higher-FLOPs candidates wait until their turn
            # and are discarded wholesale if a cheaper candidate passes
            # first.
            while next_commit in ready:
                committed = ready.pop(next_commit)
                if isinstance(committed, Exception):
                    raise committed
                outcome.evaluated.append(committed)
                next_commit += 1
                if progress is not None:
                    progress(committed)
                if committed.passes(threshold):
                    outcome.winner = committed
                    return outcome
            top_up()
        return outcome
    finally:
        # End this search's generation: still-queued speculative chunks
        # no-op, running trainings abort at the next epoch boundary.
        pool.release_split(handle)
        pool.cancel(generation)
        if owns_pool:
            # Ephemeral pool: tear down immediately (kills in-flight
            # speculative trainings outright) and unlink the published
            # dataset segment.
            pool.close()
