"""Capped exponential backoff with decorrelated jitter.

Retrying a failed operation immediately is the worst possible schedule:
whatever broke the first attempt (a dying worker, an NFS server riding
out a failover, a contended spool directory) is usually still broken a
microsecond later, and a fleet of clients retrying in lockstep turns one
hiccup into a thundering herd.  Every retry path in the runtime — the
scheduler's chunk resubmission in :mod:`repro.runtime.parallel` and all
spool I/O in :mod:`repro.runtime.cluster` — sleeps through a
:class:`Backoff` instead.

The policy is "decorrelated jitter": each delay is drawn uniformly from
``[base_s, 3 * previous]`` and clamped to ``cap_s``.  Compared to plain
exponential doubling it spreads concurrent retriers across the whole
interval (no synchronized retry spikes) while still growing toward the
cap on repeated failure.  The draw comes from an injectable
``random.Random``, so tests seed it and assert the exact delay sequence.
"""

from __future__ import annotations

import random
import time
from typing import Callable

from ..exceptions import SearchError

__all__ = ["Backoff", "retry_call"]


class Backoff:
    """Stateful delay generator: decorrelated jitter, capped.

    ``next_delay()`` returns the seconds to sleep before the next retry;
    ``reset()`` forgets the growth state after a success so the next
    failure starts from ``base_s`` again.  Deterministic for a seeded
    ``rng``.
    """

    def __init__(
        self,
        base_s: float = 0.05,
        cap_s: float = 2.0,
        rng: random.Random | None = None,
    ) -> None:
        if base_s <= 0:
            raise SearchError(f"backoff base_s must be > 0, got {base_s}")
        if cap_s < base_s:
            raise SearchError(
                f"backoff cap_s ({cap_s}) must be >= base_s ({base_s})"
            )
        self.base_s = base_s
        self.cap_s = cap_s
        self._rng = rng if rng is not None else random.Random()
        self._prev: float | None = None

    def next_delay(self) -> float:
        prev = self._prev if self._prev is not None else self.base_s
        delay = min(self.cap_s, self._rng.uniform(self.base_s, 3.0 * prev))
        self._prev = delay
        return delay

    def reset(self) -> None:
        self._prev = None


def retry_call(
    fn: Callable,
    *,
    retries: int = 4,
    base_s: float = 0.05,
    cap_s: float = 2.0,
    rng: random.Random | None = None,
    retry_on: "tuple[type[BaseException], ...]" = (OSError,),
    on_retry: Callable[[BaseException, int, float], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> object:
    """Call ``fn()``, retrying ``retry_on`` failures with jittered backoff.

    At most ``retries`` retries (so up to ``retries + 1`` calls); the
    final failure re-raises.  ``on_retry(error, attempt, delay_s)`` is
    invoked before each sleep, so callers can count and log.  ``sleep``
    is injectable for tests.
    """
    policy = Backoff(base_s, cap_s, rng=rng)
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on as error:
            attempt += 1
            if attempt > retries:
                raise
            delay = policy.next_delay()
            if on_retry is not None:
                on_retry(error, attempt, delay)
            sleep(delay)
