"""Persistent worker pool with zero-copy shared-memory datasets.

PR 2's scheduler paid two per-search costs that dominate protocol runs
(many grid searches back to back, one per level x experiment): spinning
up a fresh process pool, and pickling the full :class:`DataSplit` into
every worker through the pool initializer.  This module removes both:

* :class:`PersistentPool` is created **once per protocol run** (or once
  per CLI invocation) and reused by every grid search.  Workers survive
  across searches, so pool spin-up and module import costs are paid one
  time, and each worker's compiled-tape cache stays warm between
  searches over the same circuit structures.

* Datasets are published to workers through
  :mod:`multiprocessing.shared_memory`: :meth:`PersistentPool.publish`
  copies the split's arrays into one named segment and returns a tiny
  picklable :class:`SharedSplitHandle` (segment name + array layout).
  Workers attach zero-copy — the job payload carries the handle, never
  the arrays — and cache the attachment per segment, so a dataset
  crosses the process boundary **zero** times after publication.

* Segments are refcounted per search (:meth:`acquire_split` /
  :meth:`release_split`) and unlinked deterministically: on
  :meth:`retire_split` once the last search using them finishes, on
  :meth:`close`, and — via a :mod:`weakref` finalizer — at interpreter
  exit even if the caller forgot to close the pool.  A worker crash
  cannot leak a segment because the parent, not the workers, owns every
  unlink.

Searches are serialized through the pool (one at a time, matching the
protocol's sequential decision structure); *cancellation* is the
replacement for PR 2's ``pool.terminate()``: each search runs under a
monotonically increasing **generation**, published to workers through an
8-byte control segment.  Ending a search bumps the cancel floor, so its
still-queued speculative chunks no-op in microseconds and its running
trainings abort at the next epoch boundary
(:func:`repro.nn.training.train_model`'s ``cancel_check``) — the pool
stays warm for the next search instead of being torn down.
"""

from __future__ import annotations

import gc
import json
import logging
import multiprocessing
import os
import pathlib
import pickle
import secrets
import time
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import SearchError, TrainingCancelled
from . import faults
from .jobs import (
    RunResult,
    TrainingJob,
    execute_candidates,
    execute_job,
    execute_runs,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.shared_memory import SharedMemory

    from ..core.grid_search import TrainingSettings
    from ..data.splits import DataSplit

__all__ = [
    "SharedSplitHandle",
    "PersistentPool",
    "publish_split",
    "attach_split",
    "JobChunk",
    "ChunkResult",
    "RunError",
    "ChunkCostModel",
    "ShmResultHandle",
    "RESULT_SHM_THRESHOLD",
    "sweep_stale_segments",
]

logger = logging.getLogger("repro.runtime")

#: Every segment this runtime creates is named
#: ``repro_<creator pid>_<tag><hex>`` (short enough for macOS's
#: PSHMNAMLEN).  The embedded pid makes crashed-run leftovers
#: *sweepable*: a segment whose creator is gone is garbage by
#: construction (the creator owns the unlink), so a fresh run can
#: reclaim it — see :func:`sweep_stale_segments`.
_SHM_PREFIX = "repro"


def _create_named_segment(tag: str, size: int) -> "SharedMemory":
    """A fresh shared-memory segment with a sweepable name."""
    from multiprocessing.shared_memory import SharedMemory

    while True:
        name = f"{_SHM_PREFIX}_{os.getpid()}_{tag}{secrets.token_hex(4)}"
        try:
            return SharedMemory(create=True, size=size, name=name)
        except FileExistsError:  # pragma: no cover - token collision
            continue


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - someone else's process
        return True
    return True


def sweep_stale_segments(directory: str = "/dev/shm") -> list[str]:
    """Unlink ``repro``-prefixed segments whose creator process is gone.

    A ``kill -9``-ed or OOM-killed *parent* never reaches its
    deterministic unlinks, and its resource tracker can be killed with
    it, so orphaned dataset/ctrl segments would otherwise sit in tmpfs
    (consuming RAM) until reboot.  Every :class:`PersistentPool` calls
    this at startup; returns the reclaimed names (also logged).  Files
    are unlinked directly rather than attached first, so sweeping never
    registers foreign segments with this process's resource tracker.

    Only POSIX-shm-as-tmpfs platforms (Linux) expose segments as files;
    elsewhere this is a silent no-op.
    """
    reclaimed: list[str] = []
    prefix = _SHM_PREFIX + "_"
    try:
        names = os.listdir(directory)
    except OSError:
        return reclaimed
    for name in names:
        if not name.startswith(prefix):
            continue
        try:
            pid = int(name.split("_")[1])
        except (IndexError, ValueError):
            continue
        if _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(directory, name))
        except OSError:  # pragma: no cover - raced another sweeper
            continue
        reclaimed.append(name)
    if reclaimed:
        logger.warning(
            "reclaimed %d orphaned shared-memory segment(s) left by "
            "crashed runs: %s",
            len(reclaimed),
            ", ".join(sorted(reclaimed)),
        )
    return reclaimed

#: Byte alignment for each array inside a published segment (cache-line
#: sized, and a multiple of every dtype itemsize we ship).
_ALIGN = 64

#: The six array fields of a DataSplit, in a fixed publication order.
_SPLIT_FIELDS = (
    "x_train",
    "y_train",
    "x_val",
    "y_val",
    "train_labels",
    "val_labels",
)

#: Worker-side attachment cache cap: segments live one per complexity
#: level, consecutive searches reuse the same one, so a handful covers
#: any interleaving the protocol produces.
_ATTACH_CACHE_MAX = 4


@dataclass(frozen=True)
class _ArrayLayout:
    """Where one array lives inside a shared segment."""

    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedSplitHandle:
    """Picklable zero-copy reference to a published :class:`DataSplit`.

    A few hundred bytes regardless of dataset size: the segment name
    plus per-field layout.  This is what job payloads carry instead of
    the arrays themselves.
    """

    segment: str
    fields: tuple[tuple[str, _ArrayLayout], ...]
    total_bytes: int


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def publish_split(split: "DataSplit") -> tuple["SharedMemory", SharedSplitHandle]:
    """Copy a split's arrays into one fresh shared-memory segment.

    Returns the owning :class:`SharedMemory` (caller must ``unlink`` it
    eventually) and the handle workers attach with.
    """
    arrays = {
        name: np.ascontiguousarray(getattr(split, name))
        for name in _SPLIT_FIELDS
    }
    offset = 0
    layout: list[tuple[str, _ArrayLayout]] = []
    for name, arr in arrays.items():
        layout.append(
            (name, _ArrayLayout(offset, arr.shape, arr.dtype.str))
        )
        offset = _aligned(offset + arr.nbytes)
    shm = _create_named_segment("ds", max(offset, 1))
    for (name, spec) in layout:
        arr = arrays[name]
        dst = np.ndarray(
            arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=spec.offset
        )
        dst[...] = arr
    handle = SharedSplitHandle(
        segment=shm.name, fields=tuple(layout), total_bytes=offset
    )
    return shm, handle


def _attach_segment(name: str) -> "SharedMemory":
    """Attach to an existing segment by name.

    Attaching registers the name with the
    :mod:`multiprocessing.resource_tracker`.  Forkserver (and POSIX
    spawn) workers inherit the *parent's* tracker process, whose
    registry is a set, so the worker's register is a harmless duplicate
    of the parent's create-time entry and the parent's deterministic
    ``unlink`` clears it exactly once.  (Do **not** unregister here: a
    worker-side unregister would delete the parent's entry from the
    shared tracker and make the parent's unlink complain.)
    """
    from multiprocessing.shared_memory import SharedMemory

    return SharedMemory(name=name)


def attach_split(handle: SharedSplitHandle, shm: "SharedMemory") -> "DataSplit":
    """Rebuild a read-only :class:`DataSplit` over an attached segment."""
    from ..data.splits import DataSplit

    fields = {}
    for name, spec in handle.fields:
        arr = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=shm.buf,
            offset=spec.offset,
        )
        arr.flags.writeable = False
        fields[name] = arr
    return DataSplit(**fields)


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------

# Lazily attached control segment (name installed by the initializer)
# and the per-worker segment attachment cache.
_CTRL_NAME: str | None = None
_CTRL = None
_ATTACHED: dict[str, tuple["SharedMemory", "DataSplit"]] = {}


def _init_pool_worker(
    ctrl_name: str, backend_name: "str | None" = None
) -> None:
    """Pool initializer: tiny payload by design (one segment name).

    Candidate runs rebuild structurally identical circuits over and
    over; the compiled-tape cache persists for the worker's lifetime,
    which with a persistent pool now spans *every* search of a protocol
    run.

    ``backend_name`` installs the pool's array backend as this worker's
    process default (:func:`repro.backends.set_default_backend`), so
    jobs whose settings carry no explicit backend still inherit the
    pool's.  An unimportable backend falls back to NumPy here exactly
    as it does in the driver (the driver emits the structured event).
    """
    global _CTRL_NAME
    _CTRL_NAME = ctrl_name
    from ..quantum.engine import enable_compile_cache

    enable_compile_cache()
    if backend_name is not None:
        from ..backends import resolve_backend, set_default_backend

        set_default_backend(resolve_backend(backend_name)[0])


def _cancel_floor() -> int:
    """The lowest still-live generation, read from the control segment."""
    global _CTRL
    if _CTRL is None:
        if _CTRL_NAME is None:
            return 0  # not a pool worker (direct call in tests)
        try:
            _CTRL = _attach_segment(_CTRL_NAME)
        except FileNotFoundError:
            # Pool already closed: every generation is dead.
            return 2**62
    return int.from_bytes(_CTRL.buf[:8], "little")


def _attached_split(handle: SharedSplitHandle) -> "DataSplit":
    entry = _ATTACHED.get(handle.segment)
    if entry is None:
        shm = _attach_segment(handle.segment)
        entry = (shm, attach_split(handle, shm))
        _ATTACHED[handle.segment] = entry
        while len(_ATTACHED) > _ATTACH_CACHE_MAX:
            old_name, (old_shm, _) = next(iter(_ATTACHED.items()))
            if old_name == handle.segment:
                break
            del _ATTACHED[old_name]
            gc.collect()  # release numpy views before closing the map
            try:
                old_shm.close()
            except BufferError:  # pragma: no cover - view still exported
                pass  # mapping dies with the process
    return entry[1]


@dataclass(frozen=True)
class JobChunk:
    """A batch of training runs shipped to a worker as a single task.

    Batching runs lets one worker invocation share a compiled tape (and
    one dataset attachment) across several runs, and cuts per-job IPC
    when ``runs`` is large relative to the worker count.  The payload is
    small by construction: jobs are coordinates, the handle is a name.

    ``vectorized`` asks the worker to train the chunk's whole run set as
    a single run-stacked sweep
    (:func:`repro.runtime.jobs.execute_runs`); the scheduler then packs
    one chunk per candidate so the stack spans every run.  A vectorized
    chunk may additionally span **several candidates** whose tapes are
    structurally identical (the scheduler merges their chunks by group
    key): the worker then trains every run of every candidate as one
    cross-candidate fused sweep
    (:func:`repro.runtime.jobs.execute_candidates`).
    """

    jobs: tuple[TrainingJob, ...]
    handle: SharedSplitHandle
    settings: "TrainingSettings"
    generation: int
    vectorized: bool = False


@dataclass(frozen=True)
class RunError:
    """A picklable per-run failure, surfaced at the candidate's commit turn.

    ``attempts`` is how many times the run's chunk was executed before
    this entry was accepted (> 1 when the scheduler retried the chunk
    after a worker loss or timeout); the scheduler stamps it so error
    reports distinguish a first-try failure from one that survived
    retries.
    """

    candidate_index: int
    run: int
    error: Exception
    attempts: int = 1


@dataclass(frozen=True)
class ChunkResult:
    """What a worker sends back for one chunk.

    ``wall_time_s`` is the measured execution time of the whole chunk on
    its worker — the feedback signal for the scheduler's measured-cost
    packing (:class:`ChunkCostModel`).  ``vectorized_fallback`` flags a
    chunk whose stacked sweep raised and was re-run scalar (that chunk
    paid for both attempts); the pool counts these so a deterministic
    stacked-path failure is visible instead of silently doubling a
    candidate's cost.

    ``memory_degrades`` counts OOM recovery-ladder steps the worker took
    for this chunk (group halving, numpy retry, scalar floor — see
    :func:`_candidate_entries`); the scheduler turns a non-zero count
    into a ``memory-degrade`` :class:`~repro.runtime.parallel.SearchEvent`
    and the pool accumulates it.  ``peak_bytes`` is the worker's
    measured resident-set growth over the chunk (0 = unobserved); it
    feeds the cost model's bytes EWMA that cross-checks the analytic
    peak-bytes predictions.
    """

    cancelled: bool
    entries: tuple["RunResult | RunError", ...] = ()
    wall_time_s: float = 0.0
    vectorized_fallback: bool = False
    memory_degrades: int = 0
    peak_bytes: int = 0


_CANCELLED_CHUNK = ChunkResult(cancelled=True)


def _maybe_inject_oom(inject: "list[bool] | None") -> None:
    """Raise the armed ``oom`` fault once (worker side, tests only)."""
    if inject and inject[0]:
        inject[0] = False
        raise MemoryError("injected 'oom' fault")


def _numpy_settings(settings):
    """``settings`` pinned to the NumPy backend (OOM-ladder retries)."""
    from dataclasses import replace

    return replace(settings, backend="numpy")


def _candidate_entries(
    jobs: "tuple[TrainingJob, ...] | list[TrainingJob]",
    split,
    settings,
    cancelled,
    vectorized: bool,
    inject: "list[bool] | None" = None,
):
    """Execute one candidate's runs; per-run errors become RunError entries.

    Returns ``(entries, vectorized_fallback, memory_degrades)``.  The
    vectorized path trains the whole run set in one stacked sweep.  A
    failure inside that sweep cannot be attributed to a single run, so
    it falls back to the scalar per-run loop, which reproduces the exact
    error the sequential path would hit first (lowest run) and still
    accounts for every other run.

    An *out-of-memory* failure in the sweep is a resource, not a
    correctness, problem: it walks the recovery ladder instead — retry
    the fused sweep on the NumPy backend (device OOMs usually fit in
    host RAM), then the per-run scalar path — each step counted in
    ``memory_degrades``.  Every step trains from the same
    ``(seed, candidate, run)`` streams and the scalar path is the
    bit-identity oracle, so degradation never changes results.
    """
    from .memory import is_memory_error

    fallback = False
    degrades = 0
    if vectorized and len(jobs) > 1:
        job0 = jobs[0]
        runs = [job.run for job in jobs]
        try:
            _maybe_inject_oom(inject)
            return (
                execute_runs(
                    job0.spec,
                    job0.seed,
                    job0.candidate_index,
                    runs,
                    split,
                    settings,
                    cancel_check=cancelled,
                    vectorized=True,
                ),
                False,
                0,
            )
        except TrainingCancelled:
            raise
        except Exception as exc:  # noqa: BLE001 - classified below
            if not is_memory_error(exc):
                fallback = True  # re-run scalar for attribution
            else:
                degrades += 1
                from ..backends import resolve_backend

                resolved, _ = resolve_backend(
                    getattr(settings, "backend", None)
                )
                if not resolved.is_numpy:
                    try:
                        return (
                            execute_runs(
                                job0.spec,
                                job0.seed,
                                job0.candidate_index,
                                runs,
                                split,
                                _numpy_settings(settings),
                                cancel_check=cancelled,
                                vectorized=True,
                            ),
                            False,
                            degrades,
                        )
                    except TrainingCancelled:
                        raise
                    except Exception as retry_exc:  # noqa: BLE001
                        if not is_memory_error(retry_exc):
                            fallback = True
                        else:
                            degrades += 1
    elif inject and inject[0]:
        # No fused sweep to inject into (scalar chunk): the ladder's
        # floor *is* the scalar path, so the fault is absorbed here —
        # counted, never re-raised — keeping results identical.
        inject[0] = False
        degrades += 1
    entries: list[RunResult | RunError] = []
    for job in jobs:
        try:
            entries.append(
                execute_job(job, split, settings, cancel_check=cancelled)
            )
        except TrainingCancelled:
            raise
        except Exception as exc:  # noqa: BLE001 - surfaced at commit turn
            entries.append(RunError(job.candidate_index, job.run, exc))
    return entries, fallback, degrades


def _grouped_entries(
    items: "list[tuple[int, list[TrainingJob]]]",
    chunk: "JobChunk",
    split,
    cancelled,
    inject: "list[bool] | None",
):
    """One cross-candidate fused sweep over ``items``, with OOM halving.

    Returns ``(entries, vectorized_fallback, memory_degrades)``;
    ``entries`` is ``None`` when the caller must fall back to
    per-candidate execution (the group declined to stack, or the sweep
    failed for a non-memory reason).  An out-of-memory sweep splits the
    group in half and fuses each half recursively — per-slice arithmetic
    is unchanged by group membership, so every split is bit-identical to
    the unsplit sweep.
    """
    from .memory import is_memory_error

    group = [
        (jobs[0].spec, index, [job.run for job in jobs])
        for index, jobs in items
    ]
    try:
        _maybe_inject_oom(inject)
        results = execute_candidates(
            group,
            chunk.jobs[0].seed,
            split,
            chunk.settings,
            cancel_check=cancelled,
        )
    except TrainingCancelled:
        raise
    except Exception as exc:  # noqa: BLE001 - classified below
        if not (is_memory_error(exc) and len(items) > 1):
            return None, True, 0
        entries: list[RunResult | RunError] = []
        fallback = False
        degrades = 1
        mid = (len(items) + 1) // 2
        for half in (items[:mid], items[mid:]):
            if len(half) > 1:
                sub_entries, sub_fallback, sub_degrades = _grouped_entries(
                    half, chunk, split, cancelled, inject
                )
                if sub_entries is not None:
                    entries.extend(sub_entries)
                    fallback = fallback or sub_fallback
                    degrades += sub_degrades
                    continue
                fallback = fallback or sub_fallback
                degrades += sub_degrades
            for index, jobs in half:
                sub_entries, sub_fallback, sub_degrades = _candidate_entries(
                    jobs,
                    split,
                    chunk.settings,
                    cancelled,
                    chunk.vectorized,
                    inject,
                )
                entries.extend(sub_entries)
                fallback = fallback or sub_fallback
                degrades += sub_degrades
        return entries, fallback, degrades
    if results is None:
        return None, False, 0
    return list(results), False, 0


def _chunk_entries(
    chunk: JobChunk, split, cancelled, inject: "list[bool] | None" = None
):
    """Execute a chunk's runs; per-run errors become RunError entries.

    Returns ``(entries, vectorized_fallback, memory_degrades)``.  A
    multi-candidate vectorized chunk first attempts one cross-candidate
    fused sweep (:func:`repro.runtime.jobs.execute_candidates`); if the
    group declines to stack or the sweep raises, every candidate re-runs
    through the per-candidate path below, which re-attributes any error
    to its exact (candidate, run) coordinates.  Out-of-memory failures
    walk the recovery ladder instead (see :func:`_grouped_entries` and
    :func:`_candidate_entries`).
    """
    by_candidate: dict[int, list[TrainingJob]] = {}
    for job in chunk.jobs:
        by_candidate.setdefault(job.candidate_index, []).append(job)
    fallback = False
    degrades = 0
    if chunk.vectorized and len(by_candidate) > 1:
        entries, fallback, degrades = _grouped_entries(
            list(by_candidate.items()), chunk, split, cancelled, inject
        )
        if entries is not None:
            return entries, fallback, degrades
    entries = []
    for jobs in by_candidate.values():
        sub_entries, sub_fallback, sub_degrades = _candidate_entries(
            jobs, split, chunk.settings, cancelled, chunk.vectorized, inject
        )
        entries.extend(sub_entries)
        fallback = fallback or sub_fallback
        degrades += sub_degrades
    return entries, fallback, degrades


def _max_rss_bytes() -> int:
    """This process's resident-set high-water mark, 0 when unreadable.

    ``ru_maxrss`` only moves when a chunk pushes the worker's all-time
    peak higher, so the before/after delta in :func:`_run_chunk` is a
    lower bound that is usually 0 after warm-up — exactly the right
    bias for an EWMA that must never *under*-report a chunk's weight.
    """
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - non-POSIX platforms
        return 0


def _run_chunk(chunk: JobChunk) -> "ChunkResult | ShmResultHandle":
    """Worker entry point: execute a chunk's runs under its generation.

    A stale generation (the submitting search already ended) returns
    immediately; a generation going stale mid-training aborts at the
    next epoch boundary.  Per-run exceptions are captured — the
    scheduler surfaces them at the candidate's commit turn, never
    earlier — and the remaining runs still execute so the candidate can
    complete (commit needs all runs accounted for).  Oversized results
    (e.g. ``return_histories`` payloads) come back as a
    :class:`ShmResultHandle` instead of travelling through the pool's
    pickle pipe; :meth:`PersistentPool.submit` unwraps them before the
    scheduler sees the result.
    """
    generation = chunk.generation
    if _cancel_floor() > generation:
        return _CANCELLED_CHUNK
    # Fault-injection hook (tests only; a 4-byte read when disarmed).
    # Checked *after* the floor so cancelled no-op chunks never consume
    # a fault firing, and only for live chunks of a pool worker.  A
    # "kill" fault does not return; a "delay" fault has already slept,
    # so recheck the floor — the parent may have timed this chunk out.
    fired = None
    if _CTRL is not None:
        fired = faults.maybe_fire(_CTRL.buf, chunk)
        if fired == faults.DELAY and _cancel_floor() > generation:
            return _CANCELLED_CHUNK
    try:
        split = _attached_split(chunk.handle)
    except FileNotFoundError:
        # Segment retired: only possible once its searches ended, i.e.
        # this chunk's generation is already dead.
        return _CANCELLED_CHUNK

    def cancelled() -> bool:
        return _cancel_floor() > generation

    # An armed "oom" fault is raised by the chunk's first recoverable
    # attempt (fused sweep when there is one, absorbed at the scalar
    # floor otherwise) so it engages the degradation ladder rather than
    # the crash/retry machinery.
    inject = [fired == faults.OOM]
    rss_before = _max_rss_bytes()
    started = time.perf_counter()
    try:
        entries, fallback, degrades = _chunk_entries(
            chunk, split, cancelled, inject
        )
    except TrainingCancelled:
        return _CANCELLED_CHUNK
    if fired == faults.CORRUPT_RESULT:
        return faults.corrupt_shipment()
    return _ship_result(
        ChunkResult(
            cancelled=False,
            entries=tuple(entries),
            wall_time_s=time.perf_counter() - started,
            vectorized_fallback=fallback,
            memory_degrades=degrades,
            peak_bytes=max(0, _max_rss_bytes() - rss_before),
        )
    )


# -- shared-memory result path ---------------------------------------------

#: Results whose pickle exceeds this many bytes travel back through a
#: shared-memory segment instead of the pool's result pipe.  Plain metric
#: payloads (a few hundred bytes) never hit it; ``return_histories``
#: payloads of long trainings do.
RESULT_SHM_THRESHOLD = 64 * 1024


@dataclass(frozen=True)
class ShmResultHandle:
    """Tiny picklable pointer to a result parked in shared memory.

    Single-reader by construction: the worker writes the segment once,
    the parent reads it once and unlinks it immediately (the same
    parent-owned unlink discipline as the dataset segments — a shared
    resource tracker under forkserver means the parent's unlink clears
    the worker's create-time registration, and a worker that dies before
    its handle is read leaves the segment to the tracker's exit sweep).
    """

    segment: str
    nbytes: int


def _ship_result(result: ChunkResult) -> "ChunkResult | ShmResultHandle":
    """Park an oversized result in shared memory; small ones pass through.

    Shipping is best-effort: if the segment cannot be created or written
    (a full shm tmpfs raises ``ENOSPC`` mid-write), the segment is
    unlinked *here* — the one exception to the parent-owns-unlinks rule,
    safe because the handle never reached the parent — and the result
    falls back to the pool's pickle pipe, which is slower but has no
    size cliff.  Losing a trained chunk to a transport failure would
    force a full retrain; a warning is the right price.
    """
    payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) < RESULT_SHM_THRESHOLD:
        return result
    shm = None
    try:
        shm = _create_named_segment("res", len(payload))
        shm.buf[: len(payload)] = payload
        shm.close()
        return ShmResultHandle(segment=shm.name, nbytes=len(payload))
    except OSError as exc:
        if shm is not None:
            _unlink_quietly(shm)
        logger.warning(
            "shared-memory result shipping failed (%s); sending %d bytes "
            "through the pool's result pipe instead",
            exc,
            len(payload),
        )
        return result


def _receive_result(obj):
    """Parent side: inflate a shipped result (pass-through otherwise).

    Raises ``FileNotFoundError`` when the segment no longer exists —
    e.g. a worker crashed mid-result and the resource tracker already
    swept its segment.  Callers must route that to the search's error
    path rather than let it kill the pool's result-handler thread (see
    :func:`_unwrap_result`).
    """
    if not isinstance(obj, ShmResultHandle):
        return obj
    shm = _attach_segment(obj.segment)
    try:
        result = pickle.loads(bytes(shm.buf[: obj.nbytes]))
    finally:
        _unlink_quietly(shm)
    return result


def _unwrap_result(pool: "PersistentPool", obj, callback, error_callback):
    """Inflate a chunk result on the pool's result-handler thread.

    Any failure while attaching/unpickling a shared-memory result — a
    worker crash mid-result leaves a handle whose segment is gone or
    truncated — is routed to ``error_callback`` so the search fails
    loudly instead of the handler thread dying and the search hanging
    on a completion that never arrives.
    """
    try:
        if isinstance(obj, ShmResultHandle):
            pool.shm_results_received += 1
            obj = _receive_result(obj)
    except Exception as exc:  # noqa: BLE001 - surfaced to the scheduler
        error_callback(exc)
        return
    if isinstance(obj, ChunkResult):
        if obj.vectorized_fallback:
            pool.vectorized_fallbacks += 1
        if obj.memory_degrades:
            pool.memory_degrades += obj.memory_degrades
    callback(obj)


# -- measured-cost packing --------------------------------------------------


class ChunkCostModel:
    """EWMA of measured per-run training cost, keyed by candidate label.

    The scheduler's FLOPs-aware packing submits the speculation window's
    most expensive chunks first (longest-processing-time).  Static FLOPs
    are only a proxy for wall time — per-epoch Python overhead and early
    stopping skew real costs — so each finished chunk's measured
    ``wall_time_s`` feeds an EWMA here, and later packing decisions (the
    next search, the next complexity level on a persistent pool) rank by
    observed seconds instead.  Candidates never seen before are
    estimated from their FLOPs through a global seconds-per-FLOP EWMA,
    which keeps the two kinds of estimate on one comparable scale.

    Packing order never affects results (the scheduler commits strictly
    in FLOPs order); this model only shapes the window's makespan.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise SearchError(f"EWMA alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._per_label: dict[str, float] = {}
        self._rate: float | None = None  # seconds per FLOP
        self._bytes_per_label: dict[str, float] = {}
        self.observations = 0

    def _ewma(self, old: float | None, new: float) -> float:
        if old is None:
            return new
        return old + self.alpha * (new - old)

    def observe(
        self, label: str, flops: int, wall_time_s: float, n_runs: int
    ) -> None:
        """Record a finished chunk's measured cost."""
        if n_runs < 1 or wall_time_s <= 0.0:
            return
        per_run = wall_time_s / n_runs
        self._per_label[label] = self._ewma(
            self._per_label.get(label), per_run
        )
        if flops > 0:
            self._rate = self._ewma(self._rate, per_run / flops)
        self.observations += 1

    def observe_bytes(
        self, label: str, chunk_bytes: int, n_runs: int
    ) -> None:
        """Record a finished chunk's measured peak working set.

        Zero readings are skipped, not averaged in: ``ru_maxrss`` deltas
        only register when a chunk raises the worker's all-time peak, so
        a 0 means "unobserved", and mixing it into the EWMA would bias
        the memory governor toward admitting overweight groups.
        """
        if n_runs < 1 or chunk_bytes <= 0:
            return
        per_run = chunk_bytes / n_runs
        self._bytes_per_label[label] = self._ewma(
            self._bytes_per_label.get(label), per_run
        )

    def bytes_estimate(self, label: str, n_runs: int = 1) -> float | None:
        """Measured working-set bytes for ``n_runs`` of ``label``, or
        ``None`` before any reading — callers fall back to the analytic
        :func:`repro.runtime.memory.estimate_candidate_bytes` model."""
        per_run = self._bytes_per_label.get(label)
        if per_run is None:
            return None
        return per_run * n_runs

    def estimate(self, label: str, flops: int, n_runs: int = 1) -> float:
        """Expected chunk cost in seconds (raw FLOPs before any data)."""
        per_run = self._per_label.get(label)
        if per_run is None:
            if self._rate is None:
                # No measurements yet anywhere: fall back to the static
                # FLOPs ranking (any monotone scale packs identically).
                return float(flops) * n_runs
            per_run = float(flops) * self._rate
        return per_run * n_runs

    def seconds_estimate(
        self, label: str, flops: int, n_runs: int = 1
    ) -> float | None:
        """Expected chunk cost in *wall-clock seconds*, or ``None``.

        Unlike :meth:`estimate` — whose pre-calibration fallback is the
        raw FLOPs count, fine for *ranking* but meaningless as a time —
        this only answers once a measured seconds scale exists.  The
        deadline watchdog uses it: no calibration, no deadline, never a
        spurious timeout from comparing seconds against FLOPs.
        """
        per_run = self._per_label.get(label)
        if per_run is None:
            if self._rate is None:
                return None
            per_run = float(flops) * self._rate
        return per_run * n_runs

    def snapshot(self) -> dict[str, float]:
        """Current per-label EWMA estimates (observability + tests)."""
        return dict(self._per_label)

    # -- persistence -------------------------------------------------------
    #
    # Measured costs survive the pool (and the process): the CLI saves
    # the model next to the run-family result cache (``--cost-cache``),
    # so the first search of a rerun packs by observed seconds instead
    # of re-learning from raw FLOPs.  Estimates only shape submission
    # order, never results, so a stale or mismatched cache is harmless.

    def state(self) -> dict:
        """JSON-serializable snapshot of the whole model.

        ``schema`` 2 added ``bytes_per_label`` (measured working-set
        EWMA); :meth:`restore` stays field-lenient, so v1 caches load
        cleanly and v1 readers simply ignore the extra fields.
        """
        return {
            "schema": 2,
            "alpha": self.alpha,
            "per_label": dict(self._per_label),
            "rate": self._rate,
            "bytes_per_label": dict(self._bytes_per_label),
            "observations": self.observations,
        }

    def restore(self, state: dict) -> None:
        """Adopt a :meth:`state` snapshot (bad entries are ignored)."""
        alpha = state.get("alpha")
        if isinstance(alpha, (int, float)) and 0.0 < alpha <= 1.0:
            self.alpha = float(alpha)
        per_label = state.get("per_label")
        if isinstance(per_label, dict):
            self._per_label = {
                str(k): float(v)
                for k, v in per_label.items()
                if isinstance(v, (int, float)) and v > 0.0
            }
        rate = state.get("rate")
        if isinstance(rate, (int, float)) and rate > 0.0:
            self._rate = float(rate)
        bytes_per_label = state.get("bytes_per_label")
        if isinstance(bytes_per_label, dict):
            self._bytes_per_label = {
                str(k): float(v)
                for k, v in bytes_per_label.items()
                if isinstance(v, (int, float)) and v > 0.0
            }
        observations = state.get("observations")
        if isinstance(observations, int) and observations >= 0:
            self.observations = observations

    def save_json(self, path) -> None:
        """Write the model's state to ``path`` (parents created)."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.state(), indent=2, sort_keys=True))

    def load_json(self, path) -> bool:
        """Restore from ``path``; missing or corrupt files are a no-op
        (returns whether anything was loaded)."""
        path = pathlib.Path(path)
        try:
            state = json.loads(path.read_text())
        except (OSError, ValueError):
            return False
        if not isinstance(state, dict):
            return False
        self.restore(state)
        return True


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------

_PRELOAD_SET = False


def _pool_context():
    """The process-start context used for worker pools.

    Prefer ``forkserver``: its server process is exec'd clean before
    workers are forked, which sidesteps the fork-with-threads hazard —
    the scheduler runs pool handler threads in this process, and plain
    ``fork`` from a threaded parent can hand a child a held lock (an
    intermittent deadlock).  The server preloads this module (and with
    it numpy and the repro stack), so worker respawns are cheap forks
    from a warm server.  Platforms without ``forkserver`` (Windows)
    fall back to their default (``spawn``), which is equally
    thread-safe; everything a chunk carries is picklable by design.
    """
    global _PRELOAD_SET
    try:
        ctx = multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()
    if not _PRELOAD_SET:
        ctx.set_forkserver_preload(["repro.runtime.pool"])
        _PRELOAD_SET = True
    return ctx


@dataclass
class _PublishedSplit:
    shm: "SharedMemory"
    handle: SharedSplitHandle
    refs: int = 0
    retired: bool = False
    split_ref: "weakref.ref | None" = None


def _unlink_quietly(shm: "SharedMemory") -> None:
    for step in (shm.close, shm.unlink):
        try:
            step()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


def _cleanup(pool_box: list, segments: dict, ctrl: "SharedMemory") -> None:
    """Idempotent teardown shared by close() and the GC/exit finalizer.

    ``terminate`` (not ``close``) so in-flight speculative chunks die
    immediately; their results are discarded by construction.  The
    parent owns every unlink, so segments cannot leak even if workers
    crashed or were killed mid-attach.  ``pool_box`` holds the lazily
    started ``multiprocessing.Pool`` (empty if no search ever ran).
    """
    for pool in pool_box:
        pool.terminate()
        pool.join()
    pool_box.clear()
    for entry in list(segments.values()):
        _unlink_quietly(entry.shm)
    segments.clear()
    _unlink_quietly(ctrl)


class PersistentPool:
    """A long-lived worker pool reused across grid searches.

    Create one per protocol run (or CLI invocation), pass it to
    :func:`repro.core.grid_search.grid_search` via ``pool=``, and close
    it when done (it is a context manager).  See the module docstring
    for the dataset-publication and cancellation protocols.
    """

    def __init__(self, workers: int, backend: "str | None" = None):
        if workers < 1:
            raise SearchError(f"pool needs workers >= 1, got {workers}")
        self.workers = workers
        #: Array backend name installed as each worker's process default
        #: (``None`` = NumPy).  Workers resolve it in their initializer,
        #: so jobs inherit the pool's backend even when their settings
        #: carry none.
        self.backend = backend
        self._generation = 0
        #: Segments reclaimed from previously *crashed* runs at startup
        #: (a parent killed before its unlinks leaves tmpfs garbage; a
        #: new pool is the natural sweep point).
        self.swept_segments = sweep_stale_segments()
        # The control segment carries the 8-byte cancellation floor plus
        # the fault-injection plan region (see repro.runtime.faults).
        self._ctrl = _create_named_segment("ctrl", faults.CTRL_SIZE)
        self._ctrl.buf[: faults.CTRL_SIZE] = bytes(faults.CTRL_SIZE)
        self._segments: dict[str, _PublishedSplit] = {}
        self._by_id: dict[int, str] = {}
        self._initargs = (self._ctrl.name, backend)
        #: Instrumentation: the pickled initializer payload shipped to
        #: each worker.  PR 2 shipped the whole DataSplit here; now it
        #: is one segment name, constant in dataset size (asserted by
        #: tests/runtime/test_shared_memory.py).
        self.init_payload_bytes = len(pickle.dumps(self._initargs))
        self.searches_started = 0
        #: Measured-cost packing state, shared by every search on this
        #: pool: chunk wall times observed at one complexity level shape
        #: the packing order of the next (see :class:`ChunkCostModel`).
        self.cost_model = ChunkCostModel()
        #: Instrumentation: results that came back via shared memory.
        self.shm_results_received = 0
        #: Instrumentation: chunks whose stacked sweep failed and was
        #: re-trained scalar (each paid for both attempts).  A climbing
        #: counter means some candidate's vectorized path is broken —
        #: results stay correct, wall time silently doubles.
        self.vectorized_fallbacks = 0
        #: Fault-tolerance instrumentation, incremented by the scheduler:
        #: chunks resubmitted after a worker loss / runtime error, chunks
        #: cancelled past their hard deadline, and searches that finished
        #: in-process after retry exhaustion.
        self.chunk_retries = 0
        self.chunk_timeouts = 0
        self.sequential_fallbacks = 0
        #: Seconds slept in jittered backoff before chunk resubmissions
        #: (see :mod:`repro.runtime.backoff`); a climbing value means
        #: retries are landing on a still-unhealthy resource.
        self.retry_backoff_s = 0.0
        #: Memory-governance instrumentation: OOM recovery-ladder steps
        #: taken by workers (group halving, numpy retry, scalar floor).
        #: Results stay bit-identical; a climbing counter means groups
        #: are being sized past what the workers can actually hold.
        self.memory_degrades = 0
        # Worker processes start lazily on the first submitted chunk, so
        # a pool created "just in case" (a CLI run whose experiments all
        # hit the results cache, or one that never searches) costs one
        # tiny control segment and zero processes.
        self._pool_box: list = []
        self._finalizer = weakref.finalize(
            self, _cleanup, self._pool_box, self._segments, self._ctrl
        )

    def _worker_pool(self):
        """The underlying process pool, started on first use.

        multiprocessing.Pool rather than ProcessPoolExecutor: its
        terminate() kills in-flight work at close(), where an executor
        could only cancel *queued* futures and would stall interpreter
        exit on running speculative trainings.
        """
        if not self._pool_box:
            self._pool_box.append(
                _pool_context().Pool(
                    processes=self.workers,
                    initializer=_init_pool_worker,
                    initargs=self._initargs,
                )
            )
        return self._pool_box[0]

    def stats(self) -> dict:
        """One snapshot of the pool's instrumentation counters.

        Collects the scattered counters (retry/timeout/fallback/
        memory-degrade/shm accounting) into a single plain dict so the
        scheduler can log one line at search end and tests can assert
        on the whole picture at once.  Values are copies — mutating the
        snapshot never touches the live counters.
        """
        return {
            "workers": self.workers,
            "backend": self.backend,
            "searches_started": self.searches_started,
            "chunk_retries": self.chunk_retries,
            "chunk_timeouts": self.chunk_timeouts,
            "retry_backoff_s": round(self.retry_backoff_s, 3),
            "sequential_fallbacks": self.sequential_fallbacks,
            "vectorized_fallbacks": self.vectorized_fallbacks,
            "memory_degrades": self.memory_degrades,
            "shm_results_received": self.shm_results_received,
            "swept_segments": len(self.swept_segments),
            "live_segments": len(self._segments),
            "init_payload_bytes": self.init_payload_bytes,
            "cost_observations": self.cost_model.observations,
        }

    # -- dataset lifecycle -------------------------------------------------

    def publish(self, split: "DataSplit") -> SharedSplitHandle:
        """Publish a split (idempotent per split object).

        Segments whose split object has been garbage-collected and that
        no search references anymore are swept here: nothing can ever
        acquire them again (acquisition is keyed on the live object), so
        a long-lived pool fed a stream of throwaway datasets does not
        accumulate dead tmpfs copies.  For deterministic early release,
        call :meth:`retire_split`.
        """
        self._ensure_open()
        for entry in list(self._segments.values()):
            if (
                entry.refs == 0
                and entry.split_ref is not None
                and entry.split_ref() is None
            ):
                self._unlink_entry(entry)
        name = self._by_id.get(id(split))
        if name is not None:
            entry = self._segments.get(name)
            if (
                entry is not None
                and entry.split_ref is not None
                and entry.split_ref() is split
            ):
                return entry.handle
            # id() was recycled by a new split object; drop the stale map.
            del self._by_id[id(split)]
        shm, handle = publish_split(split)
        self._segments[handle.segment] = _PublishedSplit(
            shm=shm, handle=handle, split_ref=weakref.ref(split)
        )
        self._by_id[id(split)] = handle.segment
        return handle

    def acquire_split(self, split: "DataSplit") -> SharedSplitHandle:
        """Publish (if new) and take a per-search reference."""
        handle = self.publish(split)
        self._segments[handle.segment].refs += 1
        return handle

    def release_split(self, handle: SharedSplitHandle) -> None:
        """Drop a search's reference; unlink if retired and unused."""
        entry = self._segments.get(handle.segment)
        if entry is None:
            return
        entry.refs = max(0, entry.refs - 1)
        if entry.retired and entry.refs == 0:
            self._unlink_entry(entry)

    def retire_split(self, split: "DataSplit | SharedSplitHandle") -> None:
        """Mark a dataset as done; unlink now or when its last search ends."""
        if isinstance(split, SharedSplitHandle):
            name = split.segment
        else:
            name = self._by_id.get(id(split))
        entry = self._segments.get(name) if name is not None else None
        if entry is None:
            return
        entry.retired = True
        if entry.refs == 0:
            self._unlink_entry(entry)

    def _unlink_entry(self, entry: _PublishedSplit) -> None:
        _unlink_quietly(entry.shm)
        self._segments.pop(entry.handle.segment, None)
        for key, name in list(self._by_id.items()):
            if name == entry.handle.segment:
                del self._by_id[key]

    @property
    def live_segments(self) -> list[str]:
        """Names of still-linked segments (observability + tests)."""
        return list(self._segments)

    # -- search lifecycle --------------------------------------------------

    def new_generation(self) -> int:
        """Start a search: returns the generation its chunks must carry."""
        self._ensure_open()
        self._generation += 1
        self.searches_started += 1
        return self._generation

    def advance_generation(self) -> int:
        """Supersede the current generation *within* a live search.

        The scheduler's retry primitive: cancelling the current
        generation makes every in-flight chunk of the search no-op (or
        abort at the next epoch boundary), after which the scheduler
        resubmits its outstanding chunks under the returned generation.
        Unlike :meth:`new_generation` this does not count a search.
        """
        self._ensure_open()
        self.cancel(self._generation)
        self._generation += 1
        return self._generation

    def cancel(self, generation: int) -> None:
        """End a search: its queued chunks no-op, running ones abort at
        the next epoch boundary.  Monotonic, so late calls are safe."""
        if self._finalizer.alive:
            floor = generation + 1
            if floor > int.from_bytes(self._ctrl.buf[:8], "little"):
                self._ctrl.buf[:8] = floor.to_bytes(8, "little")

    # -- fault injection (tests) -------------------------------------------

    def install_fault(self, plan: "faults.FaultPlan") -> None:
        """Arm a deterministic fault in every worker via the ctrl segment."""
        self._ensure_open()
        faults.install(self._ctrl.buf, plan)

    def clear_fault(self) -> None:
        """Disarm any installed fault plan (idempotent; safe when closed)."""
        if self._finalizer.alive:
            faults.clear(self._ctrl.buf)

    def submit(self, chunk: JobChunk, callback, error_callback) -> None:
        self._ensure_open()

        def unwrap(obj):
            # Oversized results arrive as a ShmResultHandle; inflate (and
            # unlink the one-shot segment) before the scheduler sees it.
            # Runs on the pool's result-handler thread, like callback.
            _unwrap_result(self, obj, callback, error_callback)

        self._worker_pool().apply_async(
            _run_chunk,
            (chunk,),
            callback=unwrap,
            error_callback=error_callback,
        )

    def worker_pids(self) -> set[int]:
        """Current worker pids (``Pool`` respawns a worker that dies).

        Empty until the first chunk is submitted (workers start lazily).
        """
        if not self._pool_box:
            return set()
        return {p.pid for p in getattr(self._pool_box[0], "_pool", [])}

    # -- teardown ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def _ensure_open(self) -> None:
        if self.closed:
            raise SearchError("PersistentPool is closed")

    def close(self) -> None:
        """Terminate workers and unlink every segment (idempotent)."""
        self._finalizer()

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def chunk_runs(runs: int, chunk: int) -> list[tuple[int, int]]:
    """Split ``range(runs)`` into ``(start, stop)`` chunks of size ``chunk``."""
    return [(s, min(s + chunk, runs)) for s in range(0, runs, chunk)]


def make_chunks(
    spec,
    candidate_index: int,
    seed: int,
    runs: int,
    chunk: int,
    handle: SharedSplitHandle,
    settings: "TrainingSettings",
    generation: int,
    vectorized: bool = False,
) -> list[JobChunk]:
    """All chunks of one candidate, in run order.

    ``vectorized`` marks the chunks for run-stacked execution (the
    caller packs the whole run set into one chunk in that mode).
    """
    return [
        JobChunk(
            jobs=tuple(
                TrainingJob(spec, seed, candidate_index, run)
                for run in range(start, stop)
            ),
            handle=handle,
            settings=settings,
            generation=generation,
            vectorized=vectorized,
        )
        for start, stop in chunk_runs(runs, chunk)
    ]
