"""Checkpoint/resume journal for grid searches.

A multi-hour sweep that dies at candidate 47 of 60 — machine reboot,
scheduler preemption, retry exhaustion with fallback disabled — should
not restart from zero.  :class:`SearchJournal` appends every *committed*
:class:`~repro.core.grid_search.CandidateResult` to a JSONL file, one
record per line, flushed and fsynced at commit time so the journal is
never behind the in-memory outcome by more than the record being
written.

Records are keyed by :func:`search_key`, a hash over everything that
determines the result stream: the ranked candidate list, the threshold,
the base seed, the counting convention and the result-affecting training
settings.  Runs derive their RNG streams from ``(seed, candidate_index,
run)``, so a candidate's journaled result is bit-identical to what a
rerun would recompute — resuming skips completed candidates and the
final :class:`~repro.core.grid_search.SearchOutcome` is indistinguishable
from an uninterrupted run's.  Records whose key does not match are
ignored, so pointing a changed configuration at an old journal can never
smuggle in stale results.

:meth:`SearchJournal.load` also *compacts*: when the file carries
anything beyond this key's contiguous committed prefix — a torn trailing
line from a crash mid-append, records keyed by a different
configuration, strays past a gap — the prefix is rewritten in place
(atomic tmp + rename) and the junk is dropped rather than carried and
re-skipped forever.  Append semantics are unchanged: one fsynced JSONL
line per commit.

Serialization reuses :mod:`repro.core.results` (the same schema the
run-family cache persists), imported lazily to keep this runtime module
free of a core-package import cycle.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pathlib
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.grid_search import CandidateResult, TrainingSettings
    from ..core.search_space import ModelSpec
    from ..flops.conventions import CountingConvention

__all__ = ["SearchJournal", "search_key", "JOURNAL_VERSION"]

JOURNAL_VERSION = 1

logger = logging.getLogger("repro.runtime")


def search_key(
    ranked: Sequence["ModelSpec"],
    threshold: float,
    settings: "TrainingSettings",
    convention: "CountingConvention",
    seed: int,
) -> str:
    """Hash of everything that determines a search's result stream.

    Only result-affecting settings participate: execution knobs
    (workers, vectorization, stacking, retry policy) change wall time,
    never results, so a journal written under one execution mode resumes
    under any other.
    """
    from ..core.results import spec_to_dict

    payload = {
        "specs": [
            {"class": type(spec).__name__, **spec_to_dict(spec)}
            for spec in ranked
        ],
        "threshold": threshold,
        "seed": seed,
        "convention": convention.name,
        "settings": {
            "epochs": settings.epochs,
            "batch_size": settings.batch_size,
            "learning_rate": settings.learning_rate,
            "runs": settings.runs,
            "early_stop_threshold": settings.early_stop_threshold,
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class SearchJournal:
    """Append-only JSONL checkpoint of one search's committed candidates.

    Each line is ``{"v": 1, "key": <search_key>, "index": <rank>,
    "candidate": <candidate_to_dict payload>}``.  :meth:`load` returns
    the longest contiguous prefix of committed candidates for this
    journal's key — a gap means later records belong to a different
    interleaved write and cannot be trusted as "everything before me
    committed".  A torn final line (the writer died mid-append) is
    ignored with a warning, never an error.
    """

    def __init__(self, path: "str | os.PathLike", key: str) -> None:
        self.path = pathlib.Path(path)
        self.key = key

    def load(self) -> "list[CandidateResult]":
        """Committed candidates 0..k-1 for this key (empty if none).

        Every line that does not belong to the prefix — torn, malformed,
        foreign-key, or past a gap — is counted as droppable; when any
        exist, the prefix is rewritten in place so the journal holds
        exactly its usable content and nothing is re-skipped on every
        later resume.
        """
        from ..core.results import candidate_from_dict

        try:
            lines = self.path.read_text().splitlines()
        except FileNotFoundError:
            return []
        by_index: dict[int, "CandidateResult"] = {}
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # A crash mid-append leaves at most one torn trailing
                # line; everything before it is intact and usable.
                logger.warning(
                    "ignoring corrupt journal line in %s", self.path
                )
                continue
            if not isinstance(record, dict) or record.get("key") != self.key:
                continue
            try:
                by_index[int(record["index"])] = candidate_from_dict(
                    record["candidate"]
                )
            except (KeyError, TypeError, ValueError):
                logger.warning(
                    "ignoring malformed journal record in %s", self.path
                )
        restored: "list[CandidateResult]" = []
        while len(restored) in by_index:
            restored.append(by_index[len(restored)])
        # Any line beyond the prefix — torn, foreign-key, malformed,
        # blank, a duplicate index, or a stray past a gap — is a byte
        # load() will never use again.
        dropped = len(lines) - len(restored)
        if dropped > 0:
            self._compact(restored, dropped)
        if restored:
            logger.info(
                "journal %s: resuming past %d committed candidate(s)",
                self.path,
                len(restored),
            )
        return restored

    def _compact(
        self, restored: "list[CandidateResult]", dropped: int
    ) -> None:
        """Rewrite the journal as exactly its committed prefix.

        Atomic (tmp + fsync + rename), so a crash mid-compaction leaves
        either the old file or the new one, never a mix; a reread of
        either restores the same prefix.
        """
        tmp = self.path.with_name(f"{self.path.name}.tmp{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                for index, candidate in enumerate(restored):
                    fh.write(self._encode(index, candidate) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except OSError:
            # Compaction is hygiene, not correctness: a read-only or
            # full filesystem keeps the journal as-is and load() simply
            # re-skips the junk next time.
            logger.warning("could not compact journal %s", self.path)
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        logger.info(
            "compacted journal %s: kept %d committed record(s), "
            "dropped %d stale line(s)",
            self.path,
            len(restored),
            dropped,
        )

    def _encode(self, index: int, candidate: "CandidateResult") -> str:
        from ..core.results import candidate_to_dict

        record = {
            "v": JOURNAL_VERSION,
            "key": self.key,
            "index": index,
            "candidate": candidate_to_dict(candidate),
        }
        return json.dumps(record, sort_keys=True)

    def append(self, index: int, candidate: "CandidateResult") -> None:
        """Durably record one committed candidate (called at commit)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(self._encode(index, candidate) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
