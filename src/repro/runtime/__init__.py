"""Parallel search runtime.

Process-pool execution of grid-search training jobs with speculative
FLOPs-order semantics: results are bit-identical to the sequential
search (same winner, same per-run accuracies, same evaluated order)
while the embarrassingly parallel (candidate, run) training work fans
out across workers.  See :mod:`repro.runtime.parallel` for the
scheduler and :mod:`repro.runtime.jobs` for the shared run primitive.
"""

from .jobs import RunResult, TrainingJob, execute_job
from .parallel import SPECULATION_FACTOR, resolve_workers, speculative_search

__all__ = [
    "TrainingJob",
    "RunResult",
    "execute_job",
    "resolve_workers",
    "speculative_search",
    "SPECULATION_FACTOR",
]
