"""Parallel search runtime.

Process-pool execution of grid-search training jobs with speculative
FLOPs-order semantics: results are bit-identical to the sequential
search (same winner, same per-run accuracies, same evaluated order)
while the embarrassingly parallel (candidate, run) training work fans
out across workers.

:mod:`repro.runtime.pool` provides the persistent worker pool — spun up
once, reused across every grid search of a protocol run — and the
shared-memory dataset protocol (workers attach to published
:class:`~repro.data.splits.DataSplit` segments zero-copy).
:mod:`repro.runtime.parallel` is the speculative scheduler with
FLOPs-aware job packing, and :mod:`repro.runtime.jobs` the shared run
primitive.
"""

from .jobs import RunResult, TrainingJob, execute_job
from .parallel import SPECULATION_FACTOR, resolve_workers, speculative_search
from .pool import (
    PersistentPool,
    SharedSplitHandle,
    attach_split,
    publish_split,
)

__all__ = [
    "TrainingJob",
    "RunResult",
    "execute_job",
    "resolve_workers",
    "speculative_search",
    "SPECULATION_FACTOR",
    "PersistentPool",
    "SharedSplitHandle",
    "publish_split",
    "attach_split",
]
