"""Parallel search runtime.

Process-pool execution of grid-search training jobs with speculative
FLOPs-order semantics: results are bit-identical to the sequential
search (same winner, same per-run accuracies, same evaluated order)
while the embarrassingly parallel (candidate, run) training work fans
out across workers.

:mod:`repro.runtime.pool` provides the persistent worker pool — spun up
once, reused across every grid search of a protocol run — the
shared-memory dataset protocol (workers attach to published
:class:`~repro.data.splits.DataSplit` segments zero-copy), the
shared-memory return path for oversized results, and the measured-cost
model behind adaptive chunk packing.
:mod:`repro.runtime.parallel` is the speculative scheduler with
cost-aware job packing and fault-tolerant supervision (chunk retry,
deadline watchdog, sequential fallback), and :mod:`repro.runtime.jobs`
holds the shared run primitives — scalar
:func:`~repro.runtime.jobs.execute_job` and the run-stacked
:func:`~repro.runtime.jobs.execute_runs` that trains a candidate's
whole run set in one vectorized sweep.

:mod:`repro.runtime.journal` persists every committed candidate to a
JSONL checkpoint so interrupted searches resume bit-identically, and
:mod:`repro.runtime.faults` provides the deterministic fault-injection
hooks (worker kill, chunk delay, corrupt result segment, host kill,
lease steal, torn file) the fault-tolerance tests drive real process
death with.

:mod:`repro.runtime.cluster` shards one search across hosts over a
shared-filesystem spool — lease-based claims, heartbeat liveness,
dead-host recovery, sequential-identical commit order —
:mod:`repro.runtime.cluster_tcp` is the same coordinator core over a
listening socket for filesystem-less rigs (checksummed frames,
connection leases, reconnect with backoff, partition tolerance), and
:mod:`repro.runtime.backoff` is the shared capped decorrelated-jitter
retry policy every retry path sleeps through.
"""

from .backoff import Backoff, retry_call
from .cluster import (
    AgentStats,
    CoordinatorCore,
    SpoolConfig,
    SpoolCoordinator,
    cluster_search,
    run_agent,
    stop_agents,
    sweep_stale_leases,
)
from .cluster_tcp import (
    TcpConfig,
    TcpCoordinator,
    run_tcp_agent,
    tcp_cluster_search,
)
from .faults import FaultPlan
from .jobs import (
    RunResult,
    TrainingJob,
    execute_candidates,
    execute_job,
    execute_runs,
)
from .journal import SearchJournal, search_key
from .parallel import (
    SPECULATION_FACTOR,
    SearchEvent,
    resolve_workers,
    speculative_search,
)
from .pool import (
    ChunkCostModel,
    PersistentPool,
    SharedSplitHandle,
    ShmResultHandle,
    attach_split,
    publish_split,
    sweep_stale_segments,
)

__all__ = [
    "TrainingJob",
    "RunResult",
    "execute_job",
    "execute_runs",
    "execute_candidates",
    "resolve_workers",
    "speculative_search",
    "SearchEvent",
    "SPECULATION_FACTOR",
    "PersistentPool",
    "SharedSplitHandle",
    "ShmResultHandle",
    "ChunkCostModel",
    "publish_split",
    "attach_split",
    "sweep_stale_segments",
    "FaultPlan",
    "SearchJournal",
    "search_key",
    "Backoff",
    "retry_call",
    "SpoolConfig",
    "SpoolCoordinator",
    "CoordinatorCore",
    "AgentStats",
    "cluster_search",
    "run_agent",
    "stop_agents",
    "sweep_stale_leases",
    "TcpConfig",
    "TcpCoordinator",
    "run_tcp_agent",
    "tcp_cluster_search",
]
