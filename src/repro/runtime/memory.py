"""Memory governance: budgets, peak-bytes prediction, OOM classification.

The stacked execution engine buys throughput by fusing ever-larger
``(C*R*B, 2**n)`` complex sweeps, and nothing in the scheduler used to
bound them: a grid search that merges four 8-qubit candidates allocates
the whole fused working set in one ``einsum``.  This module makes memory
a governed resource:

* :func:`resolve_memory_budget` turns the user's intent — an explicit
  ``TrainingSettings.memory_budget`` / ``--memory-budget`` value, the
  ``REPRO_MEMORY_BUDGET`` environment variable, or (by default) a
  fraction of the backend's :meth:`~repro.backends.ArrayBackend.free_bytes`
  probe — into one :class:`MemoryBudget` the group planner and the pool
  scheduler size admissions against.
* :func:`estimate_candidate_bytes` is the *a-priori* analytic peak-bytes
  model for a candidate's run set: parameter stacks with Adam moments,
  dense activations, and the quantum sweep's state buffers and gate
  stacks.  Live model objects refine it (``CompiledTape.peak_bytes``,
  ``GroupedStack.peak_bytes``); the scheduler additionally cross-checks
  against the measured bytes EWMA in
  :class:`~repro.runtime.pool.ChunkCostModel`.
* :func:`is_memory_error` classifies an exception as a *resource*
  failure (host ``MemoryError``, CUDA/CuPy OOM, shm ``ENOSPC``) so the
  chunk runner degrades gracefully instead of retrying the same
  oversized allocation as if a worker had crashed.

Budgets never change results: group splitting and the scalar fallback
are bit-identity-preserving, so any budget (and any OOM mid-search)
yields the same :class:`~repro.core.grid_search.SearchOutcome`.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass

from ..config import MEMORY_BUDGET_FRACTION
from ..exceptions import ConfigurationError

__all__ = [
    "MEMORY_BUDGET_ENV_VAR",
    "MemoryBudget",
    "parse_memory_budget",
    "resolve_memory_budget",
    "is_memory_error",
    "estimate_candidate_bytes",
]

MEMORY_BUDGET_ENV_VAR = "REPRO_MEMORY_BUDGET"

#: float64 / complex128 item sizes used by the analytic byte model.
_REAL_ITEM = 8
_COMPLEX_ITEM = 16

_UNIT_SUFFIXES = {
    "": 1,
    "K": 1024,
    "M": 1024**2,
    "G": 1024**3,
    "T": 1024**4,
}


@dataclass(frozen=True)
class MemoryBudget:
    """A resolved concurrent-bytes ceiling for one search.

    ``bytes`` is ``None`` when governance is off (no probe available, or
    the user disabled it with a non-positive value).  ``source`` records
    where the number came from: ``"settings"`` (TrainingSettings /
    ``--memory-budget``), ``"env"`` (``REPRO_MEMORY_BUDGET``), ``"auto"``
    (a fraction of the backend's free-memory probe) or ``"off"``.
    """

    bytes: int | None
    source: str

    @property
    def active(self) -> bool:
        return self.bytes is not None

    @property
    def explicit(self) -> bool:
        """Whether the user asked for this exact number.

        Only explicit budgets unlock group growth past the legacy
        ``MAX_GROUP_CANDIDATES`` cap; the implicit ``auto`` budget only
        enables splitting and admission control, so default-settings
        searches keep their historical group shapes.
        """
        return self.source in ("settings", "env")


def parse_memory_budget(text: str) -> float:
    """Parse a ``--memory-budget`` value into bytes.

    Accepts a plain number of bytes or a ``K``/``M``/``G``/``T``
    binary-suffixed value (optional trailing ``B``, case-insensitive):
    ``"2G"`` is 2 GiB.  ``"0"``, ``"none"`` and ``"off"`` disable
    governance (a non-positive budget).
    """
    raw = str(text).strip()
    if raw.lower() in ("none", "off"):
        return 0.0
    body = raw.upper().rstrip("B") if raw.upper().endswith("B") else raw.upper()
    suffix = body[-1:] if body[-1:] in _UNIT_SUFFIXES and body[-1:].isalpha() else ""
    number = body[: len(body) - len(suffix)] if suffix else body
    try:
        value = float(number)
    except ValueError:
        raise ConfigurationError(
            f"invalid memory budget {text!r}: expected bytes or a "
            f"K/M/G/T-suffixed size (e.g. 512M, 2G), or 0/none/off"
        ) from None
    return value * _UNIT_SUFFIXES.get(suffix, 1)


def _probe_free_bytes(backend=None) -> int | None:
    """Free memory of ``backend`` (or the active one); ``None`` unknown."""
    if backend is None:
        try:
            from ..backends import active_backend

            backend = active_backend()
        except Exception:  # pragma: no cover - defensive
            return None
    try:
        return backend.free_bytes()
    except Exception:  # pragma: no cover - probe must never break a search
        return None


def resolve_memory_budget(explicit=None, backend=None) -> MemoryBudget:
    """Resolve the effective memory budget for one search.

    Precedence: ``explicit`` (``TrainingSettings.memory_budget``, fed by
    ``--memory-budget``) > the ``REPRO_MEMORY_BUDGET`` environment
    variable > ``auto`` (``MEMORY_BUDGET_FRACTION`` of the backend's
    free-memory probe).  A non-positive explicit or env value disables
    governance entirely, as does a failed probe.
    """
    if explicit is not None:
        value = float(explicit)
        if value <= 0:
            return MemoryBudget(bytes=None, source="off")
        return MemoryBudget(bytes=int(value), source="settings")
    env = os.environ.get(MEMORY_BUDGET_ENV_VAR)
    if env is not None and env.strip():
        try:
            value = parse_memory_budget(env)
        except ConfigurationError:
            return MemoryBudget(bytes=None, source="off")
        if value <= 0:
            return MemoryBudget(bytes=None, source="off")
        return MemoryBudget(bytes=int(value), source="env")
    free = _probe_free_bytes(backend)
    if free is None:
        return MemoryBudget(bytes=None, source="off")
    return MemoryBudget(
        bytes=int(free * MEMORY_BUDGET_FRACTION), source="auto"
    )


def is_memory_error(exc: BaseException) -> bool:
    """Whether ``exc`` is an out-of-memory *resource* failure.

    Covers host ``MemoryError``, ``OSError`` with ``ENOMEM``/``ENOSPC``
    (shm segments live on a size-capped tmpfs), and — only when the
    module is already imported, so the check never imports a device
    stack — ``torch.cuda.OutOfMemoryError`` and CuPy's
    ``OutOfMemoryError``.
    """
    if isinstance(exc, MemoryError):
        return True
    if isinstance(exc, OSError):
        import errno

        if exc.errno in (errno.ENOMEM, errno.ENOSPC):
            return True
    torch = sys.modules.get("torch")
    if torch is not None:
        cuda_oom = getattr(
            getattr(torch, "cuda", None), "OutOfMemoryError", None
        )
        if cuda_oom is not None and isinstance(exc, cuda_oom):
            return True
    cupy = sys.modules.get("cupy")
    if cupy is not None:
        cp_oom = getattr(
            getattr(cupy, "cuda", None), "memory", None
        )
        cp_oom = getattr(cp_oom, "OutOfMemoryError", None)
        if cp_oom is not None and isinstance(exc, cp_oom):
            return True
    return False


def estimate_candidate_bytes(spec, batch: int, runs: int) -> int:
    """Analytic peak working-set bytes for one candidate's fused run set.

    A deliberately simple upper-envelope model — the scheduler only
    needs relative magnitudes that track reality within a small factor,
    and the measured bytes EWMA corrects it online.  Terms:

    * parameter stacks x4 (values, grads, Adam ``m``/``v`` moments);
    * dense activations: one input + one output row block per layer,
      cached for backward;
    * quantum sweep (when ``spec`` has ``n_qubits``): the engine's
      forward/adjoint/record statevector buffers — six ``(rows, 2**n)``
      complex buffers — plus the bound gate-matrix stacks (roughly
      3 matrices per qubit per layer, per-sample encoding stacks and
      per-run weight stacks).

    ``rows = batch * runs`` is the fused run-major activation height.
    """
    rows = max(1, int(batch)) * max(1, int(runs))
    runs = max(1, int(runs))
    total = 4 * int(getattr(spec, "param_count", 0) or 0) * runs * _REAL_ITEM
    widths = [int(getattr(spec, "n_features", 0) or 0)]
    widths.extend(int(h) for h in getattr(spec, "hidden", ()) or ())
    widths.append(int(getattr(spec, "n_classes", 0) or 0))
    total += 2 * rows * sum(widths) * _REAL_ITEM
    n_qubits = getattr(spec, "n_qubits", None)
    if n_qubits:
        dim = 2 ** int(n_qubits)
        total += 6 * rows * dim * _COMPLEX_ITEM
        n_layers = int(getattr(spec, "n_layers", 1) or 1)
        gates = int(n_qubits) * (n_layers + 1) * 3
        total += gates * (rows + runs) * 4 * _COMPLEX_ITEM
    return total
