"""Cross-host sharded grid search over a shared-filesystem spool.

ROADMAP item (e): shard one protocol run across multiple hosts.  The
single-host seams — picklable :class:`~repro.runtime.jobs.TrainingJob`
chunks, ``(seed, candidate, run)``-derived RNG streams, strict
FLOPs-order commit — already make distributed execution a pure
transport problem, and the thinnest transport every cluster filesystem
provides is a shared directory.  No sockets, no broker, no new
dependencies: the **spool** directory is the wire.

Spool layout (all files live under one directory)::

    tasks/       <token>.c<cid>.a<attempt>.task      framed SpoolChunk
    leases/      <agent>.<token>.c<cid>.a<att>.lease a claimed task
    results/     <token>.c<cid>.a<att>.<agent>.result framed SpoolResult
    data/        <token>.split                       framed DataSplit
    agents/      <agent>.agent                       heartbeat counter
    quarantine/  files that failed frame validation
    faults/      spool-armed fault plans (tests only)
    stop                                             agents exit when present

``<token>`` and ``<agent>`` use the owner-id grammar
``repro_<host>_<pid>_<nonce>`` — the same discipline as the pool's
``repro_<pid>_*`` shared-memory segments — so dead-owner garbage is
*sweepable*: a new coordinator unlinks any same-host file whose owner
pid is gone (see :func:`sweep_stale_leases`).

The protocol:

* the **coordinator** (:class:`SpoolCoordinator`, usually via
  ``grid_search(spool=...)``) serializes one chunk per candidate into
  ``tasks/`` within a bounded speculation window, ingests result files,
  and commits candidates **strictly in FLOPs order** — so the returned
  :class:`~repro.core.grid_search.SearchOutcome` is bit-identical to
  the sequential baseline for any host count, any claim interleaving,
  any failure history;

* an **agent** (:func:`run_agent`, ``repro cluster-agent --spool``)
  claims a task by atomically renaming it into ``leases/`` — rename is
  the spool's only mutual-exclusion primitive, and it moves the payload
  with the claim — executes the chunk through the same
  ``_chunk_entries`` primitive the pool workers run, writes a result
  file, and releases the lease;

* while training, the agent's heartbeat thread rewrites a per-agent
  counter file.  The coordinator judges liveness **only on its own
  monotonic clock**: it records when it last observed the counter
  *change*, and expires leases after ``lease_timeout_s`` without a
  change (same-host agents are additionally pid-probed).  Remote
  wall-clock timestamps are never compared, so arbitrary clock skew
  between hosts cannot cause a false (or missed) expiry;

* an expired lease's chunk is re-enqueued with its attempt count
  bumped, bounded by ``settings.max_retries``; chunks are deterministic
  so the re-execution is bit-identical.  A *stale* agent that rejoins
  and writes its result anyway just produces a duplicate result file —
  the first ingested copy wins and later ones are counted and dropped;

* every payload file is **framed** (magic, version, length, SHA-256)
  and written tmp-then-rename, so a torn or half-written file is
  detected, moved to ``quarantine/`` and its chunk retried — never
  parsed into garbage; all spool I/O retries transient ``OSError``s
  with capped decorrelated-jitter backoff
  (:mod:`repro.runtime.backoff`);

* losing **every** agent degrades gracefully: after ``agent_grace_s``
  with no live heartbeat the coordinator finishes the remaining
  candidates in-process through the same sequential primitive the pool
  scheduler falls back to — the sweep completes, identically, on the
  coordinator alone.

Determinism, as everywhere in this runtime: distribution, chunking,
claim order, retries, duplicates, quarantines and fallbacks shape only
wall time.  The result stream is a pure function of ``(ranked,
threshold, settings, convention, seed)``.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pathlib
import pickle
import random
import re
import secrets
import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from ..config import (
    SPOOL_AGENT_GRACE_S,
    SPOOL_HEARTBEAT_S,
    SPOOL_LEASE_TIMEOUT_S,
    SPOOL_POLL_INTERVAL_S,
)
from ..exceptions import SearchError, TrainingCancelled
from . import faults
from .backoff import retry_call
from .jobs import RunResult, TrainingJob
from .parallel import SearchEvent, _finish_sequential
from .pool import RunError, _chunk_entries, _pid_alive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.grid_search import (
        CandidateResult,
        SearchOutcome,
        TrainingSettings,
    )
    from ..core.search_space import ModelSpec
    from ..data.splits import DataSplit
    from ..flops.conventions import CountingConvention
    from .journal import SearchJournal

__all__ = [
    "CoordinatorCore",
    "SpoolConfig",
    "SpoolChunk",
    "SpoolResult",
    "SpoolCoordinator",
    "AgentStats",
    "cluster_search",
    "run_agent",
    "stop_agents",
    "sweep_stale_leases",
    "TornFileError",
]

logger = logging.getLogger("repro.runtime")

_TASK_DIR = "tasks"
_LEASE_DIR = "leases"
_RESULT_DIR = "results"
_DATA_DIR = "data"
_AGENT_DIR = "agents"
_QUARANTINE_DIR = "quarantine"
_STOP_FILE = "stop"
_DIRS = (_TASK_DIR, _LEASE_DIR, _RESULT_DIR, _DATA_DIR, _AGENT_DIR,
         _QUARANTINE_DIR)

#: Chunks enqueued ahead of the commit frontier per live agent (with a
#: floor of two so a spool primed before any agent joins has work
#: waiting).  Bounds the training discarded when an early candidate
#: passes, exactly like the pool scheduler's speculation window.
_SPECULATION_PER_AGENT = 2


class TornFileError(SearchError):
    """A spool file failed frame validation (short, torn, or corrupt)."""


# -- framing ----------------------------------------------------------------

_MAGIC = b"RSPL"
_FRAME_VERSION = 1
_HEADER = struct.Struct("<4sIQ32s")  # magic, version, payload len, sha256


def _frame(payload: bytes) -> bytes:
    return (
        _HEADER.pack(
            _MAGIC,
            _FRAME_VERSION,
            len(payload),
            hashlib.sha256(payload).digest(),
        )
        + payload
    )


def _unframe(blob: bytes) -> bytes:
    """Validate a frame and return its payload, or raise TornFileError."""
    if len(blob) < _HEADER.size:
        raise TornFileError("spool frame shorter than its header")
    magic, version, length, digest = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise TornFileError("spool frame carries a foreign magic")
    if version != _FRAME_VERSION:
        raise TornFileError(
            f"spool frame version {version} != {_FRAME_VERSION}"
        )
    payload = blob[_HEADER.size :]
    if len(payload) != length:
        raise TornFileError(
            f"torn spool frame: {len(payload)} payload byte(s) on disk "
            f"vs {length} declared"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise TornFileError("spool frame checksum mismatch")
    return payload


# -- retried spool I/O ------------------------------------------------------


class _SpoolIO:
    """All spool filesystem access, retried with jittered backoff.

    A network filesystem riding out a failover returns transient
    ``EIO``/``ESTALE``; retrying through :func:`repro.runtime.backoff.
    retry_call` outlasts it without hammering the server.  Missing
    files are *semantic* on a spool (a lost claim race, an already-
    ingested result), so readers map ``FileNotFoundError`` to ``None``
    instead of retrying it.
    """

    def __init__(self, retries: int = 4) -> None:
        self.retries = retries
        self.io_retries = 0
        self.backoff_s = 0.0
        self._rng = random.Random()

    def call(self, fn: Callable):
        def on_retry(error, attempt, delay) -> None:
            self.io_retries += 1
            self.backoff_s += delay
            logger.warning(
                "spool I/O failed (%r); retry %d in %.2fs",
                error,
                attempt,
                delay,
            )

        return retry_call(
            fn,
            retries=self.retries,
            base_s=0.02,
            cap_s=0.5,
            rng=self._rng,
            retry_on=(OSError,),
            on_retry=on_retry,
        )

    def read_bytes(self, path: pathlib.Path) -> bytes | None:
        """File contents, or ``None`` if it does not exist."""

        def attempt() -> bytes | None:
            try:
                return path.read_bytes()
            except FileNotFoundError:
                return None

        return self.call(attempt)

    def write_frame(self, path: pathlib.Path, payload: bytes) -> None:
        """Write a framed payload atomically (tmp + fsync + rename)."""

        def attempt() -> None:
            tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
            try:
                with open(tmp, "wb") as fh:
                    fh.write(_frame(payload))
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

        self.call(attempt)

    def unlink(self, path: pathlib.Path) -> None:
        def attempt() -> None:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass

        self.call(attempt)

    def listing(self, directory: pathlib.Path) -> list[str]:
        def attempt() -> list[str]:
            try:
                return sorted(os.listdir(directory))
            except FileNotFoundError:
                return []

        return self.call(attempt)

    def quarantine(self, path: pathlib.Path, root: pathlib.Path) -> None:
        """Move a failed-validation file aside for post-mortem."""

        def attempt() -> None:
            target = root / _QUARANTINE_DIR / path.name
            try:
                os.replace(path, target)
            except FileNotFoundError:
                pass

        self.call(attempt)


# -- owner ids and file names -----------------------------------------------

_OWNER_RE = re.compile(
    r"^repro_(?P<host>[A-Za-z0-9-]+)_(?P<pid>\d+)_(?P<nonce>[0-9a-f]+)$"
)


def _host_tag() -> str:
    return re.sub(r"[^A-Za-z0-9-]", "-", socket.gethostname()) or "host"


def _new_owner_id() -> str:
    return f"repro_{_host_tag()}_{os.getpid()}_{secrets.token_hex(3)}"


def _owner_dead(owner: str) -> bool:
    """True only when the owner is *verifiably* dead (same host, pid gone).

    Remote owners are never judged here — their death shows up as
    heartbeat staleness instead.
    """
    match = _OWNER_RE.match(owner)
    if match is None or match.group("host") != _host_tag():
        return False
    return not _pid_alive(int(match.group("pid")))


def _task_name(token: str, cid: int, attempt: int) -> str:
    return f"{token}.c{cid:05d}.a{attempt:02d}.task"


def _parse_task(name: str) -> "tuple[str, int, int] | None":
    """``(token, cid, attempt)`` for a task file name, else ``None``."""
    if not name.endswith(".task"):
        return None
    parts = name[: -len(".task")].split(".")
    if len(parts) != 3 or not parts[1].startswith("c"):
        return None
    try:
        return parts[0], int(parts[1][1:]), int(parts[2][1:])
    except ValueError:
        return None


def _parse_lease(name: str) -> "tuple[str, str, int, int] | None":
    """``(agent, token, cid, attempt)`` for a lease file name."""
    if not name.endswith(".lease"):
        return None
    parts = name[: -len(".lease")].split(".")
    if len(parts) != 4 or not parts[2].startswith("c"):
        return None
    try:
        return parts[0], parts[1], int(parts[2][1:]), int(parts[3][1:])
    except ValueError:
        return None


def _parse_result(name: str) -> "tuple[str, int, int, str] | None":
    """``(token, cid, attempt, agent)`` for a result file name."""
    if not name.endswith(".result"):
        return None
    parts = name[: -len(".result")].split(".")
    if len(parts) != 4 or not parts[1].startswith("c"):
        return None
    try:
        return parts[0], int(parts[1][1:]), int(parts[2][1:]), parts[3]
    except ValueError:
        return None


def _file_owner(name: str) -> str | None:
    """The owner-id prefix of any spool file name (first dot field)."""
    head = name.split(".", 1)[0]
    return head if _OWNER_RE.match(head) else None


# -- wire types -------------------------------------------------------------


@dataclass(frozen=True)
class SpoolChunk:
    """A picklable unit of cluster work: every run of one candidate.

    Duck-type compatible with the pool's ``JobChunk`` where it matters:
    agents execute it through the same ``_chunk_entries`` primitive the
    pool workers run (it needs only ``jobs``/``settings``/
    ``vectorized``), so a spool-trained run is bit-identical to a
    pool-trained or sequential one.
    """

    token: str  # owning coordinator, owner-id grammar
    chunk_id: int  # == candidate rank index
    attempt: int
    jobs: "tuple[TrainingJob, ...]"
    settings: "TrainingSettings"
    vectorized: bool
    dataset: str  # file name under data/ the split travels in


@dataclass(frozen=True)
class SpoolResult:
    """One executed chunk's entries, written as a framed result file."""

    chunk_id: int
    attempt: int
    agent: str
    entries: "tuple[RunResult | RunError, ...]"
    wall_time_s: float


@dataclass(frozen=True)
class SpoolConfig:
    """Spool transport knobs (`path` is the shared directory).

    ``cost_cache`` names an optional JSON file for the coordinator's
    :class:`~repro.runtime.pool.ChunkCostModel` — measured per-chunk
    wall times loaded at start and saved at the end of the search, the
    cluster twin of the pool's ``--cost-cache`` persistence.
    """

    path: "str | os.PathLike"
    lease_timeout_s: float = SPOOL_LEASE_TIMEOUT_S
    poll_interval_s: float = SPOOL_POLL_INTERVAL_S
    agent_grace_s: float = SPOOL_AGENT_GRACE_S
    io_retries: int = 4
    cost_cache: "str | os.PathLike | None" = None


# -- startup hygiene --------------------------------------------------------


def sweep_stale_leases(spool_dir: "str | os.PathLike") -> list[str]:
    """Unlink lease and heartbeat files whose owner process is dead.

    The spool twin of :func:`repro.runtime.pool.sweep_stale_segments`:
    a ``kill -9``-ed agent never reaches its deterministic unlinks, so
    its lease (named ``repro_<host>_<pid>_*``) would pin a chunk until
    the heartbeat timeout on every later run.  Same-host dead-pid
    owners are swept immediately at coordinator start; remote owners
    are left to heartbeat expiry (a pid cannot be probed across hosts).
    Returns the removed names (also logged).
    """
    root = pathlib.Path(spool_dir)
    removed: list[str] = []
    for sub in (_LEASE_DIR, _AGENT_DIR):
        try:
            names = sorted(os.listdir(root / sub))
        except OSError:
            continue
        for name in names:
            owner = _file_owner(name)
            if owner is None or not _owner_dead(owner):
                continue
            try:
                os.unlink(root / sub / name)
            except OSError:  # pragma: no cover - raced another sweeper
                continue
            removed.append(name)
    if removed:
        logger.warning(
            "swept %d stale spool file(s) left by dead owners: %s",
            len(removed),
            ", ".join(removed),
        )
    return removed


def stop_agents(spool_dir: "str | os.PathLike") -> None:
    """Write the spool's ``stop`` file so every agent exits its loop.

    Idempotent; agents notice the file on their next poll.  The CLI
    calls this after its last coordinated search so a cluster run winds
    down without having to hunt agent processes across hosts.  A spool
    that was already torn down (or whose parent path is no longer
    writable) has no agents left to stop, so failing to write the file
    is a no-op rather than an error.
    """
    root = pathlib.Path(spool_dir)
    try:
        root.mkdir(parents=True, exist_ok=True)
        (root / _STOP_FILE).touch()
    except OSError as error:
        logger.info(
            "not writing stop file under %s (%s); spool already cleaned up",
            root,
            error,
        )


# -- coordinator ------------------------------------------------------------


class _Exhausted(Exception):
    """Internal: a chunk ran out of attempts; carries the would-be error."""

    def __init__(self, error: Exception, attempts: int) -> None:
        super().__init__(str(error))
        self.error = error
        self.attempts = attempts


class CoordinatorCore:
    """Transport-agnostic half of a cluster coordinator.

    Everything that makes a sharded search *correct* lives here, shared
    by every transport: strict FLOPs-order commit (``_commit_ready``),
    bounded re-attempts for lost chunks (``_next_attempt``),
    first-commit-wins duplicate arbitration plus run-coverage
    validation (``_ingest``), measured-cost feedback into a
    :class:`~repro.runtime.pool.ChunkCostModel` (optionally persisted
    through ``cost_cache``), and the graceful-degradation floor
    (``_fallback`` → the shared ``_finish_sequential``).  A transport
    subclass (:class:`SpoolCoordinator` over a shared filesystem,
    :class:`repro.runtime.cluster_tcp.TcpCoordinator` over sockets)
    owns only the medium — how chunks reach agents, how results come
    back, how liveness is observed — which is why the returned
    :class:`~repro.core.grid_search.SearchOutcome` is bit-identical
    across transports and to the sequential baseline.
    """

    def __init__(
        self,
        ranked: Sequence["ModelSpec"],
        split: "DataSplit",
        threshold: float,
        settings: "TrainingSettings",
        convention: "CountingConvention",
        seed: int,
        progress: Callable[["CandidateResult"], None] | None = None,
        journal: "SearchJournal | None" = None,
        on_event: Callable[[SearchEvent], None] | None = None,
        outcome: "SearchOutcome | None" = None,
        start_index: int = 0,
        cost_cache: "str | os.PathLike | None" = None,
    ) -> None:
        from ..core.grid_search import SearchOutcome
        from .pool import ChunkCostModel

        if settings.runs < 1:
            raise SearchError(
                f"settings.runs must be >= 1, got {settings.runs}"
            )
        self.ranked = ranked
        self.split = split
        self.threshold = threshold
        self.settings = settings
        self.convention = convention
        self.seed = seed
        self.progress = progress
        self.journal = journal
        self.on_event = on_event
        self.outcome = outcome or SearchOutcome(
            threshold=threshold, winner=None
        )
        self.token = _new_owner_id()
        self.dataset_name = f"{self.token}.split"
        # Commit bookkeeping (mirrors the pool scheduler's).
        self.next_commit = start_index
        self.ready: "dict[int, CandidateResult | RunError]" = {}
        self.done: set[int] = set()
        self.attempts: dict[int, int] = {}  # cid -> submissions so far
        # Measured per-chunk cost feedback: agents report wall_time_s
        # with every result, so claim-grant packing (and, persisted,
        # the next run's) orders by observed seconds across hosts.
        self.cost_cache = os.fspath(cost_cache) if cost_cache else None
        self.cost_model = ChunkCostModel()
        if self.cost_cache:
            self.cost_model.load_json(self.cost_cache)
        # Stats.
        self.duplicate_results = 0
        self.chunk_retries = 0
        self.sequential_fallbacks = 0
        self.agents_seen: set[str] = set()

    # -- events ------------------------------------------------------------

    def _emit(
        self,
        kind: str,
        message: str,
        candidates: Sequence[int] = (),
        attempts: int = 0,
    ) -> None:
        logger.warning("%s", message)
        if self.on_event is not None:
            self.on_event(
                SearchEvent(
                    kind=kind,
                    message=message,
                    candidates=tuple(candidates),
                    attempts=attempts,
                )
            )

    # -- work creation -----------------------------------------------------

    def _make_chunk(self, cid: int, attempt: int) -> SpoolChunk:
        runs = self.settings.runs
        return SpoolChunk(
            token=self.token,
            chunk_id=cid,
            attempt=attempt,
            jobs=tuple(
                TrainingJob(self.ranked[cid], self.seed, cid, run)
                for run in range(runs)
            ),
            settings=self.settings,
            vectorized=self.settings.vectorized_runs and runs > 1,
            dataset=self.dataset_name,
        )

    def _next_attempt(self, cid: int, cause: str) -> int | None:
        """Account one more attempt for a lost chunk, or ``None`` when
        the chunk already completed.  Raises :class:`_Exhausted` past
        ``settings.max_retries``; the transport enqueues the returned
        attempt on its own medium."""
        if cid in self.done:
            return None
        attempt = self.attempts.get(cid, 0) + 1
        max_retries = self.settings.max_retries
        if attempt > max_retries + 1:
            error = SearchError(
                f"{cause}; the chunk for candidate {cid} was lost "
                f"{attempt - 1} time(s) (max_retries={max_retries})"
            )
            error.attempts = attempt - 1
            raise _Exhausted(error, attempt - 1)
        self.chunk_retries += 1
        self._emit(
            "retry",
            f"{cause}; re-enqueueing the chunk for candidate {cid} "
            f"(attempt {attempt} of {max_retries + 1})",
            candidates=[cid],
            attempts=attempt,
        )
        return attempt

    # -- measured-cost feedback --------------------------------------------

    def _observe_cost(self, result: SpoolResult) -> None:
        """Feed a clean result's measured wall time into the cost model."""
        if result.wall_time_s <= 0.0:
            return
        if any(isinstance(entry, RunError) for entry in result.entries):
            return  # failed chunks measure the failure, not the work
        spec = self.ranked[result.chunk_id]
        self.cost_model.observe(
            spec.label,
            spec.flops(self.convention),
            result.wall_time_s,
            self.settings.runs,
        )

    def _save_cost_model(self) -> None:
        if self.cost_cache and self.cost_model.observations:
            try:
                self.cost_model.save_json(self.cost_cache)
            except OSError as error:  # pragma: no cover - cache dir gone
                logger.warning(
                    "could not save cluster cost cache %s: %s",
                    self.cost_cache,
                    error,
                )

    # -- result ingest and commit ------------------------------------------

    def _ingest(self, result: SpoolResult) -> bool:
        """Buffer one delivered result's verdict for in-order commit.

        Returns ``False`` for a duplicate delivery (the chunk already
        completed under another attempt — first commit wins, later
        copies are counted and dropped), ``True`` once the verdict is
        buffered.  Raises :class:`TornFileError` when the result does
        not cover exactly runs ``0..runs-1``; the transport quarantines
        and requeues.
        """
        from ..core.grid_search import aggregate_runs

        runs = self.settings.runs
        cid = result.chunk_id
        if cid in self.done:
            self.duplicate_results += 1
            logger.info(
                "dropping duplicate result for candidate %d "
                "(first-commit wins)",
                cid,
            )
            return False
        per_run: "dict[int, RunResult | RunError]" = {
            entry.run: entry for entry in result.entries
        }
        if set(per_run) != set(range(runs)):
            raise TornFileError(
                f"result for candidate {cid} covers runs "
                f"{sorted(per_run)}; expected 0..{runs - 1}"
            )
        failed = [
            r for r in range(runs) if isinstance(per_run[r], RunError)
        ]
        verdict: "CandidateResult | RunError"
        if failed:
            entry = per_run[failed[0]]
            verdict = RunError(
                candidate_index=entry.candidate_index,
                run=entry.run,
                error=entry.error,
                attempts=self.attempts.get(cid, 1),
            )
        else:
            verdict = aggregate_runs(
                self.ranked[cid],
                self.convention,
                [per_run[r] for r in range(runs)],
            )
        self.done.add(cid)
        self._observe_cost(result)
        self.ready[cid] = verdict
        return True

    def _commit_ready(self) -> bool:
        """Commit buffered verdicts strictly in FLOPs order."""
        while self.next_commit in self.ready:
            committed = self.ready.pop(self.next_commit)
            if isinstance(committed, RunError):
                run_error = committed.error
                try:
                    run_error.attempts = committed.attempts
                except Exception:  # pragma: no cover - exotic error type
                    pass
                raise run_error
            self.outcome.evaluated.append(committed)
            if self.journal is not None:
                self.journal.append(self.next_commit, committed)
            self.next_commit += 1
            if self.progress is not None:
                self.progress(committed)
            if committed.passes(self.threshold):
                self.outcome.winner = committed
                return True
        return self.next_commit >= len(self.ranked)

    # -- fallback ----------------------------------------------------------

    def _abort_outstanding(self) -> None:
        """Transport hook: withdraw work agents have not claimed yet."""

    def _fallback(self, reason: str, attempts: int = 0) -> "SearchOutcome":
        self.sequential_fallbacks += 1
        self._emit(
            "sequential-fallback",
            f"{reason}; finishing the remaining "
            f"{len(self.ranked) - self.next_commit} candidate(s) "
            "in-process sequentially",
            attempts=attempts,
        )
        # Stop agents from burning cycles on chunks whose results
        # nobody will read.
        self._abort_outstanding()
        return _finish_sequential(
            self.ranked,
            self.split,
            self.threshold,
            self.settings,
            self.convention,
            self.seed,
            self.outcome,
            self.next_commit,
            self.ready,
            journal=self.journal,
            progress=self.progress,
        )

    # -- stats -------------------------------------------------------------

    def core_stats(self) -> dict:
        """Instrumentation counters shared by every transport."""
        return {
            "token": self.token,
            "committed": self.next_commit,
            "enqueued": len(self.attempts),
            "completed_chunks": len(self.done),
            "duplicate_results": self.duplicate_results,
            "chunk_retries": self.chunk_retries,
            "sequential_fallbacks": self.sequential_fallbacks,
            "cost_observations": self.cost_model.observations,
            "agents_seen": len(self.agents_seen),
        }


class SpoolCoordinator(CoordinatorCore):
    """Drives one spool-sharded search; returns a sequential-identical
    :class:`~repro.core.grid_search.SearchOutcome`.

    Single-writer by design: one coordinator per spool directory at a
    time (agents scale horizontally, the coordinator does not).  Usually
    constructed via ``grid_search(spool=...)`` / :func:`cluster_search`;
    the class is exposed so tests can drive ``prepare``/``_loop``
    stepwise.
    """

    def __init__(
        self,
        ranked: Sequence["ModelSpec"],
        split: "DataSplit",
        threshold: float,
        settings: "TrainingSettings",
        convention: "CountingConvention",
        seed: int,
        config: "SpoolConfig | str | os.PathLike",
        progress: Callable[["CandidateResult"], None] | None = None,
        journal: "SearchJournal | None" = None,
        on_event: Callable[[SearchEvent], None] | None = None,
        outcome: "SearchOutcome | None" = None,
        start_index: int = 0,
    ) -> None:
        self.cfg = (
            config
            if isinstance(config, SpoolConfig)
            else SpoolConfig(path=config)
        )
        super().__init__(
            ranked,
            split,
            threshold,
            settings,
            convention,
            seed,
            progress=progress,
            journal=journal,
            on_event=on_event,
            outcome=outcome,
            start_index=start_index,
            cost_cache=self.cfg.cost_cache,
        )
        self.root = pathlib.Path(self.cfg.path)
        self.io = _SpoolIO(self.cfg.io_retries)
        # Liveness observation: agent -> (counter, monotonic last change);
        # lease name -> monotonic first seen (for agents that died before
        # their first heartbeat landed).
        self.agents: dict[str, tuple[int, float]] = {}
        self.lease_seen: dict[str, float] = {}
        self._missing_once: set[int] = set()
        # Spool-specific stats.
        self.swept_leases = 0
        self.swept_files = 0
        self.expired_leases = 0
        self.quarantined = 0

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> "SearchOutcome":
        self.prepare()
        try:
            return self._loop()
        finally:
            self._cleanup()
            self._save_cost_model()
            logger.info("spool coordinator stats: %s", self.stats())

    def prepare(self) -> None:
        """Create the layout, sweep dead-owner garbage, publish the split."""
        for sub in _DIRS:
            (self.root / sub).mkdir(parents=True, exist_ok=True)
        # A leftover stop file from a previous wound-down run would make
        # every freshly started agent exit immediately.
        self.io.unlink(self.root / _STOP_FILE)
        self.swept_leases = len(sweep_stale_leases(self.root))
        self._sweep_dead_files()
        self.io.write_frame(
            self.root / _DATA_DIR / self.dataset_name,
            pickle.dumps(self.split, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def _sweep_dead_files(self) -> None:
        """Remove task/result/dataset files from finished coordinators.

        A file is garbage when its coordinator token is verifiably dead
        — or belongs to *this* process but a previous search (same pid,
        different token): coordinators are single-writer per spool, so
        a same-pid foreign token can only be an earlier run of ours.
        """
        for sub in (_TASK_DIR, _RESULT_DIR, _DATA_DIR):
            for name in self.io.listing(self.root / sub):
                owner = _file_owner(name)
                if owner is None or owner == self.token:
                    continue
                match = _OWNER_RE.match(owner)
                ours = (
                    match is not None
                    and match.group("host") == _host_tag()
                    and int(match.group("pid")) == os.getpid()
                )
                if ours or _owner_dead(owner):
                    self.io.unlink(self.root / sub / name)
                    self.swept_files += 1
        if self.swept_files:
            logger.warning(
                "swept %d spool file(s) from finished or dead "
                "coordinators",
                self.swept_files,
            )

    def _cleanup(self) -> None:
        """Best-effort removal of everything this search put in the spool."""
        try:
            for sub in (_TASK_DIR, _RESULT_DIR, _DATA_DIR):
                for name in self.io.listing(self.root / sub):
                    if name.startswith(self.token + "."):
                        self.io.unlink(self.root / sub / name)
        except OSError:  # pragma: no cover - spool died; nothing to clean
            pass

    def stats(self) -> dict:
        """One snapshot of the coordinator's instrumentation counters."""
        return {
            **self.core_stats(),
            "expired_leases": self.expired_leases,
            "swept_leases": self.swept_leases,
            "swept_files": self.swept_files,
            "quarantined": self.quarantined,
            "io_retries": self.io.io_retries,
            "io_backoff_s": round(self.io.backoff_s, 3),
        }

    # -- work creation -----------------------------------------------------

    def _enqueue(self, cid: int, attempt: int) -> None:
        payload = pickle.dumps(
            self._make_chunk(cid, attempt),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self.io.write_frame(
            self.root / _TASK_DIR / _task_name(self.token, cid, attempt),
            payload,
        )
        self.attempts[cid] = attempt

    def _requeue(self, cid: int, cause: str) -> None:
        """Re-enqueue a lost chunk, bounded by ``settings.max_retries``."""
        attempt = self._next_attempt(cid, cause)
        if attempt is not None:
            self._enqueue(cid, attempt)

    def _top_up(self, live_agents: int) -> None:
        window = max(2, _SPECULATION_PER_AGENT * live_agents)
        limit = min(len(self.ranked), self.next_commit + window)
        for cid in range(self.next_commit, limit):
            if cid not in self.attempts and cid not in self.done:
                self._enqueue(cid, 1)

    # -- liveness ----------------------------------------------------------

    def _observe_agents(self) -> set[str]:
        """Live agent ids, judged on this process's monotonic clock."""
        now = time.monotonic()
        present: set[str] = set()
        for name in self.io.listing(self.root / _AGENT_DIR):
            if not name.endswith(".agent"):
                continue
            owner = name[: -len(".agent")]
            if _OWNER_RE.match(owner) is None:
                continue
            present.add(owner)
            self.agents_seen.add(owner)
            raw = self.io.read_bytes(self.root / _AGENT_DIR / name)
            if raw is None:
                continue
            try:
                counter = int(raw.decode("ascii").strip())
            except (ValueError, UnicodeDecodeError):
                continue
            previous = self.agents.get(owner)
            if previous is None or previous[0] != counter:
                self.agents[owner] = (counter, now)
        live: set[str] = set()
        for owner in present:
            if _owner_dead(owner):
                continue
            observed = self.agents.get(owner)
            if (
                observed is not None
                and now - observed[1] <= self.cfg.lease_timeout_s
            ):
                live.add(owner)
        return live

    def _check_leases(self, live: set[str]) -> None:
        """Expire leases of dead/partitioned agents; detect lost chunks."""
        now = time.monotonic()
        seen_leases: set[str] = set()
        leased_cids: set[int] = set()
        for name in self.io.listing(self.root / _LEASE_DIR):
            parsed = _parse_lease(name)
            if parsed is None:
                continue
            agent, token, cid, attempt = parsed
            if token != self.token:
                continue
            seen_leases.add(name)
            first_seen = self.lease_seen.setdefault(name, now)
            expired = False
            if _owner_dead(agent):
                expired = True
            elif agent not in live:
                # Not live means "no heartbeat change observed recently"
                # — but a lease younger than the timeout may belong to
                # an agent whose first beat simply has not landed yet.
                expired = now - first_seen > self.cfg.lease_timeout_s
            if not expired:
                leased_cids.add(cid)
                continue
            self.io.unlink(self.root / _LEASE_DIR / name)
            self.lease_seen.pop(name, None)
            self.expired_leases += 1
            self._emit(
                "lease-expired",
                f"lease for candidate {cid} (attempt {attempt}) expired: "
                f"agent {agent} is dead or partitioned; reclaiming",
                candidates=[cid],
                attempts=attempt,
            )
            self._requeue(cid, "its lease expired")
        for stale in set(self.lease_seen) - seen_leases:
            del self.lease_seen[stale]
        # Lost chunks: enqueued, not done, yet neither a task file, a
        # lease, nor (checked by the subsequent ingest pass) a result —
        # e.g. an agent quarantined a torn lease payload.  Requeue on
        # the second consecutive sighting: agents write results *before*
        # releasing leases, so anything genuinely in flight reappears in
        # one of the three places by the next poll.
        task_cids = {
            parsed[1]
            for name in self.io.listing(self.root / _TASK_DIR)
            if (parsed := _parse_task(name)) is not None
            and parsed[0] == self.token
        }
        result_cids = self._pending_result_cids()
        missing = {
            cid
            for cid in self.attempts
            if cid not in self.done
            and cid not in task_cids
            and cid not in leased_cids
            and cid not in result_cids
        }
        for cid in sorted(missing & self._missing_once):
            self._requeue(cid, "its chunk vanished from the spool")
        self._missing_once = missing - self._missing_once

    def _pending_result_cids(self) -> set[int]:
        return {
            parsed[1]
            for name in self.io.listing(self.root / _RESULT_DIR)
            if (parsed := _parse_result(name)) is not None
            and parsed[0] == self.token
        }

    # -- result ingest and commit ------------------------------------------

    def _ingest_results(self) -> bool:
        """Ingest result files; commit in rank order.  True when done."""
        for name in self.io.listing(self.root / _RESULT_DIR):
            parsed = _parse_result(name)
            if parsed is None:
                continue
            token, cid, attempt, agent = parsed
            if token != self.token:
                continue
            path = self.root / _RESULT_DIR / name
            if cid in self.done:
                # A stale agent rejoined and delivered late: the chunk
                # is deterministic, so the copy we already ingested has
                # identical entries.  First commit wins; count and drop.
                self.duplicate_results += 1
                logger.info(
                    "dropping duplicate result %s (first-commit wins)",
                    name,
                )
                self.io.unlink(path)
                continue
            blob = self.io.read_bytes(path)
            if blob is None:
                continue  # raced its own ingest on a previous poll
            try:
                result = pickle.loads(_unframe(blob))
                self._ingest(result)
            except Exception as error:
                self.quarantined += 1
                self.io.quarantine(path, self.root)
                self._emit(
                    "torn-file",
                    f"quarantined spool result {name}: {error}",
                    candidates=[cid],
                    attempts=self.attempts.get(cid, 0),
                )
                self._requeue(cid, "its result file failed validation")
                continue
            self.io.unlink(path)
        return self._commit_ready()

    # -- fallback ----------------------------------------------------------

    def _abort_outstanding(self) -> None:
        """Withdraw unclaimed task files before the sequential floor."""
        for name in self.io.listing(self.root / _TASK_DIR):
            if name.startswith(self.token + "."):
                self.io.unlink(self.root / _TASK_DIR / name)

    # -- main loop ---------------------------------------------------------

    def _loop(self) -> "SearchOutcome":
        if self.next_commit >= len(self.ranked):
            return self.outcome
        no_agent_since: float | None = None
        try:
            while True:
                live = self._observe_agents()
                self._top_up(len(live))
                self._check_leases(live)
                before = (self.next_commit, len(self.done))
                if self._ingest_results():
                    return self.outcome
                if live:
                    no_agent_since = None
                else:
                    now = time.monotonic()
                    if no_agent_since is None:
                        no_agent_since = now
                    elif now - no_agent_since > self.cfg.agent_grace_s:
                        self._emit(
                            "no-agents",
                            "no live cluster agent for "
                            f"{self.cfg.agent_grace_s:.1f}s",
                        )
                        return self._fallback(
                            "no live agent is serving the spool"
                        )
                if (self.next_commit, len(self.done)) == before:
                    time.sleep(self.cfg.poll_interval_s)
        except _Exhausted as exhausted:
            if not self.settings.fallback_sequential:
                raise exhausted.error from None
            return self._fallback(
                f"retries exhausted ({exhausted.error})",
                attempts=exhausted.attempts,
            )


def cluster_search(
    ranked: Sequence["ModelSpec"],
    split: "DataSplit",
    threshold: float,
    settings: "TrainingSettings",
    convention: "CountingConvention",
    seed: int,
    spool: "SpoolConfig | str | os.PathLike",
    progress: Callable[["CandidateResult"], None] | None = None,
    journal: "SearchJournal | None" = None,
    on_event: Callable[[SearchEvent], None] | None = None,
    outcome: "SearchOutcome | None" = None,
    start_index: int = 0,
) -> "SearchOutcome":
    """Run a spool-sharded search (see module docstring for the protocol).

    Same contract as
    :func:`repro.runtime.parallel.speculative_search`, with the spool
    replacing the process pool as the execution substrate; agents are
    started separately (``repro cluster-agent --spool DIR``).
    """
    return SpoolCoordinator(
        ranked,
        split,
        threshold,
        settings,
        convention,
        seed,
        spool,
        progress=progress,
        journal=journal,
        on_event=on_event,
        outcome=outcome,
        start_index=start_index,
    ).run()


# -- agent ------------------------------------------------------------------


class _Heartbeat(threading.Thread):
    """Rewrites the agent's counter file every ``interval_s``.

    The counter is content, not a timestamp: the coordinator watches for
    *change* on its own clock, so agent and coordinator wall clocks
    never meet.  ``suspend``/``resume`` model a network partition for
    the ``lease-steal`` fault.
    """

    def __init__(self, path: pathlib.Path, interval_s: float) -> None:
        super().__init__(daemon=True, name="spool-heartbeat")
        self.path = path
        self.interval_s = interval_s
        self.counter = 0
        # Not named _stop: threading.Thread uses that name internally.
        self._halt = threading.Event()
        self._suspended = threading.Event()

    def beat(self) -> None:
        self.counter += 1
        tmp = self.path.with_name(f"{self.path.name}.tmp{os.getpid()}")
        try:
            tmp.write_text(str(self.counter))
            os.replace(tmp, self.path)
        except OSError:  # pragma: no cover - spool briefly unreachable
            logger.warning("could not write heartbeat %s", self.path)

    def run(self) -> None:
        self.beat()  # visible before the first claim
        while not self._halt.wait(self.interval_s):
            if not self._suspended.is_set():
                self.beat()

    def suspend(self) -> None:
        self._suspended.set()

    def resume(self) -> None:
        self._suspended.clear()
        self.beat()

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)
        try:
            os.unlink(self.path)
        except OSError:
            pass


@dataclass
class AgentStats:
    """What one agent serve loop did, for logs and tests.

    Shared by both transports: :func:`run_agent` (spool) never
    reconnects, so ``reconnects`` stays 0 there; :func:`repro.runtime.
    cluster_tcp.run_tcp_agent` counts every re-dial after its first
    established connection.
    """

    agent_id: str
    chunks_done: int = 0
    claims_lost: int = 0
    quarantined: int = 0
    cancelled: int = 0
    reconnects: int = 0
    faults_fired: list = field(default_factory=list)


def run_agent(
    spool_dir: "str | os.PathLike",
    poll_interval_s: float = SPOOL_POLL_INTERVAL_S,
    heartbeat_s: float = SPOOL_HEARTBEAT_S,
    idle_timeout_s: float | None = None,
    max_chunks: int | None = None,
    io_retries: int = 4,
) -> AgentStats:
    """Serve a spool: claim chunks, train them, write results.

    Runs until the spool's ``stop`` file appears, ``idle_timeout_s``
    passes without work, or ``max_chunks`` chunks have been executed.
    Any number of agents (across any number of hosts) may serve one
    spool concurrently; the atomic-rename claim makes every chunk
    execute under exactly one live lease.
    """
    from ..quantum.engine import (
        compile_cache_info,
        disable_compile_cache,
        enable_compile_cache,
    )

    root = pathlib.Path(spool_dir)
    for sub in _DIRS:
        (root / sub).mkdir(parents=True, exist_ok=True)
    agent_id = _new_owner_id()
    stats = AgentStats(agent_id=agent_id)
    io = _SpoolIO(io_retries)
    splits: dict = {}  # dataset file name -> DataSplit (one per search)
    heartbeat = _Heartbeat(
        root / _AGENT_DIR / f"{agent_id}.agent", heartbeat_s
    )
    heartbeat.start()
    had_cache = compile_cache_info()["enabled"]
    if not had_cache:
        enable_compile_cache()
    logger.info("cluster agent %s serving spool %s", agent_id, root)
    last_work = time.monotonic()
    try:
        while True:
            if (root / _STOP_FILE).exists():
                break
            if max_chunks is not None and stats.chunks_done >= max_chunks:
                break
            claim = _claim_next(root, agent_id, io, stats)
            if claim is None:
                if (
                    idle_timeout_s is not None
                    and time.monotonic() - last_work > idle_timeout_s
                ):
                    break
                time.sleep(poll_interval_s)
                continue
            _serve_chunk(root, claim, agent_id, io, splits, heartbeat, stats)
            last_work = time.monotonic()
    finally:
        heartbeat.stop()
        if not had_cache:
            disable_compile_cache()
        logger.info("cluster agent %s exiting: %s", agent_id, stats)
    return stats


def _claim_next(
    root: pathlib.Path, agent_id: str, io: _SpoolIO, stats: AgentStats
) -> "pathlib.Path | None":
    """Claim the lowest-named task via atomic rename, or ``None``.

    Task names sort by (token, candidate, attempt), so agents prefer
    the candidate closest to the commit frontier — least-speculative
    first, minimizing discarded work when an early candidate passes.
    """
    for name in io.listing(root / _TASK_DIR):
        if not name.endswith(".task"):
            continue
        lease = root / _LEASE_DIR / (
            f"{agent_id}.{name[: -len('.task')]}.lease"
        )
        try:
            os.rename(root / _TASK_DIR / name, lease)
        except FileNotFoundError:
            stats.claims_lost += 1  # another agent won the rename
            continue
        except OSError:  # pragma: no cover - transient spool error
            continue
        return lease
    return None


def _serve_chunk(
    root: pathlib.Path,
    lease: pathlib.Path,
    agent_id: str,
    io: _SpoolIO,
    splits: dict,
    heartbeat: _Heartbeat,
    stats: AgentStats,
) -> None:
    """Execute one claimed chunk and write its framed result."""
    blob = io.read_bytes(lease)
    if blob is None:  # pragma: no cover - lease swept mid-claim
        return
    try:
        chunk: SpoolChunk = pickle.loads(_unframe(blob))
    except Exception as error:
        # Torn/corrupt lease payload: quarantine it; the coordinator's
        # lost-chunk pass re-enqueues the work.
        stats.quarantined += 1
        logger.warning("quarantining torn lease %s: %s", lease.name, error)
        io.quarantine(lease, root)
        return
    split = splits.get(chunk.dataset)
    if split is None:
        raw = io.read_bytes(root / _DATA_DIR / chunk.dataset)
        if raw is None:
            # Dataset gone: the owning search has ended; drop the lease
            # so the spool carries no trace of the dead work.
            io.unlink(lease)
            return
        try:
            split = pickle.loads(_unframe(raw))
        except Exception as error:
            logger.warning(
                "quarantining torn dataset %s: %s", chunk.dataset, error
            )
            stats.quarantined += 1
            io.quarantine(root / _DATA_DIR / chunk.dataset, root)
            io.unlink(lease)
            return
        splits.clear()  # one search's split at a time; keep memory flat
        splits[chunk.dataset] = split
    plan = faults.claim_spool_fault(
        root, {job.candidate_index for job in chunk.jobs}
    )
    ignore_lease_loss = False
    tear_result = False
    if plan is not None:
        stats.faults_fired.append(plan.kind)
        logger.warning(
            "agent %s firing %s fault on candidate(s) %s",
            agent_id,
            plan.kind,
            sorted({job.candidate_index for job in chunk.jobs}),
        )
        if plan.kind == faults.HOST_KILL:
            # The real thing: the whole "host" (this agent process)
            # disappears mid-lease, heartbeat and all.
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
        elif plan.kind == faults.LEASE_STEAL:
            # A partition: heartbeats stop long enough for the
            # coordinator to expire our lease and re-issue the chunk;
            # then we "rejoin" and deliver a duplicate result anyway.
            heartbeat.suspend()
            time.sleep(plan.delay_s)
            heartbeat.resume()
            ignore_lease_loss = True
        elif plan.kind == faults.TORN_FILE:
            tear_result = True

    def lease_lost() -> bool:
        # The coordinator reclaims work by unlinking the lease; abort
        # at the next epoch boundary instead of training a dead chunk.
        # A partitioned agent (lease-steal fault) cannot see the spool,
        # so it trains on regardless.
        return not ignore_lease_loss and not lease.exists()

    started = time.perf_counter()
    try:
        entries, _fallback, _degrades = _chunk_entries(
            chunk, split, lease_lost
        )
        result = SpoolResult(
            chunk_id=chunk.chunk_id,
            attempt=chunk.attempt,
            agent=agent_id,
            entries=tuple(entries),
            wall_time_s=time.perf_counter() - started,
        )
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        name = (
            f"{chunk.token}.c{chunk.chunk_id:05d}.a{chunk.attempt:02d}"
            f".{agent_id}.result"
        )
        path = root / _RESULT_DIR / name
        if tear_result:
            # Fault injection: ship a frame whose payload is cut short,
            # as if the writer died mid-write on a filesystem without
            # atomic rename.  The checksum/length check must catch it.
            torn = _frame(payload)[
                : _HEADER.size + max(1, len(payload) // 2)
            ]
            io.call(lambda: path.write_bytes(torn))
        else:
            io.write_frame(path, payload)
    except TrainingCancelled:
        stats.cancelled += 1
        return
    except Exception as error:
        # Anything unexpected (a result that cannot pickle, a spool
        # unreachable past the retry budget): drop the lease so the
        # coordinator's lost-chunk pass re-enqueues the work, and keep
        # the agent alive for the next chunk.  This agent heartbeats, so
        # an abandoned-but-held lease would pin the chunk forever.
        logger.warning(
            "agent %s dropping chunk c%d after %r",
            agent_id,
            chunk.chunk_id,
            error,
        )
        io.unlink(lease)
        return
    # Release only after the result is durable: a crash between the two
    # leaves the lease to expire and the chunk to re-run — never a
    # result-less release the coordinator would trust.
    io.unlink(lease)
    stats.chunks_done += 1
