"""Cross-host sharded grid search over plain TCP sockets.

The spool transport (:mod:`repro.runtime.cluster`) made distributed
search a pure transport problem — picklable chunks, ``(seed, candidate,
run)``-derived RNG streams, strict FLOPs-order commit — and solved it
for clusters that share a filesystem.  Most multi-host rigs people
actually have (lab desktops, cloud VMs, CI runners) share nothing but a
network, so this module provides the second interchangeable transport:
a :class:`TcpCoordinator` that listens on a socket and agents
(:func:`run_tcp_agent`, ``repro cluster-agent --connect HOST:PORT``)
that dial in and claim chunks over the wire.

The wire protocol reuses the spool's ``RSPL`` framing verbatim — magic,
version, payload length, SHA-256 — so every message is length-prefixed
and checksummed, and the payloads are the same pickled
:class:`~repro.runtime.cluster.SpoolChunk` /
:class:`~repro.runtime.cluster.SpoolResult` types.  On top of the
stream, five message kinds::

    agent -> coordinator    ("hello",  {"agent": id})
    coordinator -> agent    ("welcome", {"token", "dataset", "split"})
    agent -> coordinator    ("claim",  {"agent": id})
    coordinator -> agent    ("chunk",  SpoolChunk) | ("idle", None)
    agent -> coordinator    ("beat",   {"agent": id})      # no reply
    agent -> coordinator    ("result", SpoolResult)
    coordinator -> agent    ("ack",    None)

The spool's full robustness ladder translates to the partition-prone
medium:

* **heartbeats** are application-level ``beat`` frames.  TCP keepalive
  is useless here — a wedged peer keeps a socket "open" for hours — so
  the coordinator judges liveness only on *frames observed*, timed on
  its **own** ``time.monotonic()``.  Remote wall clocks are never
  compared; arbitrary skew between hosts cannot cause a false (or
  missed) lease expiry;

* **leases** live in coordinator memory: a granted chunk is leased to
  the granting connection and expires after ``lease_timeout_s`` without
  a frame from it, exactly like a spool lease whose heartbeat counter
  stopped changing.  A connection that dies outright (EOF, reset, torn
  frame) releases its leases immediately — faster than waiting out the
  timeout — and either way the chunk is re-enqueued under an
  incremented attempt, bounded by ``settings.max_retries``;

* **per-frame timeouts**: silence *between* frames is legal (that is
  what the lease table is for), but a frame that started arriving must
  keep moving — any single read or write stalled past
  ``frame_timeout_s`` marks the connection dead.  This is what tells a
  mid-frame partition apart from an agent that is merely training;

* **reconnect** uses the shared decorrelated-jitter policy
  (:mod:`repro.runtime.backoff`): a disconnected agent redials with
  jittered, capped delays — no thundering herd when a coordinator
  restarts — and gives up after ``reconnect_timeout_s`` without a
  successful connection;

* **duplicates** are first-commit-wins, same as the spool: a
  partitioned agent whose lease was re-issued can reconnect and deliver
  its (bit-identical, because chunks are deterministic) result anyway;
  the first ingested copy commits, later ones are counted and dropped;

* losing **every** agent degrades gracefully: after ``agent_grace_s``
  with no live connection the coordinator finishes the remaining
  candidates in-process through the same sequential primitive every
  other execution path falls back to.

All of the correctness machinery — strict-order commit, attempt
bounding, duplicate arbitration, run-coverage validation, measured-cost
feedback, the sequential floor — is inherited unchanged from
:class:`~repro.runtime.cluster.CoordinatorCore`, which is why a
TCP-sharded :class:`~repro.core.grid_search.SearchOutcome` is
bit-identical to a spool-sharded or sequential one under any failure
history.
"""

from __future__ import annotations

import hashlib
import itertools
import logging
import os
import pickle
import queue
import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from ..config import (
    TCP_AGENT_GRACE_S,
    TCP_FRAME_TIMEOUT_S,
    TCP_HEARTBEAT_S,
    TCP_LEASE_TIMEOUT_S,
    TCP_POLL_INTERVAL_S,
    TCP_RECONNECT_CAP_S,
    TCP_RECONNECT_TIMEOUT_S,
)
from ..exceptions import SearchError, TrainingCancelled
from . import faults
from .backoff import Backoff
from .cluster import (
    AgentStats,
    CoordinatorCore,
    SpoolChunk,
    SpoolResult,
    TornFileError,
    _Exhausted,
    _frame,
    _FRAME_VERSION,
    _HEADER,
    _MAGIC,
    _new_owner_id,
)
from .parallel import SearchEvent
from .pool import _chunk_entries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.grid_search import (
        CandidateResult,
        SearchOutcome,
        TrainingSettings,
    )
    from ..core.search_space import ModelSpec
    from ..data.splits import DataSplit
    from ..flops.conventions import CountingConvention
    from .journal import SearchJournal

__all__ = [
    "TcpConfig",
    "TcpCoordinator",
    "run_tcp_agent",
    "tcp_cluster_search",
    "ConnectionDead",
]

logger = logging.getLogger("repro.runtime")

#: Upper bound on a declared frame payload.  A corrupt length field that
#: somehow carried a valid magic must not make the reader allocate (or
#: wait for) gigabytes; the largest legitimate payload is one pickled
#: DataSplit, well under this.
_MAX_FRAME_BYTES = 1 << 30

#: How often a blocked coordinator-side read wakes up to notice shutdown.
_STOP_POLL_S = 0.25


class ConnectionDead(SearchError):
    """The peer closed, reset, or stalled the connection mid-frame."""


def _parse_address(address: "str | os.PathLike") -> tuple[str, int]:
    """``(host, port)`` for a ``HOST:PORT`` string (host may be empty)."""
    text = os.fspath(address)
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise SearchError(
            f"cluster TCP address must be HOST:PORT, got {text!r}"
        )
    return host or "127.0.0.1", int(port)


# -- socket framing ---------------------------------------------------------


def _send_frame(
    sock: socket.socket,
    payload: bytes,
    timeout_s: float,
    lock: threading.Lock,
) -> None:
    """Write one framed payload; a stalled or failed write is death.

    The lock serializes writers (an agent's heartbeat thread and its
    serve loop share one socket) so frames can never interleave
    mid-wire.
    """
    frame = _frame(payload)
    with lock:
        try:
            sock.settimeout(timeout_s)
            sock.sendall(frame)
        except OSError as error:
            raise ConnectionDead(f"send failed: {error}") from None


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        try:
            piece = sock.recv(n - len(buf))
        except socket.timeout:
            raise ConnectionDead(
                f"peer stalled mid-frame ({len(buf)}/{n} bytes)"
            ) from None
        except OSError as error:
            raise ConnectionDead(f"recv failed: {error}") from None
        if not piece:
            raise ConnectionDead("peer closed the connection mid-frame")
        buf += piece
    return bytes(buf)


def _recv_frame(
    sock: socket.socket,
    frame_timeout_s: float,
    stop: Callable[[], bool] | None = None,
) -> bytes:
    """Read and validate one frame; return its payload.

    With ``stop`` (coordinator side) the wait for the next frame to
    *start* is unbounded — inter-frame silence is legal, liveness is
    the lease table's job — polling ``stop()`` so shutdown is prompt.
    Without it (agent side, awaiting a prompt reply) the header itself
    must arrive within ``frame_timeout_s``.  Either way, once the first
    byte lands every subsequent read must progress within
    ``frame_timeout_s`` or the connection is declared dead.  A frame
    that fails validation raises
    :class:`~repro.runtime.cluster.TornFileError` — on a byte stream
    there is no way to resync past a bad frame, so callers treat the
    connection as unusable afterwards.
    """
    sock.settimeout(_STOP_POLL_S if stop is not None else frame_timeout_s)
    while True:
        if stop is not None and stop():
            raise ConnectionDead("shutting down")
        try:
            head = sock.recv(_HEADER.size)
        except socket.timeout:
            if stop is None:
                raise ConnectionDead(
                    "timed out awaiting a frame header"
                ) from None
            continue
        except OSError as error:
            raise ConnectionDead(f"recv failed: {error}") from None
        if not head:
            raise ConnectionDead("peer closed the connection")
        break
    sock.settimeout(frame_timeout_s)
    if len(head) < _HEADER.size:
        head += _recv_exact(sock, _HEADER.size - len(head))
    magic, version, length, digest = _HEADER.unpack(head)
    if magic != _MAGIC:
        raise TornFileError("TCP frame carries a foreign magic")
    if version != _FRAME_VERSION:
        raise TornFileError(
            f"TCP frame version {version} != {_FRAME_VERSION}"
        )
    if length > _MAX_FRAME_BYTES:
        raise TornFileError(
            f"TCP frame declares an absurd payload of {length} bytes"
        )
    payload = _recv_exact(sock, length)
    if hashlib.sha256(payload).digest() != digest:
        raise TornFileError("TCP frame checksum mismatch")
    return payload


def _send_msg(
    sock: socket.socket,
    msg: tuple,
    timeout_s: float,
    lock: threading.Lock,
) -> None:
    _send_frame(
        sock,
        pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL),
        timeout_s,
        lock,
    )


def _recv_msg(
    sock: socket.socket,
    frame_timeout_s: float,
    stop: Callable[[], bool] | None = None,
) -> tuple:
    payload = _recv_frame(sock, frame_timeout_s, stop=stop)
    try:
        msg = pickle.loads(payload)
    except Exception as error:
        raise TornFileError(f"undecodable TCP message: {error}") from None
    if (
        not isinstance(msg, tuple)
        or len(msg) != 2
        or not isinstance(msg[0], str)
    ):
        raise TornFileError("malformed TCP message (want a (kind, data) pair)")
    return msg


# -- configuration ----------------------------------------------------------


@dataclass(frozen=True)
class TcpConfig:
    """TCP transport knobs (``address`` is ``HOST:PORT``).

    The coordinator binds the address (port 0 picks an ephemeral port,
    readable as ``coordinator.address`` after ``prepare()``); agents
    dial the same string.  ``cost_cache`` names an optional JSON file
    for the coordinator's measured-cost model, exactly as on
    :class:`~repro.runtime.cluster.SpoolConfig`.
    """

    address: str
    lease_timeout_s: float = TCP_LEASE_TIMEOUT_S
    poll_interval_s: float = TCP_POLL_INTERVAL_S
    agent_grace_s: float = TCP_AGENT_GRACE_S
    frame_timeout_s: float = TCP_FRAME_TIMEOUT_S
    cost_cache: "str | os.PathLike | None" = None


class _Lease:
    """One granted chunk: who holds it, over which connection, since when."""

    __slots__ = ("agent", "conn_id", "attempt", "last_seen")

    def __init__(
        self, agent: str, conn_id: int, attempt: int, last_seen: float
    ) -> None:
        self.agent = agent
        self.conn_id = conn_id
        self.attempt = attempt
        self.last_seen = last_seen


# -- coordinator ------------------------------------------------------------


class TcpCoordinator(CoordinatorCore):
    """Drives one TCP-sharded search; returns a sequential-identical
    :class:`~repro.core.grid_search.SearchOutcome`.

    Single-writer like the spool coordinator: one listening socket, one
    commit stream; agents scale horizontally.  Connection handling runs
    on daemon threads; all commit-order bookkeeping stays on the caller
    thread, fed through a queue, so the inherited core never sees
    concurrency.  Usually constructed via ``grid_search(connect=...)``
    / :func:`tcp_cluster_search`; exposed so tests can drive
    ``prepare``/``_loop`` stepwise and read the bound port.
    """

    def __init__(
        self,
        ranked: Sequence["ModelSpec"],
        split: "DataSplit",
        threshold: float,
        settings: "TrainingSettings",
        convention: "CountingConvention",
        seed: int,
        config: "TcpConfig | str",
        progress: Callable[["CandidateResult"], None] | None = None,
        journal: "SearchJournal | None" = None,
        on_event: Callable[[SearchEvent], None] | None = None,
        outcome: "SearchOutcome | None" = None,
        start_index: int = 0,
    ) -> None:
        self.cfg = (
            config if isinstance(config, TcpConfig) else TcpConfig(config)
        )
        super().__init__(
            ranked,
            split,
            threshold,
            settings,
            convention,
            seed,
            progress=progress,
            journal=journal,
            on_event=on_event,
            outcome=outcome,
            start_index=start_index,
            cost_cache=self.cfg.cost_cache,
        )
        self.host, self.port = _parse_address(self.cfg.address)
        self.address = self.cfg.address
        # Static FLOPs per candidate, for cost-model claim packing.
        self._costs = [spec.flops(convention) for spec in ranked]
        # Shared state between the caller thread and connection-handler
        # threads, all guarded by one lock: the unclaimed work queue,
        # the lease table, per-agent last-frame times, open connections
        # and the ids of connections that have died since the last reap.
        self._lock = threading.Lock()
        self._pending: list[tuple[int, int]] = []  # (cid, attempt)
        self._leases: dict[int, _Lease] = {}  # cid -> lease
        self._agent_seen: dict[str, float] = {}  # agent -> monotonic
        self._agent_conns: dict[int, str] = {}  # conn_id -> agent
        self._conns: dict[int, socket.socket] = {}
        self._lost_conns: list[int] = []
        self._results: "queue.SimpleQueue[SpoolResult]" = queue.SimpleQueue()
        self._conn_ids = itertools.count(1)
        self._closing = False
        self._draining = False
        self._server: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        # TCP-specific stats.
        self.connections_accepted = 0
        self.connections_lost = 0
        self.expired_leases = 0
        self.torn_frames = 0

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> "SearchOutcome":
        self.prepare()
        try:
            return self._loop()
        finally:
            self._cleanup()
            self._save_cost_model()
            logger.info("tcp coordinator stats: %s", self.stats())

    def prepare(self) -> None:
        """Bind the listening socket and start accepting agents."""
        self._server = socket.create_server(
            (self.host, self.port), backlog=64
        )
        self.port = self._server.getsockname()[1]
        self.address = f"{self.host}:{self.port}"
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="tcp-coord-accept"
        )
        self._accept_thread.start()
        logger.info(
            "tcp coordinator %s listening on %s", self.token, self.address
        )

    def _cleanup(self) -> None:
        self._closing = True
        if self._server is not None:
            try:
                self._server.close()
            except OSError:  # pragma: no cover - already closed
                pass
        with self._lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def stats(self) -> dict:
        """One snapshot of the coordinator's instrumentation counters."""
        return {
            **self.core_stats(),
            "connections_accepted": self.connections_accepted,
            "connections_lost": self.connections_lost,
            "expired_leases": self.expired_leases,
            "torn_frames": self.torn_frames,
        }

    # -- connection handling (daemon threads) ------------------------------

    def _accept_loop(self) -> None:
        assert self._server is not None
        while not self._closing:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return  # listening socket closed: shutdown
            self.connections_accepted += 1
            conn_id = next(self._conn_ids)
            with self._lock:
                self._conns[conn_id] = conn
            threading.Thread(
                target=self._serve_conn,
                args=(conn, conn_id),
                daemon=True,
                name=f"tcp-coord-conn-{conn_id}",
            ).start()

    def _touch(self, conn_id: int, now: float) -> None:
        """Any frame from a connection proves its agent (and leases) live."""
        with self._lock:
            agent = self._agent_conns.get(conn_id)
            if agent is not None:
                self._agent_seen[agent] = now
            for lease in self._leases.values():
                if lease.conn_id == conn_id:
                    lease.last_seen = now

    def _grant(self, agent: str, conn_id: int) -> SpoolChunk | None:
        """Lease out the most expensive pending chunk (LPT packing).

        Estimates come from the measured-cost model fed by every
        delivered result (cross-host ``wall_time_s`` feedback); before
        any observation they fall back to static FLOPs.  Ties break on
        the lower candidate id.  Reading the model from a handler
        thread races its updates at worst into a stale estimate —
        packing order shapes only the makespan, never results.
        """
        with self._lock:
            if self._draining or not self._pending:
                return None
            runs = self.settings.runs
            best = max(
                range(len(self._pending)),
                key=lambda i: (
                    self.cost_model.estimate(
                        self.ranked[self._pending[i][0]].label,
                        self._costs[self._pending[i][0]],
                        runs,
                    ),
                    -self._pending[i][0],
                ),
            )
            cid, attempt = self._pending.pop(best)
            self._leases[cid] = _Lease(
                agent, conn_id, attempt, time.monotonic()
            )
        return self._make_chunk(cid, attempt)

    def _serve_conn(self, conn: socket.socket, conn_id: int) -> None:
        agent: str | None = None
        wlock = threading.Lock()
        timeout = self.cfg.frame_timeout_s
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while not self._closing:
                msg = _recv_msg(
                    conn, timeout, stop=lambda: self._closing
                )
                kind, data = msg[0], msg[1]
                now = time.monotonic()
                if kind == "hello":
                    agent = str(data["agent"])
                    with self._lock:
                        self._agent_conns[conn_id] = agent
                        self._agent_seen[agent] = now
                        self.agents_seen.add(agent)
                    logger.info(
                        "agent %s connected (connection %d)",
                        agent,
                        conn_id,
                    )
                    _send_msg(
                        conn,
                        (
                            "welcome",
                            {
                                "token": self.token,
                                "dataset": self.dataset_name,
                                "split": self.split,
                            },
                        ),
                        timeout,
                        wlock,
                    )
                elif agent is None:
                    raise ConnectionDead(
                        f"protocol violation: {kind!r} before hello"
                    )
                elif kind == "beat":
                    self._touch(conn_id, now)
                elif kind == "claim":
                    self._touch(conn_id, now)
                    chunk = self._grant(agent, conn_id)
                    reply = ("chunk", chunk) if chunk else ("idle", None)
                    _send_msg(conn, reply, timeout, wlock)
                elif kind == "result":
                    self._touch(conn_id, now)
                    result: SpoolResult = data
                    with self._lock:
                        lease = self._leases.get(result.chunk_id)
                        if lease is not None and lease.conn_id == conn_id:
                            del self._leases[result.chunk_id]
                    self._results.put(result)
                    _send_msg(conn, ("ack", None), timeout, wlock)
                else:
                    raise ConnectionDead(
                        f"protocol violation: unknown kind {kind!r}"
                    )
        except TornFileError as error:
            # A framing violation poisons the whole stream (no resync
            # on TCP): count it and drop the connection; the reap pass
            # requeues whatever it held.
            self.torn_frames += 1
            logger.warning(
                "closing connection %d after a torn frame: %s",
                conn_id,
                error,
            )
        except ConnectionDead as error:
            logger.info("connection %d to %s died: %s", conn_id, agent, error)
        except OSError as error:  # pragma: no cover - exotic socket error
            logger.info("connection %d errored: %s", conn_id, error)
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            with self._lock:
                self._conns.pop(conn_id, None)
                self._agent_conns.pop(conn_id, None)
                self._lost_conns.append(conn_id)
            self.connections_lost += 1

    # -- caller-thread supervision ----------------------------------------

    def _requeue(self, cid: int, cause: str) -> None:
        attempt = self._next_attempt(cid, cause)
        if attempt is not None:
            with self._lock:
                self.attempts[cid] = attempt
                self._pending.append((cid, attempt))

    def _top_up(self, live_agents: int) -> None:
        from .cluster import _SPECULATION_PER_AGENT

        window = max(2, _SPECULATION_PER_AGENT * live_agents)
        limit = min(len(self.ranked), self.next_commit + window)
        with self._lock:
            for cid in range(self.next_commit, limit):
                if cid not in self.attempts and cid not in self.done:
                    self.attempts[cid] = 1
                    self._pending.append((cid, 1))

    def _live_agents(self) -> set[str]:
        """Agents with an open connection and a recent frame, judged on
        this process's monotonic clock."""
        now = time.monotonic()
        with self._lock:
            return {
                agent
                for agent in set(self._agent_conns.values())
                if now - self._agent_seen.get(agent, 0.0)
                <= self.cfg.lease_timeout_s
            }

    def _reap_lost_conns(self) -> None:
        """Requeue leases whose connection died (EOF/reset/torn frame)."""
        with self._lock:
            lost = set(self._lost_conns)
            self._lost_conns.clear()
            reclaimed = [
                (cid, lease)
                for cid, lease in self._leases.items()
                if lease.conn_id in lost
            ]
            for cid, _lease in reclaimed:
                del self._leases[cid]
        for cid, lease in reclaimed:
            self._emit(
                "conn-lost",
                f"the connection to agent {lease.agent} dropped while it "
                f"held the lease for candidate {cid} "
                f"(attempt {lease.attempt}); reclaiming",
                candidates=[cid],
                attempts=lease.attempt,
            )
            self._requeue(cid, "its connection dropped")

    def _expire_leases(self) -> None:
        """Expire leases silent past the timeout (half-open partitions)."""
        now = time.monotonic()
        with self._lock:
            expired = [
                (cid, lease)
                for cid, lease in self._leases.items()
                if now - lease.last_seen > self.cfg.lease_timeout_s
            ]
            for cid, _lease in expired:
                del self._leases[cid]
        for cid, lease in expired:
            self.expired_leases += 1
            self._emit(
                "lease-expired",
                f"lease for candidate {cid} (attempt {lease.attempt}) "
                f"expired: agent {lease.agent} is silent or partitioned; "
                "reclaiming",
                candidates=[cid],
                attempts=lease.attempt,
            )
            self._requeue(cid, "its lease expired")

    def _drain_results(self) -> bool:
        """Ingest queued results; commit in rank order.  True when done."""
        while True:
            try:
                result = self._results.get_nowait()
            except queue.Empty:
                break
            try:
                self._ingest(result)
            except TornFileError as error:
                self.torn_frames += 1
                self._emit(
                    "torn-file",
                    f"rejected result for candidate {result.chunk_id}: "
                    f"{error}",
                    candidates=[result.chunk_id],
                    attempts=self.attempts.get(result.chunk_id, 0),
                )
                self._requeue(result.chunk_id, "its result failed validation")
        with self._lock:
            # A requeued chunk whose earlier copy has since committed
            # must not be granted again.
            self._pending = [
                (cid, attempt)
                for cid, attempt in self._pending
                if cid not in self.done
            ]
        return self._commit_ready()

    def _abort_outstanding(self) -> None:
        """Withdraw ungranted work; later claims are answered ``idle``."""
        with self._lock:
            self._draining = True
            self._pending.clear()

    def _loop(self) -> "SearchOutcome":
        if self.next_commit >= len(self.ranked):
            return self.outcome
        no_agent_since: float | None = None
        try:
            while True:
                self._reap_lost_conns()
                self._expire_leases()
                live = self._live_agents()
                self._top_up(len(live))
                before = (self.next_commit, len(self.done))
                if self._drain_results():
                    return self.outcome
                if live:
                    no_agent_since = None
                else:
                    now = time.monotonic()
                    if no_agent_since is None:
                        no_agent_since = now
                    elif now - no_agent_since > self.cfg.agent_grace_s:
                        self._emit(
                            "no-agents",
                            "no live cluster agent for "
                            f"{self.cfg.agent_grace_s:.1f}s",
                        )
                        return self._fallback(
                            "no live agent is connected"
                        )
                if (self.next_commit, len(self.done)) == before:
                    time.sleep(self.cfg.poll_interval_s)
        except _Exhausted as exhausted:
            if not self.settings.fallback_sequential:
                raise exhausted.error from None
            return self._fallback(
                f"retries exhausted ({exhausted.error})",
                attempts=exhausted.attempts,
            )


def tcp_cluster_search(
    ranked: Sequence["ModelSpec"],
    split: "DataSplit",
    threshold: float,
    settings: "TrainingSettings",
    convention: "CountingConvention",
    seed: int,
    connect: "TcpConfig | str",
    progress: Callable[["CandidateResult"], None] | None = None,
    journal: "SearchJournal | None" = None,
    on_event: Callable[[SearchEvent], None] | None = None,
    outcome: "SearchOutcome | None" = None,
    start_index: int = 0,
) -> "SearchOutcome":
    """Run a TCP-sharded search (see module docstring for the protocol).

    Same contract as :func:`repro.runtime.cluster.cluster_search`, with
    a listening socket replacing the spool directory; agents are
    started separately (``repro cluster-agent --connect HOST:PORT``).
    """
    return TcpCoordinator(
        ranked,
        split,
        threshold,
        settings,
        convention,
        seed,
        connect,
        progress=progress,
        journal=journal,
        on_event=on_event,
        outcome=outcome,
        start_index=start_index,
    ).run()


# -- agent ------------------------------------------------------------------


class _TcpHeartbeat(threading.Thread):
    """Sends a ``beat`` frame every ``interval_s`` over the agent's socket.

    A failed beat write is the earliest proof the connection is gone
    mid-training, so it sets ``conn_dead`` — which the serve loop's
    cancellation check watches, aborting the doomed chunk at the next
    epoch boundary instead of training to completion for nobody.
    ``suspend``/``resume`` model a network partition for the
    ``partition`` fault, exactly like the spool heartbeat's.
    """

    def __init__(
        self,
        sock: socket.socket,
        wlock: threading.Lock,
        agent_id: str,
        interval_s: float,
        frame_timeout_s: float,
        conn_dead: threading.Event,
    ) -> None:
        super().__init__(daemon=True, name="tcp-heartbeat")
        self._sock = sock
        self._wlock = wlock
        self._payload = pickle.dumps(
            ("beat", {"agent": agent_id}),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self.interval_s = interval_s
        self.frame_timeout_s = frame_timeout_s
        self.conn_dead = conn_dead
        self._halt = threading.Event()  # Thread uses _stop internally
        self._suspended = threading.Event()

    def beat(self) -> None:
        try:
            _send_frame(
                self._sock, self._payload, self.frame_timeout_s, self._wlock
            )
        except (ConnectionDead, OSError):
            self.conn_dead.set()

    def run(self) -> None:
        self.beat()  # visible before the first claim
        while not self._halt.wait(self.interval_s):
            if self.conn_dead.is_set():
                return
            if not self._suspended.is_set():
                self.beat()

    def suspend(self) -> None:
        self._suspended.set()

    def resume(self) -> None:
        self._suspended.clear()
        self.beat()

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


class _ExitServeLoop(Exception):
    """Internal: the agent hit a terminal condition (stop/max/idle)."""


def run_tcp_agent(
    address: str,
    poll_interval_s: float = TCP_POLL_INTERVAL_S,
    heartbeat_s: float = TCP_HEARTBEAT_S,
    idle_timeout_s: float | None = None,
    max_chunks: int | None = None,
    frame_timeout_s: float = TCP_FRAME_TIMEOUT_S,
    reconnect_timeout_s: float = TCP_RECONNECT_TIMEOUT_S,
    fault_dir: "str | os.PathLike | None" = None,
    stop: threading.Event | None = None,
    rng: "random.Random | None" = None,
) -> AgentStats:
    """Serve a TCP coordinator: dial, claim chunks, train, deliver.

    Runs until ``stop`` is set, ``idle_timeout_s`` passes without
    completing work, ``max_chunks`` chunks have been executed, or the
    coordinator stays unreachable for ``reconnect_timeout_s``.  A
    dropped connection is redialed with decorrelated-jitter backoff
    (:mod:`repro.runtime.backoff`; ``rng`` makes the delays
    deterministic in tests), and a chunk in flight when the connection
    died is simply abandoned — the coordinator requeues it, and chunks
    are deterministic, so the retry is bit-identical.  ``fault_dir``
    points at a spool-style ``faults/`` token directory for the
    deterministic TCP fault plans (tests only).
    """
    from ..quantum.engine import (
        compile_cache_info,
        disable_compile_cache,
        enable_compile_cache,
    )

    host, port = _parse_address(address)
    agent_id = _new_owner_id()
    stats = AgentStats(agent_id=agent_id)
    halt = stop if stop is not None else threading.Event()
    backoff = Backoff(base_s=0.05, cap_s=TCP_RECONNECT_CAP_S, rng=rng)
    had_cache = compile_cache_info()["enabled"]
    if not had_cache:
        enable_compile_cache()
    logger.info("cluster agent %s dialing %s:%d", agent_id, host, port)
    last_work = [time.monotonic()]
    last_connected = time.monotonic()
    connected_before = False
    try:
        while not halt.is_set():
            if max_chunks is not None and stats.chunks_done >= max_chunks:
                break
            if (
                idle_timeout_s is not None
                and time.monotonic() - last_work[0] > idle_timeout_s
            ):
                break
            try:
                conn = socket.create_connection(
                    (host, port), timeout=frame_timeout_s
                )
            except OSError:
                if (
                    time.monotonic() - last_connected
                    > reconnect_timeout_s
                ):
                    logger.info(
                        "agent %s giving up: no coordinator at %s:%d "
                        "for %.1fs",
                        agent_id,
                        host,
                        port,
                        reconnect_timeout_s,
                    )
                    break
                if connected_before:
                    stats.reconnects += 1
                halt.wait(backoff.next_delay())
                continue
            if connected_before:
                stats.reconnects += 1
            connected_before = True
            backoff.reset()
            try:
                _serve_connection(
                    conn,
                    agent_id,
                    stats,
                    poll_interval_s=poll_interval_s,
                    heartbeat_s=heartbeat_s,
                    frame_timeout_s=frame_timeout_s,
                    idle_timeout_s=idle_timeout_s,
                    max_chunks=max_chunks,
                    fault_dir=fault_dir,
                    halt=halt,
                    last_work=last_work,
                )
            except _ExitServeLoop:
                break
            except (ConnectionDead, TornFileError, OSError) as error:
                logger.info(
                    "agent %s lost its connection (%s); redialing",
                    agent_id,
                    error,
                )
            finally:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
            last_connected = time.monotonic()
    finally:
        if not had_cache:
            disable_compile_cache()
        logger.info("cluster agent %s exiting: %s", agent_id, stats)
    return stats


def _serve_connection(
    conn: socket.socket,
    agent_id: str,
    stats: AgentStats,
    poll_interval_s: float,
    heartbeat_s: float,
    frame_timeout_s: float,
    idle_timeout_s: float | None,
    max_chunks: int | None,
    fault_dir: "str | os.PathLike | None",
    halt: threading.Event,
    last_work: list,
) -> None:
    """Serve one established connection until it dies or the agent is done.

    Raises :class:`_ExitServeLoop` for terminal conditions (stop event,
    ``max_chunks``, idle timeout) and :class:`ConnectionDead` /
    :class:`~repro.runtime.cluster.TornFileError` when the connection
    must be redialed.
    """
    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    wlock = threading.Lock()
    conn_dead = threading.Event()
    _send_msg(conn, ("hello", {"agent": agent_id}), frame_timeout_s, wlock)
    msg = _recv_msg(conn, frame_timeout_s)
    if msg[0] != "welcome":
        raise ConnectionDead(f"expected welcome, got {msg[0]!r}")
    split = msg[1]["split"]
    heartbeat = _TcpHeartbeat(
        conn, wlock, agent_id, heartbeat_s, frame_timeout_s, conn_dead
    )
    heartbeat.start()

    def cancelled() -> bool:
        # The coordinator abandons a search by closing the socket; the
        # heartbeat notices within one interval and this check aborts
        # the chunk at the next epoch boundary.
        return conn_dead.is_set() or halt.is_set()

    try:
        while True:
            if halt.is_set():
                raise _ExitServeLoop
            if conn_dead.is_set():
                raise ConnectionDead("heartbeat write failed")
            if max_chunks is not None and stats.chunks_done >= max_chunks:
                raise _ExitServeLoop
            if (
                idle_timeout_s is not None
                and time.monotonic() - last_work[0] > idle_timeout_s
            ):
                raise _ExitServeLoop
            _send_msg(
                conn, ("claim", {"agent": agent_id}), frame_timeout_s, wlock
            )
            msg = _recv_msg(conn, frame_timeout_s)
            if msg[0] == "idle":
                halt.wait(poll_interval_s)
                continue
            if msg[0] != "chunk":
                raise ConnectionDead(f"expected chunk, got {msg[0]!r}")
            chunk: SpoolChunk = msg[1]
            plan = (
                faults.claim_spool_fault(
                    fault_dir, {job.candidate_index for job in chunk.jobs}
                )
                if fault_dir is not None
                else None
            )
            drop_mid_frame = False
            stall_mid_frame_s = 0.0
            if plan is not None:
                stats.faults_fired.append(plan.kind)
                logger.warning(
                    "agent %s firing %s fault on candidate(s) %s",
                    agent_id,
                    plan.kind,
                    sorted({job.candidate_index for job in chunk.jobs}),
                )
                if plan.kind == faults.HOST_KILL:
                    # The real thing: the whole agent process disappears
                    # mid-lease, connection and all.
                    import signal

                    os.kill(os.getpid(), signal.SIGKILL)
                elif plan.kind == faults.PARTITION:
                    # Total silence — no beats, no frames — long enough
                    # for the coordinator to expire our lease and
                    # re-issue the chunk; then we "rejoin" (the socket
                    # never closed) and deliver a duplicate anyway.
                    heartbeat.suspend()
                    halt.wait(plan.delay_s)
                    heartbeat.resume()
                elif plan.kind == faults.CONN_DROP:
                    drop_mid_frame = True
                elif plan.kind == faults.SLOW_FRAME:
                    stall_mid_frame_s = plan.delay_s
            started = time.perf_counter()
            try:
                entries, _fallback, _degrades = _chunk_entries(
                    chunk, split, cancelled
                )
            except TrainingCancelled:
                stats.cancelled += 1
                continue  # the dead-connection check at the loop head
            result = SpoolResult(
                chunk_id=chunk.chunk_id,
                attempt=chunk.attempt,
                agent=agent_id,
                entries=tuple(entries),
                wall_time_s=time.perf_counter() - started,
            )
            payload = pickle.dumps(
                ("result", result), protocol=pickle.HIGHEST_PROTOCOL
            )
            frame = _frame(payload)
            # Past the header, inside the payload: the coordinator must
            # be genuinely mid-frame when the fault lands.
            cut = _HEADER.size + max(1, len(payload) // 2)
            if drop_mid_frame:
                with wlock:
                    try:
                        conn.settimeout(frame_timeout_s)
                        conn.sendall(frame[:cut])
                    except OSError:
                        pass
                    conn.close()
                raise ConnectionDead("conn-drop fault: closed mid-frame")
            if stall_mid_frame_s > 0.0:
                # Holding the write lock through the stall wedges the
                # heartbeat too — the connection really is stuck.
                with wlock:
                    conn.settimeout(frame_timeout_s)
                    conn.sendall(frame[:cut])
                    halt.wait(stall_mid_frame_s)
                    try:
                        conn.sendall(frame[cut:])
                    except OSError as error:
                        raise ConnectionDead(
                            f"send failed after stall: {error}"
                        ) from None
            else:
                _send_frame(conn, payload, frame_timeout_s, wlock)
            msg = _recv_msg(conn, frame_timeout_s)
            if msg[0] != "ack":
                raise ConnectionDead(f"expected ack, got {msg[0]!r}")
            stats.chunks_done += 1
            last_work[0] = time.monotonic()
    finally:
        heartbeat.stop()
