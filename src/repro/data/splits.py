"""Train/validation splitting and label encoding."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import VALIDATION_FRACTION
from ..exceptions import ConfigurationError
from .spiral import SpiralDataset

__all__ = ["one_hot", "stratified_split", "DataSplit"]


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Integer labels -> one-hot rows."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ConfigurationError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ConfigurationError(
            f"labels must lie in [0, {n_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    return np.eye(n_classes, dtype=np.float64)[labels]


@dataclass(frozen=True)
class DataSplit:
    """A train/validation split with one-hot targets."""

    x_train: np.ndarray
    y_train: np.ndarray  #: one-hot
    x_val: np.ndarray
    y_val: np.ndarray  #: one-hot
    train_labels: np.ndarray
    val_labels: np.ndarray

    @property
    def n_train(self) -> int:
        return int(self.x_train.shape[0])

    @property
    def n_val(self) -> int:
        return int(self.x_val.shape[0])


def stratified_split(
    dataset: SpiralDataset,
    val_fraction: float = VALIDATION_FRACTION,
    seed: int = 0,
) -> DataSplit:
    """Split preserving per-class proportions.

    Each class contributes ``round(val_fraction * class_size)`` points to
    the validation set (at least one when the class is non-empty).
    """
    if not 0.0 < val_fraction < 1.0:
        raise ConfigurationError(
            f"val_fraction must be in (0, 1), got {val_fraction}"
        )
    rng = np.random.default_rng(seed)
    val_idx: list[np.ndarray] = []
    train_idx: list[np.ndarray] = []
    for c in range(dataset.n_classes):
        members = np.flatnonzero(dataset.labels == c)
        rng.shuffle(members)
        n_val = max(1, int(round(val_fraction * members.size)))
        if n_val >= members.size:
            raise ConfigurationError(
                f"class {c} has too few points ({members.size}) for "
                f"val_fraction={val_fraction}"
            )
        val_idx.append(members[:n_val])
        train_idx.append(members[n_val:])
    val = np.concatenate(val_idx)
    train = np.concatenate(train_idx)
    rng.shuffle(val)
    rng.shuffle(train)
    return DataSplit(
        x_train=dataset.features[train],
        y_train=one_hot(dataset.labels[train], dataset.n_classes),
        x_val=dataset.features[val],
        y_val=one_hot(dataset.labels[val], dataset.n_classes),
        train_labels=dataset.labels[train],
        val_labels=dataset.labels[val],
    )
