"""Synthetic spiral dataset with a problem-complexity dial.

Reimplements the paper's generator (section III-A):

* 1500 points, 3 classes, each class one arm of a planar spiral
  (features 0 and 1, Fig. 4a);
* complexity is raised by adding derived features — "subtle variations
  through non-linear transformations of the existing features";
* noise scales with the feature count:
  ``noise = 0.1 + 0.003 * num_features`` — applied in full as additive
  noise on every derived feature and, attenuated by
  ``angle_noise_fraction``, as angular jitter on the spiral arms.  The
  attenuation keeps the Bayes-optimal accuracy above the paper's 90 %
  threshold at every complexity level (the arms must stay separable)
  while the growing, noisier feature pool still makes the task harder
  (Fig. 4b);
* features are standardized to zero mean / unit variance.

The generator is fully deterministic given its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import N_CLASSES, N_POINTS, noise_for_features
from ..exceptions import ConfigurationError

__all__ = ["SpiralDataset", "make_spiral", "DERIVED_FEATURE_KINDS"]

#: Kinds of non-linear derived features, drawn uniformly per new feature.
DERIVED_FEATURE_KINDS = ("sin", "cos", "product", "square", "tanh", "radial")


@dataclass(frozen=True)
class SpiralDataset:
    """An immutable spiral dataset instance."""

    features: np.ndarray  #: shape (n_points, n_features), standardized
    labels: np.ndarray  #: shape (n_points,), int class ids
    n_classes: int
    noise: float
    turns: float
    seed: int
    feature_recipe: tuple[str, ...] = field(default=())

    @property
    def n_points(self) -> int:
        return int(self.features.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.features.shape[1])

    def one_hot(self) -> np.ndarray:
        """Labels as one-hot rows, shape ``(n_points, n_classes)``."""
        return np.eye(self.n_classes, dtype=np.float64)[self.labels]

    def class_counts(self) -> np.ndarray:
        """Points per class."""
        return np.bincount(self.labels, minlength=self.n_classes)


def _base_spiral(
    n_points: int,
    n_classes: int,
    noise: float,
    turns: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Planar spiral arms: features 0 and 1, plus labels."""
    per_class = n_points // n_classes
    remainder = n_points - per_class * n_classes
    xs, ys = [], []
    for c in range(n_classes):
        m = per_class + (1 if c < remainder else 0)
        radius = np.linspace(0.05, 1.0, m)
        angle = (
            radius * turns * 2.0 * np.pi
            + 2.0 * np.pi * c / n_classes
            + rng.normal(0.0, noise, size=m)
        )
        xs.append(
            np.column_stack([radius * np.sin(angle), radius * np.cos(angle)])
        )
        ys.append(np.full(m, c, dtype=np.int64))
    x = np.vstack(xs)
    y = np.concatenate(ys)
    order = rng.permutation(n_points)
    return x[order], y[order]


def _pick_source(n_cols: int, rng: np.random.Generator) -> int:
    """Pick a source column, biased toward the two base coordinates.

    Derived features are "subtle variations" of the signal (paper
    wording): most draw directly on the clean spiral coordinates so the
    growing feature pool stays informative (each new feature is a noisy
    non-linear *view* of the signal rather than compounded noise), which
    keeps the 90 % accuracy threshold reachable at every complexity level.
    """
    if n_cols <= 2 or rng.uniform() < 0.9:
        return int(rng.integers(min(2, n_cols)))
    return int(rng.integers(n_cols))


def _derived_feature(
    kind: str,
    existing: np.ndarray,
    noise: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """One new non-linear feature computed from the existing columns."""
    n_cols = existing.shape[1]
    i = _pick_source(n_cols, rng)
    j = _pick_source(n_cols, rng)
    scale = rng.uniform(0.5, 2.0)
    phase = rng.uniform(0.0, 2.0 * np.pi)
    col_i, col_j = existing[:, i], existing[:, j]
    if kind == "sin":
        value = np.sin(scale * col_i + phase)
    elif kind == "cos":
        value = np.cos(scale * col_i + phase)
    elif kind == "product":
        value = col_i * col_j
    elif kind == "square":
        value = col_i**2
    elif kind == "tanh":
        value = np.tanh(scale * col_i)
    elif kind == "radial":
        value = np.sqrt(col_i**2 + col_j**2)
    else:  # pragma: no cover - guarded by caller
        raise ConfigurationError(f"unknown derived-feature kind {kind!r}")
    return value + rng.normal(0.0, noise, size=value.shape)


def make_spiral(
    n_features: int,
    n_points: int = N_POINTS,
    n_classes: int = N_CLASSES,
    noise: float | None = None,
    turns: float = 0.75,
    angle_noise_fraction: float = 0.15,
    seed: int = 0,
) -> SpiralDataset:
    """Generate the paper's spiral dataset at one complexity level.

    Parameters
    ----------
    n_features:
        The complexity level (the paper sweeps 10..110 in steps of 10).
    noise:
        Defaults to the paper's schedule
        ``0.1 + 0.003 * n_features``; pass a value to override.
    turns:
        How many full revolutions each arm makes.
    angle_noise_fraction:
        Fraction of ``noise`` applied as angular jitter to the arms
        (derived features always receive the full ``noise``).
    seed:
        Controls every random choice (jitter, derived-feature recipe).
    """
    if n_features < 2:
        raise ConfigurationError(
            f"the spiral needs >= 2 features, got {n_features}"
        )
    if n_points < n_classes:
        raise ConfigurationError(
            f"need at least one point per class ({n_classes}), got {n_points}"
        )
    if n_classes < 2:
        raise ConfigurationError(f"n_classes must be >= 2, got {n_classes}")
    if noise is None:
        noise = noise_for_features(n_features)
    if noise < 0:
        raise ConfigurationError(f"noise must be >= 0, got {noise}")
    if not 0.0 <= angle_noise_fraction <= 1.0:
        raise ConfigurationError(
            f"angle_noise_fraction must be in [0, 1], "
            f"got {angle_noise_fraction}"
        )

    rng = np.random.default_rng(seed)
    base, labels = _base_spiral(
        n_points, n_classes, angle_noise_fraction * noise, turns, rng
    )

    columns = [base[:, 0], base[:, 1]]
    recipe: list[str] = ["spiral_x", "spiral_y"]
    kinds = np.asarray(DERIVED_FEATURE_KINDS)
    for _ in range(n_features - 2):
        kind = str(rng.choice(kinds))
        existing = np.column_stack(columns)
        columns.append(_derived_feature(kind, existing, noise, rng))
        recipe.append(kind)

    features = np.column_stack(columns)
    mean = features.mean(axis=0)
    std = features.std(axis=0)
    std[std < 1e-12] = 1.0
    features = (features - mean) / std

    return SpiralDataset(
        features=features,
        labels=labels,
        n_classes=n_classes,
        noise=float(noise),
        turns=float(turns),
        seed=seed,
        feature_recipe=tuple(recipe),
    )
