"""Fig. 4(b): demonstrate that the complexity dial works.

The paper motivates the feature-count sweep by showing that a fixed
reference classifier loses accuracy — and takes longer to train — as
features (and the coupled noise) increase.  :func:`probe_complexity`
reproduces that demonstration with a fixed small MLP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import noise_for_features
from ..exceptions import ConfigurationError
from ..hybrid.builders import build_classical_model
from ..nn.training import train_model
from .spiral import make_spiral
from .splits import stratified_split

__all__ = ["ProbeResult", "probe_complexity"]


@dataclass(frozen=True)
class ProbeResult:
    """Reference-classifier performance at one complexity level."""

    feature_size: int
    noise: float
    train_accuracy: float
    val_accuracy: float
    train_time_s: float


def probe_complexity(
    feature_sizes: Sequence[int],
    hidden: tuple[int, ...] = (10,),
    n_points: int = 600,
    epochs: int = 30,
    batch_size: int = 16,
    seed: int = 0,
) -> list[ProbeResult]:
    """Train one fixed MLP per feature size and record accuracy/time.

    Returns one :class:`ProbeResult` per feature size, in input order.
    """
    if not feature_sizes:
        raise ConfigurationError("need at least one feature size")
    results: list[ProbeResult] = []
    for fs in feature_sizes:
        dataset = make_spiral(fs, n_points=n_points, seed=seed)
        split = stratified_split(dataset, seed=seed)
        rng = np.random.default_rng(seed)
        model = build_classical_model(
            fs, hidden, n_classes=dataset.n_classes, rng=rng
        )
        history = train_model(
            model,
            split.x_train,
            split.y_train,
            split.x_val,
            split.y_val,
            epochs=epochs,
            batch_size=batch_size,
            rng=rng,
        )
        results.append(
            ProbeResult(
                feature_size=fs,
                noise=noise_for_features(fs),
                train_accuracy=history.max_train_accuracy,
                val_accuracy=history.max_val_accuracy,
                train_time_s=history.wall_time_s,
            )
        )
    return results
