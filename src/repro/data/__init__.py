"""Synthetic dataset generation (the paper's section III-A)."""

from .complexity_probe import ProbeResult, probe_complexity
from .spiral import DERIVED_FEATURE_KINDS, SpiralDataset, make_spiral
from .splits import DataSplit, one_hot, stratified_split

__all__ = [
    "SpiralDataset",
    "make_spiral",
    "DERIVED_FEATURE_KINDS",
    "DataSplit",
    "one_hot",
    "stratified_split",
    "ProbeResult",
    "probe_complexity",
]
