"""Batched statevector manipulation.

A batch of ``B`` statevectors over ``n`` qubits is stored as a complex128
ndarray of shape ``(B, 2, 2, ..., 2)`` — one leading batch axis followed by
one axis per qubit.  Wire ``w`` corresponds to array axis ``w + 1``, with
wire 0 the most significant bit of the computational-basis index (the same
convention as PennyLane/Qiskit statevector layouts with ``|q0 q1 ... >``).

The batch dimension is what makes simulation of the paper's hybrid models
practical: during training the quantum layer encodes a different data point
(different rotation angles) on every element of a mini-batch, so all gate
application helpers accept either one shared ``(2, 2)`` matrix or a batch
of per-sample ``(B, 2, 2)`` matrices.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError, WireError

__all__ = [
    "zero_state",
    "basis_state",
    "num_qubits",
    "as_matrix",
    "apply_single_qubit",
    "apply_cnot",
    "apply_cz",
    "apply_two_qubit",
    "abs2",
    "double_real_overlap",
    "norms",
    "probabilities",
]


def zero_state(n_qubits: int, batch: int = 1) -> np.ndarray:
    """Return ``|0...0>`` replicated over a batch.

    Shape is ``(batch, 2, ..., 2)`` with ``n_qubits`` qubit axes.
    """
    if n_qubits < 1:
        raise ShapeError(f"need at least one qubit, got {n_qubits}")
    if batch < 1:
        raise ShapeError(f"batch size must be positive, got {batch}")
    state = np.zeros((batch,) + (2,) * n_qubits, dtype=np.complex128)
    state[(slice(None),) + (0,) * n_qubits] = 1.0
    return state


def basis_state(bits: tuple[int, ...], batch: int = 1) -> np.ndarray:
    """Return the computational basis state ``|bits>`` over a batch."""
    if not bits:
        raise ShapeError("bits must be a non-empty tuple")
    if any(b not in (0, 1) for b in bits):
        raise ShapeError(f"bits must be 0/1, got {bits}")
    state = np.zeros((batch,) + (2,) * len(bits), dtype=np.complex128)
    state[(slice(None),) + tuple(bits)] = 1.0
    return state


def num_qubits(state: np.ndarray) -> int:
    """Number of qubit axes of a batched state."""
    return state.ndim - 1


def as_matrix(state: np.ndarray) -> np.ndarray:
    """View a batched state as a flat ``(B, 2**n)`` matrix."""
    return state.reshape(state.shape[0], -1)


def _check_wire(state: np.ndarray, wire: int) -> None:
    n = num_qubits(state)
    if not 0 <= wire < n:
        raise WireError(f"wire {wire} out of range for {n} qubits")


def apply_single_qubit(
    state: np.ndarray, mat: np.ndarray, wire: int
) -> np.ndarray:
    """Apply a single-qubit gate to ``wire`` of every state in the batch.

    ``mat`` may be a shared ``(2, 2)`` matrix or per-sample ``(B, 2, 2)``.
    Returns a new array; the input is not modified.
    """
    _check_wire(state, wire)
    axis = wire + 1
    moved = np.moveaxis(state, axis, -1)
    if mat.ndim == 2:
        out = moved @ mat.T
    elif mat.ndim == 3:
        if mat.shape[0] != state.shape[0]:
            raise ShapeError(
                f"batched gate ({mat.shape[0]}) does not match state batch "
                f"({state.shape[0]})"
            )
        # Contract the amplitude axis with each sample's own matrix.  The
        # gate batch axis must broadcast against the sample axis, which is
        # axis 0 of `moved`; einsum keeps this explicit and allocation-free.
        flat = moved.reshape(state.shape[0], -1, 2)
        out = np.einsum("bij,baj->bai", mat, flat).reshape(moved.shape)
    else:
        raise ShapeError(f"gate matrix must be (2,2) or (B,2,2), got {mat.shape}")
    return np.moveaxis(out, -1, axis)


def apply_cnot(state: np.ndarray, control: int, target: int) -> np.ndarray:
    """Apply CNOT(control, target) to every state in the batch.

    Implemented as an index permutation: amplitudes with the control bit
    set have their target axis flipped.  No floating-point arithmetic is
    performed (relevant to FLOPs-counting conventions, see
    :mod:`repro.flops.conventions`).
    """
    _check_wire(state, control)
    _check_wire(state, target)
    if control == target:
        raise WireError("control and target must differ")
    out = state.copy()
    sel: list = [slice(None)] * state.ndim
    sel[control + 1] = 1
    sel_t = tuple(sel)
    # Flip the target axis within the control=1 subspace.  The target axis
    # index shifts down by one inside the sliced view iff it comes after
    # the (now removed) control axis.
    target_axis = target + 1 if target < control else target
    out[sel_t] = np.flip(out[sel_t], axis=target_axis)
    return out


def apply_cz(state: np.ndarray, wire_a: int, wire_b: int) -> np.ndarray:
    """Apply CZ between two wires (symmetric)."""
    _check_wire(state, wire_a)
    _check_wire(state, wire_b)
    if wire_a == wire_b:
        raise WireError("CZ wires must differ")
    out = state.copy()
    sel: list = [slice(None)] * state.ndim
    sel[wire_a + 1] = 1
    sel[wire_b + 1] = 1
    out[tuple(sel)] *= -1.0
    return out


def apply_two_qubit(
    state: np.ndarray, mat: np.ndarray, wire_a: int, wire_b: int
) -> np.ndarray:
    """Apply an arbitrary two-qubit gate given as a ``(4, 4)`` matrix.

    ``wire_a`` is the more significant wire of the gate's basis ordering
    (``|a b>``).  Supports shared ``(4, 4)`` or batched ``(B, 4, 4)``.
    """
    _check_wire(state, wire_a)
    _check_wire(state, wire_b)
    if wire_a == wire_b:
        raise WireError("two-qubit gate wires must differ")
    moved = np.moveaxis(state, (wire_a + 1, wire_b + 1), (-2, -1))
    lead = moved.shape[:-2]
    flat = moved.reshape(lead + (4,))
    if mat.ndim == 2:
        if mat.shape != (4, 4):
            raise ShapeError(f"two-qubit gate must be 4x4, got {mat.shape}")
        out = flat @ mat.T
    elif mat.ndim == 3:
        if mat.shape[0] != state.shape[0]:
            raise ShapeError("batched two-qubit gate does not match batch")
        rest = flat.reshape(state.shape[0], -1, 4)
        out = np.einsum("bij,baj->bai", mat, rest).reshape(flat.shape)
    else:
        raise ShapeError(f"invalid two-qubit gate shape {mat.shape}")
    out = out.reshape(lead + (2, 2))
    return np.moveaxis(out, (-2, -1), (wire_a + 1, wire_b + 1))


def abs2(values: np.ndarray) -> np.ndarray:
    """Elementwise ``|z|**2`` as ``re**2 + im**2``.

    Cheaper than ``np.abs(z) ** 2``, which materialises an intermediate
    ``sqrt`` only to square it away again.
    """
    return values.real**2 + values.imag**2


def double_real_overlap(bra: np.ndarray, ket: np.ndarray) -> np.ndarray:
    """``2 Re <bra_b|ket_b>`` per sample for flat ``(B, 2**n)`` states.

    Uses ``Re(conj(a) b) = Re(a) Re(b) + Im(a) Im(b)`` so no complex
    conjugate intermediate is materialised.  This is the gate-gradient
    contraction of the adjoint method.
    """
    return 2.0 * (
        np.einsum("bi,bi->b", bra.real, ket.real)
        + np.einsum("bi,bi->b", bra.imag, ket.imag)
    )


def norms(state: np.ndarray) -> np.ndarray:
    """Per-sample L2 norms, shape ``(B,)``."""
    flat = as_matrix(state)
    return np.sqrt(np.sum(abs2(flat), axis=1))


def probabilities(state: np.ndarray) -> np.ndarray:
    """Per-sample computational-basis probabilities, shape ``(B, 2**n)``."""
    return abs2(as_matrix(state))
