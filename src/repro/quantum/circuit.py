"""Circuit representation and execution.

A circuit is a flat list of :class:`Operation` objects ("tape").  Each
operation knows:

* its gate ``name`` and ``wires``,
* its bound parameter values (scalars shared across the batch, or
  per-sample ``(B,)`` arrays — used by data encodings),
* a :class:`ParamRef` per parameter saying *where the parameter came from*
  (an input feature or a flat trainable-weight index), which is how the
  differentiation backends (:mod:`repro.quantum.adjoint`,
  :mod:`repro.quantum.parameter_shift`) route gradients back to the hybrid
  layer.

The executor is intentionally minimal: ``run(ops, n_qubits, batch)`` folds
the tape over a zero state.  Templates (:mod:`repro.quantum.templates`)
build tapes; they do not execute anything themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..exceptions import GateError, ShapeError, WireError
from . import gates
from .state import (
    apply_cnot,
    apply_cz,
    apply_single_qubit,
    apply_two_qubit,
    zero_state,
)

__all__ = [
    "ParamRef",
    "input_ref",
    "weight_ref",
    "Operation",
    "GateInfo",
    "GATE_SET",
    "run",
    "shift_parameter",
    "tape_summary",
]


@dataclass(frozen=True)
class ParamRef:
    """Provenance of one gate parameter.

    ``kind`` is ``"input"`` (the parameter is feature ``index`` of the
    data point being encoded) or ``"weight"`` (the parameter is element
    ``index`` of the flattened trainable weight vector).
    """

    kind: str
    index: int

    def __post_init__(self) -> None:
        if self.kind not in ("input", "weight"):
            raise GateError(f"unknown ParamRef kind {self.kind!r}")
        if self.index < 0:
            raise GateError(f"ParamRef index must be >= 0, got {self.index}")


def input_ref(index: int) -> ParamRef:
    """Shorthand for a data-input parameter reference."""
    return ParamRef("input", index)


def weight_ref(index: int) -> ParamRef:
    """Shorthand for a trainable-weight parameter reference."""
    return ParamRef("weight", index)


@dataclass(frozen=True)
class GateInfo:
    """Static description of a gate type.

    ``basis_perm`` / ``basis_diag`` describe gates whose action on the
    computational basis is a pure index permutation (CNOT, SWAP) or a
    ``+-1`` diagonal (CZ).  The compiled execution engine
    (:mod:`repro.quantum.engine`) uses them to run those gates as index
    shuffles / sign flips on a flat buffer instead of matrix products;
    ``basis_perm[j]`` is the source basis index contributing to target
    basis index ``j`` of the gate's local ``|wire_a wire_b>`` ordering.
    """

    n_wires: int
    n_params: int
    matrix_fn: Callable[..., np.ndarray] | None
    deriv_fn: Callable[..., tuple | np.ndarray] | None
    basis_perm: tuple[int, ...] | None = None
    basis_diag: tuple[int, ...] | None = None


#: Registry of supported gates.  Fixed gates carry their constant matrix
#: via a zero-argument lambda; CNOT/CZ are executed as index permutations
#: and therefore have no matrix builder here (their unitaries are still
#: available as :data:`repro.quantum.gates.CNOT` / ``CZ``).
GATE_SET: dict[str, GateInfo] = {
    "RX": GateInfo(1, 1, gates.rx, gates.rx_deriv),
    "RY": GateInfo(1, 1, gates.ry, gates.ry_deriv),
    "RZ": GateInfo(1, 1, gates.rz, gates.rz_deriv),
    "PhaseShift": GateInfo(1, 1, gates.phase_shift, None),
    "Rot": GateInfo(1, 3, gates.rot, gates.rot_deriv),
    "H": GateInfo(1, 0, lambda: gates.HADAMARD, None),
    "X": GateInfo(1, 0, lambda: gates.PAULI_X, None),
    "Y": GateInfo(1, 0, lambda: gates.PAULI_Y, None),
    "Z": GateInfo(1, 0, lambda: gates.PAULI_Z, None),
    "S": GateInfo(1, 0, lambda: gates.S_GATE, None),
    "T": GateInfo(1, 0, lambda: gates.T_GATE, None),
    "CNOT": GateInfo(2, 0, None, None, basis_perm=(0, 1, 3, 2)),
    "CZ": GateInfo(2, 0, None, None, basis_diag=(1, 1, 1, -1)),
    "SWAP": GateInfo(2, 0, lambda: gates.SWAP, None, basis_perm=(0, 2, 1, 3)),
    # Controlled rotations: fixed-parameter building blocks for custom
    # ansatze.  They have no analytic derivative rule registered, so
    # giving their parameter a gradient reference is rejected by the
    # adjoint backend (use parameter_shift... note the two-eigenvalue
    # shift rule is NOT exact for them; treat them as non-trainable).
    "CRX": GateInfo(2, 1, gates.crx, None),
    "CRY": GateInfo(2, 1, gates.cry, None),
    "CRZ": GateInfo(2, 1, gates.crz, None),
}


@dataclass
class Operation:
    """One gate application in a tape."""

    name: str
    wires: tuple[int, ...]
    params: tuple[np.ndarray, ...] = ()
    refs: tuple[ParamRef | None, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.name not in GATE_SET:
            raise GateError(f"unknown gate {self.name!r}")
        info = GATE_SET[self.name]
        if len(self.wires) != info.n_wires:
            raise WireError(
                f"{self.name} acts on {info.n_wires} wires, got {self.wires}"
            )
        if len(self.params) != info.n_params:
            raise GateError(
                f"{self.name} takes {info.n_params} parameters, "
                f"got {len(self.params)}"
            )
        if self.refs and len(self.refs) != info.n_params:
            raise GateError(
                f"{self.name}: refs length {len(self.refs)} != "
                f"n_params {info.n_params}"
            )
        if not self.refs:
            self.refs = (None,) * info.n_params
        self.params = tuple(np.asarray(p, dtype=np.float64) for p in self.params)

    @property
    def info(self) -> GateInfo:
        return GATE_SET[self.name]

    @property
    def is_parametrized(self) -> bool:
        return self.info.n_params > 0

    @property
    def is_trainable(self) -> bool:
        """True when at least one parameter has a gradient reference."""
        return any(r is not None for r in self.refs)

    def matrix(self) -> np.ndarray:
        """Gate matrix, possibly batched (for per-sample parameters)."""
        info = self.info
        if info.matrix_fn is None:
            raise GateError(f"{self.name} is executed as a permutation")
        return info.matrix_fn(*self.params)

    def deriv_matrices(self) -> tuple[np.ndarray, ...]:
        """Derivative of the gate matrix w.r.t. each of its parameters."""
        info = self.info
        if info.deriv_fn is None:
            raise GateError(f"{self.name} has no derivative rule")
        result = info.deriv_fn(*self.params)
        if isinstance(result, tuple):
            return result
        return (result,)


def _apply_operation(state: np.ndarray, op: Operation) -> np.ndarray:
    """Apply one operation to a batched state."""
    if op.name == "CNOT":
        return apply_cnot(state, op.wires[0], op.wires[1])
    if op.name == "CZ":
        return apply_cz(state, op.wires[0], op.wires[1])
    mat = op.matrix()
    if len(op.wires) == 1:
        return apply_single_qubit(state, mat, op.wires[0])
    return apply_two_qubit(state, mat, op.wires[0], op.wires[1])


def _apply_inverse(state: np.ndarray, op: Operation) -> np.ndarray:
    """Apply the inverse (conjugate transpose) of one operation."""
    if op.name == "CNOT":
        return apply_cnot(state, op.wires[0], op.wires[1])
    if op.name == "CZ":
        return apply_cz(state, op.wires[0], op.wires[1])
    mat = op.matrix()
    inv = np.conj(np.swapaxes(mat, -1, -2))
    if len(op.wires) == 1:
        return apply_single_qubit(state, inv, op.wires[0])
    return apply_two_qubit(state, inv, op.wires[0], op.wires[1])


def run(
    ops: Sequence[Operation],
    n_qubits: int,
    batch: int = 1,
    initial_state: np.ndarray | None = None,
) -> np.ndarray:
    """Execute a tape and return the final batched state.

    The state starts from ``|0...0>`` unless ``initial_state`` is given
    (which must have shape ``(batch,) + (2,) * n_qubits``).
    """
    if initial_state is None:
        state = zero_state(n_qubits, batch)
    else:
        expected = (batch,) + (2,) * n_qubits
        if initial_state.shape != expected:
            raise ShapeError(
                f"initial state shape {initial_state.shape} != {expected}"
            )
        state = initial_state.astype(np.complex128, copy=True)
    for op in ops:
        state = _apply_operation(state, op)
    return state


def shift_parameter(
    ops: Sequence[Operation], op_index: int, param_index: int, delta: float
) -> list[Operation]:
    """Return a copy of a tape with one gate angle shifted by ``delta``.

    Used by the parameter-shift rule; per-sample (batched) parameters are
    shifted element-wise.
    """
    if not 0 <= op_index < len(ops):
        raise GateError(f"op_index {op_index} out of range")
    target = ops[op_index]
    if param_index >= len(target.params):
        raise GateError(
            f"param_index {param_index} out of range for {target.name}"
        )
    new_params = tuple(
        p + delta if i == param_index else p
        for i, p in enumerate(target.params)
    )
    shifted = Operation(target.name, target.wires, new_params, target.refs)
    out = list(ops)
    out[op_index] = shifted
    return out


def tape_summary(ops: Iterable[Operation]) -> dict[str, int]:
    """Count gates by name — handy for tests and FLOPs accounting."""
    counts: dict[str, int] = {}
    for op in ops:
        counts[op.name] = counts.get(op.name, 0) + 1
    return counts
